// Dashboard: staged continuous queries in Serena SQL — a windowed
// per-location mean-temperature view, a second query alerting on the view,
// and a live textual dashboard. Demonstrates derived relations (continuous
// views), aggregation and the SQL surface working together.
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"

	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

func main() {
	p := pems.New()
	defer p.Close()
	must(p.ExecuteDDL(`
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE getTemperature( ) : (temperature REAL );
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);`))

	email := device.NewMessenger("email", "email")
	must(p.Registry().Register(email))
	sensors := map[string]*device.Sensor{}
	for _, s := range []struct {
		ref, loc string
		base     float64
	}{
		{"sensor01", "corridor", 19}, {"sensor06", "office", 21},
		{"sensor07", "office", 22}, {"sensor22", "roof", 15},
	} {
		d := device.NewSensor(s.ref, s.loc, s.base, device.WithNoise(0.3))
		sensors[s.ref] = d
		must(p.Registry().Register(d))
	}
	_, err := p.AddPollStream("temperatures", "getTemperature", "sensor",
		[]schema.Attribute{{Name: "location", Type: value.String}},
		func(ref string) []value.Value {
			return []value.Value{value.NewString(sensors[ref].Location())}
		})
	must(err)

	// Stage 1 (continuous view "means"): mean temperature per location over
	// a 5-instant window.
	means, err := p.RegisterQuerySQL("means",
		`SELECT location, mean(temperature) AS avgtemp FROM temperatures[5] GROUP BY location`, false)
	must(err)

	// Stage 2: alert Carla when any location's mean exceeds 27 °C — reading
	// the derived view by name.
	_, err = p.RegisterQuerySQL("alerts",
		`SELECT * FROM contacts NATURAL JOIN means
		 SET text := "Mean temperature alert!"
		 USING sendMessage
		 WHERE avgtemp > 27.0`, false)
	must(err)

	fmt.Println("t   corridor   office   roof      (mean over last 5 instants)")
	sensors["sensor06"].Heat(device.HeatEvent{From: 8, To: 12, Delta: 12})
	for tick := 0; tick <= 16; tick++ {
		must(p.RunUntil(service.Instant(tick)))
		row := map[string]float64{}
		sch := means.LastResult().Schema()
		li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
		for _, tu := range means.LastResult().Tuples() {
			row[tu[li].Str()] = tu[ai].Real()
		}
		fmt.Printf("%-3d %-10.2f %-8.2f %-8.2f\n", tick, row["corridor"], row["office"], row["roof"])
	}
	fmt.Printf("\nalerts delivered: %d\n", len(email.Outbox()))
	for _, d := range email.Outbox() {
		fmt.Printf("  t=%2d  %s ← %q\n", d.At, d.Address, d.Text)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
