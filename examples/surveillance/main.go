// Surveillance: the paper's Section 5.2 temperature-surveillance
// experiment, end to end — four XD-Relations (contacts, cameras,
// surveillance, temperatures stream), a continuous alert query notifying
// the manager of an overheating area, a photo stream of too-cold areas,
// a heat wave, and a new sensor discovered live while the queries run.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

const environment = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );
`

const tables = `
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);
EXTENDED RELATION surveillance ( name STRING, location STRING );
INSERT INTO contacts VALUES
  ("Nicolas", "nicolas@elysee.fr", email),
  ("Carla", "carla@elysee.fr", email),
  ("Francois", "francois@im.gouv.fr", jabber);
INSERT INTO cameras VALUES (camera01, "corridor"), (camera02, "office"), (webcam07, "roof");
INSERT INTO surveillance VALUES ("Carla", "office"), ("Nicolas", "corridor"), ("Francois", "roof");
`

func main() {
	p := pems.New()
	defer p.Close()
	if err := p.ExecuteDDL(environment); err != nil {
		log.Fatal(err)
	}

	// Devices.
	sensors := map[string]*device.Sensor{}
	for _, s := range []struct {
		ref, loc string
		base     float64
	}{
		{"sensor01", "corridor", 19}, {"sensor06", "office", 21},
		{"sensor07", "office", 22}, {"sensor22", "roof", 15},
	} {
		d := device.NewSensor(s.ref, s.loc, s.base)
		sensors[s.ref] = d
		must(p.Registry().Register(d))
	}
	email := device.NewMessenger("email", "email")
	jabber := device.NewMessenger("jabber", "jabber")
	must(p.Registry().Register(email))
	must(p.Registry().Register(jabber))
	for _, c := range []struct {
		ref, area string
		q         int64
	}{{"camera01", "corridor", 8}, {"camera02", "office", 7}, {"webcam07", "roof", 5}} {
		must(p.Registry().Register(device.NewCamera(c.ref, c.area, c.q, 0.2)))
	}
	must(p.ExecuteDDL(tables))

	// The temperatures stream polls every sensor known to the registry —
	// including ones discovered later.
	_, err := p.AddPollStream("temperatures", "getTemperature", "sensor",
		[]schema.Attribute{{Name: "location", Type: value.String}},
		func(ref string) []value.Value {
			if s, ok := sensors[ref]; ok {
				return []value.Value{value.NewString(s.Location())}
			}
			return []value.Value{value.NewString("unknown")}
		})
	must(err)

	// Continuous query 1: alert the manager of an area above 28 °C.
	alerts, err := p.RegisterQuery("alerts",
		`invoke[sendMessage](assign[text := "Temperature alert!"](join(contacts,
			join(surveillance, select[temperature > 28.0](window[1](temperatures))))))`, true)
	must(err)
	alerts.OnResult = func(at service.Instant, _ *algebra.XRelation, inserted, _ []value.Tuple) {
		for range inserted {
			fmt.Printf("t=%2d  ALERT dispatched\n", at)
		}
	}

	// Continuous query 2: a photo stream of areas below 12 °C.
	photos, err := p.RegisterQuery("photos",
		`stream[insertion](project[photo](invoke[takePhoto](invoke[checkPhoto](
			join(cameras, rename[location -> area](
				select[temperature < 12.0](window[1](temperatures))))))))`, false)
	must(err)
	photos.OnResult = func(at service.Instant, res *algebra.XRelation, _, _ []value.Tuple) {
		for _, tu := range res.Tuples() {
			fmt.Printf("t=%2d  PHOTO captured (%d bytes)\n", at, len(tu[0].Blob()))
		}
	}

	fmt.Println("== running: heat wave in the office at t=5..9, cold snap on the roof at t=12..13")
	sensors["sensor06"].Heat(device.HeatEvent{From: 5, To: 9, Delta: 10})   // office → 31 °C
	sensors["sensor22"].Heat(device.HeatEvent{From: 12, To: 13, Delta: -5}) // roof → 10 °C
	must(p.RunUntil(10))

	// §5.2 live discovery: a new sensor joins while the queries run.
	fmt.Println("== t=10: new sensor99 (roof, already hot at 35 °C) joins the environment")
	hot := device.NewSensor("sensor99", "roof", 35)
	sensors["sensor99"] = hot
	must(p.Registry().Register(hot))
	must(p.RunUntil(15))

	fmt.Println("\n== outboxes")
	for _, d := range email.Outbox() {
		fmt.Printf("  email  t=%2d  %s ← %q\n", d.At, d.Address, d.Text)
	}
	for _, d := range jabber.Outbox() {
		fmt.Printf("  jabber t=%2d  %s ← %q\n", d.At, d.Address, d.Text)
	}
	fmt.Printf("\nphoto stream: %d photo(s); cumulative action set: %s\n",
		photos.Output().EventCount(), alerts.Actions())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
