// Quickstart: declare a relational pervasive environment in Serena DDL,
// run the paper's Table 4 one-shot queries (Q1 and Q2), and watch the
// optimizer rewrite a naive plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"serena/internal/device"
	"serena/internal/pems"
)

const environment = `
-- Table 1: prototypes of the temperature-surveillance scenario.
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );

-- Table 2: the contacts and cameras X-Relations.
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );

EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);

INSERT INTO contacts VALUES
  ("Nicolas", "nicolas@elysee.fr", email),
  ("Carla", "carla@elysee.fr", email),
  ("Francois", "francois@im.gouv.fr", jabber);
INSERT INTO cameras VALUES
  (camera01, "corridor"), (camera02, "office"), (webcam07, "roof");
`

func main() {
	p := pems.New()
	defer p.Close()

	// Register the simulated devices (email/jabber gateways, cameras) with
	// the core Environment Resource Manager.
	email := device.NewMessenger("email", "email")
	jabber := device.NewMessenger("jabber", "jabber")
	if err := p.ExecuteDDL(environment[:findFirstRelation(environment)]); err != nil {
		log.Fatal(err)
	}
	if err := p.Registry().Register(email); err != nil {
		log.Fatal(err)
	}
	if err := p.Registry().Register(jabber); err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		ref, area string
		q         int64
	}{{"camera01", "corridor", 8}, {"camera02", "office", 7}, {"webcam07", "roof", 5}} {
		if err := p.Registry().Register(device.NewCamera(c.ref, c.area, c.q, 0.2)); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.ExecuteDDL(environment[findFirstRelation(environment):]); err != nil {
		log.Fatal(err)
	}

	// Q1 (Table 4): send "Bonjour!" to every contact except Carla.
	fmt.Println("== Q1: invoke[sendMessage](assign[text := \"Bonjour!\"](select[name != \"Carla\"](contacts)))")
	res, err := p.OneShot(`invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"](contacts)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation.Table())
	fmt.Println("action set:", res.Actions)
	fmt.Println("email outbox:", deliveries(email))
	fmt.Println("jabber outbox:", deliveries(jabber))

	// Q2 (Table 4): photos of the office with quality ≥ 5.
	fmt.Println("\n== Q2: project[photo](invoke[takePhoto](select[quality >= 5](invoke[checkPhoto](select[area = \"office\"](cameras)))))")
	res, err = p.OneShot(`project[photo](invoke[takePhoto](select[quality >= 5](invoke[checkPhoto](select[area = "office"](cameras)))))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation.Table())
	fmt.Printf("passive invocations: %d (action set empty: %v)\n", res.Stats.Passive, res.Actions.Len() == 0)

	// The same queries in Serena SQL: the declarative WHERE compiles to the
	// earliest legal position (Q1 semantics — Carla is never messaged).
	fmt.Println("\n== Serena SQL: SELECT photo FROM cameras USING checkPhoto, takePhoto WHERE area = \"office\" AND quality >= 5")
	res, err = p.OneShotSQL(`SELECT photo FROM cameras USING checkPhoto, takePhoto
		WHERE area = "office" AND quality >= 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d photo(s), %d passive invocation(s)\n", res.Relation.Len(), res.Stats.Passive)

	// Aggregation (the paper's mean-temperature motivation, via SQL).
	fmt.Println("\n== Serena SQL aggregation over the messengers' relation")
	res, err = p.OneShotSQL(`SELECT messenger, count(*) AS n FROM contacts GROUP BY messenger`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation.Table())

	// The optimizer turns the naive Q2' into Q2 (Table 5 pushdown).
	fmt.Println("\n== optimizer: registering the naive Q2' as a continuous query with optimization")
	q, err := p.RegisterQuery("photos", `select[area = "office"](invoke[checkPhoto](cameras))`, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered plan:", q.Plan())
	if _, err := p.Tick(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first tick result: %d tuple(s), %d passive invocation(s)\n",
		q.LastResult().Len(), q.Stats().Passive)
}

func deliveries(m *device.Messenger) []string {
	var out []string
	for _, d := range m.Outbox() {
		out = append(out, fmt.Sprintf("%s ← %q", d.Address, d.Text))
	}
	return out
}

// findFirstRelation splits the DDL so prototypes are declared before the
// devices register (services must reference known prototypes).
func findFirstRelation(src string) int {
	const marker = "EXTENDED RELATION"
	for i := 0; i+len(marker) <= len(src); i++ {
		if src[i:i+len(marker)] == marker {
			return i
		}
	}
	return len(src)
}
