// Distributed: the paper's Figure 1 in one program — a core PEMS plus two
// Local Environment Resource Manager nodes speaking the wire protocol over
// real TCP, discovered through announce messages, with a continuous alert
// query whose invocations cross the network in both directions (sensor
// reads in, message sends out).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/pems"
	"serena/internal/schema"
	"serena/internal/value"
)

func main() {
	bus := discovery.NewInProcBus()
	p := pems.New(pems.WithDiscovery(bus))
	defer p.Close()
	must(p.ExecuteDDL(`
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE getTemperature( ) : (temperature REAL );
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);`))

	// Local ERM "building-A": two office sensors, served over TCP.
	nodeA := discovery.NewNode("building-A", bus)
	must(nodeA.Registry().RegisterPrototype(device.GetTemperatureProto()))
	office := device.NewSensor("sensor06", "office", 21)
	must(nodeA.Registry().Register(office))
	must(nodeA.Registry().Register(device.NewSensor("sensor07", "office", 22)))
	must(nodeA.Start("127.0.0.1:0"))
	defer nodeA.Stop()
	fmt.Printf("node building-A serving on %s\n", nodeA.Addr())

	// Local ERM "gateway": the e-mail service.
	nodeB := discovery.NewNode("gateway", bus)
	must(nodeB.Registry().RegisterPrototype(device.SendMessageProto()))
	email := device.NewMessenger("email", "email")
	must(nodeB.Registry().Register(email))
	must(nodeB.Start("127.0.0.1:0"))
	defer nodeB.Stop()
	fmt.Printf("node gateway serving on %s\n", nodeB.Addr())

	// Wait for discovery.
	for i := 0; i < 600 && len(p.Registry().Refs()) < 3; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("core discovered services: %v (nodes %v)\n", p.Registry().Refs(), p.Discovery().Nodes())

	// Remote invocations fan out concurrently over the multiplexed TCP
	// connection (Section 5.1: asynchronous invocation handling).
	p.SetInvocationParallelism(8)

	// The temperatures stream now polls the REMOTE sensors every tick.
	_, err := p.AddPollStream("temperatures", "getTemperature", "sensor",
		[]schema.Attribute{{Name: "location", Type: value.String}},
		func(string) []value.Value { return []value.Value{value.NewString("office")} })
	must(err)
	q, err := p.RegisterQuery("alerts",
		`invoke[sendMessage](assign[text := "Hot!"](join(contacts,
			select[temperature > 28.0](window[1](temperatures)))))`, true)
	must(err)

	fmt.Println("== running 10 instants with a heat event at t=4..7")
	office.Heat(device.HeatEvent{From: 4, To: 7, Delta: 12})
	must(p.RunUntil(10))

	fmt.Printf("alerts delivered on the gateway node: %d\n", len(email.Outbox()))
	for _, d := range email.Outbox() {
		fmt.Printf("  t=%2d  %s ← %q\n", d.At, d.Address, d.Text)
	}
	fmt.Println("cumulative action set:", q.Actions())

	// The sensor node leaves: the stream dries up, the system keeps running.
	fmt.Println("== building-A withdraws (bye)")
	must(nodeA.Stop())
	for i := 0; i < 600 && len(p.Registry().Implementing("getTemperature")) > 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	must(p.RunUntil(14))
	fmt.Printf("after withdrawal: %d alert(s) total, services %v\n",
		len(email.Outbox()), p.Registry().Refs())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
