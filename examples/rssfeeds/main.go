// RSS feeds: the paper's second Section 5.2 experiment — RSS wrapper
// services polled into a stream, a keyword filter over a one-hour window,
// and forwarding matching headlines to a contact by e-mail.
//
//	go run ./examples/rssfeeds
package main

import (
	"fmt"
	"log"

	"serena/internal/device"
	"serena/internal/pems"
)

const environment = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE getItems( since INTEGER ) : (itemId INTEGER, title STRING, published INTEGER);

EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);
`

func main() {
	p := pems.New()
	defer p.Close()
	if err := p.ExecuteDDL(environment); err != nil {
		log.Fatal(err)
	}
	email := device.NewMessenger("email", "email")
	if err := p.Registry().Register(email); err != nil {
		log.Fatal(err)
	}
	// The paper polled Le Monde, Le Figaro and CNN Europe; our simulated
	// feeds publish one item every 5 instants, every third one mentioning
	// the watched keyword.
	for _, f := range []struct{ ref, name string }{
		{"lemonde", "Le Monde"}, {"lefigaro", "Le Figaro"}, {"cnn", "CNN Europe"},
	} {
		if err := p.Registry().Register(device.NewFeed(f.ref, f.name, 5, []string{"Obama"})); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := p.AddFeedStream("news"); err != nil {
		log.Fatal(err)
	}

	// The one-hour watchlist (3600 instants ≈ 1h at one instant per second).
	watch, err := p.RegisterQuery("watch",
		`select[title contains "Obama"](window[3600](news))`, false)
	if err != nil {
		log.Fatal(err)
	}
	// Forward each matching headline to Carla, once.
	if _, err := p.RegisterQuery("forward",
		`invoke[sendMessage](assign[text := title](join(
			select[name = "Carla"](contacts),
			project[title](select[title contains "Obama"](window[3600](news))))))`, false); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== polling feeds for 40 instants")
	if err := p.RunUntil(40); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watchlist currently holds %d matching item(s):\n", watch.LastResult().Len())
	fmt.Print(watch.LastResult().Table())

	fmt.Printf("\nforwarded to Carla (%d message(s)):\n", len(email.Outbox()))
	for _, d := range email.Outbox() {
		fmt.Printf("  t=%2d  %q\n", d.At, d.Text)
	}
}
