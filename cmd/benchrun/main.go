// Command benchrun regenerates the experiment tables of EXPERIMENTS.md:
// the hybrid-query benchmark sweeps (B-1, B-3…B-7) and the design-choice
// ablations (A-2, A-4). Each experiment prints one text table.
//
// Usage:
//
//	benchrun -exp all            # every experiment (default)
//	benchrun -exp B1,B6          # a subset
//	benchrun -quick              # smaller sweeps for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"serena/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (B1,B3,B4,B5,B6,B7,B8,A2,A4) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToUpper(*expFlag), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["ALL"]
	selected := func(id string) bool { return all || want[id] }

	type experiment struct {
		id  string
		run func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"B1", func() (*bench.Table, error) {
			if *quick {
				return bench.PushdownSweep(50, []int{1, 2, 5, 10}, 100*time.Microsecond)
			}
			return bench.PushdownSweep(200, []int{1, 2, 4, 10, 20, 100}, 200*time.Microsecond)
		}},
		{"B3", func() (*bench.Table, error) {
			if *quick {
				return bench.LatencySweep(50, []time.Duration{0, 100 * time.Microsecond, time.Millisecond})
			}
			return bench.LatencySweep(100, []time.Duration{
				0, 50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond,
			})
		}},
		{"B4", func() (*bench.Table, error) {
			if *quick {
				return bench.WindowSweep(20, []int64{1, 10, 100}, 50)
			}
			return bench.WindowSweep(50, []int64{1, 10, 100, 1000, 10000}, 200)
		}},
		{"B5", func() (*bench.Table, error) {
			if *quick {
				return bench.DiscoverySweep([]int{10, 50}, 4)
			}
			return bench.DiscoverySweep([]int{10, 100, 500, 1000}, 8)
		}},
		{"B6", func() (*bench.Table, error) {
			if *quick {
				return bench.WireSweep([]int{64, 4096}, 200)
			}
			return bench.WireSweep([]int{64, 1024, 16384, 262144}, 1000)
		}},
		{"B7", func() (*bench.Table, error) {
			if *quick {
				return bench.HybridSweep([]int{50, 200}, 50)
			}
			return bench.HybridSweep([]int{100, 1000, 10000}, 100)
		}},
		{"B8", func() (*bench.Table, error) {
			if *quick {
				return bench.ParallelInvocationSweep(32, 2*time.Millisecond, []int{1, 4, 16})
			}
			return bench.ParallelInvocationSweep(100, 2*time.Millisecond, []int{1, 2, 4, 8, 16, 32})
		}},
		{"A2", func() (*bench.Table, error) {
			if *quick {
				return bench.DeltaInvocationAblation(50, 20)
			}
			return bench.DeltaInvocationAblation(200, 100)
		}},
		{"A4", func() (*bench.Table, error) {
			if *quick {
				return bench.MemoAblation(50, 4)
			}
			return bench.MemoAblation(200, 8)
		}},
	}

	ran := 0
	for _, e := range experiments {
		if !selected(e.id) {
			continue
		}
		ran++
		start := time.Now()
		tbl, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrun: no experiment matches %q\n", *expFlag)
		os.Exit(2)
	}
}
