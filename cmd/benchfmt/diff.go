package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// DefaultDiffKeys selects the benchmarks the regression gate watches: the
// invocation pipeline, the durable tick path, and the incremental-vs-naive
// evaluation sweep — the surfaces the batching and delta-evaluation work
// optimize and must not regress.
const DefaultDiffKeys = `^BenchmarkInvoke|^BenchmarkDurableTick|^BenchmarkDeltaInvocation`

// Regression is one gated benchmark whose ns/op grew past the threshold.
type Regression struct {
	Name     string
	BaseNs   float64
	CurNs    float64
	DeltaPct float64
}

// Diff compares cur against base and returns the gated benchmarks (Name
// matching keys) whose ns/op regressed by more than thresholdPct percent.
// Benchmarks present in only one report are ignored: a renamed or new
// benchmark has no baseline to regress from.
func Diff(cur, base *Report, keys *regexp.Regexp, thresholdPct float64) []Regression {
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Package+"|"+b.Name] = b.NsPerOp
	}
	var regs []Regression
	for _, b := range cur.Benchmarks {
		if !keys.MatchString(b.Name) {
			continue
		}
		bn, ok := baseNs[b.Package+"|"+b.Name]
		if !ok || bn <= 0 {
			continue
		}
		pct := (b.NsPerOp - bn) / bn * 100
		if pct > thresholdPct {
			regs = append(regs, Regression{Name: b.Name, BaseNs: bn, CurNs: b.NsPerOp, DeltaPct: pct})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].DeltaPct > regs[j].DeltaPct })
	return regs
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &rep, nil
}

// runDiff implements `benchfmt -diff <report>`: load the report, find its
// baseline (-against, or the report's recorded parent), and exit non-zero
// when a gated benchmark regressed past the threshold. Missing baselines
// and cross-machine comparisons warn and pass — a gate that cannot compare
// must not fail the build on noise.
func runDiff(reportPath, against, keysPat string, thresholdPct float64) int {
	keys, err := regexp.Compile(keysPat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: bad -keys pattern: %v\n", err)
		return 1
	}
	cur, err := readReport(reportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if against == "" {
		against = cur.Parent
	}
	if against == "" {
		fmt.Fprintf(os.Stderr, "benchfmt: %s records no parent report and no -against was given; nothing to diff\n", reportPath)
		return 0
	}
	base, err := readReport(against)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchfmt: baseline %s not found; skipping regression check\n", against)
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Fprintf(os.Stderr, "benchfmt: baseline measured on %q, this report on %q; cross-machine ns/op are not comparable, skipping\n",
			base.CPU, cur.CPU)
		return 0
	}
	checked := 0
	for _, b := range cur.Benchmarks {
		if keys.MatchString(b.Name) {
			checked++
		}
	}
	regs := Diff(cur, base, keys, thresholdPct)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchfmt: %d gated benchmark(s) within %.0f%% of %s\n", checked, thresholdPct, against)
		return 0
	}
	fmt.Fprintf(os.Stderr, "benchfmt: %d regression(s) against %s (threshold %.0f%%):\n", len(regs), against, thresholdPct)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %-50s %12.0f → %12.0f ns/op  (+%.1f%%)\n", r.Name, r.BaseNs, r.CurNs, r.DeltaPct)
	}
	return 1
}
