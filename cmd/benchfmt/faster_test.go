package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const (
	deltaArm = "BenchmarkDeltaInvocation/delta"
	naiveArm = "BenchmarkDeltaInvocation/naive"
)

func TestAssertFasterHolds(t *testing.T) {
	rep := report(map[string]float64{
		deltaArm + "/n=64":  90,
		deltaArm + "/n=1k":  300,
		deltaArm + "/n=16k": 5000,
		naiveArm + "/n=64":  180,
		naiveArm + "/n=1k":  2800,
		naiveArm + "/n=16k": 65000,
	})
	if errs := AssertFaster(rep, deltaArm, naiveArm); len(errs) != 0 {
		t.Fatalf("winning sweep flagged: %v", errs)
	}
}

func TestAssertFasterFlagsSlowOrTiedPoints(t *testing.T) {
	rep := report(map[string]float64{
		deltaArm + "/n=64":  90,
		deltaArm + "/n=1k":  2800, // tied → fails (must be strictly faster)
		deltaArm + "/n=16k": 70000, // slower → fails
		naiveArm + "/n=64":  180,
		naiveArm + "/n=1k":  2800,
		naiveArm + "/n=16k": 65000,
	})
	errs := AssertFaster(rep, deltaArm, naiveArm)
	if len(errs) != 2 {
		t.Fatalf("errors = %v, want the tied and the slower point", errs)
	}
}

func TestAssertFasterFailsOnBrokenSweep(t *testing.T) {
	// A missing counterpart is a failure, not a skip: the arms must cover
	// the same sizes or the gate proves nothing.
	rep := report(map[string]float64{
		deltaArm + "/n=64": 90,
		naiveArm + "/n=1k": 2800,
	})
	if errs := AssertFaster(rep, deltaArm, naiveArm); len(errs) != 1 || !strings.Contains(errs[0], "counterpart") {
		t.Fatalf("errors = %v, want one missing-counterpart failure", errs)
	}

	// A report where the fast arm never ran must fail too.
	rep = report(map[string]float64{naiveArm + "/n=64": 180})
	if errs := AssertFaster(rep, deltaArm, naiveArm); len(errs) != 1 || !strings.Contains(errs[0], "did not run") {
		t.Fatalf("errors = %v, want one sweep-did-not-run failure", errs)
	}
}

func TestRunFasterGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	writeReport(t, path, report(map[string]float64{
		deltaArm + "/n=64": 90,
		naiveArm + "/n=64": 180,
	}))
	if code := runFaster(path, deltaArm+"<"+naiveArm); code != 0 {
		t.Fatalf("winning sweep failed the gate (exit %d)", code)
	}
	writeReport(t, path, report(map[string]float64{
		deltaArm + "/n=64": 900,
		naiveArm + "/n=64": 180,
	}))
	if code := runFaster(path, deltaArm+"<"+naiveArm); code != 1 {
		t.Fatalf("losing sweep passed the gate (exit %d)", code)
	}
	if code := runFaster(path, "malformed-spec"); code != 1 {
		t.Fatalf("malformed spec accepted (exit %d)", code)
	}
}
