package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// AssertFaster enforces a within-report pair gate, spec "fast<slow": every
// benchmark named <fast>/<suffix> must have a <slow>/<suffix> counterpart
// in the same package and strictly lower ns/op. Unlike the -diff gate —
// which compares against a historical baseline and passes when it cannot —
// this one compares two arms of the same run, so a missing counterpart or
// an empty match is itself a failure: the sweep broke, not the machine.
func AssertFaster(rep *Report, fast, slow string) []string {
	slowNs := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if rest, ok := strings.CutPrefix(b.Name, slow+"/"); ok {
			slowNs[b.Package+"|"+rest] = b.NsPerOp
		}
	}
	var errs []string
	matched := 0
	for _, b := range rep.Benchmarks {
		rest, ok := strings.CutPrefix(b.Name, fast+"/")
		if !ok {
			continue
		}
		matched++
		base, ok := slowNs[b.Package+"|"+rest]
		if !ok {
			errs = append(errs, fmt.Sprintf("%s has no %s/%s counterpart", b.Name, slow, rest))
			continue
		}
		if b.NsPerOp >= base {
			errs = append(errs, fmt.Sprintf("%-44s %12.0f ns/op  not faster than  %s/%s  %12.0f ns/op",
				b.Name, b.NsPerOp, slow, rest, base))
		}
	}
	if matched == 0 {
		errs = append(errs, fmt.Sprintf("no benchmarks named %s/* in the report; the sweep did not run", fast))
	}
	sort.Strings(errs)
	return errs
}

// runFaster implements `benchfmt -faster "fast<slow" <report>`.
func runFaster(reportPath, spec string) int {
	fast, slow, ok := strings.Cut(spec, "<")
	if !ok || fast == "" || slow == "" {
		fmt.Fprintf(os.Stderr, "benchfmt: bad -faster spec %q, want \"fastPrefix<slowPrefix\"\n", spec)
		return 1
	}
	rep, err := readReport(reportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if errs := AssertFaster(rep, fast, slow); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "benchfmt: %s is not faster than %s everywhere:\n", fast, slow)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchfmt: %s beats %s at every point of the sweep\n", fast, slow)
	return 0
}
