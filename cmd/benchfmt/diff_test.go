package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func report(benches map[string]float64) *Report {
	rep := &Report{CPU: "testcpu"}
	for name, ns := range benches {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Package: "serena", NsPerOp: ns, Runs: 100})
	}
	return rep
}

func TestDiffFlagsRegressionsPastThreshold(t *testing.T) {
	keys := regexp.MustCompile(DefaultDiffKeys)
	base := report(map[string]float64{
		"BenchmarkInvoke/n=100":          1000,
		"BenchmarkInvokeBatch/batch":     500,
		"BenchmarkDurableTick/sensors=8": 2000,
		"BenchmarkOperators/select":      100, // not gated
	})
	cur := report(map[string]float64{
		"BenchmarkInvoke/n=100":          1100, // +10% → within threshold
		"BenchmarkInvokeBatch/batch":     800,  // +60% → regression
		"BenchmarkDurableTick/sensors=8": 2900, // +45% → regression
		"BenchmarkOperators/select":      1000, // +900% but not gated
	})
	regs := Diff(cur, base, keys, 20)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want 2", regs)
	}
	// Sorted worst-first.
	if regs[0].Name != "BenchmarkInvokeBatch/batch" || regs[1].Name != "BenchmarkDurableTick/sensors=8" {
		t.Fatalf("order = %s, %s", regs[0].Name, regs[1].Name)
	}
	if regs[0].DeltaPct < 59 || regs[0].DeltaPct > 61 {
		t.Fatalf("delta = %.1f, want ~60", regs[0].DeltaPct)
	}
}

func TestDiffIgnoresUnmatchedBenchmarks(t *testing.T) {
	keys := regexp.MustCompile(DefaultDiffKeys)
	base := report(map[string]float64{"BenchmarkInvoke/old": 100})
	cur := report(map[string]float64{"BenchmarkInvoke/new": 100000})
	if regs := Diff(cur, base, keys, 20); len(regs) != 0 {
		t.Fatalf("benchmark without a baseline flagged: %+v", regs)
	}
}

func writeReport(t *testing.T, path string, rep *Report) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiffGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	writeReport(t, basePath, report(map[string]float64{"BenchmarkInvoke/n=1": 1000}))

	cur := report(map[string]float64{"BenchmarkInvoke/n=1": 1500})
	cur.Parent = basePath
	writeReport(t, curPath, cur)
	if code := runDiff(curPath, "", DefaultDiffKeys, 20); code != 1 {
		t.Fatalf("50%% regression passed the gate (exit %d)", code)
	}
	if code := runDiff(curPath, "", DefaultDiffKeys, 60); code != 0 {
		t.Fatalf("within-threshold diff failed the gate (exit %d)", code)
	}

	// Missing baseline: warn and pass.
	cur.Parent = filepath.Join(dir, "nonexistent.json")
	writeReport(t, curPath, cur)
	if code := runDiff(curPath, "", DefaultDiffKeys, 20); code != 0 {
		t.Fatalf("missing baseline failed the gate (exit %d)", code)
	}

	// No parent recorded at all: warn and pass.
	cur.Parent = ""
	writeReport(t, curPath, cur)
	if code := runDiff(curPath, "", DefaultDiffKeys, 20); code != 0 {
		t.Fatalf("parentless report failed the gate (exit %d)", code)
	}

	// Cross-machine baseline: warn and pass.
	other := report(map[string]float64{"BenchmarkInvoke/n=1": 1})
	other.CPU = "another cpu"
	writeReport(t, basePath, other)
	if code := runDiff(curPath, basePath, DefaultDiffKeys, 20); code != 0 {
		t.Fatalf("cross-machine diff failed the gate (exit %d)", code)
	}
}
