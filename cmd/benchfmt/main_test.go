package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: serena/internal/service
cpu: AMD EPYC 7B13
BenchmarkInvoke/n=10-8         	   79864	     14842 ns/op	    5392 B/op	     150 allocs/op
BenchmarkInvoke/n=100-8        	    9637	    121445 ns/op	   52528 B/op	    1155 allocs/op
PASS
ok  	serena/internal/service	2.901s
pkg: serena/internal/wire
BenchmarkRoundTrip-8           	   12000	     95000 ns/op	  210.52 MB/s	    1024 B/op	      12 allocs/op
PASS
ok  	serena/internal/wire	1.100s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkInvoke/n=100" || b.Package != "serena/internal/service" {
		t.Fatalf("bench[1] = %+v", b)
	}
	if b.Procs != 8 || b.Runs != 9637 || b.NsPerOp != 121445 || b.BytesPerOp != 52528 || b.AllocsPerOp != 1155 {
		t.Fatalf("bench[1] numbers = %+v", b)
	}
	w := rep.Benchmarks[2]
	if w.Package != "serena/internal/wire" || w.MBPerSec != 210.52 {
		t.Fatalf("bench[2] = %+v", w)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("Failed = %v", rep.Failed)
	}
}

func TestParseFoldsRepeatedRunsToFastest(t *testing.T) {
	in := `pkg: serena
BenchmarkInvoke/n=10-8   	   300	     22000 ns/op	   11000 B/op	     161 allocs/op
BenchmarkInvoke/n=10-8   	   300	     14000 ns/op	   10900 B/op	     150 allocs/op
BenchmarkInvoke/n=10-8   	   300	     19000 ns/op	   10950 B/op	     151 allocs/op
BenchmarkOther-8         	   100	      5000 ns/op
PASS
ok  	serena	1.0s
`
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 after folding: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkInvoke/n=10" || b.NsPerOp != 14000 || b.AllocsPerOp != 150 {
		t.Fatalf("folded bench = %+v, want the fastest of the three runs", b)
	}
	if rep.Benchmarks[1].Name != "BenchmarkOther" {
		t.Fatalf("bench[1] = %+v", rep.Benchmarks[1])
	}
}

func TestParseRecordsFailures(t *testing.T) {
	in := sample + "--- FAIL: BenchmarkBroken\nFAIL\nFAIL\tserena/internal/cq\t0.1s\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) == 0 {
		t.Fatal("failure lines not recorded")
	}
	found := false
	for _, f := range rep.Failed {
		if f == "BenchmarkBroken" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Failed = %v, want BenchmarkBroken", rep.Failed)
	}
}

func TestReportProvenanceJSON(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.GitSHA = "deadbeef"
	rep.Parent = "BENCH_2026-07-29.json"
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got["git_sha"] != "deadbeef" || got["parent"] != "BENCH_2026-07-29.json" {
		t.Fatalf("provenance fields = %v / %v", got["git_sha"], got["parent"])
	}

	// Provenance is optional: empty fields must not appear in the JSON.
	rep.GitSHA, rep.Parent = "", ""
	out, err = json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "git_sha") || strings.Contains(string(out), "parent") {
		t.Fatalf("empty provenance serialized: %s", out)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok  \tserena/internal/obs\t0.01s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v", rep.Benchmarks)
	}
}
