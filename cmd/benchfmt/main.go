// Command benchfmt converts `go test -bench -benchmem` output into a
// machine-readable JSON report, the interchange format of the repository's
// benchmark pipeline (scripts/bench.sh writes BENCH_<date>.json at the repo
// root; CI archives it per commit).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchfmt -o BENCH_2026-08-05.json \
//	    -sha "$(git rev-parse HEAD)" -parent BENCH_2026-07-29.json
//
// -sha records the commit the numbers were measured at; -parent records the
// previous report's filename, chaining reports so a regression diff can walk
// back through history.
//
// With -diff, benchfmt becomes the regression gate of that chain instead:
//
//	benchfmt -diff BENCH_check.json            # against its recorded parent
//	benchfmt -diff BENCH_check.json -against BENCH_2026-07-29.json
//
// It exits non-zero when a gated benchmark (-keys, default the invocation
// pipeline and durable tick) grew by more than -threshold percent ns/op.
// A missing baseline or a baseline measured on different hardware warns
// and passes — the gate never fails on numbers it cannot compare.
//
// With -faster, benchfmt gates two arms of the SAME report against each
// other instead of against history:
//
//	benchfmt -faster 'BenchmarkDeltaInvocation/delta<BenchmarkDeltaInvocation/naive' BENCH_check.json
//
// It exits non-zero unless every fast/<suffix> benchmark exists, has a
// slow/<suffix> counterpart, and is strictly faster — same-machine,
// same-run numbers, so this gate has no cannot-compare escape.
//
// benchfmt exits non-zero when the input contains no benchmark results or a
// failed benchmark, so pipelines cannot silently archive empty reports.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`              // e.g. "BenchmarkInvoke/n=100"
	Package     string  `json:"package,omitempty"` // import path from the pkg: header
	Procs       int     `json:"procs,omitempty"`   // GOMAXPROCS suffix (-8)
	Runs        int64   `json:"runs"`              // iteration count (b.N)
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Generated  string      `json:"generated,omitempty"` // RFC 3339 UTC
	GitSHA     string      `json:"git_sha,omitempty"`   // commit the numbers were measured at
	Parent     string      `json:"parent,omitempty"`    // previous report file, for regression diffing
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GoVersion  string      `json:"go_version,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Failed     []string    `json:"failed,omitempty"` // packages with FAIL lines
}

// benchLine matches one result row:
//
//	BenchmarkInvoke/n=100-8   9637   121445 ns/op   52528 B/op   1155 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var (
	mbLine     = regexp.MustCompile(`([0-9.]+) MB/s`)
	bytesLine  = regexp.MustCompile(`(\d+) B/op`)
	allocsLine = regexp.MustCompile(`(\d+) allocs/op`)
)

// Parse reads `go test -bench` output and collects the report skeleton
// (everything but the Generated stamp).
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			f := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, "--- FAIL:"), "FAIL"))
			if i := strings.IndexByte(f, ' '); i > 0 {
				f = f[:i]
			}
			if f == "" {
				f = pkg
			}
			rep.Failed = append(rep.Failed, f)
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			b := Benchmark{Name: m[1], Package: pkg}
			if m[2] != "" {
				b.Procs, _ = strconv.Atoi(m[2])
			}
			var err error
			if b.Runs, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("benchfmt: bad iteration count in %q", line)
			}
			if b.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchfmt: bad ns/op in %q", line)
			}
			rest := m[5]
			if mm := mbLine.FindStringSubmatch(rest); mm != nil {
				b.MBPerSec, _ = strconv.ParseFloat(mm[1], 64)
			}
			if mm := bytesLine.FindStringSubmatch(rest); mm != nil {
				b.BytesPerOp, _ = strconv.ParseInt(mm[1], 10, 64)
			}
			if mm := allocsLine.FindStringSubmatch(rest); mm != nil {
				b.AllocsPerOp, _ = strconv.ParseInt(mm[1], 10, 64)
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Benchmarks = foldRepeats(rep.Benchmarks)
	return rep, nil
}

// foldRepeats collapses repeated runs of one benchmark (go test -count=N)
// into the fastest run, keeping first-appearance order. Minimum ns/op is the
// standard low-noise estimator on shared machines: every slowdown is
// interference, so the best observation is the closest to the code's true
// cost — and it is what keeps the -diff gate from tripping on scheduler
// noise.
func foldRepeats(in []Benchmark) []Benchmark {
	best := make(map[string]int, len(in))
	out := in[:0]
	for _, b := range in {
		k := b.Package + "|" + b.Name
		if i, ok := best[k]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i] = b
			}
			continue
		}
		best[k] = len(out)
		out = append(out, b)
	}
	return out
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	goVersion := flag.String("go", "", "go version string to record (default: this binary's)")
	sha := flag.String("sha", "", "git commit SHA to record in the report")
	parent := flag.String("parent", "", "previous report file to record, linking reports into a chain")
	diff := flag.String("diff", "", "regression-gate mode: diff this report against its parent instead of parsing stdin")
	against := flag.String("against", "", "baseline report for -diff (default: the report's recorded parent)")
	threshold := flag.Float64("threshold", 20, "ns/op growth percentage that fails the -diff gate")
	keys := flag.String("keys", DefaultDiffKeys, "regexp selecting the benchmarks the -diff gate watches")
	faster := flag.String("faster", "", `pair-gate mode: "fast<slow" name-prefix pair that must hold at every suffix of the report given as the positional argument`)
	flag.Parse()

	if *faster != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchfmt: -faster needs exactly one report path argument")
			os.Exit(1)
		}
		os.Exit(runFaster(flag.Arg(0), *faster))
	}
	if *diff != "" {
		os.Exit(runDiff(*diff, *against, *keys, *threshold))
	}

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark results in input")
		os.Exit(1)
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	if *goVersion != "" {
		rep.GoVersion = *goVersion
	}
	rep.GitSHA = *sha
	rep.Parent = *parent

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchfmt: %d benchmark failure(s): %s\n",
			len(rep.Failed), strings.Join(rep.Failed, ", "))
		os.Exit(1)
	}
}
