// Command pemsd runs a Local Environment Resource Manager node (the
// distributed boxes of the paper's Figure 1): it hosts simulated devices,
// serves the Serena wire protocol over TCP and prints its address so a
// core PEMS (cmd/serena with -connect) can reach it.
//
// Usage:
//
//	pemsd -node sensors -listen 127.0.0.1:7070 -sensors 4 -cameras 0
//	pemsd -node actuators -listen 127.0.0.1:7071 -messengers email,jabber
//	pemsd -node sensors -sensors 4 -debug 127.0.0.1:8090
//	pemsd -node core -sensors 4 -data-dir /var/lib/serena -init env.ddl
//
// With -debug, the node exposes the same observability surface as the core
// (/metrics, /debug/serena, /debug/vars, /debug/trace, /debug/pprof/*), so
// a remote invocation can be followed server-side: the wire server resumes
// the client's trace and its spans land in this node's /debug/trace.
//
// With -data-dir, the node additionally runs an embedded durable PEMS core
// over its hosted devices: environment mutations are write-ahead logged and
// checkpointed in the directory, the continuous clock ticks in real time
// (-tick), and a restart recovers the environment — continuous queries,
// window state and the active-invocation ledger included. On SIGTERM the
// node drains the in-flight tick, writes a final checkpoint and exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/obs"
	"serena/internal/pems"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
	"serena/internal/wal"
	"serena/internal/wire"
)

func main() {
	node := flag.String("node", "node", "node name")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	batchParallel := flag.Int("batch-parallel", wire.DefaultServerBatchParallelism, "concurrent invocations per wire batch frame (1 = sequential)")
	maxInFlight := flag.Int("max-inflight", 0, "cap concurrent requests across all connections; excess rejected as overloaded (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 0, "per-connection idle read deadline; silent clients are dropped (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
	sensors := flag.Int("sensors", 0, "number of simulated temperature sensors")
	cameras := flag.Int("cameras", 0, "number of simulated cameras")
	messengers := flag.String("messengers", "", "comma-separated messenger refs (e.g. email,jabber)")
	base := flag.Float64("base", 20, "base temperature for sensors")
	location := flag.String("location", "lab", "location/area for hosted devices")
	debugAddr := flag.String("debug", "", "HTTP observability listen address (empty = disabled)")
	dataDir := flag.String("data-dir", "", "run an embedded durable PEMS core: WAL + checkpoints in this directory")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always|interval|off (with -data-dir)")
	ckptEvery := flag.Int("checkpoint-interval", 0, "ticks between automatic checkpoints (0 = default, with -data-dir)")
	tick := flag.Duration("tick", time.Second, "continuous clock interval of the embedded core (with -data-dir)")
	initScript := flag.String("init", "", "DDL script executed once, on a fresh data dir (with -data-dir)")
	telemetry := flag.Bool("telemetry", true, "feed the embedded core's sys$ system relations and health states (with -data-dir)")
	poll := flag.String("poll", "", "comma-separated name=prototype pairs: poll streams over passive input-free prototypes (with -data-dir)")
	join := flag.String("join", "", "comma-separated wire addresses of peer pemsd nodes to federate with")
	lease := flag.Duration("lease", 30*time.Second, "discovery lease: peers silent this long are masked out (heartbeats go every lease/4)")
	svcPrefix := flag.String("svc-prefix", "", "service reference prefix for hosted devices (default: the node name; set equal on two nodes to replicate references)")
	outbox := flag.String("outbox", "", "append every accepted messenger delivery to this file (the chaos harness's side-effect record)")
	verbose := flag.Bool("v", false, "debug-level logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	// The federation bus: wire v4 announce frames between pemsd peers. It is
	// always constructed (cheap and silent without peers) so any node can be
	// joined by others; outbound links come from -join and from relayed
	// Alive frames.
	bus := discovery.NewWireBus(*node, discovery.WithBusLease(*lease))

	var core *pems.PEMS
	reg := service.NewRegistry()
	if *dataDir != "" {
		// The embedded core shares one registry with the wire server, so
		// hosted devices are both remotely invocable and locally queryable.
		// The discovery manager turns peer announcements into provider
		// registrations in that same registry.
		core = pems.New(pems.WithDiscovery(bus, discovery.WithLease(*lease)))
		reg = core.Registry()
	}
	for _, p := range device.ScenarioPrototypes() {
		if err := reg.RegisterPrototype(p); err != nil {
			fatal(logger, err)
		}
	}
	prefix := *svcPrefix
	if prefix == "" {
		prefix = *node
	}
	hosted := 0
	for i := 0; i < *sensors; i++ {
		ref := fmt.Sprintf("%s-sensor%02d", prefix, i)
		s := device.NewSensor(ref, *location, *base, device.WithDailyCycle(3, 1440), device.WithNoise(0.2))
		if err := reg.Register(s); err != nil {
			fatal(logger, err)
		}
		hosted++
	}
	for i := 0; i < *cameras; i++ {
		ref := fmt.Sprintf("%s-camera%02d", prefix, i)
		if err := reg.Register(device.NewCamera(ref, *location, 7, 0.2)); err != nil {
			fatal(logger, err)
		}
		hosted++
	}
	if *messengers != "" {
		for _, ref := range strings.Split(*messengers, ",") {
			ref = strings.TrimSpace(ref)
			if ref == "" {
				continue
			}
			m := device.NewMessenger(ref, ref)
			if *outbox != "" {
				m.SetOutboxFile(*outbox)
			}
			if err := reg.Register(m); err != nil {
				fatal(logger, err)
			}
			hosted++
		}
	}
	if hosted == 0 && core == nil {
		logger.Error("pemsd: nothing to host; pass -sensors, -cameras or -messengers")
		os.Exit(1)
	}
	bus.SetCatalogFromRegistry(reg)

	if core != nil {
		if err := startCore(logger, core, *dataDir, *fsyncPolicy, *ckptEvery, *tick, *initScript, *telemetry, *poll); err != nil {
			fatal(logger, err)
		}
	}

	srv := wire.NewServer(*node, reg)
	srv.SetBatchParallelism(*batchParallel)
	srv.SetMaxInFlight(*maxInFlight)
	srv.SetReadTimeout(*readTimeout)
	srv.SetWriteTimeout(*writeTimeout)
	bus.Serve(srv)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(logger, err)
	}
	bus.SetAdvertiseAddr(addr)
	if *join != "" {
		var peers []string
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				peers = append(peers, a)
			}
		}
		bus.Join(peers...)
		logger.Info("pemsd: federating", "join", peers, "lease", *lease)
	}
	bus.Start()
	bus.AnnounceSelfNow()
	logger.Info("pemsd: serving", "node", *node, "services", hosted, "addr", addr)
	fmt.Printf("pemsd: node %q serving %d service(s) on %s\n", *node, hosted, addr)
	fmt.Printf("pemsd: connect from the core with: serena -connect %s\n", addr)

	if *debugAddr != "" {
		extra := map[string]http.Handler{
			"/debug/trace": trace.Handler(trace.Default),
		}
		if core != nil {
			c := core
			extra["/debug/health"] = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(c.HealthReport())
			})
			extra["/debug/peers"] = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(c.PeersReport())
			})
		}
		mux := obs.DebugMux(func(w io.Writer) { writeStatus(w, *node, addr, reg) }, extra)
		// Listen before serving so ":0" resolves to the real port in the
		// printed URL — harnesses parse it to find /debug/peers.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(logger, err)
		}
		hsrv := &http.Server{Handler: mux}
		go func() {
			if err := hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("pemsd: debug endpoint failed", "err", err.Error())
			}
		}()
		logger.Info("pemsd: observability endpoint", "addr", ln.Addr().String())
		fmt.Printf("pemsd: observability on http://%s/debug/serena\n", ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("pemsd: shutting down")
	// Graceful drain announces a Bye FIRST: peers mask this node (and fail
	// its references over to surviving replicas) before we stop answering,
	// instead of waiting out the lease.
	bus.Announce(discovery.Announcement{Kind: discovery.Bye, Node: *node, Addr: addr})
	if core != nil {
		// Close stops the ticker — waiting out the in-flight tick and its β
		// invocations (bounded by the configured invocation deadline) — then
		// writes a final checkpoint and closes the WAL, so the next start
		// recovers without replaying any log.
		core.Close()
		logger.Info("pemsd: final checkpoint written", "dir", *dataDir)
	}
	bus.Stop()
	_ = srv.Close()
}

// startCore enables durability on the embedded PEMS, recovers the
// environment from the data directory, runs the init script on a fresh
// directory, and starts the real-time clock.
func startCore(logger *slog.Logger, core *pems.PEMS, dataDir, fsyncPolicy string, ckptEvery int, tick time.Duration, initScript string, telemetry bool, poll string) error {
	pol, err := wal.ParseSyncPolicy(fsyncPolicy)
	if err != nil {
		return err
	}
	if err := core.EnableDurability(dataDir, wal.Options{Fsync: pol, CheckpointEvery: ckptEvery}); err != nil {
		return err
	}
	// Before Recover: WAL-logged queries over sys$ relations or poll
	// streams need those relations to exist to re-register.
	if telemetry {
		if _, err := core.EnableSelfTelemetry(cq.TelemetryOptions{}); err != nil {
			return err
		}
	}
	if poll != "" {
		for _, spec := range strings.Split(poll, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			name, protoName, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("pemsd: -poll %q: want name=prototype", spec)
			}
			if _, err := core.AddPollStream(name, protoName, "service", nil,
				func(string) []value.Value { return nil }); err != nil {
				return fmt.Errorf("pemsd: -poll %s: %w", spec, err)
			}
			logger.Info("pemsd: poll stream", "stream", name, "prototype", protoName)
		}
	}
	info, err := core.Recover()
	if err != nil {
		return err
	}
	logger.Info("pemsd: recovered", "dir", dataDir, "fresh", info.Fresh,
		"checkpoint_at", int64(info.CheckpointAt), "segments", info.Segments,
		"records", info.Records, "ticks", info.Ticks, "orphans", info.Orphans,
		"truncated_bytes", info.TruncatedBytes)
	if initScript != "" {
		if info.Fresh {
			src, err := os.ReadFile(initScript)
			if err != nil {
				return err
			}
			if err := core.ExecuteDDL(string(src)); err != nil {
				return fmt.Errorf("init script %s: %w", initScript, err)
			}
			logger.Info("pemsd: init script executed", "script", initScript)
		} else {
			logger.Info("pemsd: init script skipped (environment recovered)", "script", initScript)
		}
	}
	return core.StartTicker(tick, func(err error) {
		logger.Error("pemsd: tick failed", "err", err.Error())
	})
}

// writeStatus renders this node's /debug/serena page: hosted services and
// the metrics snapshot.
func writeStatus(w io.Writer, node, addr string, reg *service.Registry) {
	fmt.Fprintf(w, "serena Local ERM (pemsd)\n========================\n\nnode: %s\nwire: %s\n", node, addr)
	refs := reg.Refs()
	sort.Strings(refs)
	fmt.Fprintf(w, "\nhosted services (%d):\n", len(refs))
	for _, ref := range refs {
		svc, err := reg.Lookup(ref)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-24s %s\n", ref, strings.Join(svc.PrototypeNames(), ", "))
	}
	fmt.Fprintf(w, "\nmetrics:\n%s", obs.Default.Snapshot().Render())
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("pemsd: fatal", "err", err.Error())
	os.Exit(1)
}
