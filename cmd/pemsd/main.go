// Command pemsd runs a Local Environment Resource Manager node (the
// distributed boxes of the paper's Figure 1): it hosts simulated devices,
// serves the Serena wire protocol over TCP and prints its address so a
// core PEMS (cmd/serena with -connect) can reach it.
//
// Usage:
//
//	pemsd -node sensors -listen 127.0.0.1:7070 -sensors 4 -cameras 0
//	pemsd -node actuators -listen 127.0.0.1:7071 -messengers email,jabber
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"serena/internal/device"
	"serena/internal/service"
	"serena/internal/wire"
)

func main() {
	node := flag.String("node", "node", "node name")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	sensors := flag.Int("sensors", 0, "number of simulated temperature sensors")
	cameras := flag.Int("cameras", 0, "number of simulated cameras")
	messengers := flag.String("messengers", "", "comma-separated messenger refs (e.g. email,jabber)")
	base := flag.Float64("base", 20, "base temperature for sensors")
	location := flag.String("location", "lab", "location/area for hosted devices")
	flag.Parse()

	reg := service.NewRegistry()
	for _, p := range device.ScenarioPrototypes() {
		if err := reg.RegisterPrototype(p); err != nil {
			log.Fatalf("pemsd: %v", err)
		}
	}
	hosted := 0
	for i := 0; i < *sensors; i++ {
		ref := fmt.Sprintf("%s-sensor%02d", *node, i)
		s := device.NewSensor(ref, *location, *base, device.WithDailyCycle(3, 1440), device.WithNoise(0.2))
		if err := reg.Register(s); err != nil {
			log.Fatalf("pemsd: %v", err)
		}
		hosted++
	}
	for i := 0; i < *cameras; i++ {
		ref := fmt.Sprintf("%s-camera%02d", *node, i)
		if err := reg.Register(device.NewCamera(ref, *location, 7, 0.2)); err != nil {
			log.Fatalf("pemsd: %v", err)
		}
		hosted++
	}
	if *messengers != "" {
		for _, ref := range strings.Split(*messengers, ",") {
			ref = strings.TrimSpace(ref)
			if ref == "" {
				continue
			}
			if err := reg.Register(device.NewMessenger(ref, ref)); err != nil {
				log.Fatalf("pemsd: %v", err)
			}
			hosted++
		}
	}
	if hosted == 0 {
		log.Fatal("pemsd: nothing to host; pass -sensors, -cameras or -messengers")
	}

	srv := wire.NewServer(*node, reg)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("pemsd: %v", err)
	}
	fmt.Printf("pemsd: node %q serving %d service(s) on %s\n", *node, hosted, addr)
	fmt.Printf("pemsd: connect from the core with: serena -connect %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pemsd: shutting down")
	_ = srv.Close()
}
