// Command pemsd runs a Local Environment Resource Manager node (the
// distributed boxes of the paper's Figure 1): it hosts simulated devices,
// serves the Serena wire protocol over TCP and prints its address so a
// core PEMS (cmd/serena with -connect) can reach it.
//
// Usage:
//
//	pemsd -node sensors -listen 127.0.0.1:7070 -sensors 4 -cameras 0
//	pemsd -node actuators -listen 127.0.0.1:7071 -messengers email,jabber
//	pemsd -node sensors -sensors 4 -debug 127.0.0.1:8090
//
// With -debug, the node exposes the same observability surface as the core
// (/metrics, /debug/serena, /debug/vars, /debug/trace, /debug/pprof/*), so
// a remote invocation can be followed server-side: the wire server resumes
// the client's trace and its spans land in this node's /debug/trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"serena/internal/device"
	"serena/internal/obs"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/wire"
)

func main() {
	node := flag.String("node", "node", "node name")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	sensors := flag.Int("sensors", 0, "number of simulated temperature sensors")
	cameras := flag.Int("cameras", 0, "number of simulated cameras")
	messengers := flag.String("messengers", "", "comma-separated messenger refs (e.g. email,jabber)")
	base := flag.Float64("base", 20, "base temperature for sensors")
	location := flag.String("location", "lab", "location/area for hosted devices")
	debugAddr := flag.String("debug", "", "HTTP observability listen address (empty = disabled)")
	verbose := flag.Bool("v", false, "debug-level logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	reg := service.NewRegistry()
	for _, p := range device.ScenarioPrototypes() {
		if err := reg.RegisterPrototype(p); err != nil {
			fatal(logger, err)
		}
	}
	hosted := 0
	for i := 0; i < *sensors; i++ {
		ref := fmt.Sprintf("%s-sensor%02d", *node, i)
		s := device.NewSensor(ref, *location, *base, device.WithDailyCycle(3, 1440), device.WithNoise(0.2))
		if err := reg.Register(s); err != nil {
			fatal(logger, err)
		}
		hosted++
	}
	for i := 0; i < *cameras; i++ {
		ref := fmt.Sprintf("%s-camera%02d", *node, i)
		if err := reg.Register(device.NewCamera(ref, *location, 7, 0.2)); err != nil {
			fatal(logger, err)
		}
		hosted++
	}
	if *messengers != "" {
		for _, ref := range strings.Split(*messengers, ",") {
			ref = strings.TrimSpace(ref)
			if ref == "" {
				continue
			}
			if err := reg.Register(device.NewMessenger(ref, ref)); err != nil {
				fatal(logger, err)
			}
			hosted++
		}
	}
	if hosted == 0 {
		logger.Error("pemsd: nothing to host; pass -sensors, -cameras or -messengers")
		os.Exit(1)
	}

	srv := wire.NewServer(*node, reg)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("pemsd: serving", "node", *node, "services", hosted, "addr", addr)
	fmt.Printf("pemsd: node %q serving %d service(s) on %s\n", *node, hosted, addr)
	fmt.Printf("pemsd: connect from the core with: serena -connect %s\n", addr)

	if *debugAddr != "" {
		mux := obs.DebugMux(func(w io.Writer) { writeStatus(w, *node, addr, reg) }, map[string]http.Handler{
			"/debug/trace": trace.Handler(trace.Default),
		})
		hsrv := &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pemsd: debug endpoint failed", "err", err.Error())
			}
		}()
		logger.Info("pemsd: observability endpoint", "addr", *debugAddr)
		fmt.Printf("pemsd: observability on http://%s/debug/serena\n", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("pemsd: shutting down")
	_ = srv.Close()
}

// writeStatus renders this node's /debug/serena page: hosted services and
// the metrics snapshot.
func writeStatus(w io.Writer, node, addr string, reg *service.Registry) {
	fmt.Fprintf(w, "serena Local ERM (pemsd)\n========================\n\nnode: %s\nwire: %s\n", node, addr)
	refs := reg.Refs()
	sort.Strings(refs)
	fmt.Fprintf(w, "\nhosted services (%d):\n", len(refs))
	for _, ref := range refs {
		svc, err := reg.Lookup(ref)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-24s %s\n", ref, strings.Join(svc.PrototypeNames(), ", "))
	}
	fmt.Fprintf(w, "\nmetrics:\n%s", obs.Default.Snapshot().Render())
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("pemsd: fatal", "err", err.Error())
	os.Exit(1)
}
