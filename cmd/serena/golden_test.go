package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// durRe matches rendered wall-clock durations (EXPLAIN ANALYZE timings),
// the only non-deterministic part of a scripted session: the demo devices
// are deterministic in (service, instant).
var durRe = regexp.MustCompile(`(?:\d+(?:\.\d+)?(?:ns|µs|us|ms|s))+`)

// scrub normalizes run-dependent output so transcripts are reproducible.
func scrub(s string) string {
	return durRe.ReplaceAllString(s, "<dur>")
}

// TestShellGolden runs a scripted shell session — DDL with REGISTER QUERY …
// ON ERROR, one-shot SQL and SAL with β invocations, EXPLAIN ANALYZE,
// .explain, .stats — and compares the transcript against
// testdata/shell.golden. Regenerate with `go test ./cmd/serena -update`.
func TestShellGolden(t *testing.T) {
	p := demoPEMS(t)
	script := strings.Join([]string{
		`REGISTER QUERY hot ON ERROR SKIP AS select[temperature > 28.0](invoke[getTemperature](sensors));`,
		`.queries`,
		`SELECT name, address FROM contacts WHERE name <> "Carla"`,
		`invoke[checkPhoto](select[area = "office"](cameras))`,
		`.explain select[area = "office"](invoke[checkPhoto](cameras))`,
		`EXPLAIN select[area = "office"](invoke[checkPhoto](cameras))`,
		`EXPLAIN ANALYZE project[photo](invoke[takePhoto](select[quality >= 5](invoke[checkPhoto](select[area = "office"](cameras)))))`,
		`.tick 2`,
		`.stats`,
		`.onerror hot NULL`,
		`.stats hot`,
		`.quit`,
	}, "\n") + "\n"

	var buf bytes.Buffer
	repl(p, strings.NewReader(script), &buf)
	got := scrub(buf.String())

	golden := filepath.Join("testdata", "shell.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/serena -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("shell transcript drifted from %s (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
