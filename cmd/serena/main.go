// Command serena is an interactive shell over a PEMS instance: Serena DDL
// statements declare the environment, SAL expressions run as one-shot
// queries, and dot-commands manage continuous queries and the discrete
// clock. Remote pemsd nodes can be attached with -connect.
//
// Usage:
//
//	serena -demo                      # load the paper's scenario and explore
//	serena -script env.ddl            # run a DDL script, then go interactive
//	serena -connect 127.0.0.1:7070    # attach a pemsd node's services
//
// Inside the shell:
//
//	PROTOTYPE …; EXTENDED RELATION …; INSERT INTO …;   (DDL)
//	project[name](contacts)                            (one-shot query)
//	.register alerts invoke[sendMessage](…)            (continuous query)
//	.tick 5        .show contacts      .queries
//	.services      .schema contacts    .help           .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/obs"
	"serena/internal/pems"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
	"serena/internal/wal"
	"serena/internal/wire"
)

// lastRecovery holds the startup recovery summary for the .recovery
// dot-command (nil when -data-dir is not in use).
var lastRecovery *wal.Info

func main() {
	demo := flag.Bool("demo", false, "load the paper's temperature-surveillance scenario")
	script := flag.String("script", "", "DDL script to execute before going interactive")
	connect := flag.String("connect", "", "comma-separated pemsd addresses to attach")
	invokeTimeout := flag.Duration("invoke-timeout", 0, "deadline per service invocation (0 = none)")
	parallel := flag.Int("parallel", 1, "invocation parallelism per β operator (1 = sequential)")
	queryParallel := flag.Int("query-parallel", 1, "continuous queries evaluated concurrently per tick (1 = sequential)")
	batchSize := flag.Int("batch-size", 0, "β batch-planner dispatch size (0 = default, negative disables batching)")
	retries := flag.Int("retries", 1, "max attempts per passive invocation (1 = no retry)")
	retryBase := flag.Duration("retry-base", 10*time.Millisecond, "base backoff between retries")
	breakers := flag.Bool("breakers", false, "enable per-service circuit breakers")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive failures before a breaker opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-state cooldown before a half-open probe")
	tickBudget := flag.Duration("tick-budget", 0, "tick duration budget; longer ticks count as overruns (0 = none)")
	coalesce := flag.Bool("coalesce", false, "after a tick overrun, skip passive-only queries one instant (never queries feeding actions)")
	maxInFlight := flag.Int("max-inflight", 0, "cap concurrent service invocations; excess fails fast as overloaded (0 = unlimited)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/serena on this address (e.g. 127.0.0.1:8077)")
	traceSample := flag.Int64("trace-sample", trace.DefaultSampleEvery, "trace one in N ticks/evaluations (0 disables tracing)")
	dataDir := flag.String("data-dir", "", "enable durability: WAL + checkpoints in this directory")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always|interval|off (with -data-dir)")
	ckptEvery := flag.Int("checkpoint-interval", 0, "ticks between automatic checkpoints (0 = default, with -data-dir)")
	telemetry := flag.Bool("telemetry", true, "feed the sys$metrics/sys$health/sys$streams system relations and the health state machine")
	telemetryInterval := flag.Int("telemetry-interval", 1, "instants between telemetry scrapes")
	flag.Parse()

	p := pems.New()
	defer p.Close()
	p.SetExplainOutput(os.Stdout)
	p.SetTraceSampling(*traceSample)

	if *metricsAddr != "" {
		bound, err := p.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("serena: metrics: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics (debug: /debug/serena, traces: /debug/trace)\n", bound)
	}

	if *invokeTimeout > 0 {
		p.SetInvocationTimeout(*invokeTimeout)
	}
	if *parallel > 1 {
		p.SetInvocationParallelism(*parallel)
	}
	if *queryParallel > 1 {
		p.SetQueryParallelism(*queryParallel)
	}
	if *batchSize != 0 {
		p.SetInvocationBatchSize(*batchSize)
	}
	if *tickBudget > 0 {
		p.SetTickBudget(*tickBudget)
	}
	if *coalesce {
		p.SetOverloadCoalescing(true)
	}
	if *maxInFlight > 0 {
		p.SetAdmissionLimit(*maxInFlight, 0, 0)
	}
	if *retries > 1 {
		rp := resilience.DefaultRetry()
		rp.MaxAttempts = *retries
		rp.BaseDelay = *retryBase
		p.SetRetryPolicy(rp)
	}
	if *breakers {
		p.EnableBreakers(resilience.BreakerPolicy{
			FailureThreshold: *breakerFailures,
			Cooldown:         *breakerCooldown,
		})
	}

	// Self-telemetry must precede Recover: a WAL-logged query over a sys$
	// relation can only re-register if the relation already exists.
	if *telemetry {
		if _, err := p.EnableSelfTelemetry(cq.TelemetryOptions{Interval: service.Instant(*telemetryInterval)}); err != nil {
			log.Fatalf("serena: telemetry: %v", err)
		}
	}

	if *dataDir != "" {
		pol, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("serena: %v", err)
		}
		if err := p.EnableDurability(*dataDir, wal.Options{Fsync: pol, CheckpointEvery: *ckptEvery}); err != nil {
			log.Fatalf("serena: durability: %v", err)
		}
	}

	if err := p.ExecuteDDL(prototypesDDL); err != nil {
		log.Fatalf("serena: %v", err)
	}
	if *connect != "" {
		for _, addr := range strings.Split(*connect, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := attach(p, addr); err != nil {
				log.Fatalf("serena: %v", err)
			}
		}
	}
	// Code registrations (devices, poll streams) must precede Recover: live
	// implementations win over checkpoint stubs, and restored relation state
	// needs its relations to exist.
	if *demo {
		if err := loadDemoServices(p); err != nil {
			log.Fatalf("serena: demo: %v", err)
		}
	}
	fresh := true
	if *dataDir != "" {
		info, err := p.Recover()
		if err != nil {
			log.Fatalf("serena: recovery: %v", err)
		}
		lastRecovery = &info
		fresh = info.Fresh
		if !fresh {
			fmt.Printf("recovered environment from %s: checkpoint at instant %d, %d record(s) replayed over %d tick(s), %d orphan invocation(s)\n",
				*dataDir, info.CheckpointAt, info.Records, info.Ticks, info.Orphans)
		}
	}
	if *demo {
		if fresh {
			if err := p.ExecuteDDL(demoDDL); err != nil {
				log.Fatalf("serena: demo: %v", err)
			}
			fmt.Println("demo scenario loaded: relations contacts, cameras, surveillance, sensors; stream temperatures")
			fmt.Println(`try: invoke[getTemperature](select[location = "office"](sensors))`)
		} else {
			fmt.Println("demo devices re-registered; scenario tables restored from the data dir")
		}
	}
	if *script != "" {
		if fresh {
			src, err := os.ReadFile(*script)
			if err != nil {
				log.Fatalf("serena: %v", err)
			}
			if err := p.ExecuteDDL(string(src)); err != nil {
				log.Fatalf("serena: script: %v", err)
			}
			fmt.Printf("executed %s\n", *script)
		} else {
			fmt.Printf("skipped %s (environment recovered from the data dir)\n", *script)
		}
	}

	repl(p, os.Stdin, os.Stdout)
}

// attach dials a pemsd node and registers its services centrally (manual
// discovery for cross-process deployments without a shared bus).
func attach(p *pems.PEMS, addr string) error {
	client, err := wire.Dial(addr, 3*time.Second)
	if err != nil {
		return err
	}
	node, infos, err := client.Describe()
	if err != nil {
		return err
	}
	n := 0
	for _, info := range infos {
		if err := p.Registry().Register(wire.NewRemote(client, info)); err != nil {
			fmt.Printf("  skipping %s: %v\n", info.Ref, err)
			continue
		}
		n++
	}
	fmt.Printf("attached node %q (%s): %d service(s)\n", node, addr, n)
	return nil
}

const prototypesDDL = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );
`

const demoDDL = `
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);
EXTENDED RELATION sensors (
  sensor SERVICE, location STRING, temperature REAL VIRTUAL
) USING BINDING PATTERNS ( getTemperature[sensor] );
EXTENDED RELATION surveillance ( name STRING, location STRING );
INSERT INTO contacts VALUES
  ("Nicolas", "nicolas@elysee.fr", email),
  ("Carla", "carla@elysee.fr", email),
  ("Francois", "francois@im.gouv.fr", jabber);
INSERT INTO cameras VALUES (camera01, "corridor"), (camera02, "office"), (webcam07, "roof");
INSERT INTO sensors VALUES
  (sensor01, "corridor"), (sensor06, "office"), (sensor07, "office"), (sensor22, "roof");
INSERT INTO surveillance VALUES ("Carla", "office"), ("Nicolas", "corridor"), ("Francois", "roof");
`

// loadDemoServices registers the paper's nine devices and the temperatures
// poll stream — the code half of the demo, re-run on every start (service
// implementations and poll streams live in code, not in checkpoints). The
// DDL half (demoDDL) runs only on a fresh environment.
func loadDemoServices(p *pems.PEMS) error {
	sensors := map[string]*device.Sensor{}
	for _, s := range []struct {
		ref, loc string
		base     float64
	}{
		{"sensor01", "corridor", 19}, {"sensor06", "office", 21},
		{"sensor07", "office", 22}, {"sensor22", "roof", 15},
	} {
		d := device.NewSensor(s.ref, s.loc, s.base, device.WithDailyCycle(2, 1440), device.WithNoise(0.1))
		sensors[s.ref] = d
		if err := p.Registry().Register(d); err != nil {
			return err
		}
	}
	for _, m := range []string{"email", "jabber"} {
		if err := p.Registry().Register(device.NewMessenger(m, m)); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		ref, area string
		q         int64
	}{{"camera01", "corridor", 8}, {"camera02", "office", 7}, {"webcam07", "roof", 5}} {
		if err := p.Registry().Register(device.NewCamera(c.ref, c.area, c.q, 0.2)); err != nil {
			return err
		}
	}
	_, err := p.AddPollStream("temperatures", "getTemperature", "sensor",
		[]schema.Attribute{{Name: "location", Type: value.String}},
		func(ref string) []value.Value {
			if s, ok := sensors[ref]; ok {
				return []value.Value{value.NewString(s.Location())}
			}
			return []value.Value{value.NewString("unknown")}
		})
	return err
}

var ddlKeywords = []string{"PROTOTYPE", "SERVICE", "EXTENDED", "STREAM", "INSERT", "DELETE", "DROP", "REGISTER", "UNREGISTER"}

func looksLikeDDL(line string) bool {
	up := strings.ToUpper(strings.TrimSpace(line))
	for _, kw := range ddlKeywords {
		if strings.HasPrefix(up, kw+" ") || up == kw {
			return true
		}
	}
	return false
}

func repl(p *pems.PEMS, r io.Reader, out io.Writer) {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(out, "serena shell — .help for commands, .quit to exit")
	var pending strings.Builder
	prompt := func() {
		if pending.Len() > 0 {
			fmt.Fprint(out, "   ...> ")
		} else {
			fmt.Fprintf(out, "serena[%d]> ", p.Now())
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		if pending.Len() == 0 && strings.TrimSpace(line) == "" {
			prompt()
			continue
		}
		if pending.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), ".") {
			if !command(p, strings.TrimSpace(line), out) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		text := pending.String()
		// DDL and queries are executed once the statement looks complete
		// (ends with ';' for DDL; queries are single-line by convention).
		if looksLikeDDL(text) {
			if strings.Contains(text, ";") {
				pending.Reset()
				if err := p.ExecuteDDL(text); err != nil {
					fmt.Fprintln(out, "error:", err)
				} else {
					fmt.Fprintln(out, "ok")
				}
			}
			prompt()
			continue
		}
		pending.Reset()
		runQuery(p, strings.TrimSpace(text), out)
		prompt()
	}
}

// runQuery dispatches a query line: an optional EXPLAIN [ANALYZE] prefix,
// then Serena SQL or SAL by shape.
func runQuery(p *pems.PEMS, src string, out io.Writer) {
	body, explain, analyze := pems.StripExplain(src)
	switch {
	case analyze:
		rep, err := p.ExplainAnalyze(body)
		if err != nil {
			if rep != nil && rep.Plan != "" {
				fmt.Fprint(out, rep.Plan)
			}
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprint(out, rep.Plan)
		printResult(rep.Result, out)
	case explain:
		ex, err := p.Explain(body)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		printExplanation(ex, out)
	case pems.LooksLikeSQL(body):
		runSQL(p, body, out)
	default:
		runOneShot(p, body, out)
	}
}

func printExplanation(ex *pems.Explanation, out io.Writer) {
	fmt.Fprintln(out, "original: ", ex.Original)
	for _, st := range ex.Steps {
		fmt.Fprintf(out, "  %-28s → %s\n", st.Rule, st.Result)
	}
	fmt.Fprintln(out, "optimized:", ex.Optimized)
	fmt.Fprintf(out, "estimated cost: %.0f → %.0f\n", ex.CostBefore, ex.CostAfter)
}

// command executes a dot-command; it returns false on .quit.
func command(p *pems.PEMS, line string, out io.Writer) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Fprint(out, `commands:
  <DDL statement>;                 execute Serena DDL
  <SAL expression>                 evaluate a one-shot algebra query
  SELECT ...                       evaluate a one-shot Serena SQL query
  EXPLAIN <query>                  show the optimized plan and rewrite steps
  EXPLAIN ANALYZE <query>          run the query, show per-operator trace
  .register <name> <SAL>          register a continuous query (optimized)
  .unregister <name>              remove a continuous query
  .tick [n]                       advance the clock n instants (default 1)
  .show <relation>                print a relation's current contents
  .schema <relation>              print a relation's DDL
  .queries                        list continuous queries
  .services                       list discovered services
  .parallel <n>                   set invocation parallelism (default 1)
  .qparallel <n>                  set per-tick query parallelism (default 1)
  .batch <n>                      set β batch size (0 = default, -1 disables)
  .onerror <name> FAIL|SKIP|NULL  set a query's degradation policy
  .errors <name>                  show a query's recorded invocation failures
  .breakers                       show circuit-breaker states (-breakers)
  .explain <query>                show the optimized plan and rewrite steps
  .stats [query]                  show continuous-query invocation statistics
  .trace <query>                  run a one-shot query with tracing forced, show span tree
  .lineage <query|""> [key]       list retained invocations feeding a query / touching a tuple
  .sample <n>                     trace one in n ticks/evaluations (0 = off)
  .overload                       show tick budget, admission and ingest-buffer posture
  .health                         show per-query health states and stream dead-man posture
  .peers                          show federation membership, lease ages and node breakers
  .cadence <stream> <n>           dead-man: flag <stream> STALLED after n silent instants (0 = off)
  .poll <name> <proto> <svcAttr>  create a poll stream over a passive input-free prototype
  .metrics                        dump the process-wide metrics registry
  .dump                           print the environment as re-executable DDL
  .checkpoint                     force a durable snapshot now (-data-dir)
  .recovery                       show the startup recovery summary (-data-dir)
  .quit
`)
	case ".tick":
		n := 1
		if len(fields) > 1 {
			if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
				n = v
			}
		}
		for i := 0; i < n; i++ {
			if _, err := p.Tick(); err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
		}
		fmt.Fprintf(out, "clock at instant %d\n", p.Now())
	case ".register":
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: .register <name> <SAL>")
			break
		}
		name := fields[1]
		src := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, ".register"), " "+name))
		var q *cq.Query
		var err error
		if pems.LooksLikeSQL(src) {
			q, err = p.RegisterQuerySQL(name, src, true)
		} else {
			q, err = p.RegisterQuery(name, src, true)
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "registered %q: %s\n", name, q.Plan())
	case ".unregister":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .unregister <name>")
			break
		}
		if err := p.UnregisterQuery(fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case ".show":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .show <relation>")
			break
		}
		at := p.Now()
		if at < 0 {
			at = 0
		}
		rel, err := p.Env(at).Relation(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprint(out, rel.Table())
		fmt.Fprintf(out, "(%d tuple(s))\n", rel.Len())
	case ".parallel":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .parallel <n>")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			fmt.Fprintln(out, "usage: .parallel <n>  (n >= 1)")
			break
		}
		p.SetInvocationParallelism(n)
		fmt.Fprintf(out, "invocation parallelism set to %d\n", n)
	case ".qparallel":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .qparallel <n>")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			fmt.Fprintln(out, "usage: .qparallel <n>  (n >= 1)")
			break
		}
		p.SetQueryParallelism(n)
		fmt.Fprintf(out, "query parallelism set to %d\n", n)
	case ".batch":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .batch <n>  (0 = default, negative disables)")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(out, "usage: .batch <n>  (0 = default, negative disables)")
			break
		}
		p.SetInvocationBatchSize(n)
		switch {
		case n < 0:
			fmt.Fprintln(out, "invocation batching disabled")
		case n == 0:
			fmt.Fprintf(out, "invocation batch size reset to default (%d)\n", query.DefaultBatchSize)
		default:
			fmt.Fprintf(out, "invocation batch size set to %d\n", n)
		}
	case ".onerror":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: .onerror <query> FAIL|SKIP|NULL")
			break
		}
		policy, err := resilience.ParsePolicy(fields[2])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		if err := p.SetQueryDegradation(fields[1], policy); err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "query %q now degrades with %s\n", fields[1], policy)
	case ".errors":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .errors <query>")
			break
		}
		q, ok := p.Executor().Query(fields[1])
		if !ok {
			fmt.Fprintln(out, "error: unknown query", fields[1])
			break
		}
		errs := q.InvokeErrors()
		if len(errs) == 0 {
			fmt.Fprintln(out, "no invocation failures recorded")
			break
		}
		for _, e := range errs {
			fmt.Fprintf(out, "  %s\n", e.Error())
		}
	case ".breakers":
		states := p.BreakerStates()
		if states == nil {
			fmt.Fprintln(out, "circuit breakers not enabled (start with -breakers)")
			break
		}
		if len(states) == 0 {
			fmt.Fprintln(out, "no services tracked yet (breakers track failures lazily)")
			break
		}
		refs := make([]string, 0, len(states))
		for ref := range states {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		for _, ref := range refs {
			fmt.Fprintf(out, "  %-16s %s\n", ref, states[ref])
		}
	case ".explain":
		src := strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
		if src == "" {
			fmt.Fprintln(out, "usage: .explain <SAL or SELECT query>")
			break
		}
		ex, err := p.Explain(src)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		printExplanation(ex, out)
	case ".stats":
		names := p.Executor().QueryNames()
		if len(fields) > 1 {
			names = fields[1:]
		}
		if len(names) == 0 {
			fmt.Fprintln(out, "no continuous queries registered")
			break
		}
		for _, name := range names {
			q, ok := p.Executor().Query(name)
			if !ok {
				fmt.Fprintln(out, "error: unknown query", name)
				continue
			}
			st := q.Stats()
			fmt.Fprintf(out, "%s: %s\n", name, q.Plan())
			fmt.Fprintf(out, "  invocations: %d passive, %d memoized, %d active; %d failure(s)\n",
				st.Passive, st.Memoized, st.Active, len(q.InvokeErrors()))
			dt, nt := q.EvalCounts()
			fmt.Fprintf(out, "  evaluator: %s (%d delta / %d naive tick(s))\n", q.EvaluationMode(), dt, nt)
			if rep := q.DeltaReport(); rep != "" {
				for _, l := range strings.Split(strings.TrimRight(rep, "\n"), "\n") {
					fmt.Fprintf(out, "    %s\n", l)
				}
			}
			fmt.Fprintf(out, "  on error: %s\n", q.Degradation())
			if last := q.LastResult(); last != nil {
				fmt.Fprintf(out, "  last result: %d tuple(s)\n", last.Len())
			}
			if acts := q.Actions(); acts != nil && acts.Len() > 0 {
				fmt.Fprintf(out, "  action set: %s\n", acts)
			}
		}
	case ".trace":
		src := strings.TrimSpace(strings.TrimPrefix(line, ".trace"))
		if src == "" {
			fmt.Fprintln(out, "usage: .trace <SAL or SELECT query>")
			break
		}
		rep, err := p.TraceOneShot(src)
		if err != nil {
			if rep != nil && rep.Tree != "" {
				fmt.Fprint(out, rep.Tree)
			}
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprint(out, rep.Tree)
		printResult(rep.Result, out)
	case ".lineage":
		if len(fields) < 2 {
			fmt.Fprintln(out, `usage: .lineage <query|""> [tuple-key fragment]`)
			break
		}
		queryName := strings.Trim(fields[1], `"`)
		key := ""
		if len(fields) > 2 {
			key = strings.Trim(fields[2], `"`)
		}
		entries := p.Lineage(queryName, key)
		if len(entries) == 0 {
			fmt.Fprintln(out, "no matching invocations retained (tracing off, or sampled out — see .sample)")
			break
		}
		for _, e := range entries {
			s := e.Span
			outcome := "rows=" + s.Attr("rows")
			if errAttr := s.Attr("error"); errAttr != "" {
				outcome = "error=" + errAttr
				if d := s.Attr("degraded"); d != "" {
					outcome += " degraded=" + d
				}
			}
			instant := e.Instant
			if instant == "" {
				instant = "?"
			}
			fmt.Fprintf(out, "  instant=%-4s query=%-12s trace=%016x %s[%s] in=%s %s %s\n",
				instant, e.Query, e.TraceID, s.Attr("bp"), s.Attr("ref"), s.Attr("in"), s.Attr("mode"), outcome)
		}
	case ".sample":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .sample <n>  (0 disables tracing, 1 traces everything)")
			break
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 0 {
			fmt.Fprintln(out, "usage: .sample <n>  (n >= 0)")
			break
		}
		p.SetTraceSampling(n)
		if n == 0 {
			fmt.Fprintln(out, "tracing disabled")
		} else {
			fmt.Fprintf(out, "tracing one in %d ticks/evaluations\n", n)
		}
	case ".checkpoint":
		if err := p.Checkpoint(); err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "checkpoint written (%s) at instant %d\n", p.WAL().Dir(), p.Now())
	case ".recovery":
		if lastRecovery == nil {
			fmt.Fprintln(out, "durability not enabled (start with -data-dir)")
			break
		}
		r := lastRecovery
		if r.Fresh {
			fmt.Fprintln(out, "fresh data dir: nothing to recover")
			break
		}
		fmt.Fprintf(out, "checkpoint:      %v (at instant %d)\n", r.HadCheckpoint, r.CheckpointAt)
		fmt.Fprintf(out, "segments:        %d\n", r.Segments)
		fmt.Fprintf(out, "records:         %d replayed\n", r.Records)
		fmt.Fprintf(out, "ticks:           %d re-evaluated\n", r.Ticks)
		fmt.Fprintf(out, "orphans:         %d active invocation(s) pinned, never re-fired\n", r.Orphans)
		fmt.Fprintf(out, "truncated bytes: %d (damaged tail discarded)\n", r.TruncatedBytes)
	case ".overload":
		fmt.Fprint(out, p.OverloadReport())
	case ".health":
		fmt.Fprint(out, p.HealthReportText())
	case ".peers":
		fmt.Fprint(out, p.PeersReportText())
	case ".cadence":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: .cadence <stream> <n>  (0 turns the dead-man off)")
			break
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			fmt.Fprintln(out, "usage: .cadence <stream> <n>  (n >= 0)")
			break
		}
		if err := p.SetStreamCadence(fields[1], service.Instant(n)); err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		if n == 0 {
			fmt.Fprintf(out, "dead-man detection off for %s\n", fields[1])
		} else {
			fmt.Fprintf(out, "%s flagged STALLED after %d silent instant(s)\n", fields[1], n)
		}
	case ".poll":
		if len(fields) != 4 {
			fmt.Fprintln(out, "usage: .poll <name> <proto> <svcAttr>")
			break
		}
		if _, err := p.AddPollStream(fields[1], fields[2], fields[3], nil, nil); err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "poll stream %s: every tick, %s on every implementing service\n", fields[1], fields[2])
	case ".metrics":
		fmt.Fprint(out, obs.Default.Snapshot().Render())
	case ".dump":
		fmt.Fprint(out, p.Catalog().Dump())
	case ".schema":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .schema <relation>")
			break
		}
		x, ok := p.Executor().Relation(fields[1])
		if !ok {
			fmt.Fprintln(out, "error: unknown relation", fields[1])
			break
		}
		fmt.Fprintln(out, x.Schema().String())
	case ".queries":
		names := p.Executor().QueryNames()
		if len(names) == 0 {
			fmt.Fprintln(out, "no continuous queries registered")
			break
		}
		for _, name := range names {
			if q, ok := p.Executor().Query(name); ok {
				var into string
				if q.Into() != "" {
					into = " INTO " + q.Into()
					if q.Retain() > 0 {
						into += fmt.Sprintf(" RETAIN %d", q.Retain())
					}
				}
				fmt.Fprintf(out, "  %-16s %s%s\n", name, q.Plan(), into)
			}
		}
	case ".services":
		reg := p.Registry()
		for _, ref := range reg.Refs() {
			svc, err := reg.Lookup(ref)
			if err != nil {
				continue
			}
			fmt.Fprintf(out, "  %-16s %s\n", ref, strings.Join(svc.PrototypeNames(), ", "))
		}
	default:
		fmt.Fprintln(out, "unknown command; .help for help")
	}
	return true
}

func runSQL(p *pems.PEMS, src string, out io.Writer) {
	res, err := p.OneShotSQL(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	printResult(res, out)
}

func runOneShot(p *pems.PEMS, src string, out io.Writer) {
	res, err := p.OneShot(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";")))
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	printResult(res, out)
}

func printResult(res *query.Result, out io.Writer) {
	fmt.Fprint(out, res.Relation.Table())
	fmt.Fprintf(out, "(%d tuple(s); %d passive, %d memoized, %d active invocation(s))\n",
		res.Relation.Len(), res.Stats.Passive, res.Stats.Memoized, res.Stats.Active)
	if res.Actions.Len() > 0 {
		fmt.Fprintln(out, "action set:", res.Actions)
	}
}
