package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"serena/internal/device"
	"serena/internal/pems"
	"serena/internal/service"
	"serena/internal/wire"
)

func TestLooksLikeDDL(t *testing.T) {
	yes := []string{
		"PROTOTYPE p( ) : (x INTEGER);",
		"insert into contacts values (1);",
		"EXTENDED RELATION r ( x INTEGER );",
		"drop relation r;",
		"  STREAM s ( x INTEGER );",
	}
	for _, s := range yes {
		if !looksLikeDDL(s) {
			t.Errorf("looksLikeDDL(%q) = false", s)
		}
	}
	no := []string{
		"project[name](contacts)",
		"SELECT * FROM contacts",
		"select[name = \"x\"](contacts)",
		".tick 3",
		"insertion_counts", // prefix of keyword but not a keyword
	}
	for _, s := range no {
		if looksLikeDDL(s) {
			t.Errorf("looksLikeDDL(%q) = true", s)
		}
	}
}

// captureOutput runs f with os.Stdout redirected and returns what it wrote.
func captureOutput(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	f()
	_ = w.Close()
	os.Stdout = old
	return <-done
}

func demoPEMS(t *testing.T) *pems.PEMS {
	t.Helper()
	p := pems.New()
	t.Cleanup(p.Close)
	if err := p.ExecuteDDL(prototypesDDL); err != nil {
		t.Fatal(err)
	}
	if err := loadDemoServices(p); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(demoDDL); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCommandDispatch(t *testing.T) {
	p := demoPEMS(t)
	cases := []struct {
		line string
		want string // substring of output
	}{
		{".help", ".register"},
		{".services", "getTemperature"},
		{".tick 2", "clock at instant 1"},
		{".show contacts", "Nicolas"},
		{".show ghost", "error:"},
		{".schema contacts", "EXTENDED RELATION contacts"},
		{".schema ghost", "error:"},
		{".dump", "INSERT INTO contacts"},
		{".explain select[location = \"office\"](invoke[getTemperature](sensors))", "push-select-below-invoke"},
		{".explain", "usage:"},
		{".register watch SELECT location, temperature FROM temperatures[1] WHERE temperature > 90.0", "registered"},
		{".register", "usage:"},
		{".unregister watch", "ok"},
		{".unregister ghost", "error:"},
		{".unregister", "usage:"},
		{".bogus", "unknown command"},
		{".queries", "no continuous queries"},
		{".stats", "no continuous queries"},
		{".metrics", "query.invoke.passive"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if !command(p, c.line, &buf) {
			t.Errorf("%s: unexpected quit", c.line)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s: output %q missing %q", c.line, buf.String(), c.want)
		}
	}
	// .quit returns false.
	if command(p, ".quit", io.Discard) {
		t.Error(".quit should stop the loop")
	}
}

func TestRunOneShotAndSQL(t *testing.T) {
	p := demoPEMS(t)
	render := func(f func(out io.Writer)) string {
		var buf bytes.Buffer
		f(&buf)
		return buf.String()
	}
	out := render(func(w io.Writer) { runOneShot(p, `project[name](contacts)`, w) })
	if !strings.Contains(out, "Carla") || !strings.Contains(out, "3 tuple(s)") {
		t.Fatalf("one-shot output = %q", out)
	}
	out = render(func(w io.Writer) { runSQL(p, `SELECT name FROM contacts WHERE name = "Carla"`, w) })
	if !strings.Contains(out, "Carla") || !strings.Contains(out, "1 tuple(s)") {
		t.Fatalf("SQL output = %q", out)
	}
	out = render(func(w io.Writer) { runOneShot(p, `select[`, w) })
	if !strings.Contains(out, "error:") {
		t.Fatalf("parse error not reported: %q", out)
	}
	out = render(func(w io.Writer) { runSQL(p, `SELECT ghost FROM contacts`, w) })
	if !strings.Contains(out, "error:") {
		t.Fatalf("SQL error not reported: %q", out)
	}
}

func TestAttachToNode(t *testing.T) {
	// Spin a wire server and attach it like `-connect` would.
	p := demoPEMS(t)
	node := newTestNode(t)
	out := captureOutput(t, func() {
		if err := attach(p, node); err != nil {
			t.Errorf("attach: %v", err)
		}
	})
	if !strings.Contains(out, "attached node") {
		t.Fatalf("attach output = %q", out)
	}
	if _, err := p.Registry().Lookup("remote-sensor"); err != nil {
		t.Fatal("remote service not registered")
	}
	// Unreachable address errors.
	if err := attach(p, "127.0.0.1:1"); err == nil {
		t.Fatal("attach to closed port succeeded")
	}
}

// newTestNode starts a wire server hosting one remote sensor and returns
// its address.
func newTestNode(t *testing.T) string {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(device.NewSensor("remote-sensor", "lab", 20)); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer("test-node", reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

func TestParallelCommand(t *testing.T) {
	p := demoPEMS(t)
	var buf bytes.Buffer
	command(p, ".parallel 8", &buf)
	if !strings.Contains(buf.String(), "parallelism set to 8") {
		t.Fatalf("output = %q", buf.String())
	}
	for _, bad := range []string{".parallel", ".parallel x", ".parallel 0"} {
		buf.Reset()
		command(p, bad, &buf)
		if !strings.Contains(buf.String(), "usage:") {
			t.Fatalf("%s: output = %q", bad, buf.String())
		}
	}
}
