// Package serena is a Go implementation of the Serena service-enabled
// algebra and the PEMS (Pervasive Environment Management System) of
// Gripay, Laforest and Petit, "A Simple (yet Powerful) Algebra for
// Pervasive Environments", EDBT 2010.
//
// The implementation lives under internal/: see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the reproduced experiments, and examples/
// for runnable programs. The root package only anchors the repository-wide
// benchmarks in bench_test.go.
package serena
