GO ?= go

.PHONY: all build test race cover bench bench-check soak e2e chaos experiments fuzz examples fmt vet check clean

all: build vet test

# The CI gate: static checks plus the full test suite under the race
# detector. staticcheck runs when installed (CI installs it; locally it is
# optional so `make check` works on a bare toolchain).
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Full benchmark suite → machine-readable BENCH_<date>.json at the repo
# root (BENCHTIME=10x for a quick pass; see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# Regression gate: run the suite into BENCH_check.json, then (a) fail if a
# gated benchmark (BenchmarkInvoke*/BenchmarkDurableTick/
# BenchmarkDeltaInvocation*) regressed >20% against the previous report —
# missing or cross-machine baselines pass with a warning (cmd/benchfmt
# -diff) — (b) fail unless the incremental evaluator beats the naive one at
# every window size of the sweep, and (c) fail unless N readers over one
# materialized INTO relation beat N re-evaluated window queries at every
# fan-in width — both same-run comparisons with no cannot-compare escape
# (cmd/benchfmt -faster).
bench-check:
	OUT=BENCH_check.json sh scripts/bench.sh
	$(GO) run ./cmd/benchfmt -diff BENCH_check.json
	$(GO) run ./cmd/benchfmt \
		-faster 'BenchmarkDeltaInvocation/delta<BenchmarkDeltaInvocation/naive' \
		BENCH_check.json
	$(GO) run ./cmd/benchfmt \
		-faster 'BenchmarkMaterializedFanIn/materialized<BenchmarkMaterializedFanIn/reeval' \
		BENCH_check.json

# Overload soak: flood a bounded stream at ~2× drain capacity under -race
# and assert bounded memory, honored sheds and an intact action set; plus
# the SIGKILL crash-during-overload variant (see scripts/soak.sh).
soak:
	sh scripts/soak.sh

# End-to-end dead-man smoke: boot pemsd + serena over the wire, register
# a CQ over sys$streams, SIGKILL the node, and assert the STALLED tuple
# plus the /debug/health and /metrics surfaces (see scripts/e2e_smoke.sh).
e2e:
	bash scripts/e2e_smoke.sh

# Federated node-loss chaos: a 3-node pemsd cluster (two peers replicating
# the same service references, one coordinator), SIGKILL a random peer
# mid-query and assert masking — victim down within a lease, ticks keep
# flowing, deliveries identical to a never-crashed control run
# (see scripts/cluster_chaos.sh; CHAOS_ITERS bounds the kill loop).
chaos:
	bash scripts/cluster_chaos.sh

# Regenerate the EXPERIMENTS.md tables.
experiments:
	$(GO) run ./cmd/benchrun -exp all

# Quick fuzz pass over the three parsers and the WAL codec.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/sal/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/ddl/
	$(GO) test -fuzz=FuzzCompile -fuzztime=10s ./internal/ssql/
	$(GO) test -fuzz=FuzzScanFrames -fuzztime=10s ./internal/wal/
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/wal/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/wal/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/surveillance
	$(GO) run ./examples/rssfeeds
	$(GO) run ./examples/distributed
	$(GO) run ./examples/dashboard

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
