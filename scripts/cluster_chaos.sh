#!/usr/bin/env bash
# cluster_chaos.sh — federated node-loss chaos harness.
#
# Boots a 3-node pemsd cluster: two peers replicating the SAME service
# references (a deterministic sensor under -svc-prefix shared, and an
# "alert" messenger with an fsync'd -outbox file), plus a coordinator
# running an embedded durable core that polls the replicated sensor every
# tick and fires an active sendMessage alert. Then it SIGKILLs a random
# peer mid-run and asserts node-loss masking:
#
#   1. the coordinator marks the victim down within ~one lease (/debug/peers),
#   2. ticks keep flowing with zero tick errors (passive β failed over),
#   3. the union of the peers' outbox files equals a never-crashed
#      control run's — every alert delivered exactly once, none duplicated,
#   4. a SIGTERM'd (drained) peer is marked down by Bye, not lease expiry.
#
# Requires only bash, curl and the go toolchain. CHAOS_ITERS bounds the
# kill loop (default 1). Exits non-zero with a log dump on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

ITERS="${CHAOS_ITERS:-1}"
WORK="${CHAOS_DATA_DIR:-$(mktemp -d)}"
mkdir -p "$WORK"
LEASE="1s"
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do
		kill -9 "$pid" 2>/dev/null || true
	done
	[ -z "${CHAOS_DATA_DIR:-}" ] && rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "chaos: FAIL: $*" >&2
	for log in "$WORK"/*/*.log; do
		echo "---- $log ----" >&2
		cat "$log" >&2 || true
	done
	exit 1
}

# wait_for <file> <pattern> [timeout-seconds]
wait_for() {
	local file="$1" pattern="$2" timeout="${3:-30}" i=0
	while ! grep -q "$pattern" "$file" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge $((timeout * 10)) ] && fail "timed out waiting for '$pattern' in $file"
		sleep 0.1
	done
}

# peer_state <debug-addr> <node> — prints the node's state from /debug/peers.
peer_state() {
	curl -fsS "http://$1/debug/peers" 2>/dev/null |
		tr -d ' \n' | grep -o "\"node\":\"$2\",\"addr\":\"[^\"]*\",\"state\":\"[a-z]*\"" |
		sed 's/.*"state":"\([a-z]*\)"/\1/' | head -1
}

echo "chaos: building pemsd"
go build -o "$WORK/pemsd" ./cmd/pemsd

# The init DDL: an environment whose continuous queries drive β across the
# cluster every tick (passive poll over the replicated sensor) and once per
# contact (active alert through the replicated messenger).
cat >"$WORK/chaos.ddl" <<'EOF'
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Alpha", "alpha@x", alert), ("Beta", "beta@x", alert);
REGISTER QUERY temps AS select[temperature < 1000.0](window[1](temperatures));
REGISTER QUERY alerts ON ERROR SKIP AS invoke[sendMessage](assign[text := "chaos"](contacts));
EOF

# run_cluster <dir> <kill-mode>
#   kill-mode "": control — nobody dies.
#   kill-mode "sigkill": a random peer is SIGKILLed mid-run.
# Prints the sorted union of the peers' outbox (address<TAB>text) lines.
run_cluster() {
	local dir="$1" kill_mode="$2"
	mkdir -p "$dir"
	local r1_pid r2_pid coord_pid

	"$WORK/pemsd" -node r1 -listen 127.0.0.1:0 -sensors 1 -messengers alert \
		-svc-prefix shared -outbox "$dir/outbox-r1" -lease "$LEASE" \
		>"$dir/r1.log" 2>&1 &
	r1_pid=$!
	PIDS+=("$r1_pid")
	"$WORK/pemsd" -node r2 -listen 127.0.0.1:0 -sensors 1 -messengers alert \
		-svc-prefix shared -outbox "$dir/outbox-r2" -lease "$LEASE" \
		>"$dir/r2.log" 2>&1 &
	r2_pid=$!
	PIDS+=("$r2_pid")
	wait_for "$dir/r1.log" "serena -connect"
	wait_for "$dir/r2.log" "serena -connect"
	local r1_addr r2_addr
	r1_addr="$(sed -n 's/.*serena -connect \([0-9.:]*\).*/\1/p' "$dir/r1.log" | head -1)"
	r2_addr="$(sed -n 's/.*serena -connect \([0-9.:]*\).*/\1/p' "$dir/r2.log" | head -1)"

	"$WORK/pemsd" -node coord -listen 127.0.0.1:0 -data-dir "$dir/coord" \
		-tick 100ms -join "$r1_addr,$r2_addr" -lease "$LEASE" \
		-poll temperatures=getTemperature -init "$WORK/chaos.ddl" \
		-debug 127.0.0.1:0 >"$dir/coord.log" 2>&1 &
	coord_pid=$!
	PIDS+=("$coord_pid")
	wait_for "$dir/coord.log" "observability on"
	local debug_addr
	debug_addr="$(sed -n 's|.*observability on http://\([0-9.:]*\)/debug/serena.*|\1|p' "$dir/coord.log" | head -1)"

	# Both peers alive in the coordinator's membership, both alerts out.
	local i=0
	while [ "$(peer_state "$debug_addr" r1)" != "alive" ] ||
		[ "$(peer_state "$debug_addr" r2)" != "alive" ]; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "$dir: peers never both alive"
		sleep 0.1
	done
	i=0
	while [ "$(cat "$dir"/outbox-r* 2>/dev/null | wc -l)" -lt 2 ]; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "$dir: alerts never delivered"
		sleep 0.1
	done

	local victim="" victim_pid="" survivor=""
	if [ "$kill_mode" = "sigkill" ]; then
		if [ $((RANDOM % 2)) -eq 0 ]; then
			victim=r1 victim_pid=$r1_pid survivor=r2
		else
			victim=r2 victim_pid=$r2_pid survivor=r1
		fi
		echo "chaos:   SIGKILL $victim" >&2
		kill -9 "$victim_pid"
		# Masked down within ~one lease (generous 3x bound for slow CI).
		i=0
		while [ "$(peer_state "$debug_addr" "$victim")" != "down" ]; do
			i=$((i + 1))
			[ "$i" -ge 30 ] && fail "$dir: $victim not masked within 3 leases"
			sleep 0.1
		done
		echo "chaos:   $victim down after ~$((i * 100))ms" >&2
	fi

	# Post-kill life: the durable core must keep ticking (passive β now
	# failing over to the survivor) with zero tick errors.
	local ticks_before ticks_after
	ticks_before="$(curl -fsS "http://$debug_addr/metrics?format=prometheus" | sed -n 's/^serena_cq_ticks_total \([0-9]*\).*/\1/p')"
	sleep 1
	ticks_after="$(curl -fsS "http://$debug_addr/metrics?format=prometheus" | sed -n 's/^serena_cq_ticks_total \([0-9]*\).*/\1/p')"
	[ "${ticks_after:-0}" -gt "${ticks_before:-0}" ] || fail "$dir: coordinator stopped ticking"
	grep -q "tick failed" "$dir/coord.log" && fail "$dir: tick errors after ${kill_mode:-no} kill"

	# Satellite: a DRAINED peer says Bye — down immediately, not by lease.
	if [ "$kill_mode" = "sigkill" ]; then
		local survivor_pid=$r1_pid
		[ "$survivor" = "r2" ] && survivor_pid=$r2_pid
		kill -TERM "$survivor_pid"
		i=0
		while [ "$(peer_state "$debug_addr" "$survivor")" != "down" ]; do
			i=$((i + 1))
			[ "$i" -ge 30 ] && fail "$dir: drained $survivor not marked down"
			sleep 0.1
		done
		curl -fsS "http://$debug_addr/debug/peers" | grep -q '"reason": *"bye"' ||
			fail "$dir: drained peer not down by bye"
	fi

	kill -TERM "$coord_pid" 2>/dev/null || true
	wait "$coord_pid" 2>/dev/null || true
	kill -9 "$r1_pid" "$r2_pid" 2>/dev/null || true

	# The observable effect set: address<TAB>text of every delivery, both
	# replicas merged (column 1 is the instant — replica-dependent timing,
	# not part of Definition 8 equality).
	cat "$dir"/outbox-r* 2>/dev/null | cut -f2,3 | sort
}

echo "chaos: control run (never crashed)"
CONTROL="$(run_cluster "$WORK/control" "")"
[ -n "$CONTROL" ] || fail "control produced no deliveries"
DUP="$(printf '%s\n' "$CONTROL" | uniq -d)"
[ -z "$DUP" ] || fail "control delivered duplicates: $DUP"

for iter in $(seq 1 "$ITERS"); do
	echo "chaos: kill iteration $iter/$ITERS"
	CHAOS="$(run_cluster "$WORK/chaos-$iter" "sigkill")"
	if [ "$CHAOS" != "$CONTROL" ]; then
		fail "iteration $iter: deliveries diverged from control
---- control ----
$CONTROL
---- chaos ----
$CHAOS"
	fi
done

echo "chaos: PASS ($ITERS kill iteration(s); deliveries identical to control, victims masked within lease)"
