#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end dead-man smoke test.
#
# Boots a pemsd node hosting sensors and a serena core attached to it,
# registers a dead-man continuous query over the sys$streams system
# relation plus a meter query over sys$metrics, then SIGKILLs the pemsd
# node and asserts that:
#
#   1. the dead-man query emits the ("temperatures", "STALLED") tuple,
#   2. /debug/health reports the stream transition to STALLED,
#   3. /metrics?format=prometheus serves the text exposition.
#
# Requires only bash, curl and the go toolchain. Exits non-zero with a
# log dump on any failed assertion.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PEMSD_PID=""
SERENA_PID=""
cleanup() {
	[ -n "$SERENA_PID" ] && kill "$SERENA_PID" 2>/dev/null || true
	[ -n "$PEMSD_PID" ] && kill -9 "$PEMSD_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "e2e: FAIL: $*" >&2
	echo "---- pemsd log ----" >&2
	cat "$WORK/pemsd.log" >&2 || true
	echo "---- serena log ----" >&2
	cat "$WORK/serena.log" >&2 || true
	exit 1
}

# wait_for <file> <pattern> [timeout-seconds]
wait_for() {
	local file="$1" pattern="$2" timeout="${3:-30}" i=0
	while ! grep -q "$pattern" "$file" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge $((timeout * 10)) ] && fail "timed out waiting for '$pattern' in $file"
		sleep 0.1
	done
}

echo "e2e: building serena and pemsd"
go build -o "$WORK/serena" ./cmd/serena
go build -o "$WORK/pemsd" ./cmd/pemsd

echo "e2e: starting pemsd"
"$WORK/pemsd" -node sensors -listen 127.0.0.1:0 -sensors 2 -cameras 0 \
	>"$WORK/pemsd.log" 2>&1 &
PEMSD_PID=$!
wait_for "$WORK/pemsd.log" "serena -connect"
PEMSD_ADDR="$(sed -n 's/.*serena -connect \([0-9.:]*\).*/\1/p' "$WORK/pemsd.log" | head -1)"
[ -n "$PEMSD_ADDR" ] || fail "could not parse pemsd address"
echo "e2e: pemsd on $PEMSD_ADDR (pid $PEMSD_PID)"

# serena reads its script from a FIFO so the test can interleave shell
# commands with the SIGKILL of the remote node.
mkfifo "$WORK/stdin"
"$WORK/serena" -connect "$PEMSD_ADDR" -metrics 127.0.0.1:0 -invoke-timeout 2s \
	<"$WORK/stdin" >"$WORK/serena.log" 2>&1 &
SERENA_PID=$!
exec 3>"$WORK/stdin"

wait_for "$WORK/serena.log" "metrics on http://"
METRICS_ADDR="$(sed -n 's|.*metrics on http://\([0-9.:]*\)/metrics.*|\1|p' "$WORK/serena.log" | head -1)"
[ -n "$METRICS_ADDR" ] || fail "could not parse serena metrics address"
echo "e2e: serena up, metrics on $METRICS_ADDR"

# Phase 1: feed alive. Poll the remote sensors every tick, arm the
# dead-man (cadence 2), register the health queries, run a few ticks.
cat >&3 <<'EOF'
.poll temperatures getTemperature sensor
.cadence temperatures 2
.register deadman stream[insertion](select[state = "STALLED"](sys$streams))
.register meter select[metric = "cq.ticks"](window[8](sys$metrics))
.tick 3
.show deadman
.health
EOF
wait_for "$WORK/serena.log" 'registered "deadman"'
wait_for "$WORK/serena.log" 'registered "meter"'
wait_for "$WORK/serena.log" "health @ instant 2"
# The .register echo quotes the plan (which mentions "STALLED"), so the
# negative assertion anchors on the .health table line format.
if grep -Eq '^  temperatures +STALLED' "$WORK/serena.log"; then
	fail "stream flagged STALLED while the feed was still alive"
fi
grep -Eq '^  temperatures +OK' "$WORK/serena.log" ||
	fail "healthy temperatures stream not reported OK"
echo "e2e: feed alive, stream healthy after 3 ticks"

# Phase 2: kill the feed hard and keep ticking. With cadence 2 the
# scraper must flag the silence and the dead-man query must fire.
kill -9 "$PEMSD_PID"
wait "$PEMSD_PID" 2>/dev/null || true
echo "e2e: pemsd killed (SIGKILL)"
cat >&3 <<'EOF'
.tick 4
.show deadman
.health
EOF
wait_for "$WORK/serena.log" "health @ instant 6" 60
# .show deadman prints the query output as a table: a row pairing the
# stream name with the STALLED state is the CQ having fired.
grep -Eq '^\| *"?temperatures"? *\| *"?STALLED' "$WORK/serena.log" ||
	fail "dead-man query never emitted the (temperatures, STALLED) tuple"
grep -Eq '^  temperatures +STALLED' "$WORK/serena.log" ||
	fail ".health does not report the stream as STALLED"
echo "e2e: dead-man query fired after the feed died"

# Phase 3: the HTTP surfaces agree.
HEALTH_JSON="$(curl -sf "http://$METRICS_ADDR/debug/health")" ||
	fail "/debug/health unreachable"
echo "$HEALTH_JSON" | grep -q '"temperatures"' ||
	fail "/debug/health missing the temperatures stream: $HEALTH_JSON"
echo "$HEALTH_JSON" | grep -q 'STALLED' ||
	fail "/debug/health does not report the stall: $HEALTH_JSON"
EXPO="$(curl -sf "http://$METRICS_ADDR/metrics?format=prometheus")" ||
	fail "/metrics exposition unreachable"
echo "$EXPO" | grep -q '^serena_cq_ticks_total ' ||
	fail "prometheus exposition missing serena_cq_ticks_total"
echo "$EXPO" | grep -q '^# TYPE serena_cq_tick_latency histogram' ||
	fail "prometheus exposition missing the tick latency histogram"
echo "e2e: /debug/health and /metrics agree"

echo ".quit" >&3
exec 3>&-
wait "$SERENA_PID" || fail "serena exited non-zero"
SERENA_PID=""
echo "e2e: PASS"
