#!/bin/sh
# soak.sh — run the overload soak harness under the race detector: a
# producer flooding a bounded SHED_NEWEST stream at far beyond drain
# capacity, latency-faulted invocations, a tick budget every tick overruns,
# passive coalescing and an admission limiter, all at once. The harness
# asserts sheds are honored and counted, buffer depth and retained stream
# state stay bounded, and the active query's action set exactly equals an
# unloaded control run — plus the SIGKILL crash-during-overload variant.
#
# Environment:
#   SOAK_DUMP  file to receive a full metrics-registry dump when the soak
#              fails (CI uploads it as an artifact; default soak-metrics.txt)
set -eu

cd "$(dirname "$0")/.."

SOAK_DUMP="${SOAK_DUMP:-$PWD/soak-metrics.txt}"
export SOAK_DUMP

echo "running overload soak (dump on failure: $SOAK_DUMP)..." >&2
go test -race -count=1 -v \
	-run '^(TestOverloadSoak|TestCrashDuringOverloadSIGKILL)$' \
	./internal/bench/ ./internal/pems/
echo "soak passed" >&2
