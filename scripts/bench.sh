#!/bin/sh
# bench.sh — run the full benchmark suite and write a machine-readable
# report BENCH_<date>.json at the repository root (the benchmark pipeline's
# interchange format; see cmd/benchfmt).
#
# Environment:
#   BENCHTIME   per-benchmark time or iteration budget (default 1s; CI uses
#               a small value like 10x to keep runs fast)
#   BENCH       benchmark name filter (default: all)
#   OUT         output file (default: BENCH_$(date +%F).json)
#
# The script fails when benchmarks fail or produce no parseable results;
# a report is only written on success.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_$(date +%F).json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (bench=$BENCH benchtime=$BENCHTIME)..." >&2
# -run=^$ skips unit tests; benchmarks only.
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" ./... | tee "$raw" >&2

go run ./cmd/benchfmt -go "$(go version | cut -d' ' -f3)" -o "$OUT" <"$raw"
echo "wrote $OUT" >&2
