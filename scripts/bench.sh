#!/bin/sh
# bench.sh — run the full benchmark suite and write a machine-readable
# report BENCH_<date>.json at the repository root (the benchmark pipeline's
# interchange format; see cmd/benchfmt).
#
# Environment:
#   BENCHTIME   per-benchmark time or iteration budget (default 1s; CI uses
#               a small value like 10x to keep runs fast)
#   BENCHCOUNT  runs per benchmark (default 3); benchfmt keeps the fastest
#               run, so repeated runs filter out scheduler noise on shared
#               machines
#   BENCH       benchmark name filter (default: all)
#   OUT         output file (default: BENCH_$(date +%F).json)
#
# The script fails when benchmarks fail or produce no parseable results;
# a report is only written on success.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_$(date +%F).json}"

# Provenance: the commit being measured, and the most recent earlier report
# (by mtime) so consecutive reports chain into a diffable history.
SHA="$(git rev-parse HEAD 2>/dev/null || true)"
PARENT=""
for f in $(ls -t BENCH_*.json 2>/dev/null); do
	[ "$f" = "$OUT" ] && continue
	PARENT="$f"
	break
done

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (bench=$BENCH benchtime=$BENCHTIME count=$BENCHCOUNT)..." >&2
# -run=^$ skips unit tests; benchmarks only.
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./... | tee "$raw" >&2

go run ./cmd/benchfmt -go "$(go version | cut -d' ' -f3)" \
	-sha "$SHA" -parent "$PARENT" -o "$OUT" <"$raw"
echo "wrote $OUT (sha=${SHA:-unknown} parent=${PARENT:-none})" >&2
