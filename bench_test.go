// Repository-wide benchmarks: one benchmark per experiment of
// EXPERIMENTS.md. The paper's own evaluation (Section 5.2) is qualitative;
// these benchmarks implement the quantitative "benchmark for pervasive
// environments" its Section 7 names as future work, plus the ablations of
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package serena_test

import (
	"fmt"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/bench"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/obs"
	"serena/internal/optimizer"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/sal"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/ssql"
	"serena/internal/stream"
	"serena/internal/trace"
	"serena/internal/value"
	"serena/internal/wal"
	"serena/internal/wire"
)

// ---------------------------------------------------------------------------
// B-2: operator throughput. One sub-benchmark per Serena operator over
// synthetic relations of growing cardinality.

func synthRelation(n int) *algebra.XRelation {
	sch := schema.MustExtended("r", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "id", Type: value.Int}},
		{Attribute: schema.Attribute{Name: "grp", Type: value.String}},
		{Attribute: schema.Attribute{Name: "score", Type: value.Real}},
		{Attribute: schema.Attribute{Name: "tag", Type: value.String}, Virtual: true},
	}, nil)
	rows := make([]value.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = value.Tuple{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("g%02d", i%16)),
			value.NewReal(float64(i % 100)),
		}
	}
	return algebra.MustNew(sch, rows)
}

func BenchmarkOperators(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		r := synthRelation(n)
		other := synthRelation(n)
		f := algebra.Compare(algebra.Attr("score"), algebra.Gt, algebra.Const(value.NewReal(50)))

		b.Run(fmt.Sprintf("select/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Select(r, f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("project/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Project(r, []string{"id", "grp"}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("join/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.NaturalJoin(r, other); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("assign/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.AssignConst(r, "tag", value.NewString("x")); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("union/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Union(r, other); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInvoke measures the invocation operator over in-process sensor
// services (no latency injection), per operand cardinality.
func BenchmarkInvoke(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		env := bench.MustGenerate(bench.Config{Sensors: n, Cameras: 1, Contacts: 1, Locations: 1, Seed: 1})
		q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(q, env.Relations, env.Registry, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInvokeTraceOverhead is the tracing A/B: the BenchmarkInvoke
// workload with the tracer off, at the default head-sampling rate (1-in-64
// roots), and fully on (every root). The budget is ≤5% overhead for the
// default rate over off — the sampled and always rows exist to show where
// the cost lives, the off row is the baseline the budget is measured
// against. tracing/op reports the configured sampling interval so reports
// are self-describing.
func BenchmarkInvokeTraceOverhead(b *testing.B) {
	const n = 100
	env := bench.MustGenerate(bench.Config{Sensors: n, Cameras: 1, Contacts: 1, Locations: 1, Seed: 1})
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	prev := trace.Default.SampleEvery()
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()
	for _, mode := range []struct {
		name  string
		every int64
	}{
		{"off", 0},
		{"sampled", trace.DefaultSampleEvery},
		{"always", 1},
	} {
		b.Run(fmt.Sprintf("trace=%s", mode.name), func(b *testing.B) {
			trace.Default.SetSampleEvery(mode.every)
			trace.Default.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(q, env.Relations, env.Registry, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mode.every), "sample-every")
		})
	}
}

// ---------------------------------------------------------------------------
// B-1: selection pushdown below invocation, naive vs optimized, per
// selectivity. The per-op metric "invocations/op" carries the shape result.

func BenchmarkRewritePushdown(b *testing.B) {
	const sensors = 200
	for _, locs := range []int{1, 4, 20} {
		env := bench.MustGenerate(bench.Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: locs, Seed: 1})
		loc := env.Locations[0]
		for _, mode := range []struct {
			name string
			q    query.Node
		}{
			{"naive", env.NaivePushdownQuery(loc)},
			{"optimized", env.OptimizedPushdownQuery(loc)},
		} {
			b.Run(fmt.Sprintf("sel=1/%d/%s", locs, mode.name), func(b *testing.B) {
				var invocations int64
				for i := 0; i < b.N; i++ {
					res, err := query.Evaluate(mode.q, env.Relations, env.Registry, service.Instant(i))
					if err != nil {
						b.Fatal(err)
					}
					invocations += res.Stats.Passive
				}
				b.ReportMetric(float64(invocations)/float64(b.N), "invocations/op")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// B-3: optimizer advantage vs injected service latency.

func BenchmarkOptimizerLatency(b *testing.B) {
	const sensors = 50
	for _, lat := range []time.Duration{0, 200 * time.Microsecond, time.Millisecond} {
		env := bench.MustGenerate(bench.Config{
			Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 10,
			ServiceLatency: lat, Seed: 1,
		})
		loc := env.Locations[0]
		b.Run(fmt.Sprintf("lat=%s/naive", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(env.NaivePushdownQuery(loc), env.Relations, env.Registry, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lat=%s/optimized", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(env.OptimizedPushdownQuery(loc), env.Relations, env.Registry, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-4: continuous-query tick cost vs window size.

func BenchmarkWindowSweep(b *testing.B) {
	const rate = 50
	for _, w := range []int64{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			reg := service.NewRegistry()
			exec := cq.NewExecutor(reg)
			events := stream.NewInfinite(bench.FeedLikeStreamSchema("events"))
			if err := exec.AddRelation(events); err != nil {
				b.Fatal(err)
			}
			seq := 0
			exec.AddSource(func(at service.Instant) error {
				for i := 0; i < rate; i++ {
					seq++
					if err := events.Insert(at, value.Tuple{
						value.NewInt(int64(seq)), value.NewString("p"),
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if _, err := exec.Register("w", query.NewWindow(query.NewBase("events"), w)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-5: discovery scalability — time to register n services from TCP nodes.

func BenchmarkDiscovery(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("services=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bus := discovery.NewInProcBus()
				central := service.NewRegistry()
				if err := central.RegisterPrototype(device.GetTemperatureProto()); err != nil {
					b.Fatal(err)
				}
				node := discovery.NewNode("node", bus)
				if err := node.Registry().RegisterPrototype(device.GetTemperatureProto()); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if err := node.Registry().Register(device.NewSensor(fmt.Sprintf("s%05d", j), "lab", 20)); err != nil {
						b.Fatal(err)
					}
				}
				m := discovery.NewManager(central, bus)
				m.Start()
				b.StartTimer()
				if err := node.Start("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				for len(central.Refs()) < n {
					time.Sleep(200 * time.Microsecond)
				}
				b.StopTimer()
				_ = node.Stop()
				m.Stop()
				b.StartTimer()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-6: remote invocation over TCP vs in-process, per payload size.

func BenchmarkWireInvocation(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		reg := service.NewRegistry()
		proto := schema.MustPrototype("getBlob", nil,
			schema.MustRel(schema.Attribute{Name: "blob", Type: value.Blob}), false)
		if err := reg.RegisterPrototype(proto); err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, size)
		if err := reg.Register(service.NewFunc("blobber", map[string]service.InvokeFunc{
			"getBlob": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				return []value.Tuple{{value.NewBlob(payload)}}, nil
			},
		})); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("local/payload=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reg.Invoke("getBlob", "blobber", nil, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("remote/payload=%d", size), func(b *testing.B) {
			srv := wire.NewServer("node", reg)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			client, err := wire.Dial(addr, 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke("getBlob", "blobber", nil, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-7: hybrid query throughput per environment size.

func BenchmarkHybrid(b *testing.B) {
	for _, n := range []int{100, 1000} {
		env := bench.MustGenerate(bench.Config{Sensors: n, Cameras: 10, Contacts: 20, Locations: 10, Seed: 1})
		q := env.HybridQuery(env.Locations[0], 10)
		b.Run(fmt.Sprintf("sensors=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(q, env.Relations, env.Registry, service.Instant(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation A-1/A-4: per-instant memoization of passive invocations.

func BenchmarkInstantMemo(b *testing.B) {
	env := bench.MustGenerate(bench.Config{Sensors: 50, Cameras: 1, Contacts: 1, Locations: 1, Seed: 1})
	// Duplicate every sensor row 4× under alias locations.
	var rows []value.Tuple
	for _, tu := range env.Relations["sensors"].Tuples() {
		for d := 0; d < 4; d++ {
			rows = append(rows, value.Tuple{tu[0], value.NewString(fmt.Sprintf("alias%d", d))})
		}
	}
	dup := algebra.MustNew(env.Relations["sensors"].Schema(), rows)
	relations := query.MapEnv{"sensors": dup}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")

	b.Run("memo=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := query.NewContext(relations, env.Registry, service.Instant(i))
			if _, err := q.Eval(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := query.NewContext(relations, env.Registry, service.Instant(i))
			ctx.Memo = nil
			if _, err := q.Eval(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation A-2: incremental (semi-naive) tick evaluation vs the naive
// re-evaluate-then-diff path, across window sizes. Both arms run the SAME
// workload through the continuous executor — a windowed β-invocation plan
// over a reading stream with a fixed churn of 8 fresh tuples per tick — so
// the only difference is the evaluator: naive touches all n window rows
// every instant (n §4.2 cache consults + full re-diff), delta touches the
// ~2·churn changed rows. `make bench-check` fails if delta is not strictly
// faster at every size (cmd/benchfmt -faster).

func BenchmarkDeltaInvocation(b *testing.B) {
	const churn = 8 // fresh readings per instant; n is the window content
	sizes := []struct {
		label string
		n     int
	}{{"64", 64}, {"1k", 1024}, {"16k", 16384}}
	for _, mode := range []string{"naive", "delta"} {
		for _, sz := range sizes {
			b.Run(mode+"/n="+sz.label, func(b *testing.B) {
				benchDeltaSweep(b, sz.n, churn, mode == "naive")
			})
		}
	}
}

func benchDeltaSweep(b *testing.B, n, churn int, naive bool) {
	env := bench.MustGenerate(bench.Config{Sensors: 16, Cameras: 1, Contacts: 1, Locations: 4, Seed: 1})
	readings := stream.NewInfinite(schema.MustExtended("readings", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "location", Type: value.String}},
		{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}, Virtual: true},
	}, []schema.BindingPattern{{Proto: device.GetTemperatureProto(), ServiceAttr: "sensor"}}))
	exec := cq.NewExecutor(env.Registry)
	if err := exec.AddRelation(readings); err != nil {
		b.Fatal(err)
	}
	period := int64(n / churn)
	seq := 0
	feed := func(at service.Instant) {
		for j := 0; j < churn; j++ {
			ref := fmt.Sprintf("sensor%04d", seq%16)
			err := readings.Insert(at, value.Tuple{
				value.NewService(ref),
				value.NewString(fmt.Sprintf("r%07d", seq)),
			})
			if err != nil {
				b.Fatal(err)
			}
			seq++
		}
	}
	// Pre-fill one full window of history so the first timed tick already
	// carries n rows, then park the clock just before it.
	for at := int64(0); at < period; at++ {
		feed(service.Instant(at))
	}
	exec.AdvanceTo(service.Instant(period - 1))
	q, err := exec.Register("t",
		query.NewInvoke(query.NewWindow(query.NewBase("readings"), period), "getTemperature", ""))
	if err != nil {
		b.Fatal(err)
	}
	if naive {
		if err := exec.SetNaiveEvaluation("t", true); err != nil {
			b.Fatal(err)
		}
	} else if got := q.EvaluationMode(); got != "delta" {
		b.Fatalf("evaluation mode = %q, want delta", got)
	}
	tick := func() {
		feed(exec.Now() + 1)
		if _, err := exec.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	// Two warm-up ticks: the first pays the one-off window build (delta
	// re-init) and the physical invocations that seed the §4.2 cache.
	tick()
	tick()
	if got := q.LastResult().Len(); got != n {
		b.Fatalf("steady window carries %d rows, want %d", got, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	b.ReportMetric(float64(q.Stats().Passive)/float64(b.N+2), "invocations/tick")
}

// ---------------------------------------------------------------------------
// Materialized fan-in: N readers over ONE materialized derived relation
// (REGISTER QUERY … INTO) vs N readers each re-evaluating the same windowed
// selection for themselves. The producer's per-tick (inserts, deletes) feed
// every consumer's delta directly, so the windowed scan is paid once per
// tick instead of once per reader. `make bench-check` fails if the
// materialized arm is not strictly faster at every fan-in width
// (cmd/benchfmt -faster).

func BenchmarkMaterializedFanIn(b *testing.B) {
	for _, mode := range []string{"reeval", "materialized"} {
		for _, n := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				benchFanIn(b, n, mode == "materialized")
			})
		}
	}
}

func benchFanIn(b *testing.B, readers int, materialized bool) {
	const (
		churn  = 16 // fresh events per instant
		period = 64 // window the shared selection scans
	)
	reg := service.NewRegistry()
	exec := cq.NewExecutor(reg)
	events := stream.NewInfinite(bench.FeedLikeStreamSchema("events"))
	if err := exec.AddRelation(events); err != nil {
		b.Fatal(err)
	}
	seq := 0
	feed := func(at service.Instant) {
		for j := 0; j < churn; j++ {
			seq++
			err := events.Insert(at, value.Tuple{
				value.NewInt(int64(seq)), value.NewString(fmt.Sprintf("p%02d", seq%16)),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	// The downsample shape INTO exists for: the windowed scan touches every
	// event, the selection keeps a small fraction (2 of 16 payload classes),
	// and readers consume the compact derived relation.
	shared := func() query.Node {
		return query.NewSelect(
			query.NewWindow(query.NewBase("events"), period),
			algebra.Compare(algebra.Attr("payload"), algebra.Contains, algebra.Const(value.NewString("3"))))
	}
	if materialized {
		if _, err := exec.RegisterWith("producer", shared(), cq.RegisterOptions{Into: "hotmat", Retain: 4}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < readers; i++ {
		var plan query.Node
		if materialized {
			plan = query.NewProject(query.NewBase("hotmat"), "id")
		} else {
			plan = query.NewProject(shared(), "id")
		}
		q, err := exec.Register(fmt.Sprintf("reader%02d", i), plan)
		if err != nil {
			b.Fatal(err)
		}
		if got := q.EvaluationMode(); got != "delta" {
			b.Fatalf("reader mode = %q, want delta", got)
		}
	}
	// Warm up past the window build so the timed region is the steady state.
	for i := 0; i < 2; i++ {
		feed(exec.Now() + 1)
		if _, err := exec.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed(exec.Now() + 1)
		if _, err := exec.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Durability A/B: continuous-query tick throughput with no WAL at all and
// with the WAL at each fsync policy, over the BenchmarkDeltaInvocation
// workload. The budget is <=5% overhead for -fsync interval over the
// no-durability baseline (fsyncs amortize across the 200ms sync window);
// the always row shows the full per-commit fsync cost, the off row
// isolates pure record encoding and buffered writes.

func BenchmarkDurableTick(b *testing.B) {
	const sensors = 100
	run := func(b *testing.B, fsync string) {
		env := bench.MustGenerate(bench.Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 1, Seed: 1})
		exec := cq.NewExecutor(env.Registry)
		rel := stream.NewFinite(env.Relations["sensors"].Schema())
		for _, tu := range env.Relations["sensors"].Tuples() {
			if err := rel.Insert(0, tu); err != nil {
				b.Fatal(err)
			}
		}
		if err := exec.AddRelation(rel); err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Register("t", query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")); err != nil {
			b.Fatal(err)
		}
		if fsync != "" {
			pol, err := wal.ParseSyncPolicy(fsync)
			if err != nil {
				b.Fatal(err)
			}
			// Checkpoints are benchmarked implicitly by the executor's
			// OnCheckpoint path in real deployments; here they are pushed out
			// of the measured window so the rows isolate per-tick log cost.
			m, err := wal.Open(b.TempDir(), wal.Options{Fsync: pol, CheckpointEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			exec.SetDurability(m)
			if _, err := m.Recover(wal.RecoveryHooks{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, mode := range []struct{ name, fsync string }{
		{"none", ""},
		{"wal-off", "off"},
		{"wal-interval", "interval"},
		{"wal-always", "always"},
	} {
		b.Run("durability="+mode.name, func(b *testing.B) { run(b, mode.fsync) })
	}
}

// ---------------------------------------------------------------------------
// Ablation A-3: action-set capture overhead — evaluating an active query
// (capture on the hot path) vs a passive query of the same shape.

func BenchmarkActionSetOverhead(b *testing.B) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{
		"contacts": paperenv.Contacts(),
		"sensors":  paperenv.Sensors(),
	}
	active := query.NewInvoke(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")),
		"sendMessage", "")
	passive := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	b.Run("active-with-actions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Evaluate(active, env, reg, service.Instant(i)); err != nil {
				b.Fatal(err)
			}
		}
		dev.Messengers["email"].Reset()
		dev.Messengers["jabber"].Reset()
	})
	b.Run("passive-no-actions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Evaluate(passive, env, reg, service.Instant(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation A-1: eager BP propagation (schema derivation) cost — planning a
// Table 4-style query repeatedly.

func BenchmarkBPPropagation(b *testing.B) {
	env := query.MapEnv{
		"contacts": paperenv.Contacts(),
		"cameras":  paperenv.Cameras(),
	}
	q, err := sal.Parse(`project[photo](invoke[takePhoto](select[quality >= 5](invoke[checkPhoto](select[area = "office"](cameras)))))`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plan-schema-derivation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.ResultSchema(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// B-8: parallel invocation speedup under latency (Section 5.1 asynchronous
// invocation handling).

func BenchmarkParallelInvocation(b *testing.B) {
	env := bench.MustGenerate(bench.Config{
		Sensors: 32, Cameras: 1, Contacts: 1, Locations: 1,
		ServiceLatency: time.Millisecond, Seed: 1,
	})
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := query.NewContext(env.Relations, env.Registry, service.Instant(i))
				ctx.Parallelism = workers
				if _, err := query.EvaluateCtx(q, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Aggregation throughput (the Section 1.2 mean-per-location extension).

func BenchmarkAggregate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		sch := schema.MustExtended("readings", []schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "location", Type: value.String}},
			{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}},
		}, nil)
		rows := make([]value.Tuple, n)
		for i := 0; i < n; i++ {
			rows[i] = value.Tuple{
				value.NewService(fmt.Sprintf("s%05d", i)),
				value.NewString(fmt.Sprintf("loc%02d", i%20)),
				value.NewReal(float64(i % 37)),
			}
		}
		r := algebra.MustNew(sch, rows)
		aggs := []algebra.AggSpec{
			{Func: algebra.Mean, Attr: "temperature", As: "avg"},
			{Func: algebra.Count, As: "n"},
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Aggregate(r, []string{"location"}, aggs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Serena SQL compilation cost (parse + conjunct placement + validation).

func BenchmarkSSQLCompile(b *testing.B) {
	env := query.MapEnv{
		"contacts": paperenv.Contacts(),
		"cameras":  paperenv.Cameras(),
	}
	const src = `SELECT photo FROM cameras USING checkPhoto, takePhoto
		WHERE area = "office" AND quality >= 5`
	for i := 0; i < b.N; i++ {
		if _, err := ssql.Compile(src, env); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Optimizer planning cost (logical rewriting itself).

func BenchmarkOptimizerPlanning(b *testing.B) {
	env := bench.MustGenerate(bench.Config{Sensors: 100, Cameras: 10, Contacts: 10, Locations: 10, Seed: 1})
	opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: env.Relations}, optimizer.DefaultCostModel())
	q := env.NaivePushdownQuery(env.Locations[0])
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q, env.Relations); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Batched invocation pipeline: one remote service invoked with n distinct
// inputs. Per-tuple dispatch pays one wire round trip per tuple; the batch
// planner packs the whole fan-out into MaxBatch-bounded frames. The ≥2x
// win at n ≥ 16 is the acceptance bar for the batching tentpole.

func BenchmarkInvokeBatch(b *testing.B) {
	proto := schema.MustPrototype("lookup",
		schema.MustRel(schema.Attribute{Name: "id", Type: value.Int}),
		schema.MustRel(schema.Attribute{Name: "val", Type: value.Real}), false)
	remoteReg := service.NewRegistry()
	if err := remoteReg.RegisterPrototype(proto); err != nil {
		b.Fatal(err)
	}
	err := remoteReg.Register(service.NewFunc("lut", map[string]service.InvokeFunc{
		"lookup": func(in value.Tuple, _ service.Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewReal(float64(in[0].Int()))}}, nil
		},
	}))
	if err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer("node", remoteReg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	_, infos, err := client.Describe()
	if err != nil {
		b.Fatal(err)
	}
	local := service.NewRegistry()
	if err := local.RegisterPrototype(proto); err != nil {
		b.Fatal(err)
	}
	for _, info := range infos {
		if err := local.Register(wire.NewRemote(client, info)); err != nil {
			b.Fatal(err)
		}
	}

	sch := schema.MustExtended("items", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "svc", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "id", Type: value.Int}},
		{Attribute: schema.Attribute{Name: "val", Type: value.Real}, Virtual: true},
	}, []schema.BindingPattern{{Proto: proto, ServiceAttr: "svc"}})

	for _, n := range []int{4, 16, 64} {
		rows := make([]value.Tuple, n)
		for i := 0; i < n; i++ {
			rows[i] = value.Tuple{value.NewService("lut"), value.NewInt(int64(i))}
		}
		env := query.MapEnv{"items": algebra.MustNew(sch, rows)}
		q := query.NewInvoke(query.NewBase("items"), "lookup", "")
		run := func(b *testing.B, batchSize int) {
			for i := 0; i < b.N; i++ {
				ctx := query.NewContext(env, local, service.Instant(i))
				ctx.BatchSize = batchSize
				if _, err := query.EvaluateCtx(q, ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("pertuple/n=%d", n), func(b *testing.B) { run(b, -1) })
		b.Run(fmt.Sprintf("batch/n=%d", n), func(b *testing.B) { run(b, 0) })
	}
}

// ---------------------------------------------------------------------------
// O-1: self-telemetry overhead. The identical continuous workload — a
// windowed selection over a stream fed 8 fresh readings per instant — is
// ticked with the health scraper off vs on at the default interval (scrape
// every instant). The scraper's budget is ≤5% per-tick overhead: it samples
// the metrics registry, runs the per-query and per-stream health state
// machines, and reconciles the three sys$ relations, all off the query
// evaluation path. The scraper gets its own registry carrying a fixed
// synthetic metric population (bumped per tick in both modes) so the
// measurement is hermetic: scraping the process-global obs.Default would
// make the number depend on whichever benchmarks ran earlier.

func BenchmarkTickTelemetryOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run("telemetry="+mode, func(b *testing.B) { benchTelemetryTick(b, mode == "on") })
	}
}

func benchTelemetryTick(b *testing.B, telemetry bool) {
	env := bench.MustGenerate(bench.Config{Sensors: 16, Cameras: 1, Contacts: 1, Locations: 4, Seed: 1})
	readings := stream.NewInfinite(schema.MustExtended("readings", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}},
	}, nil))
	// A fixed metric population on the scraper's dedicated registry, sized
	// like a busy engine: 40 counters, 20 gauges, 6 histograms.
	reg := obs.New()
	for i := 0; i < 40; i++ {
		reg.Counter(fmt.Sprintf("bench.counter%02d", i)).Inc()
	}
	for i := 0; i < 20; i++ {
		reg.Gauge(fmt.Sprintf("bench.gauge%02d", i)).Set(int64(i))
	}
	for i := 0; i < 6; i++ {
		reg.Histogram(fmt.Sprintf("bench.hist%d", i)).Observe(1000)
	}
	exec := cq.NewExecutor(env.Registry)
	if telemetry {
		if _, err := exec.EnableSelfTelemetry(cq.TelemetryOptions{Registry: reg}); err != nil {
			b.Fatal(err)
		}
	}
	if err := exec.AddRelation(readings); err != nil {
		b.Fatal(err)
	}
	seq := 0
	exec.AddSource(func(at service.Instant) error {
		// Churn a subset of the registry every tick (identical work in both
		// modes) so the scraper's change-stream has rows to emit.
		for j := 0; j < 8; j++ {
			reg.Counter(fmt.Sprintf("bench.counter%02d", (seq+j)%40)).Inc()
		}
		for j := 0; j < 4; j++ {
			reg.Gauge(fmt.Sprintf("bench.gauge%02d", (seq+j)%20)).Set(int64(seq + j))
		}
		reg.Histogram("bench.hist0").Observe(time.Duration(1000 + seq%1000))
		for j := 0; j < 8; j++ {
			ref := fmt.Sprintf("sensor%04d", seq%16)
			err := readings.Insert(at, value.Tuple{
				value.NewService(ref), value.NewReal(float64(seq % 40)),
			})
			if err != nil {
				return err
			}
			seq++
		}
		return nil
	})
	_, err := exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("readings"), 64),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(30)))))
	if err != nil {
		b.Fatal(err)
	}
	// Warm up past the window build and the scraper's first full reconcile.
	for i := 0; i < 2; i++ {
		if _, err := exec.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}
