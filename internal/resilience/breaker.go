package resilience

import (
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State uint8

// Breaker states: Closed lets calls through; Open short-circuits them;
// HalfOpen lets a bounded number of probes through to test recovery.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ErrOpen is returned (wrapped) when a breaker short-circuits a call.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerPolicy configures circuit breakers.
type BreakerPolicy struct {
	// FailureThreshold is the number of CONSECUTIVE failures that trips
	// the breaker open. Values < 1 default to 5.
	FailureThreshold int
	// Cooldown is how long an open breaker waits before letting a
	// half-open probe through. Values <= 0 default to 5s.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probes a half-open breaker
	// admits. Values < 1 default to 1.
	HalfOpenProbes int
	// Now is the clock (injectable for deterministic tests); nil means
	// time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. It is called
	// synchronously with the breaker's internal lock held, so it must be
	// fast and must not call back into the breaker. This keeps the
	// resilience package dependency-free: callers (e.g. the service layer)
	// attach their own metrics here.
	OnTransition func(from, to State)
}

func (p BreakerPolicy) normalized() BreakerPolicy {
	if p.FailureThreshold < 1 {
		p.FailureThreshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 5 * time.Second
	}
	if p.HalfOpenProbes < 1 {
		p.HalfOpenProbes = 1
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// Breaker is one circuit breaker: closed → open after FailureThreshold
// consecutive failures → half-open probe after Cooldown → closed again on
// probe success (or back to open on probe failure). It is safe for
// concurrent use.
type Breaker struct {
	policy BreakerPolicy

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker tripped
	inFlight  int       // admitted half-open probes not yet resolved
	probeFail bool      // a half-open probe failed; re-open on resolve
}

// NewBreaker builds a breaker under the given policy.
func NewBreaker(policy BreakerPolicy) *Breaker {
	return &Breaker{policy: policy.normalized()}
}

// State reports the current state (advancing open → half-open when the
// cooldown has elapsed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// Allow reports whether a call may proceed now. A half-open breaker admits
// up to HalfOpenProbes concurrent probes; every admitted call MUST be
// resolved with Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.inFlight < b.policy.HalfOpenProbes {
			b.inFlight++
			return true
		}
		return false
	}
	return false
}

// Success resolves an admitted call as succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if b.inFlight == 0 && !b.probeFail {
			// All probes succeeded: the service recovered.
			b.setStateLocked(Closed)
			b.failures = 0
		}
	}
}

// Failure resolves an admitted call as failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.policy.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.probeFail = true
		if b.inFlight == 0 {
			// The probe showed the service is still down: re-open.
			b.trip()
		}
	case Open:
		// A straggler from before the trip; the breaker is already open.
	}
}

// trip moves to Open and stamps the cooldown clock (lock held).
func (b *Breaker) trip() {
	b.setStateLocked(Open)
	b.openedAt = b.policy.Now()
	b.failures = 0
	b.inFlight = 0
	b.probeFail = false
}

// advanceLocked promotes Open → HalfOpen once the cooldown has elapsed.
func (b *Breaker) advanceLocked() {
	if b.state == Open && b.policy.Now().Sub(b.openedAt) >= b.policy.Cooldown {
		b.setStateLocked(HalfOpen)
		b.inFlight = 0
		b.probeFail = false
	}
}

// setStateLocked changes state and fires the transition hook (lock held).
func (b *Breaker) setStateLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.policy.OnTransition != nil {
		b.policy.OnTransition(from, to)
	}
}

// BreakerSet keys breakers by service reference, creating them lazily
// under a shared policy. It is safe for concurrent use.
type BreakerSet struct {
	policy BreakerPolicy

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds an empty set under the given policy.
func NewBreakerSet(policy BreakerPolicy) *BreakerSet {
	return &BreakerSet{policy: policy.normalized(), m: make(map[string]*Breaker)}
}

// For returns the breaker for a key, creating it closed.
func (s *BreakerSet) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.policy)
		s.m[key] = b
	}
	return b
}

// Allow is For(key).Allow without creating a breaker for keys never seen
// failing: an untracked key is always allowed (and stays untracked).
func (s *BreakerSet) Allow(key string) bool {
	s.mu.Lock()
	b, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return true
	}
	return b.Allow()
}

// OnResult resolves a call's outcome for a key. Failures create the
// breaker lazily; successes on untracked keys stay untracked (a healthy
// service never allocates a breaker).
func (s *BreakerSet) OnResult(key string, ok bool) {
	s.mu.Lock()
	b, tracked := s.m[key]
	if !tracked {
		if ok {
			s.mu.Unlock()
			return
		}
		b = NewBreaker(s.policy)
		s.m[key] = b
	}
	s.mu.Unlock()
	if ok {
		b.Success()
	} else {
		b.Failure()
	}
}

// State reports the state of a key's breaker (Closed for untracked keys).
func (s *BreakerSet) State(key string) State {
	s.mu.Lock()
	b, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return Closed
	}
	return b.State()
}

// States snapshots all tracked breakers.
func (s *BreakerSet) States() map[string]State {
	s.mu.Lock()
	keys := make([]*Breaker, 0, len(s.m))
	names := make([]string, 0, len(s.m))
	for k, b := range s.m {
		names = append(names, k)
		keys = append(keys, b)
	}
	s.mu.Unlock()
	out := make(map[string]State, len(names))
	for i, k := range names {
		out[k] = keys[i].State()
	}
	return out
}

// Reset forgets a key's breaker (e.g. when its service is withdrawn for
// good — a re-registered service starts with a clean slate).
func (s *BreakerSet) Reset(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}
