package resilience

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel every admission-control layer surfaces
// (wrapped with context) when work is rejected because the system is at
// capacity — a full ingest queue, an exhausted invocation semaphore, or a
// wire server over its in-flight limit. It is deliberately distinct from
// ErrOpen (the service is broken) and from a timeout (the outcome is
// unknown): an overload rejection is FAST and definite — the work never
// started — so callers may safely shed, retry later, or degrade.
var ErrOverloaded = fmt.Errorf("resilience: overloaded")

// OverloadPolicy selects what a bounded ingest buffer does with a new
// tuple when it is full (the DDL's ON OVERLOAD clause).
type OverloadPolicy uint8

const (
	// Block makes the producer wait until the consumer drains the buffer —
	// classic backpressure. Nothing is lost; a slow consumer slows its
	// producers down.
	Block OverloadPolicy = iota
	// ShedOldest drops the oldest buffered tuple to admit the new one —
	// freshest-data-wins, the usual choice for sensor streams where a newer
	// reading supersedes a stale one.
	ShedOldest
	// ShedNewest drops the tuple being offered — oldest-data-wins, the
	// choice when earlier events must not be displaced (e.g. an ordered
	// event log).
	ShedNewest
)

// String renders the DDL spelling of the policy.
func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "BLOCK"
	case ShedOldest:
		return "SHED_OLDEST"
	case ShedNewest:
		return "SHED_NEWEST"
	}
	return fmt.Sprintf("OverloadPolicy(%d)", uint8(p))
}

// ParseOverloadPolicy parses the DDL spelling (BLOCK | SHED_OLDEST |
// SHED_NEWEST, case-insensitive).
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BLOCK", "":
		return Block, nil
	case "SHED_OLDEST", "OLDEST":
		return ShedOldest, nil
	case "SHED_NEWEST", "NEWEST", "DROP":
		return ShedNewest, nil
	}
	return Block, fmt.Errorf("resilience: unknown overload policy %q (want BLOCK, SHED_OLDEST or SHED_NEWEST)", s)
}

// Limiter is a concurrency semaphore with a bounded wait queue and a queue
// deadline — the admission-control primitive. Up to maxInFlight holders
// proceed immediately; up to maxQueue more wait at most queueTimeout for a
// slot; everyone else is rejected fast with ErrOverloaded. The fast
// rejection is the point: under sustained overload the caller learns in
// microseconds, not after a timeout, and can apply its degradation policy.
type Limiter struct {
	slots chan struct{}
	wait  time.Duration

	mu       sync.Mutex
	queued   int
	maxQueue int
	rejected int64
}

// NewLimiter builds a limiter admitting maxInFlight concurrent holders
// (values < 1 mean 1), queueing up to maxQueue waiters (values < 0 mean no
// queue), each waiting at most queueTimeout (<= 0 means waiters are
// rejected immediately when no slot is free).
func NewLimiter(maxInFlight, maxQueue int, queueTimeout time.Duration) *Limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots:    make(chan struct{}, maxInFlight),
		wait:     queueTimeout,
		maxQueue: maxQueue,
	}
}

// Acquire takes a slot, queueing up to the limiter's deadline. It returns
// an error wrapping ErrOverloaded when the queue is full or the wait
// expires, and the context error when ctx ends first. On nil return the
// caller MUST call Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	l.mu.Lock()
	if l.queued >= l.maxQueue || l.wait <= 0 {
		l.rejected++
		l.mu.Unlock()
		return fmt.Errorf("%w: %d in flight, queue full", ErrOverloaded, cap(l.slots))
	}
	l.queued++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.queued--
		l.mu.Unlock()
	}()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-t.C:
		l.mu.Lock()
		l.rejected++
		l.mu.Unlock()
		return fmt.Errorf("%w: queue deadline %s expired", ErrOverloaded, l.wait)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("resilience: Limiter.Release without Acquire")
	}
}

// Stats reports the limiter's live occupancy: holders in flight, waiters
// queued, and total rejections so far.
func (l *Limiter) Stats() (inFlight, queued int, rejected int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.slots), l.queued, l.rejected
}

// Cap returns the maximum number of concurrent holders.
func (l *Limiter) Cap() int { return cap(l.slots) }
