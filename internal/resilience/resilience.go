// Package resilience provides the fault-tolerance primitives the
// invocation path threads through the system: degradation policies for the
// invocation operator β, retry policies with exponential backoff and
// deterministic jitter, per-service circuit breakers, and deterministic
// fault-injection schedules for chaos tests.
//
// The paper's environments are volatile by construction — services
// "register and withdraw dynamically" (Gripay et al., EDBT 2010, Section
// 2.3) — so failure handling is part of the semantics, not an afterthought:
//
//   - Retries are only sound for PASSIVE prototypes. An active invocation
//     has a physical side effect, and re-invoking it would duplicate the
//     query's action set (Definition 8) — exactly the reason the paper's
//     Table 5 rewritings are restricted to passive invocations.
//   - An open circuit breaker is treated as temporary service withdrawal:
//     the service is masked out of discovery, so breaker state flows into
//     the service-discovery X-Relations as natural dynamicity.
//   - Degradation policies decide what β does with a tuple whose
//     invocation failed: abort the query, drop the tuple (the paper's
//     no-service case), or realize the virtual attributes as NULL.
//
// The package has no dependencies on the rest of the repo, so every layer
// (service registry, wire client, continuous executor, PEMS facade) can
// share it without import cycles.
package resilience

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// DegradationPolicy selects what the invocation operator β does with a
// tuple whose physical invocation failed.
type DegradationPolicy uint8

const (
	// Default preserves the legacy behavior of the evaluation context: a
	// one-shot query fails fast, while a caller that installs an error
	// collector skips the failing tuple.
	Default DegradationPolicy = iota
	// FailFast aborts the whole query on the first invocation failure.
	FailFast
	// SkipTuple drops the failing tuple: it contributes no output, exactly
	// like the paper's no-service case (a NULL service reference).
	SkipTuple
	// NullFill keeps the failing tuple, realizing its virtual attributes
	// as NULL — the query shape is preserved, the data is marked unknown.
	NullFill
)

// String renders the DDL spelling of the policy.
func (p DegradationPolicy) String() string {
	switch p {
	case Default:
		return "DEFAULT"
	case FailFast:
		return "FAIL"
	case SkipTuple:
		return "SKIP"
	case NullFill:
		return "NULL"
	}
	return fmt.Sprintf("DegradationPolicy(%d)", uint8(p))
}

// ParsePolicy parses the DDL spelling (FAIL | SKIP | NULL, case-insensitive).
func ParsePolicy(s string) (DegradationPolicy, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "FAIL", "FAILFAST":
		return FailFast, nil
	case "SKIP", "SKIPTUPLE":
		return SkipTuple, nil
	case "NULL", "NULLFILL":
		return NullFill, nil
	case "DEFAULT", "":
		return Default, nil
	}
	return Default, fmt.Errorf("resilience: unknown degradation policy %q (want FAIL, SKIP or NULL)", s)
}

// RetryPolicy describes capped exponential backoff with deterministic
// jitter. The zero value means "no retries".
type RetryPolicy struct {
	// MaxAttempts bounds the total number of attempts (first call
	// included). Values < 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive retries; values
	// <= 1 mean constant backoff.
	Multiplier float64
	// JitterFrac spreads each delay by ±JitterFrac·delay using a
	// deterministic hash of the attempt and key, so tests are repeatable
	// while a fleet of retriers still decorrelates. 0 disables jitter.
	JitterFrac float64
}

// DefaultRetry is a sensible production policy: 3 attempts, 10ms → 40ms
// backoff with 20% jitter.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}
}

// Backoff returns the delay to sleep before retry number `retry` (0-based:
// Backoff(0, key) precedes the second attempt). key decorrelates jitter
// between callers deterministically.
func (p RetryPolicy) Backoff(retry int, key string) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 0; i < retry; i++ {
		d = time.Duration(float64(d) * mult)
		if p.MaxDelay > 0 && d > p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		// Deterministic jitter in [-JitterFrac, +JitterFrac).
		u := Uniform(fmt.Sprintf("%s#%d", key, retry), 0)
		d = time.Duration(float64(d) * (1 + p.JitterFrac*(2*u-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SleepCtx sleeps for d unless the context ends first, in which case the
// context error is returned — a retry loop must not outlive its deadline.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Uniform hashes (key, seed) to a deterministic pseudo-uniform float in
// [0, 1). It backs jittered backoff and fault-injection schedules: same
// inputs, same outcome, run after run.
func Uniform(key string, seed uint64) float64 {
	// FNV-1a over the seed then the key.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// FNV-1a avalanches its final bytes poorly, which skews nearly-identical
	// keys ("…|i0", "…|i1", …) toward the same region of [0,1) — exactly the
	// keys fault plans hash. A splitmix64-style finalizer restores the
	// spread.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// Top 53 bits → [0,1).
	return float64(h>>11) / (1 << 53)
}
