package resilience

import (
	"fmt"
	"time"
)

// FaultPlan is a deterministic fault-injection schedule keyed by the
// discrete evaluation instant (and an arbitrary per-call key). The same
// plan replayed over the same instants yields the same faults — chaos tests
// stay reproducible, matching the paper's determinism-at-an-instant
// assumption (Section 3.2).
//
// All fields compose; the zero value injects nothing.
type FaultPlan struct {
	// Seed decorrelates plans sharing the same rates.
	Seed uint64
	// FailureRate ∈ [0,1] fails a deterministic pseudo-random fraction of
	// calls, hashed from (Seed, instant, key).
	FailureRate float64
	// Latency delays every surviving call (injected slowness).
	Latency time.Duration
	// LatencyJitter adds a deterministic per-call extra delay in
	// [0, LatencyJitter), hashed from (Seed, instant, key) — slow-dependency
	// scenarios stay replayable without real randomness.
	LatencyJitter time.Duration
	// DownIntervals lists [from, to] instant ranges (inclusive) during
	// which every call fails — a withdrawn or crashed service.
	DownIntervals [][2]int64
	// StallIntervals lists [from, to] instant ranges (inclusive) during
	// which every call hangs for StallFor (default 1 minute) instead of
	// answering — a half-dead dependency that accepts work and never
	// replies. Context-aware callers escape via their deadline.
	StallIntervals [][2]int64
	// StallFor bounds a stalled call's hang (so non-context tests cannot
	// wedge forever); zero means one minute.
	StallFor time.Duration
	// FlapPeriod > 0 makes the service alternate availability: down for
	// every odd period of that many instants (instants [p,2p), [3p,4p)…).
	FlapPeriod int64
}

// ErrInjected is the error value faults surface (wrapped with context).
var ErrInjected = fmt.Errorf("resilience: injected fault")

// ShouldFail reports whether the call identified by (at, key) fails under
// the plan.
func (p *FaultPlan) ShouldFail(at int64, key string) bool {
	if p == nil {
		return false
	}
	for _, iv := range p.DownIntervals {
		if at >= iv[0] && at <= iv[1] {
			return true
		}
	}
	if p.FlapPeriod > 0 && (at/p.FlapPeriod)%2 == 1 {
		return true
	}
	if p.FailureRate > 0 && Uniform(fmt.Sprintf("%d|%s", at, key), p.Seed) < p.FailureRate {
		return true
	}
	return false
}

// Delay returns the injected latency for the call identified by (at, key):
// the fixed Latency plus a deterministic jitter in [0, LatencyJitter),
// hashed from (Seed, instant, key). Replaying the same instants yields the
// same delays.
func (p *FaultPlan) Delay(at int64, key string) time.Duration {
	if p == nil {
		return 0
	}
	d := p.Latency
	if p.LatencyJitter > 0 {
		u := Uniform(fmt.Sprintf("jitter|%d|%s", at, key), p.Seed)
		d += time.Duration(u * float64(p.LatencyJitter))
	}
	return d
}

// StallDuration returns how long the call identified by instant at should
// hang (0 when the plan does not stall it). Stalled calls hang then fail
// with ErrInjected — the answer never arrives.
func (p *FaultPlan) StallDuration(at int64) time.Duration {
	if p == nil {
		return 0
	}
	for _, iv := range p.StallIntervals {
		if at >= iv[0] && at <= iv[1] {
			if p.StallFor > 0 {
				return p.StallFor
			}
			return time.Minute
		}
	}
	return 0
}
