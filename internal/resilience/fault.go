package resilience

import (
	"fmt"
	"time"
)

// FaultPlan is a deterministic fault-injection schedule keyed by the
// discrete evaluation instant (and an arbitrary per-call key). The same
// plan replayed over the same instants yields the same faults — chaos tests
// stay reproducible, matching the paper's determinism-at-an-instant
// assumption (Section 3.2).
//
// All fields compose; the zero value injects nothing.
type FaultPlan struct {
	// Seed decorrelates plans sharing the same rates.
	Seed uint64
	// FailureRate ∈ [0,1] fails a deterministic pseudo-random fraction of
	// calls, hashed from (Seed, instant, key).
	FailureRate float64
	// Latency delays every surviving call (injected slowness).
	Latency time.Duration
	// DownIntervals lists [from, to] instant ranges (inclusive) during
	// which every call fails — a withdrawn or crashed service.
	DownIntervals [][2]int64
	// FlapPeriod > 0 makes the service alternate availability: down for
	// every odd period of that many instants (instants [p,2p), [3p,4p)…).
	FlapPeriod int64
}

// ErrInjected is the error value faults surface (wrapped with context).
var ErrInjected = fmt.Errorf("resilience: injected fault")

// ShouldFail reports whether the call identified by (at, key) fails under
// the plan.
func (p *FaultPlan) ShouldFail(at int64, key string) bool {
	if p == nil {
		return false
	}
	for _, iv := range p.DownIntervals {
		if at >= iv[0] && at <= iv[1] {
			return true
		}
	}
	if p.FlapPeriod > 0 && (at/p.FlapPeriod)%2 == 1 {
		return true
	}
	if p.FailureRate > 0 && Uniform(fmt.Sprintf("%d|%s", at, key), p.Seed) < p.FailureRate {
		return true
	}
	return false
}
