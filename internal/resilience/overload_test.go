package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestOverloadPolicyRoundTrip(t *testing.T) {
	for _, p := range []OverloadPolicy{Block, ShedOldest, ShedNewest} {
		got, err := ParseOverloadPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseOverloadPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if p, err := ParseOverloadPolicy("shed_oldest"); err != nil || p != ShedOldest {
		t.Fatalf("case-insensitive parse: %v, %v", p, err)
	}
	if _, err := ParseOverloadPolicy("bogus"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestLimiterFastPathAndRejection(t *testing.T) {
	l := NewLimiter(2, 0, 0)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	// No queue, no wait: third caller is rejected immediately.
	start := time.Now()
	err := l.Acquire(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("rejection was not fast: %v", time.Since(start))
	}
	inFlight, _, rejected := l.Stats()
	if inFlight != 2 || rejected != 1 {
		t.Fatalf("stats: inFlight=%d rejected=%d", inFlight, rejected)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterQueueWaitsForSlot(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan error, 1)
	go func() {
		defer wg.Done()
		got <- l.Acquire(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter queue
	l.Release()
	wg.Wait()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire should succeed after release: %v", err)
	}
	l.Release()
}

func TestLimiterQueueDeadline(t *testing.T) {
	l := NewLimiter(1, 4, 30*time.Millisecond)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	err := l.Acquire(ctx) // queues, then times out: the slot is never released
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded after queue deadline, got %v", err)
	}
	l.Release()
}

func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(1, 4, time.Minute)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := l.Acquire(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	l.Release()
}

func TestFaultPlanDelayDeterministic(t *testing.T) {
	p := &FaultPlan{Seed: 7, Latency: 2 * time.Millisecond, LatencyJitter: 8 * time.Millisecond}
	d1 := p.Delay(42, "svc|proto|k")
	d2 := p.Delay(42, "svc|proto|k")
	if d1 != d2 {
		t.Fatalf("delay not deterministic: %v vs %v", d1, d2)
	}
	if d1 < 2*time.Millisecond || d1 >= 10*time.Millisecond {
		t.Fatalf("delay out of range: %v", d1)
	}
	// Different keys should (for this seed) spread across the jitter range.
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		seen[p.Delay(int64(i), "k")] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant delay across instants")
	}
	var nilPlan *FaultPlan
	if nilPlan.Delay(1, "x") != 0 {
		t.Fatal("nil plan must not delay")
	}
}

func TestFaultPlanStall(t *testing.T) {
	p := &FaultPlan{StallIntervals: [][2]int64{{5, 9}}, StallFor: 50 * time.Millisecond}
	if d := p.StallDuration(4); d != 0 {
		t.Fatalf("instant 4 should not stall, got %v", d)
	}
	if d := p.StallDuration(7); d != 50*time.Millisecond {
		t.Fatalf("instant 7 stall: %v", d)
	}
	dflt := &FaultPlan{StallIntervals: [][2]int64{{0, 0}}}
	if d := dflt.StallDuration(0); d != time.Minute {
		t.Fatalf("default stall duration: %v", d)
	}
}
