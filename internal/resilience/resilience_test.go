package resilience

import (
	"context"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]DegradationPolicy{
		"FAIL": FailFast, "fail": FailFast, "FailFast": FailFast,
		"SKIP": SkipTuple, "skiptuple": SkipTuple,
		"NULL": NullFill, "nullfill": NullFill,
		"": Default, "default": Default,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if NullFill.String() != "NULL" || FailFast.String() != "FAIL" || SkipTuple.String() != "SKIP" {
		t.Error("policy rendering broken")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond, Multiplier: 2}
	if d := p.Backoff(0, "k"); d != 10*time.Millisecond {
		t.Fatalf("first backoff = %v", d)
	}
	if d := p.Backoff(1, "k"); d != 20*time.Millisecond {
		t.Fatalf("second backoff = %v", d)
	}
	if d := p.Backoff(4, "k"); d != 35*time.Millisecond {
		t.Fatalf("capped backoff = %v", d)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := DefaultRetry()
	a, b := p.Backoff(1, "sensor01"), p.Backoff(1, "sensor01")
	if a != b {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	// Jitter stays within ±20% of the nominal 20ms.
	lo, hi := 16*time.Millisecond, 24*time.Millisecond
	if a < lo || a > hi {
		t.Fatalf("jittered backoff %v outside [%v, %v]", a, lo, hi)
	}
	if p.Backoff(1, "sensor01") == p.Backoff(1, "sensor02") {
		t.Fatal("jitter does not decorrelate keys")
	}
}

func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, time.Minute); err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
	if err := SleepCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDeterministicAndSpread(t *testing.T) {
	if Uniform("a", 1) != Uniform("a", 1) {
		t.Fatal("Uniform not deterministic")
	}
	if Uniform("a", 1) == Uniform("a", 2) || Uniform("a", 1) == Uniform("b", 1) {
		t.Fatal("Uniform ignores seed or key")
	}
	// Rough uniformity: mean of many draws near 0.5.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		u := Uniform(string(rune('A'+i%26))+string(rune(i)), 7)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Uniform mean = %v", mean)
	}
}

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerPolicy{FailureThreshold: 3, Cooldown: time.Second, Now: clk.now})

	// Closed: failures below the threshold keep it closed; a success
	// resets the streak.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Failure()
	}
	b.Success()
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after reset+2 failures = %v", b.State())
	}

	// Third consecutive failure trips it open.
	b.Allow()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}

	// Cooldown elapses → half-open admits exactly one probe.
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens (and restarts the cooldown).
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused a call")
	}
}

func TestBreakerSet(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := NewBreakerSet(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	if !s.Allow("never-seen") {
		t.Fatal("untracked key refused")
	}
	if s.State("never-seen") != Closed {
		t.Fatal("untracked key not closed")
	}
	b := s.For("cam")
	b.Allow()
	b.Failure()
	if s.Allow("cam") {
		t.Fatal("open key allowed")
	}
	states := s.States()
	if states["cam"] != Open {
		t.Fatalf("states = %v", states)
	}
	s.Reset("cam")
	if !s.Allow("cam") {
		t.Fatal("reset key refused")
	}
}

func TestFaultPlanDeterministicRate(t *testing.T) {
	p := &FaultPlan{Seed: 42, FailureRate: 0.3}
	fails := 0
	const n = 1000
	for i := 0; i < n; i++ {
		k := "svc" + string(rune(i))
		if p.ShouldFail(int64(i), k) != p.ShouldFail(int64(i), k) {
			t.Fatal("plan not deterministic")
		}
		if p.ShouldFail(int64(i), k) {
			fails++
		}
	}
	if fails < 250 || fails > 350 {
		t.Fatalf("30%% plan failed %d/%d calls", fails, n)
	}
}

func TestFaultPlanIntervalsAndFlap(t *testing.T) {
	p := &FaultPlan{DownIntervals: [][2]int64{{5, 7}}}
	for at := int64(0); at < 10; at++ {
		want := at >= 5 && at <= 7
		if p.ShouldFail(at, "x") != want {
			t.Fatalf("interval plan at %d = %v", at, !want)
		}
	}
	flap := &FaultPlan{FlapPeriod: 3}
	// Up for [0,3), down for [3,6), up for [6,9)…
	for at, want := range map[int64]bool{0: false, 2: false, 3: true, 5: true, 6: false} {
		if flap.ShouldFail(at, "x") != want {
			t.Fatalf("flap plan at %d = %v", at, !want)
		}
	}
	var nilPlan *FaultPlan
	if nilPlan.ShouldFail(0, "x") {
		t.Fatal("nil plan injected a fault")
	}
}
