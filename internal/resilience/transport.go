package resilience

import (
	"context"
	"errors"
)

// Transport-outcome sentinels. The wire client classifies every failed
// round trip into one of two classes, because the two demand opposite
// treatment from the layers above:
//
//   - ErrUnreachable: the request never reached the peer (dial failure, or
//     a write that poisoned the stream before the frame was complete).
//     Nothing executed, so ANY caller — active invocations included — may
//     safely re-route the call to a replica.
//   - ErrOutcomeUnknown: the request was sent but no answer came back
//     (connection lost mid-flight, timeout, cancellation). The peer may
//     have executed it. Passive callers may re-send (Section 3.2
//     determinism makes the duplicate harmless); an active invocation must
//     NOT — its side effect may already have happened, and re-firing would
//     duplicate the query's action set (Definition 8). The federation
//     layer pins such invocations instead.
var (
	ErrUnreachable    = errors.New("resilience: peer unreachable")
	ErrOutcomeUnknown = errors.New("resilience: outcome unknown")
)

// IsTransport reports whether err is a transport-class failure (either
// sentinel) — the trigger for cross-node failover, as opposed to an
// application error the owning node answered with.
func IsTransport(err error) bool {
	return errors.Is(err, ErrUnreachable) || errors.Is(err, ErrOutcomeUnknown)
}

// noResendKey marks contexts of calls that must never be re-sent once they
// may have reached a peer (active invocations).
type noResendKey struct{}

// WithNoResend marks the context's call as non-resendable: a transport
// layer that has sent the request and lost the connection must report
// ErrOutcomeUnknown instead of transparently re-sending on a fresh
// connection. The service registry sets this for active prototypes.
func WithNoResend(ctx context.Context) context.Context {
	return context.WithValue(ctx, noResendKey{}, true)
}

// NoResend reports whether the context forbids re-sending a possibly
// delivered request.
func NoResend(ctx context.Context) bool {
	v, _ := ctx.Value(noResendKey{}).(bool)
	return v
}
