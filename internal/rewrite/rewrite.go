// Package rewrite implements the query-rewriting rules of the Serena
// algebra (Gripay et al., EDBT 2010, Section 3.3 and Table 5), together
// with the classical relational rules that remain valid over X-Relations.
//
// Soundness is governed by query equivalence (Definition 9): a rewrite must
// preserve both the resulting X-Relation and the action set. Realization
// operators may therefore be reorganized freely only when the binding
// patterns involved are PASSIVE; any rule that changes the set of tuples
// reaching an ACTIVE invocation operator is illegal and is rejected by the
// rule guards below.
package rewrite

import (
	"fmt"

	"serena/internal/algebra"
	"serena/internal/query"
	"serena/internal/schema"
)

// Rule is one rewrite rule. Apply inspects only the root of the given node
// and either returns a rewritten tree (changed=true) or reports that the
// rule does not fire. Rules never mutate their input.
type Rule interface {
	// Name identifies the rule in plans and tests.
	Name() string
	// Apply attempts the rewrite at the root of n.
	Apply(n query.Node, env query.Environment) (out query.Node, changed bool, err error)
}

// attrsOf returns the attribute set referenced by a formula.
func attrsOf(f algebra.Formula) map[string]bool {
	s := map[string]bool{}
	for _, a := range f.Attrs(nil) {
		s[a] = true
	}
	return s
}

// outputAttrs returns the output attribute set of a binding pattern.
func outputAttrs(bp schema.BindingPattern) map[string]bool {
	s := map[string]bool{}
	for _, a := range bp.Proto.Output.Names() {
		s[a] = true
	}
	return s
}

// disjoint reports whether two string sets share no element.
func disjoint(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

// resolveInvokeBP resolves the binding pattern an Invoke node will use.
func resolveInvokeBP(inv *query.Invoke, env query.Environment) (schema.BindingPattern, error) {
	cs, err := inv.Child.ResultSchema(env)
	if err != nil {
		return schema.BindingPattern{}, err
	}
	return cs.FindBP(inv.Proto, inv.ServiceAttr)
}

// ---------------------------------------------------------------------------

// PushSelectBelowAssign implements the Table 5 selection/assignment rule:
//
//	σ_F(α_{A:=…}(r)) ≡ α_{A:=…}(σ_F(r))   if A ∉ F
//
// (pushing the selection below the assignment; always legal regardless of
// activity since assignment has no side effect).
type PushSelectBelowAssign struct{}

// Name implements Rule.
func (PushSelectBelowAssign) Name() string { return "push-select-below-assign" }

// Apply implements Rule.
func (PushSelectBelowAssign) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	sel, ok := n.(*query.Select)
	if !ok {
		return n, false, nil
	}
	asg, ok := sel.Child.(*query.Assign)
	if !ok {
		return n, false, nil
	}
	if attrsOf(sel.Formula)[asg.Attr] {
		return n, false, nil // F references the realized attribute
	}
	inner := query.NewSelect(asg.Child, sel.Formula)
	// The pushed selection must stay valid over the child schema (F may
	// reference only real attributes there).
	if cs, err := asg.Child.ResultSchema(env); err != nil {
		return n, false, err
	} else if err := sel.Formula.Validate(cs); err != nil {
		return n, false, nil // e.g. F uses an attribute that is virtual below α
	}
	out := &query.Assign{Child: inner, Attr: asg.Attr, Src: asg.Src, Const: asg.Const}
	return out, true, nil
}

// ---------------------------------------------------------------------------

// PushSelectBelowInvoke implements the Table 5 selection/invocation rule:
//
//	σ_F(β_bp(r)) ≡ β_bp(σ_F(r))   if F ∩ schema(Output_bp) = ∅ and bp passive
//
// This is the headline optimization: it reduces the number of service
// invocations. It is ILLEGAL for active binding patterns — filtering before
// an active invocation shrinks the action set (Example 7: Q1 vs Q1').
type PushSelectBelowInvoke struct{}

// Name implements Rule.
func (PushSelectBelowInvoke) Name() string { return "push-select-below-invoke" }

// Apply implements Rule.
func (PushSelectBelowInvoke) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	sel, ok := n.(*query.Select)
	if !ok {
		return n, false, nil
	}
	inv, ok := sel.Child.(*query.Invoke)
	if !ok {
		return n, false, nil
	}
	bp, err := resolveInvokeBP(inv, env)
	if err != nil {
		return n, false, err
	}
	if bp.Active() {
		return n, false, nil // would change the action set
	}
	if !disjoint(attrsOf(sel.Formula), outputAttrs(bp)) {
		return n, false, nil // F depends on the invocation's outputs
	}
	if cs, err := inv.Child.ResultSchema(env); err != nil {
		return n, false, err
	} else if err := sel.Formula.Validate(cs); err != nil {
		return n, false, nil
	}
	out := query.NewInvoke(query.NewSelect(inv.Child, sel.Formula), inv.Proto, inv.ServiceAttr)
	return out, true, nil
}

// ---------------------------------------------------------------------------

// PushProjectBelowAssign implements the Table 5 projection/assignment rule:
//
//	π_L(α_{A:=B}(r)) ≡ α_{A:=B}(π_L(r))   if A, B ∈ L
//
// For the constant form only A ∈ L is required.
type PushProjectBelowAssign struct{}

// Name implements Rule.
func (PushProjectBelowAssign) Name() string { return "push-project-below-assign" }

// Apply implements Rule.
func (PushProjectBelowAssign) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	prj, ok := n.(*query.Project)
	if !ok {
		return n, false, nil
	}
	asg, ok := prj.Child.(*query.Assign)
	if !ok {
		return n, false, nil
	}
	keep := map[string]bool{}
	for _, a := range prj.Attrs {
		keep[a] = true
	}
	if !keep[asg.Attr] {
		return n, false, nil
	}
	if asg.Src != "" && !keep[asg.Src] {
		return n, false, nil
	}
	out := &query.Assign{Child: query.NewProject(asg.Child, prj.Attrs...), Attr: asg.Attr, Src: asg.Src, Const: asg.Const}
	// Verify the inner projection is legal and produces the same schema.
	if err := validSameSchema(n, out, env); err != nil {
		return n, false, nil //nolint:nilerr // rule simply does not fire
	}
	return out, true, nil
}

// ---------------------------------------------------------------------------

// PushProjectBelowInvoke implements the Table 5 projection/invocation rule:
//
//	π_L(β_bp(r)) ≡ β_bp(π_L(r))
//
// if L keeps bp's service attribute, input attributes and output attributes,
// and bp is passive (for an active bp the rewrite is still result-correct
// but the guard keeps the conservative reading of Section 3.3: active
// invocation operators are not reorganized). Both sides invoke once per
// surviving tuple; since L ⊇ the attributes bp needs, the same invocations
// happen.
type PushProjectBelowInvoke struct{}

// Name implements Rule.
func (PushProjectBelowInvoke) Name() string { return "push-project-below-invoke" }

// Apply implements Rule.
func (PushProjectBelowInvoke) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	prj, ok := n.(*query.Project)
	if !ok {
		return n, false, nil
	}
	inv, ok := prj.Child.(*query.Invoke)
	if !ok {
		return n, false, nil
	}
	bp, err := resolveInvokeBP(inv, env)
	if err != nil {
		return n, false, err
	}
	if bp.Active() {
		return n, false, nil
	}
	keep := map[string]bool{}
	for _, a := range prj.Attrs {
		keep[a] = true
	}
	if !keep[bp.ServiceAttr] || !bp.Proto.Input.SubsetOfNames(keep) || !bp.Proto.Output.SubsetOfNames(keep) {
		return n, false, nil
	}
	out := query.NewInvoke(query.NewProject(inv.Child, prj.Attrs...), inv.Proto, inv.ServiceAttr)
	if err := validSameSchema(n, out, env); err != nil {
		return n, false, nil //nolint:nilerr
	}
	return out, true, nil
}

// ---------------------------------------------------------------------------

// PushAssignBelowJoin implements the Table 5 assignment/join rule:
//
//	α_{A:=…}(r1 ⋈ r2) ≡ α_{A:=…}(r1) ⋈ r2
//
// if A (and B for the attribute form) belong to schema(R1), A is not in
// schema(R2) (so the join treats it identically on both sides), and A's
// realization does not create a new join predicate.
type PushAssignBelowJoin struct{}

// Name implements Rule.
func (PushAssignBelowJoin) Name() string { return "push-assign-below-join" }

// Apply implements Rule.
func (PushAssignBelowJoin) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	asg, ok := n.(*query.Assign)
	if !ok {
		return n, false, nil
	}
	jn, ok := asg.Child.(*query.Join)
	if !ok {
		return n, false, nil
	}
	ls, err := jn.Left.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	rs, err := jn.Right.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	try := func(side query.Node, own, other *schema.Extended, buildJoin func(query.Node) *query.Join) (query.Node, bool) {
		if !own.Has(asg.Attr) || other.Has(asg.Attr) {
			return nil, false
		}
		if asg.Src != "" && !own.Has(asg.Src) {
			return nil, false
		}
		inner := &query.Assign{Child: side, Attr: asg.Attr, Src: asg.Src, Const: asg.Const}
		out := buildJoin(inner)
		if err := validSameSchema(n, out, env); err != nil {
			return nil, false
		}
		return out, true
	}
	if out, ok := try(jn.Left, ls, rs, func(in query.Node) *query.Join { return query.NewJoin(in, jn.Right) }); ok {
		return out, true, nil
	}
	if out, ok := try(jn.Right, rs, ls, func(in query.Node) *query.Join { return query.NewJoin(jn.Left, in) }); ok {
		return out, true, nil
	}
	return n, false, nil
}

// ---------------------------------------------------------------------------

// PushSelectBelowJoin is the classical rule σ_F(r1 ⋈ r2) ≡ σ_F(r1) ⋈ r2
// when F only references attributes real in r1 (symmetrically for r2). It
// remains valid over X-Relations since selection has no effect on binding
// patterns.
type PushSelectBelowJoin struct{}

// Name implements Rule.
func (PushSelectBelowJoin) Name() string { return "push-select-below-join" }

// Apply implements Rule.
func (PushSelectBelowJoin) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	sel, ok := n.(*query.Select)
	if !ok {
		return n, false, nil
	}
	jn, ok := sel.Child.(*query.Join)
	if !ok {
		return n, false, nil
	}
	ls, err := jn.Left.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	rs, err := jn.Right.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	fa := attrsOf(sel.Formula)
	realIn := func(s *schema.Extended) bool {
		for a := range fa {
			if !s.IsReal(a) {
				return false
			}
		}
		return true
	}
	// If the formula's attributes are real on one side AND shared join
	// attributes keep their semantics, push there. Attributes real on one
	// side and present on the other would be filtered asymmetrically, so we
	// require them absent from the other side OR real on both (then push to
	// left only is still sound because the join equates them).
	if realIn(ls) && sideSafe(fa, rs) {
		out := query.NewJoin(query.NewSelect(jn.Left, sel.Formula), jn.Right)
		if err := validSameSchema(n, out, env); err == nil {
			return out, true, nil
		}
		return n, false, nil
	}
	if realIn(rs) && sideSafe(fa, ls) {
		out := query.NewJoin(jn.Left, query.NewSelect(jn.Right, sel.Formula))
		if err := validSameSchema(n, out, env); err == nil {
			return out, true, nil
		}
		return n, false, nil
	}
	return n, false, nil
}

// sideSafe reports whether pushing a formula with attribute set fa away from
// the `other` operand is sound: every formula attribute present in `other`
// must be real there (then the join predicate equates the two sides and
// filtering one side filters the join identically).
func sideSafe(fa map[string]bool, other *schema.Extended) bool {
	for a := range fa {
		if other.Has(a) && !other.IsReal(a) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------

// MergeSelects fuses σ_F(σ_G(r)) into σ_{F∧G}(r).
type MergeSelects struct{}

// Name implements Rule.
func (MergeSelects) Name() string { return "merge-selects" }

// Apply implements Rule.
func (MergeSelects) Apply(n query.Node, _ query.Environment) (query.Node, bool, error) {
	outer, ok := n.(*query.Select)
	if !ok {
		return n, false, nil
	}
	inner, ok := outer.Child.(*query.Select)
	if !ok {
		return n, false, nil
	}
	return query.NewSelect(inner.Child, algebra.NewAnd(inner.Formula, outer.Formula)), true, nil
}

// ---------------------------------------------------------------------------

// validSameSchema checks that the rewritten tree still plans and produces
// the same result schema as the original — a structural sanity guard every
// rule runs before committing.
func validSameSchema(before, after query.Node, env query.Environment) error {
	bs, err := before.ResultSchema(env)
	if err != nil {
		return err
	}
	as, err := after.ResultSchema(env)
	if err != nil {
		return err
	}
	if !bs.Equal(as) {
		return fmt.Errorf("rewrite: schema changed from %v to %v", bs.Names(), as.Names())
	}
	return nil
}

// DefaultRules returns the standard rule set in application order.
func DefaultRules() []Rule {
	return []Rule{
		MergeSelects{},
		PushSelectBelowAssign{},
		PushSelectBelowInvoke{},
		PushSelectBelowJoin{},
		PushProjectBelowAssign{},
		PushProjectBelowInvoke{},
		PushAssignBelowJoin{},
	}
}

// Step is one applied rewrite, for plan explanation.
type Step struct {
	Rule   string
	Result string // SAL rendering after the step
}

// Apply rewrites the tree bottom-up with the given rules until fixpoint,
// returning the rewritten tree and the applied steps. The maximum number of
// passes bounds pathological oscillation (rules here are monotone pushes, so
// the bound is never hit in practice).
func Apply(n query.Node, env query.Environment, rules []Rule) (query.Node, []Step, error) {
	var steps []Step
	const maxPasses = 64
	for pass := 0; pass < maxPasses; pass++ {
		out, changed, err := rewriteOnce(n, env, rules, &steps)
		if err != nil {
			return nil, nil, err
		}
		n = out
		if !changed {
			return n, steps, nil
		}
	}
	return n, steps, fmt.Errorf("rewrite: fixpoint not reached after %d passes", 64)
}

// rewriteOnce performs one bottom-up pass, applying at most one rule per
// node position.
func rewriteOnce(n query.Node, env query.Environment, rules []Rule, steps *[]Step) (query.Node, bool, error) {
	// Rewrite children first.
	changed := false
	switch t := n.(type) {
	case *query.Project:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewProject(c, t.Attrs...), true
		}
	case *query.Select:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewSelect(c, t.Formula), true
		}
	case *query.Rename:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewRename(c, t.Old, t.New), true
		}
	case *query.Assign:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = &query.Assign{Child: c, Attr: t.Attr, Src: t.Src, Const: t.Const}, true
		}
	case *query.Invoke:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewInvoke(c, t.Proto, t.ServiceAttr), true
		}
	case *query.Join:
		l, chL, err := rewriteOnce(t.Left, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := rewriteOnce(t.Right, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if chL || chR {
			n, changed = query.NewJoin(l, r), true
		}
	case *query.SetOp:
		l, chL, err := rewriteOnce(t.Left, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := rewriteOnce(t.Right, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if chL || chR {
			n, changed = &query.SetOp{Kind: t.Kind, Left: l, Right: r}, true
		}
	case *query.Aggregate:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewAggregate(c, t.GroupBy, t.Aggs), true
		}
	case *query.Window:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewWindow(c, t.Period), true
		}
	case *query.Stream:
		c, ch, err := rewriteOnce(t.Child, env, rules, steps)
		if err != nil {
			return nil, false, err
		}
		if ch {
			n, changed = query.NewStream(c, t.Kind), true
		}
	}
	// Then try rules at this node.
	for _, rule := range rules {
		out, ch, err := rule.Apply(n, env)
		if err != nil {
			return nil, false, err
		}
		if ch {
			*steps = append(*steps, Step{Rule: rule.Name(), Result: out.String()})
			return out, true, nil
		}
	}
	return n, changed, nil
}
