package rewrite_test

import (
	"math/rand"
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

func paperSetup() (query.MapEnv, *service.Registry, *paperenv.Devices) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{
		"contacts":     paperenv.Contacts(),
		"cameras":      paperenv.Cameras(),
		"sensors":      paperenv.Sensors(),
		"surveillance": paperenv.Surveillance(),
	}
	return env, reg, dev
}

// mustEquivalent asserts q ≡ rewritten over the given environment.
func mustEquivalent(t *testing.T, before, after query.Node, env query.MapEnv, reg *service.Registry) {
	t.Helper()
	v, err := query.CheckEquivalence(before, after, env, reg, 0)
	if err != nil {
		t.Fatalf("equivalence check failed: %v", err)
	}
	if !v.Equivalent {
		t.Fatalf("rewrite not equivalent: %s\nbefore: %s\nafter:  %s", v.Reason, before, after)
	}
}

func rewriteAll(t *testing.T, q query.Node, env query.Environment) (query.Node, []rewrite.Step) {
	t.Helper()
	out, steps, err := rewrite.Apply(q, env, rewrite.DefaultRules())
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return out, steps
}

func TestTable5RuleSelectBelowAssign(t *testing.T) {
	env, reg, _ := paperSetup()
	// σ_name≠Carla(α_text:=Bonjour(contacts)) → α(σ(contacts)).
	q := query.NewSelect(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Bonjour!")),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla"))))
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-select-below-assign" {
		t.Fatalf("steps = %+v", steps)
	}
	if _, ok := out.(*query.Assign); !ok {
		t.Fatalf("assign should now be the root: %s", out)
	}
	mustEquivalent(t, q, out, env, reg)
}

func TestTable5RuleSelectBelowAssignBlockedByRealizedAttr(t *testing.T) {
	env, _, _ := paperSetup()
	// F references the realized attribute 'text' → rule must not fire.
	q := query.NewSelect(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Bonjour!")),
		algebra.Compare(algebra.Attr("text"), algebra.Eq, algebra.Const(value.NewString("Bonjour!"))))
	out, steps := rewriteAll(t, q, env)
	if len(steps) != 0 {
		t.Fatalf("rule fired illegally: %+v, %s", steps, out)
	}
}

func TestTable5RuleSelectBelowPassiveInvoke(t *testing.T) {
	env, reg, _ := paperSetup()
	// σ_area=office(β_checkPhoto(cameras)) → β(σ(cameras)): fewer passive
	// invocations, same result, same (empty) action set.
	q := query.NewSelect(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office"))))
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-select-below-invoke" {
		t.Fatalf("steps = %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
	// Invocation counts must strictly drop (1 office camera out of 3).
	rBefore, _ := query.Evaluate(q, env, reg, 0)
	rAfter, _ := query.Evaluate(out, env, reg, 0)
	if rAfter.Stats.Passive >= rBefore.Stats.Passive {
		t.Fatalf("pushdown did not reduce invocations: %d → %d",
			rBefore.Stats.Passive, rAfter.Stats.Passive)
	}
}

func TestTable5RuleSelectBelowInvokeBlockedByOutputAttr(t *testing.T) {
	env, _, _ := paperSetup()
	// σ_quality≥5 depends on checkPhoto's output → cannot push.
	q := query.NewSelect(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		algebra.Compare(algebra.Attr("quality"), algebra.Ge, algebra.Const(value.NewInt(5))))
	_, steps := rewriteAll(t, q, env)
	for _, s := range steps {
		if s.Rule == "push-select-below-invoke" {
			t.Fatalf("rule fired despite output dependency: %+v", steps)
		}
	}
}

func TestActiveInvokeBlocksSelectionPushdown(t *testing.T) {
	env, reg, dev := paperSetup()
	// Q1' = σ_name≠Carla(β_sendMessage(α_text:=Bonjour(contacts))). Pushing
	// the σ below the ACTIVE β would turn it into Q1 and change the action
	// set (Example 7) — the rewriter must refuse.
	q1p := query.NewSelect(
		query.NewInvoke(
			query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Bonjour!")),
			"sendMessage", ""),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla"))))
	out, steps := rewriteAll(t, q1p, env)
	for _, s := range steps {
		if s.Rule == "push-select-below-invoke" {
			t.Fatalf("selection pushed below ACTIVE invoke: %+v", steps)
		}
	}
	// Whatever fired (nothing should), the action set must be preserved.
	dev.Messengers["email"].Reset()
	dev.Messengers["jabber"].Reset()
	mustEquivalent(t, q1p, out, env, reg)
}

func TestTable5RuleProjectBelowAssign(t *testing.T) {
	env, reg, _ := paperSetup()
	q := query.NewProject(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Hi")),
		"name", "text")
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-project-below-assign" {
		t.Fatalf("steps = %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
	// Blocked when the projection drops the assigned attribute's source.
	q2 := query.NewProject(
		query.NewAssignAttr(query.NewBase("contacts"), "text", "address"),
		"name", "text") // drops 'address'
	_, steps2 := rewriteAll(t, q2, env)
	for _, s := range steps2 {
		if s.Rule == "push-project-below-assign" {
			t.Fatalf("rule fired despite missing source: %+v", steps2)
		}
	}
}

func TestTable5RuleProjectBelowInvoke(t *testing.T) {
	env, reg, _ := paperSetup()
	// π keeps camera, area, quality, delay — everything checkPhoto needs.
	q := query.NewProject(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		"camera", "area", "quality", "delay")
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-project-below-invoke" {
		t.Fatalf("steps = %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
	// Blocked when L misses an output attribute (schema would change).
	q2 := query.NewProject(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		"camera", "area", "quality")
	_, steps2 := rewriteAll(t, q2, env)
	for _, s := range steps2 {
		if s.Rule == "push-project-below-invoke" {
			t.Fatalf("rule fired despite dropped output: %+v", steps2)
		}
	}
}

func TestTable5RuleAssignBelowJoin(t *testing.T) {
	env, reg, _ := paperSetup()
	// α_text:=Bonjour(contacts ⋈ surveillance): 'text' lives in contacts
	// only → push into the left operand.
	q := query.NewAssignConst(
		query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance")),
		"text", value.NewString("Bonjour!"))
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-assign-below-join" {
		t.Fatalf("steps = %+v", steps)
	}
	if _, ok := out.(*query.Join); !ok {
		t.Fatalf("join should be root after push: %s", out)
	}
	mustEquivalent(t, q, out, env, reg)
}

func TestClassicalSelectBelowJoin(t *testing.T) {
	env, reg, _ := paperSetup()
	q := query.NewSelect(
		query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance")),
		algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString("office"))))
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-select-below-join" {
		t.Fatalf("steps = %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
	// A formula over the shared attribute 'name' may be pushed to either
	// side; result must be preserved.
	q2 := query.NewSelect(
		query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance")),
		algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("Carla"))))
	out2, _ := rewriteAll(t, q2, env)
	mustEquivalent(t, q2, out2, env, reg)
}

func TestMergeSelects(t *testing.T) {
	env, reg, _ := paperSetup()
	q := query.NewSelect(
		query.NewSelect(query.NewBase("contacts"),
			algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla")))),
		algebra.Compare(algebra.Attr("messenger"), algebra.Eq, algebra.Const(value.NewService("email"))))
	out, steps := rewriteAll(t, q, env)
	found := false
	for _, s := range steps {
		if s.Rule == "merge-selects" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merge-selects did not fire: %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
}

func TestQ2PrimeRewritesTowardsQ2(t *testing.T) {
	env, reg, _ := paperSetup()
	// Q2'' = π_photo(β_take(σ_quality≥5(σ_area=office(β_check(cameras))))):
	// the area selection must sink below checkPhoto, reducing invocations
	// like the paper's Q2.
	q := query.NewProject(
		query.NewInvoke(
			query.NewSelect(
				query.NewSelect(
					query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
					algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office")))),
				algebra.Compare(algebra.Attr("quality"), algebra.Ge, algebra.Const(value.NewInt(5)))),
			"takePhoto", ""),
		"photo")
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 {
		t.Fatal("no rewrites fired on Q2''")
	}
	mustEquivalent(t, q, out, env, reg)
	rBefore, _ := query.Evaluate(q, env, reg, 0)
	rAfter, _ := query.Evaluate(out, env, reg, 0)
	if rAfter.Stats.Passive >= rBefore.Stats.Passive {
		t.Fatalf("optimized Q2'' should invoke less: %d → %d",
			rBefore.Stats.Passive, rAfter.Stats.Passive)
	}
	if !strings.Contains(out.String(), `invoke[checkPhoto](select[area = "office"]`) {
		t.Fatalf("area selection not pushed below checkPhoto:\n%s", out)
	}
}

// TestRandomizedRewriteEquivalence fuzzes the rule set: random sensor-style
// environments, random queries built from σ/α/β/π over them, rewritten and
// checked for Definition 9 equivalence.
func TestRandomizedRewriteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	locations := []string{"office", "corridor", "roof", "lab"}
	for trial := 0; trial < 30; trial++ {
		reg, _ := paperenv.MustRegistry()
		// Random extra sensors.
		n := 2 + rng.Intn(6)
		tuples := make([]value.Tuple, 0, n)
		for i := 0; i < n; i++ {
			ref := []string{"sensor01", "sensor06", "sensor07", "sensor22"}[rng.Intn(4)]
			loc := locations[rng.Intn(len(locations))]
			tuples = append(tuples, value.Tuple{value.NewService(ref), value.NewString(loc)})
		}
		sensors := algebra.MustNew(paperenv.SensorsSchema(), tuples)
		env := query.MapEnv{"sensors": sensors}

		var q query.Node = query.NewBase("sensors")
		q = query.NewInvoke(q, "getTemperature", "")
		// Random post-invoke selections that may or may not be pushable.
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("location"), algebra.Eq,
				algebra.Const(value.NewString(locations[rng.Intn(len(locations))]))))
		}
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("temperature"), algebra.Gt,
				algebra.Const(value.NewReal(float64(rng.Intn(40))))))
		}
		if rng.Intn(2) == 0 {
			q = query.NewProject(q, "sensor", "location", "temperature")
		}
		out, _, err := rewrite.Apply(q, env, rewrite.DefaultRules())
		if err != nil {
			t.Fatalf("trial %d: rewrite error: %v\nq = %s", trial, err, q)
		}
		v, err := query.CheckEquivalence(q, out, env, reg, service.Instant(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !v.Equivalent {
			t.Fatalf("trial %d: rewrite broke equivalence (%s)\nbefore: %s\nafter:  %s",
				trial, v.Reason, q, out)
		}
	}
}

func TestRewriteIdempotentAtFixpoint(t *testing.T) {
	env, _, _ := paperSetup()
	q := query.NewSelect(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office"))))
	out1, _, err := rewrite.Apply(q, env, rewrite.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	out2, steps2, err := rewrite.Apply(out1, env, rewrite.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps2) != 0 {
		t.Fatalf("second rewrite pass applied steps: %+v", steps2)
	}
	if out1.String() != out2.String() {
		t.Fatal("fixpoint not stable")
	}
}

func TestPushAssignBelowJoinRightSide(t *testing.T) {
	env, reg, _ := paperSetup()
	// 'text' lives in contacts, which is the RIGHT operand here.
	q := query.NewAssignConst(
		query.NewJoin(query.NewBase("surveillance"), query.NewBase("contacts")),
		"text", value.NewString("Bonjour!"))
	out, steps := rewriteAll(t, q, env)
	if len(steps) == 0 || steps[0].Rule != "push-assign-below-join" {
		t.Fatalf("steps = %+v", steps)
	}
	mustEquivalent(t, q, out, env, reg)
}

func TestPushAssignBelowJoinBlockedBySharedAttr(t *testing.T) {
	env, _, _ := paperSetup()
	// Assigning an attribute present on BOTH sides may not be pushed into
	// one operand (it would change the join attribute set).
	q := query.NewAssignConst(
		query.NewJoin(query.NewBase("contacts"), query.NewBase("msgs")),
		"text", value.NewString("x"))
	env2 := env
	env2["msgs"] = algebra.MustNew(
		schemaWithVirtualText(t), []value.Tuple{{value.NewString("m1")}})
	_, steps := rewriteAll(t, q, env2)
	for _, s := range steps {
		if s.Rule == "push-assign-below-join" {
			t.Fatalf("pushed despite shared attribute: %+v", steps)
		}
	}
}

func TestSelectBelowJoinBlockedByMixedStatus(t *testing.T) {
	env, _, _ := paperSetup()
	// Formula over 'text', which is virtual in contacts but real in msgs:
	// pushing σ_text to the msgs side would be unsound if contacts' side
	// had it real... here it is virtual in contacts, so pushing to msgs is
	// allowed only when contacts' text is not real — verify no crash and
	// equivalence either way.
	env2 := env
	env2["msgs"] = algebra.MustNew(
		schemaWithRealText(t), []value.Tuple{{value.NewString("ping")}})
	q := query.NewSelect(
		query.NewJoin(query.NewBase("contacts"), query.NewBase("msgs")),
		algebra.Compare(algebra.Attr("text"), algebra.Eq, algebra.Const(value.NewString("ping"))))
	reg, _ := paperenv.MustRegistry()
	out, _ := rewriteAll(t, q, env2)
	mustEquivalent(t, q, out, env2, reg)
}

func TestRewriteErrorPropagation(t *testing.T) {
	env, _, _ := paperSetup()
	// Rewriting a plan over an unknown relation surfaces the schema error.
	q := query.NewSelect(query.NewInvoke(query.NewBase("ghost"), "p", ""), algebra.True{})
	if _, _, err := rewrite.Apply(q, env, rewrite.DefaultRules()); err == nil {
		t.Fatal("schema error swallowed")
	}
}

func schemaWithVirtualText(t *testing.T) *schema.Extended {
	t.Helper()
	return schema.MustExtended("msgs", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "mid", Type: value.String}},
		{Attribute: schema.Attribute{Name: "text", Type: value.String}, Virtual: true},
	}, nil)
}

func schemaWithRealText(t *testing.T) *schema.Extended {
	t.Helper()
	return schema.MustExtended("msgs", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "text", Type: value.String}},
	}, nil)
}
