package rewrite_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/schema"
	"serena/internal/value"
)

func TestPushInvokeBelowJoin(t *testing.T) {
	env, reg, _ := paperSetup()
	// β_getTemperature(sensors ⋈ surveillance): the prototype needs only
	// attributes of sensors; outputs don't touch surveillance.
	q := query.NewInvoke(
		query.NewJoin(query.NewBase("sensors"), query.NewBase("surveillance")),
		"getTemperature", "")
	rule := rewrite.PushInvokeBelowJoin{}
	out, changed, err := rule.Apply(q, env)
	if err != nil || !changed {
		t.Fatalf("rule did not fire: %v %v", changed, err)
	}
	if _, ok := out.(*query.Join); !ok {
		t.Fatalf("join should be root after push: %s", out)
	}
	mustEquivalent(t, q, out, env, reg)
}

func TestPushInvokeBelowJoinGuards(t *testing.T) {
	env, _, _ := paperSetup()
	rule := rewrite.PushInvokeBelowJoin{}

	// Active prototype: never pushed.
	active := query.NewInvoke(
		query.NewJoin(
			query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")),
			query.NewBase("surveillance")),
		"sendMessage", "")
	if _, changed, err := rule.Apply(active, env); err != nil || changed {
		t.Fatalf("active invoke pushed: %v %v", changed, err)
	}

	// Input realized only by the join (text virtual in contacts, real from
	// the other operand): cannot push to either side. Build msgs(text).
	// contacts ⋈ msgs realizes text; sendMessage is active anyway, so use a
	// passive lookalike over cameras: takePhoto needs quality which is
	// virtual in cameras — cannot push.
	take := query.NewInvoke(
		query.NewJoin(query.NewBase("cameras"), query.NewBase("qualities")),
		"takePhoto", "")
	env2 := env
	env2["qualities"] = mustQualities(t)
	if _, changed, err := rule.Apply(take, env2); err != nil || changed {
		t.Fatalf("push with join-realized input should be blocked: %v %v", changed, err)
	}

	// Non-invoke/non-join roots: rule is a no-op.
	if _, changed, _ := rule.Apply(query.NewBase("sensors"), env); changed {
		t.Fatal("fired on a base relation")
	}
	if _, changed, _ := rule.Apply(query.NewInvoke(query.NewBase("sensors"), "getTemperature", ""), env); changed {
		t.Fatal("fired on invoke without join")
	}
}

// mustQualities builds a relation providing real 'quality' and 'area'.
func mustQualities(t *testing.T) *algebra.XRelation {
	t.Helper()
	sch := schema.MustExtended("qualities", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "area", Type: value.String}},
		{Attribute: schema.Attribute{Name: "quality", Type: value.Int}},
	}, nil)
	return algebra.MustNew(sch, []value.Tuple{
		{value.NewString("office"), value.NewInt(7)},
	})
}
