package rewrite

import (
	"serena/internal/query"
)

// PushInvokeBelowJoin implements the Table 5 invocation/join rule:
//
//	β_bp(r1 ⋈ r2) ≡ β_bp(r1) ⋈ r2
//
// when bp is PASSIVE, belongs to BP(R1) with all of its input attributes
// real in R1 alone, and none of its output attributes appears in schema(R2)
// (otherwise the realized outputs would change the join attributes). Both
// sides compute the same result: realization adds the same coordinates to
// matching tuples, and passive invocations keep the action set empty —
// dangling r1 tuples are invoked on the pushed side but contribute neither
// results nor actions.
//
// Unlike the selection pushdown this rewrite is not always a win: pushing
// trades |r1 ⋈ r2| invocations for |r1|. It is therefore NOT part of
// DefaultRules(); cost-based callers add it when statistics say the join
// shrinks fan-out (e.g. highly selective joins with duplicated service
// rows).
type PushInvokeBelowJoin struct{}

// Name implements Rule.
func (PushInvokeBelowJoin) Name() string { return "push-invoke-below-join" }

// Apply implements Rule.
func (PushInvokeBelowJoin) Apply(n query.Node, env query.Environment) (query.Node, bool, error) {
	inv, ok := n.(*query.Invoke)
	if !ok {
		return n, false, nil
	}
	jn, ok := inv.Child.(*query.Join)
	if !ok {
		return n, false, nil
	}
	bp, err := resolveInvokeBP(inv, env)
	if err != nil {
		return n, false, err
	}
	if bp.Active() {
		return n, false, nil
	}
	ls, err := jn.Left.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	rs, err := jn.Right.ResultSchema(env)
	if err != nil {
		return n, false, err
	}
	try := func(own, other interface {
		Has(string) bool
		IsReal(string) bool
	}, side query.Node, rebuild func(query.Node) query.Node) (query.Node, bool) {
		// bp must be resolvable and invocable on the chosen operand alone.
		if !own.IsReal(bp.ServiceAttr) {
			return nil, false
		}
		for _, in := range bp.Proto.Input.Names() {
			if !own.IsReal(in) {
				return nil, false
			}
		}
		// Outputs must not leak into the other operand's schema (they would
		// become join attributes) and must be virtual on the own side.
		for _, out := range bp.Proto.Output.Names() {
			if other.Has(out) {
				return nil, false
			}
		}
		pushed := rebuild(query.NewInvoke(side, inv.Proto, inv.ServiceAttr))
		if err := validSameSchema(n, pushed, env); err != nil {
			return nil, false
		}
		return pushed, true
	}
	if out, ok := try(ls, rs, jn.Left, func(in query.Node) query.Node { return query.NewJoin(in, jn.Right) }); ok {
		return out, true, nil
	}
	if out, ok := try(rs, ls, jn.Right, func(in query.Node) query.Node { return query.NewJoin(jn.Left, in) }); ok {
		return out, true, nil
	}
	return n, false, nil
}
