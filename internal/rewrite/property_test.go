package rewrite_test

import (
	"math/rand"
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/service"
	"serena/internal/value"
)

// Property-based tests for the Table 5 rewrite rules: random X-Relations and
// random operator stacks, rewritten to fixpoint and checked for Definition 9
// equivalence (same result AND same action set). Three generators cover the
// three soundness regimes:
//
//   - passive binding patterns, where β may be reorganized freely,
//   - joins with assignments/selections, where only classical rules fire,
//   - an ACTIVE β, which the rewriter must refuse to move (Definition 8).

var (
	propAreas     = []string{"office", "corridor", "roof", "lab"}
	propNames     = []string{"Nicolas", "Carla", "Francois", "Zoe"}
	propCameraRef = []string{"camera01", "camera02", "webcam07"}
	propSensorRef = []string{"sensor01", "sensor06", "sensor07", "sensor22"}
)

// randomCameras builds a cameras X-Relation with 1..6 rows over the
// registered camera services and random areas.
func randomCameras(rng *rand.Rand) *algebra.XRelation {
	n := 1 + rng.Intn(6)
	tuples := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tuples = append(tuples, value.Tuple{
			value.NewService(propCameraRef[rng.Intn(len(propCameraRef))]),
			value.NewString(propAreas[rng.Intn(len(propAreas))]),
		})
	}
	return algebra.MustNew(paperenv.CamerasSchema(), tuples)
}

// randomContacts builds a contacts X-Relation with 1..5 rows bound to the
// registered messenger services.
func randomContacts(rng *rand.Rand) *algebra.XRelation {
	n := 1 + rng.Intn(5)
	tuples := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		name := propNames[rng.Intn(len(propNames))]
		ref := []string{"email", "jabber"}[rng.Intn(2)]
		tuples = append(tuples, value.Tuple{
			value.NewString(name),
			value.NewString(name + "@example.org"),
			value.NewService(ref),
		})
	}
	return algebra.MustNew(paperenv.ContactsSchema(), tuples)
}

// randomSurveillance builds a (name, location) relation with 1..5 rows.
func randomSurveillance(rng *rand.Rand) *algebra.XRelation {
	n := 1 + rng.Intn(5)
	tuples := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tuples = append(tuples, value.Tuple{
			value.NewString(propNames[rng.Intn(len(propNames))]),
			value.NewString(propAreas[rng.Intn(len(propAreas))]),
		})
	}
	return algebra.MustNew(paperenv.SurveillanceSchema(), tuples)
}

// checkDef9 rewrites q and asserts Definition 9 equivalence, returning the
// rewritten plan and steps. Plans that do not evaluate (e.g. a selection
// over an attribute still virtual at that point) are skipped by the caller.
func checkDef9(t *testing.T, trial int, q query.Node, env query.MapEnv, reg *service.Registry) (query.Node, []rewrite.Step) {
	t.Helper()
	out, steps, err := rewrite.Apply(q, env, rewrite.DefaultRules())
	if err != nil {
		t.Fatalf("trial %d: rewrite error: %v\nq = %s", trial, err, q)
	}
	v, err := query.CheckEquivalence(q, out, env, reg, service.Instant(trial))
	if err != nil {
		t.Fatalf("trial %d: equivalence check: %v\nbefore: %s\nafter:  %s", trial, err, q, out)
	}
	if !v.Equivalent {
		t.Fatalf("trial %d: rewrite broke Definition 9 (%s)\nbefore: %s\nafter:  %s",
			trial, v.Reason, q, out)
	}
	return out, steps
}

// TestPropertyPassiveCameraStacks stacks random σ/β/π operators over random
// cameras relations. Every rewrite must preserve result and (empty) action
// set, and pushing selections below passive β must never increase the
// passive invocation count.
func TestPropertyPassiveCameraStacks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		reg, _ := paperenv.MustRegistry()
		env := query.MapEnv{"cameras": randomCameras(rng)}

		var q query.Node = query.NewBase("cameras")
		q = query.NewInvoke(q, "checkPhoto", "")
		// Random selections, in random order, above the invocation: some
		// depend on checkPhoto's outputs (not pushable), some only on base
		// attributes (pushable).
		for _, pick := range rng.Perm(3) {
			switch pick {
			case 0:
				if rng.Intn(2) == 0 {
					q = query.NewSelect(q, algebra.Compare(algebra.Attr("area"), algebra.Eq,
						algebra.Const(value.NewString(propAreas[rng.Intn(len(propAreas))]))))
				}
			case 1:
				if rng.Intn(2) == 0 {
					q = query.NewSelect(q, algebra.Compare(algebra.Attr("quality"), algebra.Ge,
						algebra.Const(value.NewInt(int64(rng.Intn(10))))))
				}
			case 2:
				if rng.Intn(2) == 0 {
					q = query.NewSelect(q, algebra.Compare(algebra.Attr("delay"), algebra.Gt,
						algebra.Const(value.NewReal(float64(rng.Intn(3))))))
				}
			}
		}
		if rng.Intn(3) == 0 {
			q = query.NewProject(q, "camera", "area", "quality", "delay")
		}

		before, err := query.Evaluate(q, env, reg, service.Instant(trial))
		if err != nil {
			t.Fatalf("trial %d: original plan failed: %v\nq = %s", trial, err, q)
		}
		out, _ := checkDef9(t, trial, q, env, reg)
		after, err := query.Evaluate(out, env, reg, service.Instant(trial))
		if err != nil {
			t.Fatalf("trial %d: rewritten plan failed: %v", trial, err)
		}
		if after.Stats.Passive > before.Stats.Passive {
			t.Fatalf("trial %d: rewrite increased passive invocations %d → %d\nbefore: %s\nafter:  %s",
				trial, before.Stats.Passive, after.Stats.Passive, q, out)
		}
	}
}

// TestPropertyJoinAssignStacks randomizes α and σ over contacts ⋈
// surveillance: only classical/assignment rules can fire, and Definition 9
// must hold for every generated plan.
func TestPropertyJoinAssignStacks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		reg, _ := paperenv.MustRegistry()
		env := query.MapEnv{
			"contacts":     randomContacts(rng),
			"surveillance": randomSurveillance(rng),
		}

		var q query.Node = query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance"))
		if rng.Intn(2) == 0 {
			q = query.NewAssignConst(q, "text", value.NewString("Bonjour!"))
		}
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("location"), algebra.Eq,
				algebra.Const(value.NewString(propAreas[rng.Intn(len(propAreas))]))))
		}
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("name"), algebra.Ne,
				algebra.Const(value.NewString(propNames[rng.Intn(len(propNames))]))))
		}
		checkDef9(t, trial, q, env, reg)
	}
}

// TestPropertyActiveInvokeNeverMoves generates random plans around an
// ACTIVE β_sendMessage and asserts (a) no rule moved an operator across the
// active invocation, and (b) the action set — the messages the query sends —
// is bit-for-bit preserved (Definition 8 via Definition 9).
func TestPropertyActiveInvokeNeverMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		reg, _ := paperenv.MustRegistry()
		env := query.MapEnv{"contacts": randomContacts(rng)}

		var q query.Node = query.NewBase("contacts")
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("name"), algebra.Ne,
				algebra.Const(value.NewString(propNames[rng.Intn(len(propNames))]))))
		}
		q = query.NewAssignConst(q, "text", value.NewString("Bonjour!"))
		q = query.NewInvoke(q, "sendMessage", "")
		// Selections ABOVE the active invocation: pushing any of them below
		// would shrink the action set (the paper's Q1 vs Q1', Example 7).
		sieves := 0
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("name"), algebra.Ne,
				algebra.Const(value.NewString(propNames[rng.Intn(len(propNames))]))))
			sieves++
		}
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("sent"), algebra.Eq,
				algebra.Const(value.NewBool(true))))
			sieves++
		}
		if sieves > 0 && rng.Intn(2) == 0 {
			q = query.NewProject(q, "name", "sent")
		}

		out, steps := checkDef9(t, trial, q, env, reg)
		for _, s := range steps {
			if s.Rule == "push-select-below-invoke" || s.Rule == "push-project-below-invoke" {
				t.Fatalf("trial %d: rule %s moved an operator across an ACTIVE β\nbefore: %s\nafter:  %s",
					trial, s.Rule, q, out)
			}
		}
		// Structural double-check: everything below the active invocation is
		// untouched (merge-selects below it would be fine, but our generator
		// never stacks two selections under the invoke).
		if wantSub := subtreeUnderInvoke(q); wantSub != "" {
			if gotSub := subtreeUnderInvoke(out); gotSub != wantSub {
				t.Fatalf("trial %d: subtree under active β changed\nbefore: %s\nafter:  %s", trial, wantSub, gotSub)
			}
		}
	}
}

// subtreeUnderInvoke renders the child of the first Invoke found by
// depth-first walk ("" when the tree has none).
func subtreeUnderInvoke(n query.Node) string {
	if inv, ok := n.(*query.Invoke); ok {
		return inv.Child.String()
	}
	for _, c := range n.Children() {
		if s := subtreeUnderInvoke(c); s != "" {
			return s
		}
	}
	return ""
}

// TestPropertyRewriteFixpointStable re-applies the rewriter to its own
// output across all three generators' shapes: the second pass must be a
// no-op (the rule set is confluent on these plans).
func TestPropertyRewriteFixpointStable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		env := query.MapEnv{"cameras": randomCameras(rng)}
		var q query.Node = query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "")
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("area"), algebra.Eq,
				algebra.Const(value.NewString(propAreas[rng.Intn(len(propAreas))]))))
		}
		if rng.Intn(2) == 0 {
			q = query.NewSelect(q, algebra.Compare(algebra.Attr("quality"), algebra.Ge,
				algebra.Const(value.NewInt(int64(rng.Intn(10))))))
		}
		out1, _, err := rewrite.Apply(q, env, rewrite.DefaultRules())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out2, steps2, err := rewrite.Apply(out1, env, rewrite.DefaultRules())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(steps2) != 0 || out1.String() != out2.String() {
			t.Fatalf("trial %d: fixpoint unstable\nfirst:  %s\nsecond: %s\nsteps: %+v",
				trial, out1, out2, steps2)
		}
		if strings.Contains(out2.String(), "select[true]") {
			t.Fatalf("trial %d: degenerate selection introduced: %s", trial, out2)
		}
	}
}
