// Package optimizer implements logical optimization of Serena queries: a
// cost model in which service invocations dominate (the paper's Section 7
// names "cost models dedicated to pervasive environments" as the goal of
// its optimization work) driving the equivalence-preserving rewrite rules
// of internal/rewrite.
//
// The model is deliberately simple: plan cost is the estimated number of
// tuples flowing through each operator (CPU) plus a large per-invocation
// charge (network + device latency). Because every rewrite rule is
// equivalence-preserving (Definition 9), optimization can never change a
// query's result or action set — only its invocation count and tuple flow.
package optimizer

import (
	"fmt"

	"serena/internal/algebra"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/schema"
)

// Stats supplies base-relation cardinalities.
type Stats interface {
	// Cardinality returns the (estimated) tuple count of a base relation.
	Cardinality(name string) (int64, bool)
}

// EnvStats derives exact cardinalities from a concrete environment.
type EnvStats struct{ Env query.Environment }

// Cardinality implements Stats.
func (s EnvStats) Cardinality(name string) (int64, bool) {
	r, err := s.Env.Relation(name)
	if err != nil {
		return 0, false
	}
	return int64(r.Len()), true
}

// MapStats is a Stats over fixed numbers (for planning without data).
type MapStats map[string]int64

// Cardinality implements Stats.
func (m MapStats) Cardinality(name string) (int64, bool) {
	c, ok := m[name]
	return c, ok
}

// CostModel weights the plan-cost terms.
type CostModel struct {
	// TupleCost is the CPU charge per tuple processed by an operator.
	TupleCost float64
	// PassiveInvokeCost charges one passive service invocation.
	PassiveInvokeCost float64
	// ActiveInvokeCost charges one active invocation (usually equal to the
	// passive cost; actions cannot be moved anyway).
	ActiveInvokeCost float64
	// EqSelectivity, CmpSelectivity and DefaultSelectivity estimate σ.
	EqSelectivity, CmpSelectivity, DefaultSelectivity float64
	// JoinSelectivity estimates the match fraction per shared-real-key
	// probe.
	JoinSelectivity float64
}

// DefaultCostModel returns the standard weights: an invocation costs as
// much as shuffling 1000 tuples, mirroring the paper's setting where
// devices sit across a network.
func DefaultCostModel() CostModel {
	return CostModel{
		TupleCost:          1,
		PassiveInvokeCost:  1000,
		ActiveInvokeCost:   1000,
		EqSelectivity:      0.1,
		CmpSelectivity:     0.33,
		DefaultSelectivity: 0.5,
		JoinSelectivity:    0.1,
	}
}

// Estimate walks a plan and returns its estimated output cardinality and
// total cost under the model.
func Estimate(n query.Node, env query.Environment, stats Stats, cm CostModel) (card, cost float64, err error) {
	switch t := n.(type) {
	case *query.Base:
		c, ok := stats.Cardinality(t.Name)
		if !ok {
			return 0, 0, fmt.Errorf("optimizer: no statistics for relation %q", t.Name)
		}
		return float64(c), float64(c) * cm.TupleCost, nil

	case *query.Project:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		return c, k + c*cm.TupleCost, nil

	case *query.Select:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		return c * selectivity(t.Formula, cm), k + c*cm.TupleCost, nil

	case *query.Rename:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		return c, k + c*cm.TupleCost, nil

	case *query.Assign:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		return c, k + c*cm.TupleCost, nil

	case *query.Invoke:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		per := cm.PassiveInvokeCost
		if bp, bpErr := invokeBP(t, env); bpErr == nil && bp.Active() {
			per = cm.ActiveInvokeCost
		}
		// Fanout 1: each input tuple yields on average one output tuple.
		return c, k + c*per, nil

	case *query.Join:
		cl, kl, err := Estimate(t.Left, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		cr, kr, err := Estimate(t.Right, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		out := cl * cr
		if ls, err1 := t.Left.ResultSchema(env); err1 == nil {
			if rs, err2 := t.Right.ResultSchema(env); err2 == nil {
				if len(schema.SharedRealJoinAttrs(ls, rs)) > 0 {
					out = cl * cr * cm.JoinSelectivity
				}
			}
		}
		return out, kl + kr + (cl+cr+out)*cm.TupleCost, nil

	case *query.SetOp:
		cl, kl, err := Estimate(t.Left, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		cr, kr, err := Estimate(t.Right, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		var out float64
		switch t.Kind {
		case query.UnionOp:
			out = cl + cr
		case query.IntersectOp:
			out = min(cl, cr) * 0.5
		case query.DiffOp:
			out = cl * 0.5
		}
		return out, kl + kr + (cl+cr)*cm.TupleCost, nil

	case *query.Aggregate:
		c, k, err := Estimate(t.Child, env, stats, cm)
		if err != nil {
			return 0, 0, err
		}
		groups := c * 0.1
		if len(t.GroupBy) == 0 {
			groups = 1
		}
		return groups, k + c*cm.TupleCost, nil

	case *query.Window:
		// A window bounds an infinite stream; per instant its content is at
		// most period × arrival-rate tuples. Without rate statistics we use
		// the child estimate.
		return Estimate(t.Child, env, stats, cm)

	case *query.Stream:
		return Estimate(t.Child, env, stats, cm)
	}
	return 0, 0, fmt.Errorf("optimizer: unknown node %T", n)
}

func invokeBP(inv *query.Invoke, env query.Environment) (schema.BindingPattern, error) {
	cs, err := inv.Child.ResultSchema(env)
	if err != nil {
		return schema.BindingPattern{}, err
	}
	return cs.FindBP(inv.Proto, inv.ServiceAttr)
}

func selectivity(f algebra.Formula, cm CostModel) float64 {
	switch t := f.(type) {
	case *algebra.Cmp:
		switch t.Op {
		case algebra.Eq:
			return cm.EqSelectivity
		case algebra.Ne:
			return 1 - cm.EqSelectivity
		case algebra.Contains:
			return cm.DefaultSelectivity
		default:
			return cm.CmpSelectivity
		}
	case *algebra.And:
		s := 1.0
		for _, term := range t.Terms {
			s *= selectivity(term, cm)
		}
		return s
	case *algebra.Or:
		s := 0.0
		for _, term := range t.Terms {
			s += selectivity(term, cm)
		}
		if s > 1 {
			s = 1
		}
		return s
	case *algebra.Not:
		return 1 - selectivity(t.Term, cm)
	case algebra.True, *algebra.True:
		return 1
	}
	return cm.DefaultSelectivity
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Plan is an optimized query with its explanation.
type Plan struct {
	Root       query.Node
	Steps      []rewrite.Step
	CostBefore float64
	CostAfter  float64
}

// Optimizer couples the rewrite rule set, statistics and a cost model.
type Optimizer struct {
	Rules []rewrite.Rule
	Stats Stats
	Model CostModel
}

// New returns an optimizer using the given rules (normally
// rewrite.DefaultRules()), statistics and cost model.
func New(rules []rewrite.Rule, stats Stats, model CostModel) *Optimizer {
	return &Optimizer{Rules: rules, Stats: stats, Model: model}
}

// Optimize rewrites the query to fixpoint (all rules are
// equivalence-preserving, Definition 9) and keeps the cheaper plan under
// the cost model — with degenerate statistics a push could look worse, in
// which case the original plan is kept.
func (o *Optimizer) Optimize(q query.Node, env query.Environment) (*Plan, error) {
	_, before, err := Estimate(q, env, o.Stats, o.Model)
	if err != nil {
		return nil, err
	}
	cur, steps, err := rewrite.Apply(q, env, o.Rules)
	if err != nil {
		return nil, err
	}
	_, after, err := Estimate(cur, env, o.Stats, o.Model)
	if err != nil {
		return nil, err
	}
	if after > before {
		return &Plan{Root: q, Steps: nil, CostBefore: before, CostAfter: before}, nil
	}
	return &Plan{Root: cur, Steps: steps, CostBefore: before, CostAfter: after}, nil
}
