package optimizer_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/optimizer"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/rewrite"
	"serena/internal/value"
)

func env() query.MapEnv {
	return query.MapEnv{
		"contacts":     paperenv.Contacts(),
		"cameras":      paperenv.Cameras(),
		"sensors":      paperenv.Sensors(),
		"surveillance": paperenv.Surveillance(),
	}
}

func TestEnvStatsAndMapStats(t *testing.T) {
	s := optimizer.EnvStats{Env: env()}
	if c, ok := s.Cardinality("contacts"); !ok || c != 3 {
		t.Fatalf("Cardinality(contacts) = %d,%v", c, ok)
	}
	if _, ok := s.Cardinality("ghost"); ok {
		t.Fatal("unknown relation should have no stats")
	}
	m := optimizer.MapStats{"r": 100}
	if c, ok := m.Cardinality("r"); !ok || c != 100 {
		t.Fatal("MapStats broken")
	}
}

func TestEstimateBasics(t *testing.T) {
	e := env()
	stats := optimizer.EnvStats{Env: e}
	cm := optimizer.DefaultCostModel()

	base := query.NewBase("cameras")
	card, cost, err := optimizer.Estimate(base, e, stats, cm)
	if err != nil || card != 3 || cost != 3 {
		t.Fatalf("base estimate = %v/%v/%v", card, cost, err)
	}

	// Invocation dominates: cost jumps by card × 1000.
	inv := query.NewInvoke(base, "checkPhoto", "")
	_, costInv, err := optimizer.Estimate(inv, e, stats, cm)
	if err != nil {
		t.Fatal(err)
	}
	if costInv < 3000 {
		t.Fatalf("invoke cost %v should include 3×1000", costInv)
	}

	// Selection shrinks cardinality.
	sel := query.NewSelect(base,
		algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office"))))
	cardSel, _, err := optimizer.Estimate(sel, e, stats, cm)
	if err != nil || cardSel >= card {
		t.Fatalf("selection should shrink cardinality: %v", cardSel)
	}

	if _, _, err := optimizer.Estimate(query.NewBase("ghost"), e, stats, cm); err == nil {
		t.Fatal("missing stats accepted")
	}
}

func TestEstimateJoinSelectivity(t *testing.T) {
	e := env()
	stats := optimizer.EnvStats{Env: e}
	cm := optimizer.DefaultCostModel()
	// Shared-real join (name): 3×3×0.1.
	j := query.NewJoin(query.NewBase("contacts"), query.NewBase("surveillance"))
	card, _, err := optimizer.Estimate(j, e, stats, cm)
	if err != nil {
		t.Fatal(err)
	}
	if card != 3*3*cm.JoinSelectivity {
		t.Fatalf("join card = %v", card)
	}
	// No shared real attribute → Cartesian estimate.
	cx := query.NewJoin(query.NewBase("cameras"), query.NewBase("contacts"))
	cardX, _, err := optimizer.Estimate(cx, e, stats, cm)
	if err != nil {
		t.Fatal(err)
	}
	if cardX != 9 {
		t.Fatalf("cartesian card = %v, want 9", cardX)
	}
}

func TestEstimateSetOpsAndCombinators(t *testing.T) {
	e := env()
	stats := optimizer.EnvStats{Env: e}
	cm := optimizer.DefaultCostModel()
	c := query.NewBase("contacts")
	u := query.NewUnion(c, c)
	card, _, err := optimizer.Estimate(u, e, stats, cm)
	if err != nil || card != 6 {
		t.Fatalf("union card = %v err %v", card, err)
	}
	i := query.NewIntersect(c, c)
	if card, _, _ := optimizer.Estimate(i, e, stats, cm); card != 1.5 {
		t.Fatalf("intersect card = %v", card)
	}
	d := query.NewDiff(c, c)
	if card, _, _ := optimizer.Estimate(d, e, stats, cm); card != 1.5 {
		t.Fatalf("diff card = %v", card)
	}
	// Formula selectivity combinators.
	and := query.NewSelect(c, algebra.NewAnd(
		algebra.Compare(algebra.Attr("name"), algebra.Eq, algebra.Const(value.NewString("x"))),
		algebra.Compare(algebra.Attr("address"), algebra.Ne, algebra.Const(value.NewString("y")))))
	cardAnd, _, _ := optimizer.Estimate(and, e, stats, cm)
	if cardAnd >= 3*cm.EqSelectivity+0.001 {
		t.Fatalf("AND selectivity should multiply: %v", cardAnd)
	}
	not := query.NewSelect(c, algebra.NewNot(algebra.True{}))
	if cardNot, _, _ := optimizer.Estimate(not, e, stats, cm); cardNot != 0 {
		t.Fatalf("NOT(true) selectivity = %v", cardNot)
	}
}

func TestOptimizeReducesCostAndPreservesSemantics(t *testing.T) {
	e := env()
	reg, _ := paperenv.MustRegistry()
	opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: e}, optimizer.DefaultCostModel())

	// Q2'-style: selection above a passive invoke.
	q := query.NewSelect(
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", ""),
		algebra.Compare(algebra.Attr("area"), algebra.Eq, algebra.Const(value.NewString("office"))))
	plan, err := opt.Optimize(q, e)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CostAfter >= plan.CostBefore {
		t.Fatalf("optimization did not reduce cost: %v → %v", plan.CostBefore, plan.CostAfter)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
	v, err := query.CheckEquivalence(q, plan.Root, e, reg, 0)
	if err != nil || !v.Equivalent {
		t.Fatalf("optimized plan not equivalent: %v %v", v.Reason, err)
	}
}

func TestOptimizeLeavesActiveQueriesAlone(t *testing.T) {
	e := env()
	opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: e}, optimizer.DefaultCostModel())
	// Q1': selection above ACTIVE invoke must not be pushed.
	q := query.NewSelect(
		query.NewInvoke(
			query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("Bonjour!")),
			"sendMessage", ""),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("Carla"))))
	plan, err := opt.Optimize(q, e)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Rule == "push-select-below-invoke" {
			t.Fatalf("active invoke reordered: %+v", plan.Steps)
		}
	}
}

func TestOptimizeNoOpQuery(t *testing.T) {
	e := env()
	opt := optimizer.New(rewrite.DefaultRules(), optimizer.EnvStats{Env: e}, optimizer.DefaultCostModel())
	q := query.NewBase("contacts")
	plan, err := opt.Optimize(q, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.CostBefore != plan.CostAfter {
		t.Fatalf("no-op query changed: %+v", plan)
	}
}

func TestEstimateAllNodeKinds(t *testing.T) {
	e := env()
	stats := optimizer.EnvStats{Env: e}
	cm := optimizer.DefaultCostModel()
	base := query.NewBase("contacts")

	ren := query.NewRename(base, "name", "who")
	if card, _, err := optimizer.Estimate(ren, e, stats, cm); err != nil || card != 3 {
		t.Fatalf("rename estimate = %v %v", card, err)
	}
	asg := query.NewAssignConst(base, "text", value.NewString("x"))
	if card, _, err := optimizer.Estimate(asg, e, stats, cm); err != nil || card != 3 {
		t.Fatalf("assign estimate = %v %v", card, err)
	}
	prj := query.NewProject(base, "name")
	if card, _, err := optimizer.Estimate(prj, e, stats, cm); err != nil || card != 3 {
		t.Fatalf("project estimate = %v %v", card, err)
	}
	win := query.NewWindow(base, 5)
	if card, _, err := optimizer.Estimate(win, e, stats, cm); err != nil || card != 3 {
		t.Fatalf("window estimate = %v %v", card, err)
	}
	str := query.NewStream(base, query.StreamInsertion)
	if card, _, err := optimizer.Estimate(str, e, stats, cm); err != nil || card != 3 {
		t.Fatalf("stream estimate = %v %v", card, err)
	}
	agg := query.NewAggregate(base, []string{"name"},
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	if card, _, err := optimizer.Estimate(agg, e, stats, cm); err != nil || card < 0.29 || card > 0.31 {
		t.Fatalf("grouped aggregate estimate = %v %v", card, err)
	}
	global := query.NewAggregate(base, nil,
		[]algebra.AggSpec{{Func: algebra.Count, As: "n"}})
	if card, _, err := optimizer.Estimate(global, e, stats, cm); err != nil || card != 1 {
		t.Fatalf("global aggregate estimate = %v %v", card, err)
	}
	// Active invoke charged with the active cost.
	inv := query.NewInvoke(
		query.NewAssignConst(base, "text", value.NewString("x")), "sendMessage", "")
	if _, cost, err := optimizer.Estimate(inv, e, stats, cm); err != nil || cost < 3000 {
		t.Fatalf("active invoke estimate = %v %v", cost, err)
	}
	// Selectivity of OR saturates at 1.
	orSel := query.NewSelect(base, algebra.NewOr(
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("a"))),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("b"))),
		algebra.Compare(algebra.Attr("name"), algebra.Ne, algebra.Const(value.NewString("c")))))
	if card, _, _ := optimizer.Estimate(orSel, e, stats, cm); card > 3 {
		t.Fatalf("OR selectivity must cap at 1: %v", card)
	}
	// contains uses default selectivity.
	cont := query.NewSelect(base,
		algebra.Compare(algebra.Attr("name"), algebra.Contains, algebra.Const(value.NewString("a"))))
	if card, _, _ := optimizer.Estimate(cont, e, stats, cm); card != 3*cm.DefaultSelectivity {
		t.Fatalf("contains selectivity = %v", card)
	}
}

func TestCostBasedInvokeJoinChoice(t *testing.T) {
	// With PushInvokeBelowJoin added to the rule set, the optimizer keeps
	// whichever side its estimates favour — and never breaks equivalence.
	e := env()
	reg, _ := paperenv.MustRegistry()
	rules := append(rewrite.DefaultRules(), rewrite.PushInvokeBelowJoin{})
	opt := optimizer.New(rules, optimizer.EnvStats{Env: e}, optimizer.DefaultCostModel())
	q := query.NewInvoke(
		query.NewJoin(query.NewBase("sensors"), query.NewBase("surveillance")),
		"getTemperature", "")
	plan, err := opt.Optimize(q, e)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CostAfter > plan.CostBefore {
		t.Fatalf("optimizer must never pick a worse plan: %v → %v", plan.CostBefore, plan.CostAfter)
	}
	v, err := query.CheckEquivalence(q, plan.Root, e, reg, 0)
	if err != nil || !v.Equivalent {
		t.Fatalf("cost-based choice broke equivalence: %v %v", v.Reason, err)
	}
}
