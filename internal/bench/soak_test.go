package bench_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/obs"
	"serena/internal/pems"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/value"
)

// The overload soak drives a PEMS well past its sustainable rate — a
// producer flooding a bounded SHED_NEWEST stream, latency-faulted service
// invocations, a tick budget tight enough that every tick overruns, passive
// coalescing and an admission limiter all on at once — and asserts the
// overload machinery keeps its promises: sheds are honored and counted,
// buffer depth and retained stream state stay bounded, and the ACTION SET of
// the active query is exactly what an unloaded control run produces
// (Definition 8 is load-invariant).

const soakPrototypes = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
`

const soakTables = `
EXTENDED STREAM readings ( v INTEGER ) ON OVERLOAD SHED_NEWEST CAPACITY 64;
EXTENDED STREAM events ( title STRING );
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
INSERT INTO contacts VALUES ("Carla", "carla@elysee.fr", email);
`

const (
	soakPassiveQ = `window[4](readings)`
	soakActiveQ  = `invoke[sendMessage](assign[text := title](join(
		select[name = "Carla"](contacts),
		project[title](window[3600](events)))))`
)

// buildSoakEnv assembles the scenario; faulty selects whether the messenger
// is wrapped in deterministic latency faults (the overloaded run) or bare
// (the control run).
func buildSoakEnv(t *testing.T, faulty bool) *pems.PEMS {
	t.Helper()
	p := pems.New()
	t.Cleanup(p.Close)
	if err := p.ExecuteDDL(soakPrototypes); err != nil {
		t.Fatal(err)
	}
	var messenger service.Service = device.NewMessenger("email", "email")
	if faulty {
		messenger = service.NewFaulty(messenger, &resilience.FaultPlan{
			Latency:       200 * time.Microsecond,
			LatencyJitter: 300 * time.Microsecond,
			Seed:          7,
		})
	}
	if err := p.Registry().Register(messenger); err != nil {
		t.Fatal(err)
	}
	if err := p.ExecuteDDL(soakTables); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("hot", soakPassiveQ, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterQuery("forward", soakActiveQ, false); err != nil {
		t.Fatal(err)
	}
	return p
}

// runSoakTicks inserts one deterministic event per instant and ticks; both
// the overloaded and the control run execute this exact schedule, so the
// active query's input — and therefore its action set — must come out
// identical.
func runSoakTicks(t *testing.T, p *pems.PEMS, ticks int, perTick func(i int)) {
	t.Helper()
	ev, ok := p.Executor().Relation("events")
	if !ok {
		t.Fatal("events stream missing")
	}
	for i := 0; i < ticks; i++ {
		title := fmt.Sprintf("evt-%03d", i)
		if err := ev.Insert(p.Now()+1, value.Tuple{value.NewString(title)}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Tick(); err != nil {
			t.Fatal(err)
		}
		if perTick != nil {
			perTick(i)
		}
	}
}

func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	ticks := 150
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		// On failure, dump the full metrics registry for the CI artifact.
		if path := os.Getenv("SOAK_DUMP"); path != "" {
			_ = os.WriteFile(path, []byte(obs.Default.Snapshot().Render()), 0o644)
		}
	})

	p := buildSoakEnv(t, true)
	p.SetTickBudget(100 * time.Microsecond) // far below the faulted β latency: ticks overrun
	p.SetOverloadCoalescing(true)
	p.SetAdmissionLimit(2, 4, 50*time.Millisecond)

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// The producer floods the bounded stream flat-out — far beyond the
	// 64-per-tick drain capacity, the "~2× overload" of the harness in
	// spirit and then some.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := p.Offer("readings", value.Tuple{value.NewInt(int64(i))}); err != nil {
				t.Errorf("offer: %v", err)
				return
			}
		}
	}()

	readings, _ := p.Executor().Relation("readings")
	maxDepth, maxEvents := 0, 0
	runSoakTicks(t, p, ticks, func(int) {
		if d := readings.IngestDepth(); d > maxDepth {
			maxDepth = d
		}
		if n := readings.EventCount(); n > maxEvents {
			maxEvents = n
		}
	})
	close(stop)
	wg.Wait()

	// Sheds were honored and counted; the buffer never exceeded capacity.
	offered, shed := readings.IngestStats()
	if shed == 0 {
		t.Fatalf("flooding a 64-cap buffer shed nothing (offered %d)", offered)
	}
	if maxDepth > 64 {
		t.Fatalf("ingest depth %d exceeded capacity 64", maxDepth)
	}
	// Retained stream state stays bounded by drain rate × window, not by
	// the offered volume.
	if maxEvents > 64*(4+2) {
		t.Fatalf("readings retained %d events; window trimming not holding", maxEvents)
	}
	if p.TickOverruns() == 0 {
		t.Fatal("100µs budget never overran under faulted invocations")
	}
	hot, _ := p.Executor().Query("hot")
	if hot.Coalesced() == 0 {
		t.Fatal("passive query never coalesced despite constant overruns")
	}
	forward, _ := p.Executor().Query("forward")
	if forward.Coalesced() != 0 {
		t.Fatal("active query was coalesced — action soundness violated")
	}

	// Memory stays bounded: the run handled hundreds of thousands of
	// offered tuples through a 64-slot buffer; heap growth must reflect the
	// buffer, not the offered volume.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 64<<20 {
		t.Fatalf("heap grew %d MiB over the soak", grew>>20)
	}

	// The unloaded control: same event schedule, no flood, no faults, no
	// budget, no admission limit. The overloaded action set must be EXACTLY
	// the control's.
	ctl := buildSoakEnv(t, false)
	runSoakTicks(t, ctl, ticks, nil)
	ctlForward, _ := ctl.Executor().Query("forward")
	if forward.Actions().Len() == 0 {
		t.Fatal("soak produced no actions; harness generated no load")
	}
	if !forward.Actions().Equal(ctlForward.Actions()) {
		t.Fatalf("overloaded action set differs from control\n overloaded: %s\n control:    %s",
			forward.Actions(), ctlForward.Actions())
	}
	t.Logf("soak: %d ticks, %d offered, %d shed, max depth %d, %d overruns, %d coalesced evals, %d actions",
		ticks, offered, shed, maxDepth, p.TickOverruns(), hot.Coalesced(), forward.Actions().Len())
}
