package bench

import (
	"fmt"
	"strings"
	"time"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
	"serena/internal/wire"
)

// Table is one experiment's result, printable as an aligned text table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		_ = i
		b.WriteString(strings.Repeat("-", w))
		b.WriteString("  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f2(f float64) string       { return fmt.Sprintf("%.2f", f) }
func d2(d time.Duration) string { return d.Round(time.Microsecond).String() }

// PushdownSweep is experiment B-1: invocation counts and wall time for the
// naive plan (invoke all sensors, then filter) vs the Table 5 rewrite
// (filter, then invoke), across selectivities 1/locations.
func PushdownSweep(sensors int, locationCounts []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:     "B-1",
		Title:  fmt.Sprintf("selection pushdown below invocation (%d sensors, %s/invoke)", sensors, latency),
		Header: []string{"selectivity", "invocations(naive)", "invocations(opt)", "time(naive)", "time(opt)", "speedup"},
		Notes:  "optimized invocations ≈ selectivity × naive; speedup grows as selectivity shrinks",
	}
	for _, locs := range locationCounts {
		env, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: locs, ServiceLatency: latency, Seed: 7})
		if err != nil {
			return nil, err
		}
		loc := env.Locations[0]
		naive := env.NaivePushdownQuery(loc)
		opt := env.OptimizedPushdownQuery(loc)

		start := time.Now()
		rn, err := query.Evaluate(naive, env.Relations, env.Registry, 0)
		if err != nil {
			return nil, err
		}
		tn := time.Since(start)
		start = time.Now()
		ro, err := query.Evaluate(opt, env.Relations, env.Registry, 1)
		if err != nil {
			return nil, err
		}
		to := time.Since(start)
		if !rn.Relation.EqualContents(ro.Relation) {
			return nil, fmt.Errorf("bench: pushdown changed the result at %d locations", locs)
		}
		speedup := float64(tn) / float64(to)
		t.Rows = append(t.Rows, []string{
			f2(1 / float64(locs)),
			fmt.Sprint(rn.Stats.Passive), fmt.Sprint(ro.Stats.Passive),
			d2(tn), d2(to), f2(speedup),
		})
	}
	return t, nil
}

// LatencySweep is experiment B-3: the optimizer's advantage as a function
// of per-invocation service latency (fixed 10% selectivity).
func LatencySweep(sensors int, latencies []time.Duration) (*Table, error) {
	t := &Table{
		ID:     "B-3",
		Title:  fmt.Sprintf("invocation-latency sweep (%d sensors, 10%% selectivity)", sensors),
		Header: []string{"latency/invoke", "time(naive)", "time(opt)", "speedup"},
		Notes:  "speedup approaches 1/selectivity as latency dominates",
	}
	for _, lat := range latencies {
		env, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 10, ServiceLatency: lat, Seed: 7})
		if err != nil {
			return nil, err
		}
		loc := env.Locations[0]
		start := time.Now()
		if _, err := query.Evaluate(env.NaivePushdownQuery(loc), env.Relations, env.Registry, 0); err != nil {
			return nil, err
		}
		tn := time.Since(start)
		start = time.Now()
		if _, err := query.Evaluate(env.OptimizedPushdownQuery(loc), env.Relations, env.Registry, 1); err != nil {
			return nil, err
		}
		to := time.Since(start)
		t.Rows = append(t.Rows, []string{d2(lat), d2(tn), d2(to), f2(float64(tn) / float64(to))})
	}
	return t, nil
}

// WindowSweep is experiment B-4: continuous-query tick latency as a
// function of window size, at a fixed stream arrival rate.
func WindowSweep(rate int, windows []int64, ticks int) (*Table, error) {
	t := &Table{
		ID:     "B-4",
		Title:  fmt.Sprintf("window-size sweep (%d tuples/instant, %d ticks)", rate, ticks),
		Header: []string{"window", "avg tick", "result size"},
		Notes:  "tick cost grows with window contents (W[p] rescans p instants of arrivals)",
	}
	for _, w := range windows {
		reg := service.NewRegistry()
		exec := cq.NewExecutor(reg)
		sch := FeedLikeStreamSchema("events")
		events := stream.NewInfinite(sch)
		if err := exec.AddRelation(events); err != nil {
			return nil, err
		}
		seq := 0
		exec.AddSource(func(at service.Instant) error {
			for i := 0; i < rate; i++ {
				seq++
				err := events.Insert(at, value.Tuple{
					value.NewInt(int64(seq)),
					value.NewString(fmt.Sprintf("payload-%d", seq)),
				})
				if err != nil {
					return err
				}
			}
			return nil
		})
		q, err := exec.Register("w", query.NewWindow(query.NewBase("events"), w))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := exec.RunUntil(service.Instant(ticks - 1)); err != nil {
			return nil, err
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w),
			d2(el / time.Duration(ticks)),
			fmt.Sprint(q.LastResult().Len()),
		})
	}
	return t, nil
}

// FeedLikeStreamSchema returns a simple (id INTEGER, payload STRING) stream
// schema for synthetic stream workloads.
func FeedLikeStreamSchema(name string) *schema.Extended {
	return schema.MustExtended(name, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "id", Type: value.Int}},
		{Attribute: schema.Attribute{Name: "payload", Type: value.String}},
	}, nil)
}

// blobProto declares getBlob() : (blob BLOB) for the wire payload sweep.
func blobProto() *schema.Prototype {
	return schema.MustPrototype("getBlob", nil,
		schema.MustRel(schema.Attribute{Name: "blob", Type: value.Blob}), false)
}

// newXRelation rebuilds an X-Relation over an existing relation's schema.
func newXRelation(base *algebra.XRelation, rows []value.Tuple) (*algebra.XRelation, error) {
	return algebra.New(base.Schema(), rows)
}

// DiscoverySweep is experiment B-5: wall time for a core ERM to discover
// and register N services announced by M Local-ERM TCP nodes.
func DiscoverySweep(serviceCounts []int, nodes int) (*Table, error) {
	t := &Table{
		ID:     "B-5",
		Title:  fmt.Sprintf("service discovery scalability (%d TCP nodes)", nodes),
		Header: []string{"services", "discovery time", "per service"},
		Notes:  "time from first announcement to full central registration",
	}
	for _, n := range serviceCounts {
		bus := discovery.NewInProcBus()
		central := service.NewRegistry()
		if err := central.RegisterPrototype(device.GetTemperatureProto()); err != nil {
			return nil, err
		}
		m := discovery.NewManager(central, bus)
		m.Start()
		var ns []*discovery.Node
		perNode := n / nodes
		if perNode < 1 {
			perNode = 1
		}
		made := 0
		for i := 0; i < nodes && made < n; i++ {
			node := discovery.NewNode(fmt.Sprintf("node%02d", i), bus)
			if err := node.Registry().RegisterPrototype(device.GetTemperatureProto()); err != nil {
				return nil, err
			}
			for j := 0; j < perNode && made < n; j++ {
				made++
				if err := node.Registry().Register(device.NewSensor(fmt.Sprintf("s%05d", made), "lab", 20)); err != nil {
					return nil, err
				}
			}
			ns = append(ns, node)
		}
		start := time.Now()
		for _, node := range ns {
			if err := node.Start("127.0.0.1:0"); err != nil {
				return nil, err
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for len(central.Refs()) < made && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		el := time.Since(start)
		if len(central.Refs()) < made {
			return nil, fmt.Errorf("bench: discovery incomplete: %d/%d", len(central.Refs()), made)
		}
		for _, node := range ns {
			_ = node.Stop()
		}
		m.Stop()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(made), d2(el), d2(el / time.Duration(made)),
		})
	}
	return t, nil
}

// WireSweep is experiment B-6: remote (TCP) vs local invocation latency as
// blob payload size grows.
func WireSweep(payloads []int, iters int) (*Table, error) {
	t := &Table{
		ID:     "B-6",
		Title:  "remote invocation over TCP vs in-process",
		Header: []string{"payload", "local/invoke", "remote/invoke", "slowdown"},
		Notes:  "remote cost = serialization + loopback round trip; grows with payload",
	}
	for _, size := range payloads {
		reg := service.NewRegistry()
		proto := blobProto()
		if err := reg.RegisterPrototype(proto); err != nil {
			return nil, err
		}
		payload := make([]byte, size)
		svc := service.NewFunc("blobber", map[string]service.InvokeFunc{
			"getBlob": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				return []value.Tuple{{value.NewBlob(payload)}}, nil
			},
		})
		if err := reg.Register(svc); err != nil {
			return nil, err
		}
		// Local.
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := reg.Invoke("getBlob", "blobber", nil, service.Instant(i)); err != nil {
				return nil, err
			}
		}
		local := time.Since(start) / time.Duration(iters)
		// Remote.
		srv := wire.NewServer("node", reg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		client, err := wire.Dial(addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := client.Invoke("getBlob", "blobber", nil, service.Instant(i)); err != nil {
				return nil, err
			}
		}
		remote := time.Since(start) / time.Duration(iters)
		_ = client.Close()
		_ = srv.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", size), d2(local), d2(remote), f2(float64(remote) / float64(local)),
		})
	}
	return t, nil
}

// HybridSweep is experiment B-7: throughput of the hybrid data×service
// query across environment sizes.
func HybridSweep(sensorCounts []int, iters int) (*Table, error) {
	t := &Table{
		ID:     "B-7",
		Title:  "hybrid query throughput (surveillance ⋈ σ(β(σ(sensors))))",
		Header: []string{"sensors", "evals/s", "avg invocations/eval"},
		Notes:  "per-eval invocations stay at sensors/locations thanks to the pushed selection",
	}
	for _, n := range sensorCounts {
		env, err := Generate(Config{Sensors: n, Cameras: 1, Contacts: 20, Locations: 10, Seed: 7})
		if err != nil {
			return nil, err
		}
		q := env.HybridQuery(env.Locations[0], 10)
		var invocations int64
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, err := query.Evaluate(q, env.Relations, env.Registry, service.Instant(i))
			if err != nil {
				return nil, err
			}
			invocations += res.Stats.Passive
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			f2(float64(iters) / el.Seconds()),
			f2(float64(invocations) / float64(iters)),
		})
	}
	return t, nil
}

// DeltaInvocationAblation is ablation A-2: physical invocations over T
// ticks for a persisting relation, with the Section 4.2 delta semantics
// (invoke only new tuples) vs naive per-tick re-invocation.
func DeltaInvocationAblation(sensors, ticks int) (*Table, error) {
	t := &Table{
		ID:     "A-2",
		Title:  fmt.Sprintf("delta invocation vs naive re-invocation (%d sensors, %d ticks)", sensors, ticks),
		Header: []string{"mode", "physical invocations"},
		Notes:  "delta ≈ sensors (first tick only); naive = sensors × ticks",
	}
	// Delta: the continuous executor's native behaviour.
	env, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 1, Seed: 7})
	if err != nil {
		return nil, err
	}
	exec := cq.NewExecutor(env.Registry)
	rel := stream.NewFinite(env.Relations["sensors"].Schema())
	for _, tu := range env.Relations["sensors"].Tuples() {
		if err := rel.Insert(0, tu); err != nil {
			return nil, err
		}
	}
	if err := exec.AddRelation(rel); err != nil {
		return nil, err
	}
	q, err := exec.Register("t", query.NewInvoke(query.NewBase("sensors"), "getTemperature", ""))
	if err != nil {
		return nil, err
	}
	if err := exec.RunUntil(service.Instant(ticks - 1)); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"delta (Section 4.2)", fmt.Sprint(q.Stats().Passive)})

	// Naive: fresh one-shot evaluation per tick.
	env2, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 1, Seed: 7})
	if err != nil {
		return nil, err
	}
	var naive int64
	oneShot := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	for i := 0; i < ticks; i++ {
		res, err := query.Evaluate(oneShot, env2.Relations, env2.Registry, service.Instant(i))
		if err != nil {
			return nil, err
		}
		naive += res.Stats.Passive
	}
	t.Rows = append(t.Rows, []string{"naive re-invocation", fmt.Sprint(naive)})
	return t, nil
}

// MemoAblation is ablation A-4: per-instant memoization of passive
// invocations on a relation with duplicated service references.
func MemoAblation(sensors, dups int) (*Table, error) {
	t := &Table{
		ID:     "A-4",
		Title:  fmt.Sprintf("instant memoization (%d sensors, ×%d duplicated refs)", sensors, dups),
		Header: []string{"mode", "physical invocations", "memo hits"},
		Notes:  "duplicated (proto, ref, input) triples collapse to one physical call",
	}
	env, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: dups, Seed: 7})
	if err != nil {
		return nil, err
	}
	// Build a relation where every sensor appears `dups` times with
	// different locations (same ref → same invocation key).
	base := env.Relations["sensors"]
	var rows []value.Tuple
	for _, tu := range base.Tuples() {
		for d := 0; d < dups; d++ {
			rows = append(rows, value.Tuple{tu[0], value.NewString(fmt.Sprintf("alias%02d", d))})
		}
	}
	dupRel, err := newXRelation(base, rows)
	if err != nil {
		return nil, err
	}
	relations := query.MapEnv{"sensors": dupRel}
	qn := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")

	ctx := query.NewContext(relations, env.Registry, 0)
	if _, err := qn.Eval(ctx); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"memo on", fmt.Sprint(ctx.Stats.Passive), fmt.Sprint(ctx.Stats.Memoized)})

	ctx2 := query.NewContext(relations, env.Registry, 1)
	ctx2.Memo = nil
	if _, err := qn.Eval(ctx2); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"memo off", fmt.Sprint(ctx2.Stats.Passive), "0"})
	return t, nil
}

// ParallelInvocationSweep is experiment B-8: wall time of a latency-bound
// invocation operator as invocation parallelism grows (Section 5.1:
// asynchronous invocation handling; sound per Section 3.2 determinism).
func ParallelInvocationSweep(sensors int, latency time.Duration, workers []int) (*Table, error) {
	t := &Table{
		ID:     "B-8",
		Title:  fmt.Sprintf("parallel invocation (%d sensors, %s/invoke)", sensors, latency),
		Header: []string{"parallelism", "time", "speedup vs sequential"},
		Notes:  "time ≈ ceil(sensors/parallelism) × latency until scheduling overhead dominates",
	}
	env, err := Generate(Config{Sensors: sensors, Cameras: 1, Contacts: 1, Locations: 1, ServiceLatency: latency, Seed: 7})
	if err != nil {
		return nil, err
	}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	var sequential time.Duration
	for i, w := range workers {
		ctx := query.NewContext(env.Relations, env.Registry, service.Instant(i))
		ctx.Parallelism = w
		start := time.Now()
		if _, err := query.EvaluateCtx(q, ctx); err != nil {
			return nil, err
		}
		el := time.Since(start)
		if i == 0 {
			sequential = el
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), d2(el), f2(float64(sequential) / float64(el)),
		})
	}
	return t, nil
}
