// Package bench provides the workload generators and experiment harness of
// the hybrid-query benchmark — the benchmark for pervasive environments the
// paper names as future work (Gripay et al., EDBT 2010, Section 7, the
// OPTIMACS project): parameterized populations of sensor/camera/messenger
// services, environment relations of configurable size and selectivity,
// injectable service latency, and query generators for the data × services
// × streams mixes the evaluation measures.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// Config parameterizes a generated environment.
type Config struct {
	Sensors  int // number of temperature sensors
	Cameras  int // number of cameras
	Contacts int // number of contacts (messenger-reachable)
	// Locations is the number of distinct locations; selections on one
	// location thus have selectivity ≈ 1/Locations.
	Locations int
	// ServiceLatency is an injected synchronous delay per invocation,
	// emulating device/network round trips.
	ServiceLatency time.Duration
	Seed           int64
}

// DefaultConfig returns a small, fast environment.
func DefaultConfig() Config {
	return Config{Sensors: 100, Cameras: 10, Contacts: 10, Locations: 10, Seed: 1}
}

// Env is a generated benchmark environment.
type Env struct {
	Config    Config
	Registry  *service.Registry
	Relations query.MapEnv
	Sensors   []*device.Sensor
	Cameras   []*device.Camera
	Messenger *device.Messenger
	Locations []string
}

// latencyService injects a fixed latency in front of a service.
type latencyService struct {
	service.Service
	d time.Duration
}

// Invoke implements service.Service.
func (l latencyService) Invoke(proto string, in value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if l.d > 0 {
		time.Sleep(l.d)
	}
	return l.Service.Invoke(proto, in, at)
}

// Generate builds an environment: Sensors sensor services spread over
// Locations, a sensors X-Relation (sensor, location, temperature VIRTUAL),
// Cameras camera services with a cameras X-Relation, Contacts contacts
// reachable through one messenger, and the Table 1 prototypes.
func Generate(cfg Config) (*Env, error) {
	if cfg.Locations < 1 {
		cfg.Locations = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := service.NewRegistry()
	for _, p := range device.ScenarioPrototypes() {
		if err := reg.RegisterPrototype(p); err != nil {
			return nil, err
		}
	}
	env := &Env{Config: cfg, Registry: reg, Relations: query.MapEnv{}}
	for i := 0; i < cfg.Locations; i++ {
		env.Locations = append(env.Locations, fmt.Sprintf("loc%03d", i))
	}

	wrap := func(s service.Service) service.Service {
		if cfg.ServiceLatency > 0 {
			return latencyService{Service: s, d: cfg.ServiceLatency}
		}
		return s
	}

	// Sensors + sensors relation.
	sensorSchema := schema.MustExtended("sensors", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "location", Type: value.String}},
		{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}, Virtual: true},
	}, []schema.BindingPattern{{Proto: device.GetTemperatureProto(), ServiceAttr: "sensor"}})
	var sensorRows []value.Tuple
	for i := 0; i < cfg.Sensors; i++ {
		ref := fmt.Sprintf("sensor%04d", i)
		loc := env.Locations[i%cfg.Locations]
		s := device.NewSensor(ref, loc, 15+rng.Float64()*10)
		env.Sensors = append(env.Sensors, s)
		if err := reg.Register(wrap(s)); err != nil {
			return nil, err
		}
		sensorRows = append(sensorRows, value.Tuple{value.NewService(ref), value.NewString(loc)})
	}
	sensors, err := algebra.New(sensorSchema, sensorRows)
	if err != nil {
		return nil, err
	}
	env.Relations["sensors"] = sensors

	// Cameras + cameras relation.
	cameraSchema := schema.MustExtended("cameras", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "camera", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "area", Type: value.String}},
		{Attribute: schema.Attribute{Name: "quality", Type: value.Int}, Virtual: true},
		{Attribute: schema.Attribute{Name: "delay", Type: value.Real}, Virtual: true},
		{Attribute: schema.Attribute{Name: "photo", Type: value.Blob}, Virtual: true},
	}, []schema.BindingPattern{
		{Proto: device.CheckPhotoProto(), ServiceAttr: "camera"},
		{Proto: device.TakePhotoProto(), ServiceAttr: "camera"},
	})
	var cameraRows []value.Tuple
	for i := 0; i < cfg.Cameras; i++ {
		ref := fmt.Sprintf("camera%04d", i)
		area := env.Locations[i%cfg.Locations]
		c := device.NewCamera(ref, area, 5+int64(rng.Intn(5)), 0.1)
		env.Cameras = append(env.Cameras, c)
		if err := reg.Register(wrap(c)); err != nil {
			return nil, err
		}
		cameraRows = append(cameraRows, value.Tuple{value.NewService(ref), value.NewString(area)})
	}
	cameras, err := algebra.New(cameraSchema, cameraRows)
	if err != nil {
		return nil, err
	}
	env.Relations["cameras"] = cameras

	// Contacts + messenger.
	env.Messenger = device.NewMessenger("email", "email")
	if err := reg.Register(wrap(env.Messenger)); err != nil {
		return nil, err
	}
	contactSchema := schema.MustExtended("contacts", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "name", Type: value.String}},
		{Attribute: schema.Attribute{Name: "address", Type: value.String}},
		{Attribute: schema.Attribute{Name: "text", Type: value.String}, Virtual: true},
		{Attribute: schema.Attribute{Name: "messenger", Type: value.Service}},
		{Attribute: schema.Attribute{Name: "sent", Type: value.Bool}, Virtual: true},
	}, []schema.BindingPattern{{Proto: device.SendMessageProto(), ServiceAttr: "messenger"}})
	var contactRows []value.Tuple
	for i := 0; i < cfg.Contacts; i++ {
		contactRows = append(contactRows, value.Tuple{
			value.NewString(fmt.Sprintf("contact%04d", i)),
			value.NewString(fmt.Sprintf("contact%04d@example.org", i)),
			value.NewService("email"),
		})
	}
	contacts, err := algebra.New(contactSchema, contactRows)
	if err != nil {
		return nil, err
	}
	env.Relations["contacts"] = contacts

	// A surveillance-style plain relation mapping contacts to locations.
	survSchema := schema.MustExtended("surveillance", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "name", Type: value.String}},
		{Attribute: schema.Attribute{Name: "location", Type: value.String}},
	}, nil)
	var survRows []value.Tuple
	for i := 0; i < cfg.Contacts; i++ {
		survRows = append(survRows, value.Tuple{
			value.NewString(fmt.Sprintf("contact%04d", i)),
			value.NewString(env.Locations[i%cfg.Locations]),
		})
	}
	surveillance, err := algebra.New(survSchema, survRows)
	if err != nil {
		return nil, err
	}
	env.Relations["surveillance"] = surveillance
	return env, nil
}

// MustGenerate is Generate panicking on error.
func MustGenerate(cfg Config) *Env {
	e, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NaivePushdownQuery builds σ_location=loc(β_getTemperature(sensors)) —
// the unoptimized plan invoking every sensor.
func (e *Env) NaivePushdownQuery(loc string) query.Node {
	return query.NewSelect(
		query.NewInvoke(query.NewBase("sensors"), "getTemperature", ""),
		algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString(loc))))
}

// OptimizedPushdownQuery builds β_getTemperature(σ_location=loc(sensors)) —
// the Table 5 rewrite invoking only matching sensors.
func (e *Env) OptimizedPushdownQuery(loc string) query.Node {
	return query.NewInvoke(
		query.NewSelect(query.NewBase("sensors"),
			algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString(loc)))),
		"getTemperature", "")
}

// HybridQuery builds the benchmark's mixed data×service query: join the
// surveillance relation with per-location mean-style sensor readings above
// a threshold, i.e.
//
//	surveillance ⋈ σ_temperature>θ(β_getTemperature(σ_location=loc(sensors)))
func (e *Env) HybridQuery(loc string, threshold float64) query.Node {
	readings := query.NewSelect(
		query.NewInvoke(
			query.NewSelect(query.NewBase("sensors"),
				algebra.Compare(algebra.Attr("location"), algebra.Eq, algebra.Const(value.NewString(loc)))),
			"getTemperature", ""),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(threshold))))
	return query.NewJoin(query.NewBase("surveillance"), readings)
}
