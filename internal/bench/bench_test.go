package bench_test

import (
	"strconv"
	"strings"
	"testing"

	"serena/internal/bench"
	"serena/internal/query"
)

func TestGenerate(t *testing.T) {
	env, err := bench.Generate(bench.Config{Sensors: 20, Cameras: 5, Contacts: 7, Locations: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Sensors) != 20 || len(env.Cameras) != 5 {
		t.Fatalf("devices = %d/%d", len(env.Sensors), len(env.Cameras))
	}
	if env.Relations["sensors"].Len() != 20 || env.Relations["contacts"].Len() != 7 {
		t.Fatalf("relations = %d/%d", env.Relations["sensors"].Len(), env.Relations["contacts"].Len())
	}
	if got := len(env.Registry.Implementing("getTemperature")); got != 20 {
		t.Fatalf("registered sensors = %d", got)
	}
	if len(env.Locations) != 4 {
		t.Fatalf("locations = %v", env.Locations)
	}
	// Degenerate location count clamps.
	env2 := bench.MustGenerate(bench.Config{Sensors: 1, Cameras: 1, Contacts: 1, Locations: 0})
	if len(env2.Locations) != 1 {
		t.Fatal("locations clamp broken")
	}
}

func TestPushdownQueriesAgree(t *testing.T) {
	env := bench.MustGenerate(bench.Config{Sensors: 30, Cameras: 1, Contacts: 1, Locations: 5, Seed: 9})
	loc := env.Locations[2]
	rn, err := query.Evaluate(env.NaivePushdownQuery(loc), env.Relations, env.Registry, 0)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := query.Evaluate(env.OptimizedPushdownQuery(loc), env.Relations, env.Registry, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Relation.EqualContents(ro.Relation) {
		t.Fatal("naive and optimized plans disagree")
	}
	if ro.Stats.Passive >= rn.Stats.Passive {
		t.Fatalf("optimized plan should invoke less: %d vs %d", ro.Stats.Passive, rn.Stats.Passive)
	}
	if rn.Stats.Passive != 30 || ro.Stats.Passive != 6 {
		t.Fatalf("invocations = %d/%d, want 30/6", rn.Stats.Passive, ro.Stats.Passive)
	}
}

func TestHybridQuery(t *testing.T) {
	env := bench.MustGenerate(bench.Config{Sensors: 20, Cameras: 1, Contacts: 10, Locations: 5, Seed: 9})
	q := env.HybridQuery(env.Locations[0], 0) // threshold 0: all readings pass
	res, err := query.Evaluate(q, env.Relations, env.Registry, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 contacts watch loc0 (10 contacts over 5 locations), 4 sensors in
	// loc0 → 8 joined rows.
	if res.Relation.Len() != 8 {
		t.Fatalf("hybrid result = %d rows, want 8", res.Relation.Len())
	}
}

func TestExperimentTablesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	b1, err := bench.PushdownSweep(20, []int{1, 2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, b1, 3, func(row []string) bool {
		n, _ := strconv.Atoi(row[1])
		o, _ := strconv.Atoi(row[2])
		return o <= n
	})
	b4, err := bench.WindowSweep(10, []int64{1, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, b4, 2, nil)
	a2, err := bench.DeltaInvocationAblation(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Rows[0][1] != "10" || a2.Rows[1][1] != "50" {
		t.Fatalf("delta ablation = %v", a2.Rows)
	}
	a4, err := bench.MemoAblation(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a4.Rows[0][1] != "10" || a4.Rows[1][1] != "30" {
		t.Fatalf("memo ablation = %v", a4.Rows)
	}
	b7, err := bench.HybridSweep([]int{10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, b7, 1, nil)
}

func TestWireAndDiscoveryExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiments are not short")
	}
	b6, err := bench.WireSweep([]int{64, 4096}, 20)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, b6, 2, nil)
	b5, err := bench.DiscoverySweep([]int{8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, b5, 1, nil)
}

func assertShape(t *testing.T, tbl *bench.Table, rows int, check func([]string) bool) {
	t.Helper()
	if len(tbl.Rows) != rows {
		t.Fatalf("%s: %d rows, want %d", tbl.ID, len(tbl.Rows), rows)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("%s: ragged row %v", tbl.ID, row)
		}
		if check != nil && !check(row) {
			t.Fatalf("%s: shape violated in row %v", tbl.ID, row)
		}
	}
	out := tbl.String()
	if !strings.Contains(out, tbl.ID) || !strings.Contains(out, tbl.Header[0]) {
		t.Fatalf("%s: rendering broken:\n%s", tbl.ID, out)
	}
}
