package stream

import (
	"sync"
	"testing"
	"time"

	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/value"
)

func ingestSchema(t *testing.T) *schema.Extended {
	t.Helper()
	ext, err := schema.NewExtended("s", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "v", Type: value.Int}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

func tup(t *testing.T, sch *schema.Extended, v int64) value.Tuple {
	t.Helper()
	return value.Tuple{value.NewInt(v)}
}

func TestOfferWithoutPolicyFails(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	if err := x.Offer(tup(t, x.Schema(), 1)); err == nil {
		t.Fatal("offer without policy must fail")
	}
}

func TestShedOldestKeepsFreshest(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	x.SetOverloadPolicy(resilience.ShedOldest, 3)
	for v := int64(1); v <= 5; v++ {
		if err := x.Offer(tup(t, x.Schema(), v)); err != nil {
			t.Fatalf("offer %d: %v", v, err)
		}
	}
	if d := x.IngestDepth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	offered, shed := x.IngestStats()
	if offered != 5 || shed != 2 {
		t.Fatalf("offered=%d shed=%d, want 5, 2", offered, shed)
	}
	n, err := x.DrainIngest(10)
	if err != nil || n != 3 {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
	// The freshest three tuples (3,4,5) survive; the oldest two were shed.
	rows := x.InsertedIn(9, 10)
	if len(rows) != 3 {
		t.Fatalf("inserted rows: %d", len(rows))
	}
	for i, want := range []int64{3, 4, 5} {
		if got := rows[i][0].Int(); got != want {
			t.Fatalf("row %d = %v, want %d", i, rows[i][0], want)
		}
	}
}

func TestShedNewestKeepsOldest(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	x.SetOverloadPolicy(resilience.ShedNewest, 3)
	for v := int64(1); v <= 5; v++ {
		if err := x.Offer(tup(t, x.Schema(), v)); err != nil {
			t.Fatalf("offer %d: %v", v, err)
		}
	}
	if _, shed := func() (int64, int64) { return x.IngestStats() }(); shed != 2 {
		t.Fatalf("shed = %d, want 2", shed)
	}
	if _, err := x.DrainIngest(10); err != nil {
		t.Fatal(err)
	}
	rows := x.InsertedIn(9, 10)
	for i, want := range []int64{1, 2, 3} {
		if got := rows[i][0].Int(); got != want {
			t.Fatalf("row %d = %v, want %d", i, rows[i][0], want)
		}
	}
}

func TestBlockBackpressure(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	x.SetOverloadPolicy(resilience.Block, 2)
	if err := x.Offer(tup(t, x.Schema(), 1)); err != nil {
		t.Fatal(err)
	}
	if err := x.Offer(tup(t, x.Schema(), 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	blocked := make(chan struct{})
	go func() {
		defer wg.Done()
		close(blocked)
		if err := x.Offer(tup(t, x.Schema(), 3)); err != nil { // blocks until drain
			t.Errorf("blocked offer: %v", err)
		}
	}()
	<-blocked
	time.Sleep(20 * time.Millisecond)
	if d := x.IngestDepth(); d != 2 {
		t.Fatalf("depth before drain = %d, want 2 (producer must be blocked)", d)
	}
	if n, err := x.DrainIngest(1); err != nil || n != 2 {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
	wg.Wait() // producer unblocked by the drain
	if n, err := x.DrainIngest(2); err != nil || n != 1 {
		t.Fatalf("second drain: n=%d err=%v", n, err)
	}
	if _, shed := x.IngestStats(); shed != 0 {
		t.Fatalf("BLOCK must never shed, shed=%d", shed)
	}
}

func TestCloseIngestUnblocksProducer(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	x.SetOverloadPolicy(resilience.Block, 1)
	if err := x.Offer(tup(t, x.Schema(), 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Offer(tup(t, x.Schema(), 2)) }()
	time.Sleep(10 * time.Millisecond)
	x.CloseIngest()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("offer after close should fail")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not unblock producer")
	}
}

func TestOfferConformsEagerly(t *testing.T) {
	x := NewInfinite(ingestSchema(t))
	x.SetOverloadPolicy(resilience.ShedOldest, 4)
	bad := value.Tuple{value.NewString("not-an-int"), value.NewString("extra")}
	if err := x.Offer(bad); err == nil {
		t.Fatal("malformed tuple must fail at offer time")
	}
}
