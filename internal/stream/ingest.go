package stream

import (
	"fmt"
	"sync"

	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/value"
)

// Package-level ingest metrics. Per-relation shed counts carry the relation
// name as a label so .metrics shows which stream is losing data.
var (
	obsIngestOffered = obs.Default.Counter("stream.ingest.offered")
	obsIngestShed    = obs.Default.Counter("stream.ingest.shed")
)

// ingestState is the bounded staging buffer between producers and the tick
// loop. Producers Offer tuples at any rate; the executor drains the buffer
// at the start of each tick and inserts the survivors at the tick instant.
// The buffer has its own lock — an Offer never contends with query
// evaluation reading the relation.
//
// Durability note: buffered tuples are NOT yet durable. A tuple becomes
// part of the XD-Relation (and hence of the write-ahead log) only when a
// tick drains it; tuples still in the buffer at a crash are lost, exactly
// as if the overload policy had shed them. Both subtract from the stream
// before Definition 9 evaluation ever sees them, so recovery replays a
// prefix-consistent history.
type ingestState struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	buf      []value.Tuple
	capacity int
	policy   resilience.OverloadPolicy
	shed     int64
	offered  int64
	closed   bool

	shedCounter *obs.Counter
	depthGauge  *obs.Gauge
}

// SetOverloadPolicy bounds the relation's ingest path: producers go through
// a buffer of at most capacity tuples drained once per tick, and policy
// decides what happens when the buffer is full (BLOCK backpressure,
// SHED_OLDEST, SHED_NEWEST). capacity < 1 defaults to 1024. Calling it
// again reconfigures the buffer in place (existing buffered tuples are
// kept, trimmed to the new capacity by shedding oldest).
func (x *XDRelation) SetOverloadPolicy(policy resilience.OverloadPolicy, capacity int) {
	if capacity < 1 {
		capacity = DefaultIngestCapacity
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.ingest == nil {
		st := &ingestState{
			shedCounter: obs.Default.Counter(obs.Key("stream.ingest.shed", x.sch.Name())),
			depthGauge:  obs.Default.Gauge(obs.Key("stream.ingest.depth", x.sch.Name())),
		}
		st.notFull = sync.NewCond(&st.mu)
		x.ingest = st
	}
	st := x.ingest
	st.mu.Lock()
	st.policy = policy
	st.capacity = capacity
	for len(st.buf) > capacity {
		st.buf = st.buf[1:]
		st.shed++
		st.shedCounter.Inc()
		obsIngestShed.Inc()
	}
	st.notFull.Broadcast()
	st.mu.Unlock()
}

// DefaultIngestCapacity is the buffer bound used when DDL or callers give
// no explicit CAPACITY.
const DefaultIngestCapacity = 1024

// OverloadPolicy returns the configured ingest policy, capacity, and
// whether ingest buffering is enabled at all.
func (x *XDRelation) OverloadPolicy() (policy resilience.OverloadPolicy, capacity int, enabled bool) {
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return resilience.Block, 0, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.policy, st.capacity, true
}

// Offer stages a tuple for insertion at the next tick, subject to the
// relation's overload policy. The tuple is schema-conformed now, so a
// malformed tuple fails at the producer instead of poisoning the tick
// loop. Under BLOCK a full buffer makes Offer wait; under SHED_OLDEST /
// SHED_NEWEST a full buffer sheds (counted, not an error — shedding is the
// policy working as configured). Offer errors only for malformed tuples or
// when no overload policy is configured.
func (x *XDRelation) Offer(t value.Tuple) error {
	c, err := x.sch.RealRel().Conforms(t)
	if err != nil {
		return fmt.Errorf("stream: %s: offer: %w", x.Name(), err)
	}
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("stream: %s: offer without overload policy (use SetOverloadPolicy or ON OVERLOAD)", x.Name())
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.offered++
	obsIngestOffered.Inc()
	for len(st.buf) >= st.capacity {
		if st.closed {
			return fmt.Errorf("stream: %s: offer after close", x.Name())
		}
		switch st.policy {
		case resilience.Block:
			st.notFull.Wait()
			continue
		case resilience.ShedOldest:
			st.buf = st.buf[1:]
		case resilience.ShedNewest:
			// The offered tuple itself is the victim.
		}
		st.shed++
		st.shedCounter.Inc()
		obsIngestShed.Inc()
		if st.policy == resilience.ShedNewest {
			st.depthGauge.Set(int64(len(st.buf)))
			return nil
		}
		break
	}
	if st.closed {
		return fmt.Errorf("stream: %s: offer after close", x.Name())
	}
	st.buf = append(st.buf, c)
	st.depthGauge.Set(int64(len(st.buf)))
	return nil
}

// DrainIngest moves every buffered tuple into the relation at instant at
// (the tick instant), unblocking any producers waiting on backpressure. It
// returns how many tuples were inserted. Insertion goes through the normal
// Insert path, so drained tuples hit the write-ahead log and the current
// multiset exactly like direct inserts.
func (x *XDRelation) DrainIngest(at service.Instant) (int, error) {
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	batch := st.buf
	st.buf = nil
	st.depthGauge.Set(0)
	st.notFull.Broadcast()
	st.mu.Unlock()
	for i, t := range batch {
		if err := x.Insert(at, t); err != nil {
			return i, fmt.Errorf("stream: %s: drain: %w", x.Name(), err)
		}
	}
	return len(batch), nil
}

// IngestDepth returns the number of tuples currently buffered.
func (x *XDRelation) IngestDepth() int {
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// IngestStats returns how many tuples were offered and how many were shed
// since the overload policy was configured.
func (x *XDRelation) IngestStats() (offered, shed int64) {
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.offered, st.shed
}

// CloseIngest permanently unblocks producers waiting on backpressure;
// subsequent Offers fail. Buffered tuples remain drainable.
func (x *XDRelation) CloseIngest() {
	x.mu.RLock()
	st := x.ingest
	x.mu.RUnlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.closed = true
	st.notFull.Broadcast()
	st.mu.Unlock()
}
