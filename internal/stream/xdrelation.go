// Package stream implements eXtended Dynamic relations — XD-Relations —
// the continuous half of the Serena framework (Gripay et al., EDBT 2010,
// Section 4): time-indexed multisets of tuples over an extended relation
// schema, in the style of CQL. A finite XD-Relation supports insertions and
// deletions and has, at every instant, a finite instantaneous relation; an
// infinite XD-Relation is an append-only stream queried through windows.
package stream

import (
	"fmt"
	"sort"
	"sync"

	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// EventKind tags insertions and deletions.
type EventKind uint8

// Event kinds.
const (
	Insert EventKind = iota
	Delete
)

// Event is one change to an XD-Relation at a given instant.
type Event struct {
	At    service.Instant
	Kind  EventKind
	Tuple value.Tuple
}

// XDRelation is a dynamic relation: a mapping from time instants to
// multisets of tuples over an extended schema (Section 4.1). It is safe for
// concurrent use. Events may only be appended at non-decreasing instants.
type XDRelation struct {
	mu       sync.RWMutex
	sch      *schema.Extended
	infinite bool
	events   []Event // ordered by At
	lastAt   service.Instant
	// current multiset (finite relations): tuple key → (tuple, count)
	current map[string]*entry
	// onEvent, when set, observes every accepted event in log order (the
	// durability layer appends them to its write-ahead log). Called with
	// the relation lock held; the callback must not re-enter the relation.
	onEvent func(Event)
	// ingest, when configured via SetOverloadPolicy, bounds the producer
	// path with a per-relation staging buffer drained once per tick (see
	// ingest.go). It has its own lock; x.mu only guards the pointer.
	ingest *ingestState
	// ephemeral relations (the sys$ self-telemetry feeds) are excluded
	// from durability: never WAL-attached, never checkpointed, re-seeded
	// by their source after recovery.
	ephemeral bool
}

type entry struct {
	tuple value.Tuple
	count int
}

// NewFinite creates a finite XD-Relation (a dynamic table: insertions and
// deletions allowed, instantaneous relation always finite).
func NewFinite(sch *schema.Extended) *XDRelation {
	return &XDRelation{sch: sch, current: make(map[string]*entry), lastAt: -1}
}

// NewInfinite creates an infinite XD-Relation (an append-only stream).
func NewInfinite(sch *schema.Extended) *XDRelation {
	return &XDRelation{sch: sch, infinite: true, current: make(map[string]*entry), lastAt: -1}
}

// Schema returns the extended relation schema.
func (x *XDRelation) Schema() *schema.Extended { return x.sch }

// Infinite reports whether the XD-Relation is an append-only stream.
func (x *XDRelation) Infinite() bool { return x.infinite }

// Name returns the schema's relation symbol.
func (x *XDRelation) Name() string { return x.sch.Name() }

// MarkEphemeral flags the relation as excluded from durability (WAL and
// checkpoints). Used by the self-telemetry subsystem for sys$ relations,
// whose contents are re-seeded from live engine state after recovery.
func (x *XDRelation) MarkEphemeral() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ephemeral = true
}

// Ephemeral reports whether the relation is excluded from durability.
func (x *XDRelation) Ephemeral() bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.ephemeral
}

// LastInstant returns the instant of the latest event, or -1 when empty.
func (x *XDRelation) LastInstant() service.Instant {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.lastAt
}

// Insert appends a tuple at the given instant. Instants must be
// non-decreasing across all events.
func (x *XDRelation) Insert(at service.Instant, t value.Tuple) error {
	c, err := x.sch.RealRel().Conforms(t)
	if err != nil {
		return fmt.Errorf("stream: %s: %w", x.Name(), err)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if at < x.lastAt {
		return fmt.Errorf("stream: %s: event at instant %d before last instant %d", x.Name(), at, x.lastAt)
	}
	x.lastAt = at
	ev := Event{At: at, Kind: Insert, Tuple: c}
	x.events = append(x.events, ev)
	// Ephemeral streams (the sys$ telemetry relations) skip the current
	// multiset: it would grow one entry per appended row forever, and
	// nothing reads Current() on a stream — evaluation goes through the
	// event log, and checkpoints skip ephemeral relations entirely.
	if !(x.infinite && x.ephemeral) {
		k := c.Key()
		if e, ok := x.current[k]; ok {
			e.count++
		} else {
			x.current[k] = &entry{tuple: c, count: 1}
		}
	}
	if x.onEvent != nil {
		x.onEvent(ev)
	}
	return nil
}

// Delete removes one occurrence of the tuple at the given instant. Streams
// (infinite XD-Relations) are append-only and reject deletion; deleting a
// tuple that is not present errors.
func (x *XDRelation) Delete(at service.Instant, t value.Tuple) error {
	if x.infinite {
		return fmt.Errorf("stream: %s: streams are append-only", x.Name())
	}
	c, err := x.sch.RealRel().Conforms(t)
	if err != nil {
		return fmt.Errorf("stream: %s: %w", x.Name(), err)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if at < x.lastAt {
		return fmt.Errorf("stream: %s: event at instant %d before last instant %d", x.Name(), at, x.lastAt)
	}
	k := c.Key()
	e, ok := x.current[k]
	if !ok || e.count == 0 {
		return fmt.Errorf("stream: %s: deleting absent tuple %s", x.Name(), c)
	}
	x.lastAt = at
	ev := Event{At: at, Kind: Delete, Tuple: c}
	x.events = append(x.events, ev)
	e.count--
	if e.count == 0 {
		delete(x.current, k)
	}
	if x.onEvent != nil {
		x.onEvent(ev)
	}
	return nil
}

// Current returns the instantaneous multiset now (after all events),
// expanded to a tuple slice. Only meaningful for finite XD-Relations; for
// streams it returns everything ever inserted and should be avoided in
// favour of InsertedIn.
func (x *XDRelation) Current() []value.Tuple {
	x.mu.RLock()
	defer x.mu.RUnlock()
	keys := make([]string, 0, len(x.current))
	for k := range x.current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []value.Tuple
	for _, k := range keys {
		e := x.current[k]
		for i := 0; i < e.count; i++ {
			out = append(out, e.tuple)
		}
	}
	return out
}

// At reconstructs the instantaneous multiset at instant τ by replaying the
// event log (used for late observers and tests; live evaluation uses
// Current/InsertedIn).
func (x *XDRelation) At(at service.Instant) []value.Tuple {
	x.mu.RLock()
	defer x.mu.RUnlock()
	counts := map[string]*entry{}
	for _, ev := range x.events {
		if ev.At > at {
			break
		}
		k := ev.Tuple.Key()
		e, ok := counts[k]
		if !ok {
			e = &entry{tuple: ev.Tuple}
			counts[k] = e
		}
		if ev.Kind == Insert {
			e.count++
		} else {
			e.count--
		}
	}
	keys := make([]string, 0, len(counts))
	for k, e := range counts {
		if e.count > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []value.Tuple
	for _, k := range keys {
		e := counts[k]
		for i := 0; i < e.count; i++ {
			out = append(out, e.tuple)
		}
	}
	return out
}

// InsertedIn returns the multiset of tuples inserted in the half-open
// interval (from, to] — exactly the content the window operator W[period]
// needs at instant τ with from = τ−period, to = τ (Section 4.2).
func (x *XDRelation) InsertedIn(from, to service.Instant) []value.Tuple {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []value.Tuple
	for i := x.firstEventAfterLocked(from); i < len(x.events); i++ {
		ev := x.events[i]
		if ev.At > to {
			break
		}
		if ev.Kind == Insert {
			out = append(out, ev.Tuple)
		}
	}
	return out
}

// DeletedIn returns the multiset of tuples deleted in (from, to].
func (x *XDRelation) DeletedIn(from, to service.Instant) []value.Tuple {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []value.Tuple
	for i := x.firstEventAfterLocked(from); i < len(x.events); i++ {
		ev := x.events[i]
		if ev.At > to {
			break
		}
		if ev.Kind == Delete {
			out = append(out, ev.Tuple)
		}
	}
	return out
}

// EventsIn returns the events (inserts AND deletes, in log order) recorded
// in (from, to]. This is the delta-emission primitive of the incremental
// evaluator: a consumer that saw the multiset as of `from` reconstructs the
// multiset as of `to` by replaying exactly these events.
func (x *XDRelation) EventsIn(from, to service.Instant) []Event {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []Event
	for i := x.firstEventAfterLocked(from); i < len(x.events); i++ {
		ev := x.events[i]
		if ev.At > to {
			break
		}
		out = append(out, ev)
	}
	return out
}

// firstEventAfterLocked binary-searches the first event with At > from.
func (x *XDRelation) firstEventAfterLocked(from service.Instant) int {
	return sort.Search(len(x.events), func(i int) bool { return x.events[i].At > from })
}

// TrimBefore drops events at instants < before, bounding the log for
// long-running streams. The current multiset is unaffected; At() becomes
// unreliable for instants before the trim point.
func (x *XDRelation) TrimBefore(before service.Instant) {
	x.mu.Lock()
	defer x.mu.Unlock()
	i := sort.Search(len(x.events), func(i int) bool { return x.events[i].At >= before })
	if i == 0 {
		return
	}
	if 2*i >= len(x.events) {
		// Dropping at least half: compact into a fresh array so the dead
		// prefix is released to the collector.
		x.events = append([]Event(nil), x.events[i:]...)
		return
	}
	// Small trim (the steady per-tick case): advance the slice in O(1).
	// The dead prefix stays referenced until the next compaction or until
	// append outgrows the backing array, which copies only the live tail —
	// amortized O(1) per event instead of a full copy per tick.
	x.events = x.events[i:]
}

// EventCount returns the number of retained events.
func (x *XDRelation) EventCount() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.events)
}

// SetOnEvent installs (or, with nil, removes) the event observer. The
// callback runs with the relation lock held, in event-log order.
func (x *XDRelation) SetOnEvent(fn func(Event)) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.onEvent = fn
}

// Counted is one (tuple, multiplicity) pair of the current multiset, used
// by checkpoint snapshots.
type Counted struct {
	Tuple value.Tuple
	Count int
}

// StateSnapshot copies the relation's full durable state: the retained
// event log, the current multiset, and the last event instant.
func (x *XDRelation) StateSnapshot() (events []Event, current []Counted, lastAt service.Instant) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	events = append([]Event(nil), x.events...)
	keys := make([]string, 0, len(x.current))
	for k := range x.current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	current = make([]Counted, 0, len(keys))
	for _, k := range keys {
		e := x.current[k]
		current = append(current, Counted{Tuple: e.tuple, Count: e.count})
	}
	return events, current, x.lastAt
}

// RestoreState replaces the relation's state with a snapshot previously
// taken by StateSnapshot (checkpoint recovery). The snapshot is trusted:
// tuples were validated when first inserted.
func (x *XDRelation) RestoreState(events []Event, current []Counted, lastAt service.Instant) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.events = append([]Event(nil), events...)
	x.current = make(map[string]*entry, len(current))
	for _, c := range current {
		x.current[c.Tuple.Key()] = &entry{tuple: c.Tuple, count: c.Count}
	}
	x.lastAt = lastAt
}
