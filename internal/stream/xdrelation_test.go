package stream_test

import (
	"testing"

	"serena/internal/paperenv"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

func reading(ref, loc string, temp float64) value.Tuple {
	return value.Tuple{value.NewService(ref), value.NewString(loc), value.NewReal(temp)}
}

func TestFiniteInsertDelete(t *testing.T) {
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	row := value.Tuple{value.NewString("Carla"), value.NewString("office")}
	if err := x.Insert(0, row); err != nil {
		t.Fatal(err)
	}
	if got := x.Current(); len(got) != 1 {
		t.Fatalf("Current = %v", got)
	}
	if err := x.Delete(1, row); err != nil {
		t.Fatal(err)
	}
	if got := x.Current(); len(got) != 0 {
		t.Fatalf("Current after delete = %v", got)
	}
	if err := x.Delete(2, row); err == nil {
		t.Fatal("deleting absent tuple accepted")
	}
	if x.LastInstant() != 1 {
		t.Fatalf("LastInstant = %d", x.LastInstant())
	}
}

func TestMultisetSemantics(t *testing.T) {
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	row := value.Tuple{value.NewString("Carla"), value.NewString("office")}
	_ = x.Insert(0, row)
	_ = x.Insert(0, row)
	if got := x.Current(); len(got) != 2 {
		t.Fatalf("multiset Current = %d tuples, want 2", len(got))
	}
	_ = x.Delete(1, row)
	if got := x.Current(); len(got) != 1 {
		t.Fatalf("after one delete = %d tuples, want 1", len(got))
	}
}

func TestStreamAppendOnly(t *testing.T) {
	x := stream.NewInfinite(paperenv.TemperaturesSchema())
	if !x.Infinite() {
		t.Fatal("Infinite flag lost")
	}
	if err := x.Insert(0, reading("sensor01", "corridor", 20)); err != nil {
		t.Fatal(err)
	}
	if err := x.Delete(1, reading("sensor01", "corridor", 20)); err == nil {
		t.Fatal("stream deletion accepted")
	}
}

func TestMonotonicInstants(t *testing.T) {
	x := stream.NewInfinite(paperenv.TemperaturesSchema())
	_ = x.Insert(5, reading("s", "l", 1))
	if err := x.Insert(4, reading("s", "l", 2)); err == nil {
		t.Fatal("out-of-order insert accepted")
	}
	// Same instant is fine.
	if err := x.Insert(5, reading("s", "l", 3)); err != nil {
		t.Fatal(err)
	}
}

func TestConformance(t *testing.T) {
	x := stream.NewInfinite(paperenv.TemperaturesSchema())
	if err := x.Insert(0, value.Tuple{value.NewInt(1)}); err == nil {
		t.Fatal("ill-typed tuple accepted")
	}
}

func TestInsertedInWindowSemantics(t *testing.T) {
	x := stream.NewInfinite(paperenv.TemperaturesSchema())
	for i := 0; i < 10; i++ {
		_ = x.Insert(service.Instant(i), reading("s", "l", float64(i)))
	}
	// W[1] at τ=5: inserts in (4,5] → exactly the reading at instant 5.
	got := x.InsertedIn(4, 5)
	if len(got) != 1 || got[0][2].Real() != 5 {
		t.Fatalf("W[1]@5 = %v", got)
	}
	// W[3] at τ=5: instants 3,4,5.
	if got := x.InsertedIn(2, 5); len(got) != 3 {
		t.Fatalf("W[3]@5 has %d tuples, want 3", len(got))
	}
	// Window entirely before data.
	if got := x.InsertedIn(-5, -1); len(got) != 0 {
		t.Fatalf("empty window = %v", got)
	}
	// Window covering everything.
	if got := x.InsertedIn(-1, 100); len(got) != 10 {
		t.Fatalf("full window = %d tuples", len(got))
	}
}

func TestDeletedIn(t *testing.T) {
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	row := value.Tuple{value.NewString("Carla"), value.NewString("office")}
	_ = x.Insert(0, row)
	_ = x.Delete(3, row)
	if got := x.DeletedIn(2, 3); len(got) != 1 {
		t.Fatalf("DeletedIn = %v", got)
	}
	if got := x.DeletedIn(3, 9); len(got) != 0 {
		t.Fatalf("DeletedIn after = %v", got)
	}
}

func TestAtReplay(t *testing.T) {
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	a := value.Tuple{value.NewString("Carla"), value.NewString("office")}
	b := value.Tuple{value.NewString("Nicolas"), value.NewString("corridor")}
	_ = x.Insert(0, a)
	_ = x.Insert(2, b)
	_ = x.Delete(4, a)
	if got := x.At(1); len(got) != 1 || got[0][0].Str() != "Carla" {
		t.Fatalf("At(1) = %v", got)
	}
	if got := x.At(3); len(got) != 2 {
		t.Fatalf("At(3) = %v", got)
	}
	if got := x.At(4); len(got) != 1 || got[0][0].Str() != "Nicolas" {
		t.Fatalf("At(4) = %v", got)
	}
	if got := x.At(-1); len(got) != 0 {
		t.Fatalf("At(-1) = %v", got)
	}
}

func TestTrimBefore(t *testing.T) {
	x := stream.NewInfinite(paperenv.TemperaturesSchema())
	for i := 0; i < 100; i++ {
		_ = x.Insert(service.Instant(i), reading("s", "l", float64(i)))
	}
	x.TrimBefore(90)
	if x.EventCount() != 10 {
		t.Fatalf("EventCount = %d, want 10", x.EventCount())
	}
	// Recent windows still work.
	if got := x.InsertedIn(94, 99); len(got) != 5 {
		t.Fatalf("window after trim = %d tuples", len(got))
	}
	// Current (everything ever inserted) is unaffected by the trim.
	if got := x.Current(); len(got) != 100 {
		t.Fatalf("Current after trim = %d", len(got))
	}
}

// TestEventsIn pins the incremental evaluator's delta-emission primitive:
// EventsIn(from, to] returns inserts AND deletes in log order, and replaying
// them over the multiset as of `from` reconstructs the multiset as of `to`.
func TestEventsIn(t *testing.T) {
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	carla := value.Tuple{value.NewString("Carla"), value.NewString("office")}
	nico := value.Tuple{value.NewString("Nicolas"), value.NewString("corridor")}
	_ = x.Insert(0, carla)
	_ = x.Insert(1, nico)
	_ = x.Insert(1, carla) // multiplicity 2
	_ = x.Delete(2, carla)
	_ = x.Delete(3, carla)

	// (0, 2]: nico in, carla in, carla out — in log order.
	evs := x.EventsIn(0, 2)
	if len(evs) != 3 {
		t.Fatalf("EventsIn(0,2] = %d events, want 3", len(evs))
	}
	wantKinds := []stream.EventKind{stream.Insert, stream.Insert, stream.Delete}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v (events %v)", i, ev.Kind, wantKinds[i], evs)
		}
	}

	// Replaying (from, to] over At(from) must reconstruct At(to), for every
	// interval.
	for from := service.Instant(-1); from <= 3; from++ {
		for to := from; to <= 3; to++ {
			counts := map[string]int{}
			for _, tu := range x.At(from) {
				counts[tu.Key()]++
			}
			for _, ev := range x.EventsIn(from, to) {
				if ev.Kind == stream.Insert {
					counts[ev.Tuple.Key()]++
				} else {
					counts[ev.Tuple.Key()]--
				}
			}
			want := map[string]int{}
			for _, tu := range x.At(to) {
				want[tu.Key()]++
			}
			for k, c := range counts {
				if c != want[k] {
					t.Fatalf("replay (%d,%d]: key %s count %d, want %d", from, to, k, c, want[k])
				}
			}
			for k, c := range want {
				if c != counts[k] {
					t.Fatalf("replay (%d,%d]: key %s missing, want %d", from, to, k, c)
				}
			}
		}
	}

	// Empty and out-of-range intervals.
	if evs := x.EventsIn(3, 10); len(evs) != 0 {
		t.Fatalf("EventsIn past the log = %v", evs)
	}
}
