// Package device provides simulated pervasive-environment devices wrapped
// as Serena services: temperature sensors, network cameras, message
// gateways (email/jabber/sms) and RSS feeds.
//
// These replace the paper's physical testbed (Thermochron iButton sensors,
// Logitech webcams, Openfire IM server, Clickatel SMS gateway, newspaper
// RSS feeds — Section 5.2). Every device is deterministic in
// (reference, instant), honouring the paper's assumption that services are
// deterministic at a given time instant (Section 3.2), which makes
// experiments reproducible and memoization sound.
package device

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sync"
	"time"

	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// Canonical prototype declarations of the temperature-surveillance scenario
// (paper Table 1). Devices implement these names; environments must declare
// them in their registry before registering devices.

// SendMessageProto returns the ACTIVE prototype
// sendMessage(address STRING, text STRING) : (sent BOOLEAN).
func SendMessageProto() *schema.Prototype {
	return schema.MustPrototype("sendMessage",
		schema.MustRel(
			schema.Attribute{Name: "address", Type: value.String},
			schema.Attribute{Name: "text", Type: value.String}),
		schema.MustRel(schema.Attribute{Name: "sent", Type: value.Bool}),
		true)
}

// CheckPhotoProto returns the passive prototype
// checkPhoto(area STRING) : (quality INTEGER, delay REAL).
func CheckPhotoProto() *schema.Prototype {
	return schema.MustPrototype("checkPhoto",
		schema.MustRel(schema.Attribute{Name: "area", Type: value.String}),
		schema.MustRel(
			schema.Attribute{Name: "quality", Type: value.Int},
			schema.Attribute{Name: "delay", Type: value.Real}),
		false)
}

// TakePhotoProto returns the passive prototype
// takePhoto(area STRING, quality INTEGER) : (photo BLOB).
func TakePhotoProto() *schema.Prototype {
	return schema.MustPrototype("takePhoto",
		schema.MustRel(
			schema.Attribute{Name: "area", Type: value.String},
			schema.Attribute{Name: "quality", Type: value.Int}),
		schema.MustRel(schema.Attribute{Name: "photo", Type: value.Blob}),
		false)
}

// GetTemperatureProto returns the passive prototype
// getTemperature() : (temperature REAL).
func GetTemperatureProto() *schema.Prototype {
	return schema.MustPrototype("getTemperature", nil,
		schema.MustRel(schema.Attribute{Name: "temperature", Type: value.Real}),
		false)
}

// ScenarioPrototypes returns the four prototypes of Table 1 in declaration
// order.
func ScenarioPrototypes() []*schema.Prototype {
	return []*schema.Prototype{
		SendMessageProto(), CheckPhotoProto(), TakePhotoProto(), GetTemperatureProto(),
	}
}

// hash01 maps (parts, at) to a deterministic pseudo-random float in [0,1).
func hash01(at service.Instant, parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	var buf [8]byte
	v := uint64(at)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// ---------------------------------------------------------------------------
// Temperature sensor.

// HeatEvent raises a sensor's reading by Delta over the inclusive instant
// interval [From, To] — the experiment's "sensors are heated over the
// threshold" stimulus.
type HeatEvent struct {
	From, To service.Instant
	Delta    float64
}

// Sensor simulates a Thermochron-style temperature sensor. The reading at
// instant τ is
//
//	base + amplitude·sin(2π·τ/period) + noise(ref,τ) + Σ active heat events
//
// which is deterministic in (ref, τ).
type Sensor struct {
	ref       string
	location  string
	base      float64
	amplitude float64
	period    float64
	noise     float64

	mu     sync.Mutex
	events []HeatEvent
	count  int64 // number of invocations, for tests/benches
}

// SensorOption configures a Sensor.
type SensorOption func(*Sensor)

// WithDailyCycle sets a sinusoidal temperature cycle.
func WithDailyCycle(amplitude, period float64) SensorOption {
	return func(s *Sensor) { s.amplitude, s.period = amplitude, period }
}

// WithNoise sets the deterministic pseudo-noise amplitude.
func WithNoise(a float64) SensorOption {
	return func(s *Sensor) { s.noise = a }
}

// NewSensor builds a sensor service with the given base temperature.
func NewSensor(ref, location string, base float64, opts ...SensorOption) *Sensor {
	s := &Sensor{ref: ref, location: location, base: base, period: 1440}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Ref implements service.Service.
func (s *Sensor) Ref() string { return s.ref }

// Location returns the sensor's placement (used to build environment
// tables; not exposed through the prototype, matching the paper where
// location is a real attribute of the sensors relation).
func (s *Sensor) Location() string { return s.location }

// PrototypeNames implements service.Service.
func (s *Sensor) PrototypeNames() []string { return []string{"getTemperature"} }

// Implements implements service.Service.
func (s *Sensor) Implements(p string) bool { return p == "getTemperature" }

// Heat schedules a heat event.
func (s *Sensor) Heat(ev HeatEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

// TemperatureAt returns the deterministic reading at an instant.
func (s *Sensor) TemperatureAt(at service.Instant) float64 {
	t := s.base
	if s.amplitude != 0 && s.period > 0 {
		t += s.amplitude * math.Sin(2*math.Pi*float64(at)/s.period)
	}
	if s.noise > 0 {
		t += (hash01(at, "sensor", s.ref) - 0.5) * 2 * s.noise
	}
	s.mu.Lock()
	for _, ev := range s.events {
		if at >= ev.From && at <= ev.To {
			t += ev.Delta
		}
	}
	s.mu.Unlock()
	return math.Round(t*100) / 100
}

// Invocations returns how many times the sensor was invoked.
func (s *Sensor) Invocations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Invoke implements service.Service.
func (s *Sensor) Invoke(proto string, _ value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if proto != "getTemperature" {
		return nil, fmt.Errorf("%w: %s on %s", service.ErrNotImplemented, proto, s.ref)
	}
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	return []value.Tuple{{value.NewReal(s.TemperatureAt(at))}}, nil
}

// ---------------------------------------------------------------------------
// Camera.

// Camera simulates a network camera implementing checkPhoto and takePhoto.
// checkPhoto reports a deterministic quality/delay pair that degrades when
// the requested area is not the camera's own; takePhoto produces a
// deterministic pseudo-JPEG blob whose size grows with quality.
type Camera struct {
	ref     string
	area    string
	quality int64
	delay   float64

	mu    sync.Mutex
	shots int64
}

// NewCamera builds a camera covering the given area with a native quality
// level (0–10) and base shutter delay in seconds.
func NewCamera(ref, area string, quality int64, delay float64) *Camera {
	return &Camera{ref: ref, area: area, quality: quality, delay: delay}
}

// Ref implements service.Service.
func (c *Camera) Ref() string { return c.ref }

// Area returns the area the camera covers.
func (c *Camera) Area() string { return c.area }

// PrototypeNames implements service.Service.
func (c *Camera) PrototypeNames() []string { return []string{"checkPhoto", "takePhoto"} }

// Implements implements service.Service.
func (c *Camera) Implements(p string) bool { return p == "checkPhoto" || p == "takePhoto" }

// Shots returns how many photos were taken.
func (c *Camera) Shots() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shots
}

// Invoke implements service.Service.
func (c *Camera) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	switch proto {
	case "checkPhoto":
		area := input[0].Str()
		q, d := c.assess(area, at)
		if q < 0 {
			return nil, nil // cannot photograph this area: empty relation
		}
		return []value.Tuple{{value.NewInt(q), value.NewReal(d)}}, nil
	case "takePhoto":
		area := input[0].Str()
		q := input[1].Int()
		have, _ := c.assess(area, at)
		if have < 0 {
			return nil, nil
		}
		if q > have {
			q = have
		}
		if q < 0 {
			q = 0
		}
		c.mu.Lock()
		c.shots++
		c.mu.Unlock()
		return []value.Tuple{{value.NewBlob(c.renderPhoto(area, q, at))}}, nil
	}
	return nil, fmt.Errorf("%w: %s on %s", service.ErrNotImplemented, proto, c.ref)
}

// assess returns the achievable (quality, delay) for an area at an instant;
// quality −1 means the area is out of reach.
func (c *Camera) assess(area string, at service.Instant) (int64, float64) {
	q := c.quality
	d := c.delay
	if area != c.area {
		return -1, 0
	}
	// Lighting varies deterministically over time: ±2 quality levels.
	q += int64(math.Round((hash01(at, "cam", c.ref) - 0.5) * 4))
	if q < 0 {
		q = 0
	}
	if q > 10 {
		q = 10
	}
	d += hash01(at, "camdelay", c.ref) * 0.5
	return q, math.Round(d*1000) / 1000
}

// renderPhoto produces a deterministic pseudo-image: a tagged header plus a
// hash-generated payload sized by quality.
func (c *Camera) renderPhoto(area string, quality int64, at service.Instant) []byte {
	header := fmt.Sprintf("PHOTO:%s:%s:q%d:t%d:", c.ref, area, quality, at)
	size := 64 * (quality + 1)
	buf := make([]byte, 0, len(header)+int(size))
	buf = append(buf, header...)
	seed := hash01(at, "photo", c.ref, area)
	x := uint32(seed * float64(math.MaxUint32))
	for i := int64(0); i < size; i++ {
		x = x*1664525 + 1013904223
		buf = append(buf, byte(x>>24))
	}
	return buf
}

// ---------------------------------------------------------------------------
// Messenger.

// Delivery records one accepted message — the observable side effect of an
// active sendMessage invocation.
type Delivery struct {
	At      service.Instant
	Address string
	Text    string
}

// Messenger simulates a message gateway (email server, jabber server, SMS
// gateway). All accepted messages are appended to an outbox so tests can
// assert on the exact physical effects of active invocations.
type Messenger struct {
	ref  string
	kind string

	mu         sync.Mutex
	outbox     []Delivery
	outboxFile string
	failAddr   map[string]bool
	errAddr    map[string]bool
	latency    time.Duration
}

// NewMessenger builds a messenger gateway of the given kind
// ("email", "jabber", "sms", …).
func NewMessenger(ref, kind string) *Messenger {
	return &Messenger{ref: ref, kind: kind, failAddr: map[string]bool{}, errAddr: map[string]bool{}}
}

// Ref implements service.Service.
func (m *Messenger) Ref() string { return m.ref }

// Kind returns the gateway kind.
func (m *Messenger) Kind() string { return m.kind }

// PrototypeNames implements service.Service.
func (m *Messenger) PrototypeNames() []string { return []string{"sendMessage"} }

// Implements implements service.Service.
func (m *Messenger) Implements(p string) bool { return p == "sendMessage" }

// FailFor makes deliveries to an address report sent=false (soft failure).
func (m *Messenger) FailFor(address string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAddr[address] = true
}

// ErrorFor makes deliveries to an address return an invocation error
// (network-level failure).
func (m *Messenger) ErrorFor(address string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errAddr[address] = true
}

// SetLatency injects a synchronous delivery latency (for cost benchmarks).
func (m *Messenger) SetLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency = d
}

// SetOutboxFile mirrors every accepted delivery as one appended line
// ("instant<TAB>address<TAB>text") in the given file. The cluster chaos
// harness uses it to diff the physical side effects of active invocations
// across process kills — the file survives a SIGKILL, the in-memory outbox
// does not. Append errors are ignored (the in-memory record stays
// authoritative for in-process tests).
func (m *Messenger) SetOutboxFile(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outboxFile = path
}

// Outbox returns a copy of all accepted deliveries.
func (m *Messenger) Outbox() []Delivery {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Delivery, len(m.outbox))
	copy(out, m.outbox)
	return out
}

// Reset clears the outbox.
func (m *Messenger) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outbox = nil
}

// Invoke implements service.Service.
func (m *Messenger) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if proto != "sendMessage" {
		return nil, fmt.Errorf("%w: %s on %s", service.ErrNotImplemented, proto, m.ref)
	}
	address, text := input[0].Str(), input[1].Str()
	m.mu.Lock()
	latency := m.latency
	if m.errAddr[address] {
		m.mu.Unlock()
		return nil, fmt.Errorf("device: %s: cannot reach %s", m.ref, address)
	}
	if m.failAddr[address] {
		m.mu.Unlock()
		return []value.Tuple{{value.NewBool(false)}}, nil
	}
	m.outbox = append(m.outbox, Delivery{At: at, Address: address, Text: text})
	file := m.outboxFile
	if file != "" {
		// Append-then-sync inside the lock: the chaos harness reads this
		// file after a SIGKILL, so a delivery must be durable the moment the
		// invocation returns (the same reasoning as the WAL's intent fsync).
		if f, err := os.OpenFile(file, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			fmt.Fprintf(f, "%d\t%s\t%s\n", at, address, text)
			_ = f.Sync()
			_ = f.Close()
		}
	}
	m.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return []value.Tuple{{value.NewBool(true)}}, nil
}
