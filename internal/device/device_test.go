package device_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/service"
	"serena/internal/value"
)

func TestSensorDeterministicAtInstant(t *testing.T) {
	s := device.NewSensor("s1", "office", 21, device.WithDailyCycle(3, 100), device.WithNoise(0.5))
	for _, at := range []service.Instant{0, 1, 50, 999} {
		a := s.TemperatureAt(at)
		b := s.TemperatureAt(at)
		if a != b {
			t.Fatalf("sensor not deterministic at %d: %v vs %v", at, a, b)
		}
	}
	// Different instants should (generally) differ under a cycle.
	if s.TemperatureAt(0) == s.TemperatureAt(25) {
		t.Fatal("cycle has no effect")
	}
	// Distinct refs decorrelate noise.
	s2 := device.NewSensor("s2", "office", 21, device.WithNoise(0.5))
	s3 := device.NewSensor("s3", "office", 21, device.WithNoise(0.5))
	same := 0
	for at := service.Instant(0); at < 20; at++ {
		if s2.TemperatureAt(at) == s3.TemperatureAt(at) {
			same++
		}
	}
	if same == 20 {
		t.Fatal("noise identical across refs")
	}
}

func TestSensorHeatEvents(t *testing.T) {
	s := device.NewSensor("s1", "office", 20)
	s.Heat(device.HeatEvent{From: 5, To: 7, Delta: 10})
	if s.TemperatureAt(4) != 20 || s.TemperatureAt(8) != 20 {
		t.Fatal("heat leaked outside its interval")
	}
	for at := service.Instant(5); at <= 7; at++ {
		if s.TemperatureAt(at) != 30 {
			t.Fatalf("heat not applied at %d: %v", at, s.TemperatureAt(at))
		}
	}
	// Overlapping events accumulate.
	s.Heat(device.HeatEvent{From: 6, To: 6, Delta: 5})
	if s.TemperatureAt(6) != 35 {
		t.Fatalf("overlapping heat = %v", s.TemperatureAt(6))
	}
}

func TestSensorService(t *testing.T) {
	s := device.NewSensor("s1", "lab", 20)
	rows, err := s.Invoke("getTemperature", nil, 3)
	if err != nil || len(rows) != 1 || rows[0][0].Real() != 20 {
		t.Fatalf("invoke = %v %v", rows, err)
	}
	if s.Invocations() != 1 {
		t.Fatal("invocation counter broken")
	}
	if _, err := s.Invoke("other", nil, 0); err == nil {
		t.Fatal("wrong prototype accepted")
	}
	if s.Location() != "lab" || s.Ref() != "s1" {
		t.Fatal("accessors broken")
	}
}

func TestCameraCheckAndTake(t *testing.T) {
	c := device.NewCamera("cam1", "office", 7, 0.3)
	rows, err := c.Invoke("checkPhoto", value.Tuple{value.NewString("office")}, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("checkPhoto = %v %v", rows, err)
	}
	q := rows[0][0].Int()
	if q < 5 || q > 9 {
		t.Fatalf("quality = %d, want 7±2", q)
	}
	if d := rows[0][1].Real(); d < 0.3 || d > 0.81 {
		t.Fatalf("delay = %v", d)
	}
	// Out-of-area returns an empty relation (cannot photograph).
	rows, err = c.Invoke("checkPhoto", value.Tuple{value.NewString("roof")}, 0)
	if err != nil || len(rows) != 0 {
		t.Fatalf("out-of-area checkPhoto = %v %v", rows, err)
	}
	shot, err := c.Invoke("takePhoto", value.Tuple{value.NewString("office"), value.NewInt(q)}, 0)
	if err != nil || len(shot) != 1 {
		t.Fatalf("takePhoto = %v %v", shot, err)
	}
	photo := shot[0][0].Blob()
	if !bytes.HasPrefix(photo, []byte("PHOTO:cam1:office:")) {
		t.Fatalf("photo header = %q", photo[:24])
	}
	if c.Shots() != 1 {
		t.Fatal("shot counter broken")
	}
	// Higher requested quality than achievable is clamped, not an error.
	shot2, err := c.Invoke("takePhoto", value.Tuple{value.NewString("office"), value.NewInt(99)}, 0)
	if err != nil || len(shot2) != 1 {
		t.Fatalf("clamped takePhoto = %v %v", shot2, err)
	}
	// Out-of-area takePhoto yields empty.
	shot3, err := c.Invoke("takePhoto", value.Tuple{value.NewString("roof"), value.NewInt(5)}, 0)
	if err != nil || len(shot3) != 0 {
		t.Fatalf("out-of-area takePhoto = %v %v", shot3, err)
	}
	if _, err := c.Invoke("other", nil, 0); err == nil {
		t.Fatal("wrong prototype accepted")
	}
}

func TestCameraPhotoSizeScalesWithQuality(t *testing.T) {
	c := device.NewCamera("cam1", "office", 10, 0.1)
	low, _ := c.Invoke("takePhoto", value.Tuple{value.NewString("office"), value.NewInt(1)}, 0)
	high, _ := c.Invoke("takePhoto", value.Tuple{value.NewString("office"), value.NewInt(8)}, 0)
	if len(high[0][0].Blob()) <= len(low[0][0].Blob()) {
		t.Fatal("photo size should grow with quality")
	}
}

func TestMessengerDeliveryAndFailures(t *testing.T) {
	m := device.NewMessenger("email", "email")
	send := func(addr, text string) ([]value.Tuple, error) {
		return m.Invoke("sendMessage", value.Tuple{value.NewString(addr), value.NewString(text)}, 7)
	}
	rows, err := send("a@x", "hi")
	if err != nil || !rows[0][0].Bool() {
		t.Fatalf("send = %v %v", rows, err)
	}
	out := m.Outbox()
	if len(out) != 1 || out[0].Address != "a@x" || out[0].Text != "hi" || out[0].At != 7 {
		t.Fatalf("outbox = %v", out)
	}
	// Soft failure: sent=false, nothing delivered.
	m.FailFor("b@x")
	rows, err = send("b@x", "yo")
	if err != nil || rows[0][0].Bool() {
		t.Fatalf("soft failure = %v %v", rows, err)
	}
	if len(m.Outbox()) != 1 {
		t.Fatal("failed delivery reached the outbox")
	}
	// Hard failure: invocation error.
	m.ErrorFor("c@x")
	if _, err := send("c@x", "yo"); err == nil {
		t.Fatal("hard failure not surfaced")
	}
	m.Reset()
	if len(m.Outbox()) != 0 {
		t.Fatal("Reset broken")
	}
	if m.Kind() != "email" {
		t.Fatal("Kind broken")
	}
	if _, err := m.Invoke("other", nil, 0); err == nil {
		t.Fatal("wrong prototype accepted")
	}
}

func TestMessengerLatency(t *testing.T) {
	m := device.NewMessenger("email", "email")
	m.SetLatency(30 * time.Millisecond)
	start := time.Now()
	_, err := m.Invoke("sendMessage", value.Tuple{value.NewString("a@x"), value.NewString("hi")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("latency not applied")
	}
}

func TestFeedDeterministicItems(t *testing.T) {
	f := device.NewFeed("lemonde", "Le Monde", 5, []string{"Obama", "Europe"})
	// Items up to instant 21: seqs 0..4 (published 0,5,10,15,20).
	items := f.ItemsSince(-1, 21)
	if len(items) != 5 {
		t.Fatalf("items = %d, want 5", len(items))
	}
	if items[0].Published != 0 || items[4].Published != 20 {
		t.Fatalf("published = %v", items)
	}
	// Incremental polling: since=10 yields seqs 3,4.
	inc := f.ItemsSince(10, 21)
	if len(inc) != 2 || inc[0].ID != 3 {
		t.Fatalf("incremental = %v", inc)
	}
	// Topic cadence: seq 0 mentions Obama, seq 3 mentions Europe.
	if !strings.Contains(items[0].Title, "Obama") {
		t.Fatalf("item 0 = %q", items[0].Title)
	}
	if !strings.Contains(items[3].Title, "Europe") {
		t.Fatalf("item 3 = %q", items[3].Title)
	}
	if strings.Contains(items[1].Title, "Obama") {
		t.Fatalf("item 1 should be plain: %q", items[1].Title)
	}
	// Determinism.
	again := f.ItemsSince(-1, 21)
	for i := range items {
		if again[i] != items[i] {
			t.Fatal("feed not deterministic")
		}
	}
}

func TestFeedService(t *testing.T) {
	f := device.NewFeed("cnn", "CNN", 3, nil)
	rows, err := f.Invoke("getItems", value.Tuple{value.NewInt(-1)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // seqs 0,1,2 published at 0,3,6
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2][2].Int() != 6 {
		t.Fatalf("published = %v", rows[2])
	}
	if _, err := f.Invoke("other", nil, 0); err == nil {
		t.Fatal("wrong prototype accepted")
	}
	if f.Name() != "CNN" || f.Ref() != "cnn" || !f.Implements("getItems") {
		t.Fatal("accessors broken")
	}
	// Degenerate period clamps to 1.
	f2 := device.NewFeed("x", "X", 0, nil)
	if got := f2.ItemsSince(-1, 2); len(got) != 3 {
		t.Fatalf("period clamp: %d items", len(got))
	}
}

func TestScenarioPrototypes(t *testing.T) {
	ps := device.ScenarioPrototypes()
	if len(ps) != 4 {
		t.Fatalf("prototypes = %d", len(ps))
	}
	names := []string{"sendMessage", "checkPhoto", "takePhoto", "getTemperature"}
	for i, p := range ps {
		if p.Name != names[i] {
			t.Fatalf("prototype %d = %s", i, p.Name)
		}
	}
	if !ps[0].Active || ps[1].Active || ps[2].Active || ps[3].Active {
		t.Fatal("active flags wrong (only sendMessage is active)")
	}
}
