package device

import (
	"fmt"

	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// GetItemsProto returns the passive prototype used by RSS wrapper services:
// getItems(since INTEGER) : (itemId INTEGER, title STRING, published INTEGER).
// The paper wraps RSS feeds as services that are periodically polled and
// turned into streams (Section 5.2); this prototype is that wrapper's
// pull interface, which the PEMS feed poller converts into an XD-Relation.
func GetItemsProto() *schema.Prototype {
	return schema.MustPrototype("getItems",
		schema.MustRel(schema.Attribute{Name: "since", Type: value.Int}),
		schema.MustRel(
			schema.Attribute{Name: "itemId", Type: value.Int},
			schema.Attribute{Name: "title", Type: value.String},
			schema.Attribute{Name: "published", Type: value.Int}),
		false)
}

// Item is one feed entry.
type Item struct {
	ID        int64
	Title     string
	Published service.Instant
}

// Feed simulates an RSS feed (the paper polled Le Monde, Le Figaro and CNN
// Europe). Items appear deterministically: the feed publishes one item
// every period instants, cycling through its headline templates; a fraction
// of headlines mention each configured topic so keyword queries have
// predictable selectivity.
type Feed struct {
	ref    string
	name   string
	period service.Instant
	topics []string
}

// NewFeed builds a feed service publishing one item every period instants.
func NewFeed(ref, name string, period service.Instant, topics []string) *Feed {
	if period < 1 {
		period = 1
	}
	return &Feed{ref: ref, name: name, period: period, topics: append([]string(nil), topics...)}
}

// Ref implements service.Service.
func (f *Feed) Ref() string { return f.ref }

// Name returns the feed's display name.
func (f *Feed) Name() string { return f.name }

// PrototypeNames implements service.Service.
func (f *Feed) PrototypeNames() []string { return []string{"getItems"} }

// Implements implements service.Service.
func (f *Feed) Implements(p string) bool { return p == "getItems" }

// itemAt returns the item with the given sequence number.
func (f *Feed) itemAt(seq int64) Item {
	published := service.Instant(seq) * f.period
	title := fmt.Sprintf("%s headline #%d", f.name, seq)
	if len(f.topics) > 0 {
		// Every third item mentions a topic, cycling through them.
		if seq%3 == 0 {
			title = fmt.Sprintf("%s: news about %s (#%d)", f.name, f.topics[(seq/3)%int64(len(f.topics))], seq)
		}
	}
	return Item{ID: seq, Title: title, Published: published}
}

// ItemsSince returns the items published strictly after `since` and up to
// (including) instant `at` — deterministic in (ref, since, at).
func (f *Feed) ItemsSince(since, at service.Instant) []Item {
	if at < 0 {
		return nil
	}
	firstSeq := int64(0)
	if since >= 0 {
		firstSeq = int64(since/f.period) + 1
	}
	lastSeq := int64(at / f.period)
	var out []Item
	for seq := firstSeq; seq <= lastSeq; seq++ {
		out = append(out, f.itemAt(seq))
	}
	return out
}

// Invoke implements service.Service.
func (f *Feed) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if proto != "getItems" {
		return nil, fmt.Errorf("%w: %s on %s", service.ErrNotImplemented, proto, f.ref)
	}
	since := service.Instant(input[0].Int())
	items := f.ItemsSince(since, at)
	rows := make([]value.Tuple, len(items))
	for i, it := range items {
		rows[i] = value.Tuple{
			value.NewInt(it.ID),
			value.NewString(it.Title),
			value.NewInt(int64(it.Published)),
		}
	}
	return rows, nil
}
