package lexer

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestBasicTokens(t *testing.T) {
	toks := lexAll(t, `PROTOTYPE sendMessage( address STRING ) : ( sent BOOLEAN ) ACTIVE;`)
	wantTexts := []string{"PROTOTYPE", "sendMessage", "(", "address", "STRING", ")", ":", "(", "sent", "BOOLEAN", ")", "ACTIVE", ";"}
	if len(toks) != len(wantTexts) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(wantTexts), toks)
	}
	for i, w := range wantTexts {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks := lexAll(t, `"hello" 'wor\'ld' "a\"b" "tab\there"`)
	want := []string{"hello", "wor'ld", `a"b`, "tab\there"}
	for i, w := range want {
		if toks[i].Kind != String || toks[i].Text != w {
			t.Errorf("string %d = %q (%d), want %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := lexAll(t, `42 -7 3.5 1e3 2.5E-2`)
	want := []string{"42", "-7", "3.5", "1e3", "2.5E-2"}
	for i, w := range want {
		if toks[i].Kind != Number || toks[i].Text != w {
			t.Errorf("number %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestMultiCharPunct(t *testing.T) {
	toks := lexAll(t, `a := b -> c != d <> e <= f >= g == h`)
	var puncts []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			puncts = append(puncts, tok.Text)
		}
	}
	want := []string{":=", "->", "!=", "<>", "<=", ">=", "=="}
	if len(puncts) != len(want) {
		t.Fatalf("puncts = %v", puncts)
	}
	for i, w := range want {
		if puncts[i] != w {
			t.Errorf("punct %d = %q want %q", i, puncts[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	toks := lexAll(t, "a -- line comment\nb /* block\ncomment */ c")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	l := New(`"unterminated`)
	if _, err := l.Next(); err == nil {
		t.Error("unterminated string accepted")
	}
	l2 := New("/* never closed")
	if _, err := l2.Next(); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestPeekAndPositions(t *testing.T) {
	l := New("alpha\n  beta")
	p1, _ := l.Peek()
	n1, _ := l.Next()
	if p1 != n1 {
		t.Fatal("Peek != Next")
	}
	n2, _ := l.Next()
	if n2.Line != 2 || n2.Col != 3 {
		t.Fatalf("position = %d:%d, want 2:3", n2.Line, n2.Col)
	}
	if !n2.IsKeyword("BETA") {
		t.Fatal("IsKeyword case-insensitivity broken")
	}
	eof, _ := l.Next()
	if eof.Kind != EOF || eof.String() != "end of input" {
		t.Fatalf("EOF token = %v", eof)
	}
}

func TestMinusDisambiguation(t *testing.T) {
	// '-' followed by digit is a negative number; standalone is punct.
	toks := lexAll(t, `a - b -5`)
	if toks[1].Kind != Punct || toks[1].Text != "-" {
		t.Fatalf("standalone minus = %v", toks[1])
	}
	if toks[3].Kind != Number || toks[3].Text != "-5" {
		t.Fatalf("negative literal = %v", toks[3])
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks := lexAll(t, "températures café_bar")
	if len(toks) != 2 || toks[0].Text != "températures" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	l := New("§")
	if _, err := l.Next(); err == nil {
		t.Error("unexpected character accepted")
	}
}

func TestSystemRelationIdent(t *testing.T) {
	// The $ joins identifiers (sys$metrics is one token) but cannot start
	// one — the system namespace is spellable, not arbitrary.
	toks := lexAll(t, `select[state = "STALLED"](sys$streams)`)
	found := false
	for _, tok := range toks {
		if tok.Kind == Ident && tok.Text == "sys$streams" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sys$streams did not lex as one identifier: %v", toks)
	}
	if _, err := New(`$loose`).Next(); err == nil {
		t.Fatal("identifier starting with $ must not lex")
	}
}
