// Package lexer provides the shared tokenizer for the Serena DDL
// (internal/ddl) and the Serena Algebra Language (internal/sal). Both
// languages use SQL-flavoured lexical conventions: case-insensitive
// keywords, single- or double-quoted string literals, `--` line comments
// and `/* */` block comments.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies tokens.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	String
	Punct // single/multi-char punctuation: ( ) [ ] , ; : := -> @ = != <> < <= > >= *
)

// Token is one lexeme with its source position (1-based line/column).
type Token struct {
	Kind Kind
	Text string // raw text; for String, the decoded body
	Line int
	Col  int
}

// Is reports whether the token is the given punctuation.
func (t Token) Is(p string) bool { return t.Kind == Punct && t.Text == p }

// IsKeyword reports a case-insensitive identifier match.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, kw)
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Lexer tokenizes an input string.
type Lexer struct {
	src    string
	pos    int
	line   int
	col    int
	peeked *Token
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// multi-char punctuation, longest first.
var multiPunct = []string{":=", "->", "!=", "<>", "<=", ">=", "=="}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() (Token, error) {
	if l.peeked == nil {
		t, err := l.lex()
		if err != nil {
			return Token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

// Next consumes and returns the next token.
func (l *Lexer) Next() (Token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.lex()
}

func (l *Lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf("unterminated block comment")
			}
			l.advance(end + 4)
		default:
			return nil
		}
	}
	return nil
}

func (l *Lexer) lex() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.src[l.pos]

	// String literals.
	if c == '\'' || c == '"' {
		quote := c
		var b strings.Builder
		i := l.pos + 1
		for i < len(l.src) {
			if l.src[i] == '\\' && i+1 < len(l.src) {
				switch l.src[i+1] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '\'', '"':
					b.WriteByte(l.src[i+1])
				default:
					b.WriteByte(l.src[i+1])
				}
				i += 2
				continue
			}
			if l.src[i] == quote {
				text := b.String()
				l.advance(i + 1 - l.pos)
				return Token{Kind: String, Text: text, Line: line, Col: col}, nil
			}
			b.WriteByte(l.src[i])
			i++
		}
		return Token{}, l.errorf("unterminated string literal")
	}

	// Hex blob literals: 0x… (consumed as a Number token; value.Parse turns
	// them into BLOBs).
	if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		i := l.pos + 2
		for i < len(l.src) && isHexDigit(l.src[i]) {
			i++
		}
		if i > l.pos+2 {
			text := l.src[l.pos:i]
			l.advance(i - l.pos)
			return Token{Kind: Number, Text: text, Line: line, Col: col}, nil
		}
	}

	// Numbers (integers, decimals, exponents; optional leading minus is
	// handled by parsers as unary punctuation when ambiguous, so numbers
	// here start with a digit or a '-' directly followed by a digit).
	if isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		i := l.pos + 1
		for i < len(l.src) && (isDigit(l.src[i]) || l.src[i] == '.' ||
			l.src[i] == 'e' || l.src[i] == 'E' ||
			((l.src[i] == '+' || l.src[i] == '-') && (l.src[i-1] == 'e' || l.src[i-1] == 'E'))) {
			i++
		}
		text := l.src[l.pos:i]
		l.advance(i - l.pos)
		return Token{Kind: Number, Text: text, Line: line, Col: col}, nil
	}

	// Identifiers and keywords (full UTF-8).
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isIdentStart(r) {
		i := l.pos
		for i < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[i:])
			if i == l.pos {
				if !isIdentStart(r) {
					break
				}
			} else if !isIdentPart(r) {
				break
			}
			i += size
		}
		text := l.src[l.pos:i]
		l.advance(i - l.pos)
		return Token{Kind: Ident, Text: text, Line: line, Col: col}, nil
	}

	// Multi-char punctuation.
	for _, p := range multiPunct {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return Token{Kind: Punct, Text: p, Line: line, Col: col}, nil
		}
	}

	// Single-char punctuation.
	switch c {
	case '(', ')', '[', ']', ',', ';', ':', '@', '=', '<', '>', '*', '-', '.':
		l.advance(1)
		return Token{Kind: Punct, Text: string(c), Line: line, Col: col}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return Token{}, l.errorf("unexpected character %q", r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// isIdentPart accepts '$' beyond the usual letter/digit/underscore so the
// reserved system-relation namespace (sys$metrics, sys$health, sys$streams)
// lexes as a single identifier across DDL, SAL and SSQL. '$' cannot start
// an identifier, so ordinary user names are unaffected.
func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
