package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a fixed registry covering every exposition shape:
// plain and keyed counters, gauges (including a negative value), a plain
// histogram, and a label needing escaping.
func goldenRegistry() *Metrics {
	m := New()
	m.Counter("cq.ticks").Add(42)
	m.Counter(Key("service.invocations", "getTemperature/sensor01")).Add(7)
	m.Counter(Key("service.invocations", `weird"label\n`)).Add(1)
	m.Gauge("cq.queries").Set(3)
	m.Gauge(Key("cq.stream.lag", "temperatures")).Set(-1)
	h := m.Histogram("cq.tick.latency")
	for _, d := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, time.Millisecond, 10 * time.Millisecond,
	} {
		h.Observe(d)
	}
	return m
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "openmetrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file (run with -update-golden to regenerate)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	m := goldenRegistry()
	if err := m.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestOpenMetricsShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serena_cq_ticks_total counter\n",
		"serena_cq_ticks_total 42\n",
		`serena_service_invocations_total{key="getTemperature/sensor01"} 7`,
		`serena_service_invocations_total{key="weird\"label\\n"} 1`,
		"# TYPE serena_cq_queries gauge\n",
		`serena_cq_stream_lag{key="temperatures"} -1`,
		"# TYPE serena_cq_tick_latency histogram\n",
		"serena_cq_tick_latency_bucket{le=\"+Inf\"} 6\n",
		"serena_cq_tick_latency_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cumulative buckets: every histogram bucket line is non-decreasing.
	var prev int64 = -1
	lines := strings.Split(out, "\n")
	buckets := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "serena_cq_tick_latency_bucket") {
			continue
		}
		buckets++
		v, err := lastFieldInt(line)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
	if buckets != histBuckets+1 {
		t.Fatalf("%d bucket lines, want %d (+Inf included)", buckets, histBuckets+1)
	}
	// _sum is in seconds: 11.111ms + 1ms ≈ 0.012111s.
	if !strings.Contains(out, "serena_cq_tick_latency_sum 0.012111\n") {
		t.Errorf("missing seconds-scaled _sum, got:\n%s", out)
	}
}

func TestMetricsEndpointNegotiation(t *testing.T) {
	mux := DebugMux(nil, nil)
	get := func(target, accept string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", target, rec.Code)
		}
		return rec
	}

	// Default (a browser, a curl with no Accept): JSON.
	if ct := get("/metrics", "").Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default Content-Type = %q, want JSON", ct)
	}
	if ct := get("/metrics", "text/html").Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("browser Accept → Content-Type = %q, want JSON", ct)
	}
	// Prometheus scraper: text exposition.
	for _, tc := range []struct{ target, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics?format=openmetrics", ""},
		{"/metrics", "application/openmetrics-text;version=1.0.0,text/plain"},
		{"/metrics", "text/plain;version=0.0.4"},
	} {
		rec := get(tc.target, tc.accept)
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("GET %s (Accept %q): Content-Type = %q, want text exposition", tc.target, tc.accept, ct)
		}
	}
	// Explicit JSON wins over a text Accept header.
	if ct := get("/metrics?format=json", "text/plain").Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("format=json → Content-Type = %q, want JSON", ct)
	}
}

func TestCardinalityGuard(t *testing.T) {
	m := New()
	m.SetMaxKeyedSeries(3)
	for _, label := range []string{"a", "b", "c"} {
		m.Counter(Key("inv", label)).Inc()
	}
	// Past the cap: creations collapse into the overflow series.
	m.Counter(Key("inv", "d")).Inc()
	m.Counter(Key("inv", "e")).Add(2)
	snap := m.Snapshot()
	if _, ok := snap.Counters[Key("inv", "d")]; ok {
		t.Fatal("series past the cap was created")
	}
	if got := snap.Counters[Key("inv", OverflowLabel)]; got != 3 {
		t.Fatalf("overflow series = %d, want 3", got)
	}
	if got := snap.Counters[DroppedSeriesMetric]; got != 2 {
		t.Fatalf("%s = %d, want 2 (one per collapsed creation)", DroppedSeriesMetric, got)
	}
	// Existing series keep working at the cap.
	m.Counter(Key("inv", "a")).Inc()
	if got := m.Counter(Key("inv", "a")).Value(); got != 2 {
		t.Fatalf("pre-cap series = %d, want 2", got)
	}
	// The cap is per base name: a different base still admits series.
	m.Gauge(Key("lag", "x")).Set(1)
	if _, ok := m.Snapshot().Gauges[Key("lag", "x")]; !ok {
		t.Fatal("cap leaked across base names")
	}
	// Unkeyed names are never capped.
	for _, name := range []string{"u1", "u2", "u3", "u4", "u5"} {
		m.Counter(name).Inc()
	}
	if got := m.Counter("u5").Value(); got != 1 {
		t.Fatal("unkeyed metric was capped")
	}
}

func TestCardinalityGuardSharedAcrossKinds(t *testing.T) {
	// The cap counts series per base name across counters, gauges and
	// histograms together.
	m := New()
	m.SetMaxKeyedSeries(2)
	m.Counter(Key("x", "a")).Inc()
	m.Gauge(Key("x", "b")).Set(1)
	m.Histogram(Key("x", "c")).Observe(time.Millisecond)
	snap := m.Snapshot()
	if _, ok := snap.Histograms[Key("x", "c")]; ok {
		t.Fatal("third series admitted past a cap of 2")
	}
	if _, ok := snap.Histograms[Key("x", OverflowLabel)]; !ok {
		t.Fatal("overflow histogram not created")
	}
}

func TestCardinalityGuardDisabled(t *testing.T) {
	m := New()
	m.SetMaxKeyedSeries(0)
	for _, label := range []string{"a", "b", "c", "d", "e"} {
		m.Counter(Key("inv", label)).Inc()
	}
	if _, ok := m.Snapshot().Counters[Key("inv", "e")]; !ok {
		t.Fatal("guard disabled but series was dropped")
	}
}

func TestSplitSeries(t *testing.T) {
	for _, tc := range []struct {
		in, base, label string
		keyed           bool
	}{
		{"plain", "plain", "", false},
		{"a.b{x}", "a.b", "x", true},
		{"a{x/y}", "a", "x/y", true},
		{"trailing{", "trailing{", "", false},
		{"", "", "", false},
	} {
		base, label, keyed := splitSeries(tc.in)
		if base != tc.base || label != tc.label || keyed != tc.keyed {
			t.Errorf("splitSeries(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.in, base, label, keyed, tc.base, tc.label, tc.keyed)
		}
	}
}

// TestHistogramQuantiles strengthens the interpolation contract: a large
// uniform population lands each quantile in its expected bucket.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q      float64
		lo, hi time.Duration
	}{
		// Exponential buckets are coarse; assert the surrounding octave.
		{0.50, 250 * time.Microsecond, 1100 * time.Microsecond},
		{0.95, 500 * time.Microsecond, 1100 * time.Microsecond},
		{0.99, 500 * time.Microsecond, 1100 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("q%.2f = %s outside [%s, %s]", tc.q, got, tc.lo, tc.hi)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.95) || h.Quantile(0.95) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("q<0 must clamp to q=0")
	}
	if h.Quantile(2) < h.Quantile(0.99) {
		t.Fatal("q>1 must clamp high")
	}
}

// lastFieldInt parses the last whitespace-separated field of an exposition
// line (the sample value) as an integer.
func lastFieldInt(line string) (int64, error) {
	fields := strings.Fields(line)
	return strconv.ParseInt(fields[len(fields)-1], 10, 64)
}
