package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	m := New()
	c := m.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("c") != c {
		t.Fatal("Counter not idempotent")
	}
	g := m.Gauge("g")
	g.Set(9)
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	m := New()
	h := m.Histogram("h")
	for _, d := range []time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	wantSum := 11111 * time.Microsecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %s, want %s", h.Sum(), wantSum)
	}
	if h.Max() != 10*time.Millisecond {
		t.Fatalf("max = %s", h.Max())
	}
	if h.Mean() != wantSum/5 {
		t.Fatalf("mean = %s", h.Mean())
	}
	p50 := h.Quantile(0.5)
	if p50 < 10*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %s outside [10µs, 1ms]", p50)
	}
	if q := h.Quantile(1.0); q > h.Max()*2 {
		t.Fatalf("p100 = %s way above max %s", q, h.Max())
	}
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
	// Negative durations clamp rather than corrupt.
	h.Observe(-time.Second)
	if h.Sum() != wantSum {
		t.Fatalf("negative observation changed sum: %s", h.Sum())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(int64(c.d)); got != c.want {
			t.Errorf("bucketOf(%s) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSnapshotAndReset(t *testing.T) {
	m := New()
	c := m.Counter("queries")
	c.Add(3)
	m.Gauge("lag").Set(2)
	m.Histogram("lat").Observe(time.Millisecond)

	s := m.Snapshot()
	if s.Counters["queries"] != 3 || s.Gauges["lag"] != 2 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	text := s.Render()
	for _, want := range []string{"queries", "lag", "lat", "count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render() missing %q:\n%s", want, text)
		}
	}

	m.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero cached counter pointer")
	}
	s = m.Snapshot()
	if s.Counters["queries"] != 0 || s.Gauges["lag"] != 0 || s.Histograms["lat"].Count != 0 {
		t.Fatalf("snapshot after reset: %+v", s)
	}
}

func TestKey(t *testing.T) {
	if got := Key("service.invoke.calls", "p|s"); got != "service.invoke.calls{p|s}" {
		t.Fatalf("Key = %q", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	m := New()
	m.Counter("a").Inc()
	m.Histogram("h").Observe(time.Millisecond)
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["a"] != 1 || round.Histograms["h"].Count != 1 {
		t.Fatalf("round trip: %+v", round)
	}
}

func TestPublishExpvar(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // idempotent
	v := expvar.Get("serena")
	if v == nil {
		t.Fatal("expvar key serena not published")
	}
	Default.Counter("expvar.test").Add(7)
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if s.Counters["expvar.test"] != 7 {
		t.Fatalf("expvar snapshot missing counter: %+v", s.Counters)
	}
}

// TestConcurrentExactness hammers one registry from many goroutines and
// asserts no increment is lost — the property the rest of the stack relies
// on under go test -race.
func TestConcurrentExactness(t *testing.T) {
	const workers = 16
	const perWorker = 2000
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Counter("shared").Inc()
				m.Counter(Key("keyed", []string{"a", "b", "c"}[i%3])).Inc()
				m.Gauge("level").Set(int64(i))
				m.Histogram("lat").Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()

	if got := m.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var keyed int64
	for _, k := range []string{"a", "b", "c"} {
		keyed += m.Counter(Key("keyed", k)).Value()
	}
	if keyed != workers*perWorker {
		t.Fatalf("keyed counters sum = %d, want %d", keyed, workers*perWorker)
	}
	if got := m.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	m := New()
	c := m.Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	m := New()
	h := m.Histogram("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Microsecond * 37)
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	m := New()
	m.Counter("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Counter("hot").Inc()
	}
}
