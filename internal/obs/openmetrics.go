package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteOpenMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4, which OpenMetrics scrapers also accept):
//
//   - counters as <serena_name>_total counter families
//   - gauges as gauge families
//   - histograms as histogram families with cumulative le buckets in
//     seconds plus _sum and _count
//
// Metric names are prefixed serena_ and sanitized (dots → underscores);
// keyed series Key(name, label) become one family with a key="label" label
// per series. Output is fully sorted, so it is deterministic for a fixed
// set of values (golden-testable). Values are read atomically but the
// exposition as a whole is not a transaction — same contract as Snapshot.
func (m *Metrics) WriteOpenMetrics(w io.Writer) error {
	m.mu.RLock()
	counters := make(map[string]*Counter, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(m.histograms))
	for name, h := range m.histograms {
		histograms[name] = h
	}
	m.mu.RUnlock()

	var b strings.Builder
	for _, fam := range groupFamilies(counters) {
		fmt.Fprintf(&b, "# TYPE %s_total counter\n", fam.name)
		for _, s := range fam.series {
			fmt.Fprintf(&b, "%s_total%s %d\n", fam.name, s.labels, counters[s.key].Value())
		}
	}
	for _, fam := range groupFamilies(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam.name)
		for _, s := range fam.series {
			fmt.Fprintf(&b, "%s%s %d\n", fam.name, s.labels, gauges[s.key].Value())
		}
	}
	for _, fam := range groupFamilies(histograms) {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam.name)
		for _, s := range fam.series {
			writeHistogramSeries(&b, fam.name, s.labels, histograms[s.key])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogramSeries renders one histogram series: cumulative buckets
// (le upper bounds in seconds), the mandatory +Inf bucket, _sum and _count.
func writeHistogramSeries(b *strings.Builder, name, labels string, h *Histogram) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(float64(bucketLower(i+1))/1e9, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+le+`"`), cum)
	}
	count := h.Count()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), count)
	sum := strconv.FormatFloat(float64(h.sum.Load())/1e9, 'g', -1, 64)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, count)
}

// family is one exposition metric family: a sanitized name and its series
// (an unkeyed metric is a single series with no labels).
type family struct {
	name   string
	series []series
}

type series struct {
	key    string // registry key (original name)
	labels string // rendered label set, "" or `{key="..."}`
}

// groupFamilies buckets registry keys by sanitized family name, sorted for
// deterministic output.
func groupFamilies[M any](metrics map[string]M) []family {
	byName := map[string][]series{}
	for key := range metrics {
		base, label, keyed := splitSeries(key)
		name := sanitizeMetricName(base)
		var labels string
		if keyed {
			labels = `{key="` + escapeLabel(label) + `"}`
		}
		byName[name] = append(byName[name], series{key: key, labels: labels})
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]family, 0, len(names))
	for _, name := range names {
		ss := byName[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		out = append(out, family{name: name, series: ss})
	}
	return out
}

// mergeLabels appends one label pair to a rendered label set.
func mergeLabels(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// sanitizeMetricName maps a registry name onto the Prometheus metric name
// charset [a-zA-Z0-9_:], prefixed with serena_ (dots become underscores).
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.WriteString("serena_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
