package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// DebugMux builds the debug HTTP mux shared by every serena process that
// exposes an observability endpoint (the PEMS metrics server, pemsd's
// -debug listener). Routes:
//
//	/metrics        registry exposition: JSON snapshot by default;
//	                Prometheus/OpenMetrics text when the request asks for
//	                it (?format=prometheus, or an Accept header naming
//	                application/openmetrics-text or text/plain)
//	/debug/serena   human-readable status written by the status callback
//	/debug/vars     standard expvar JSON (includes the "serena" variable)
//	/debug/pprof/*  net/http/pprof profiles (explicitly wired: this is a
//	                private mux, not http.DefaultServeMux)
//
// extra mounts additional handlers by path (e.g. /debug/trace); a nil
// status yields a minimal placeholder page.
func DebugMux(status func(io.Writer), extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsTextExposition(r) {
			// The version=0.0.4 text format; OpenMetrics scrapers accept it
			// and it keeps one renderer for both.
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = Default.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Default.Snapshot())
	})
	mux.HandleFunc("/debug/serena", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if status != nil {
			status(w)
			return
		}
		_, _ = io.WriteString(w, "serena\n======\n\nmetrics:\n"+Default.Snapshot().Render())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range extra {
		mux.Handle(path, h)
	}
	return mux
}

// wantsTextExposition decides whether a /metrics request gets the
// Prometheus text format instead of the default JSON snapshot. Explicit
// ?format=prometheus (or =openmetrics) always wins; otherwise the Accept
// header decides — Prometheus sends application/openmetrics-text and/or
// text/plain. Browsers (Accept: text/html,...) keep getting JSON, as does
// an absent or wildcard Accept, so existing consumers are unaffected.
func wantsTextExposition(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "openmetrics":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}
