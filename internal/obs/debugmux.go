package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug HTTP mux shared by every serena process that
// exposes an observability endpoint (the PEMS metrics server, pemsd's
// -debug listener). Routes:
//
//	/metrics        JSON snapshot of every counter, gauge, and histogram
//	/debug/serena   human-readable status written by the status callback
//	/debug/vars     standard expvar JSON (includes the "serena" variable)
//	/debug/pprof/*  net/http/pprof profiles (explicitly wired: this is a
//	                private mux, not http.DefaultServeMux)
//
// extra mounts additional handlers by path (e.g. /debug/trace); a nil
// status yields a minimal placeholder page.
func DebugMux(status func(io.Writer), extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Default.Snapshot())
	})
	mux.HandleFunc("/debug/serena", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if status != nil {
			status(w)
			return
		}
		_, _ = io.WriteString(w, "serena\n======\n\nmetrics:\n"+Default.Snapshot().Render())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range extra {
		mux.Handle(path, h)
	}
	return mux
}
