// Package obs is the observability core for serena: lock-free counters,
// gauges, and latency histograms behind a named registry, exportable as a
// point-in-time snapshot or through the standard library's expvar facility.
//
// The package is a dependency-free leaf (it imports only the standard
// library) so every layer of the stack — algebra operators, the service
// registry, the wire protocol, circuit breakers, the continuous-query
// executor — can record into it without import cycles.
//
// Hot paths cache metric pointers in package-level variables:
//
//	var invocations = obs.Default.Counter("service.invoke.calls")
//
// Counter/Gauge/Histogram methods are a single atomic op, so always-on
// instrumentation stays within the ≤5% overhead budget. Reset zeroes values
// in place and never invalidates cached pointers.
package obs

import (
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use and all methods are safe for concurrent access.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Next adds one and returns the new count. Hot paths use the return value
// for 1-in-N sampling decisions without a second atomic read.
func (c *Counter) Next() int64 { return c.v.Add(1) }

// Add adds n (n may be zero; negative deltas are ignored so a counter never
// decreases).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-observation-wins integer metric (queue depths, lags,
// breaker states). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the last recorded level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets exponential buckets: bucket i holds observations in
// [1µs·2^i, 1µs·2^(i+1)); bucket 0 also absorbs sub-microsecond
// observations and the last bucket absorbs everything ≥ ~8.6s.
const histBuckets = 24

// Histogram records durations in exponential buckets. The zero value is
// ready to use and all methods are safe for concurrent access.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

func bucketOf(ns int64) int {
	us := ns / 1e3
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLower returns the inclusive lower bound of bucket i in nanoseconds.
func bucketLower(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1e3) << uint(i)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket histogram,
// interpolating linearly inside the winning bucket. Estimates are coarse
// (factor-of-two buckets) but monotone and cheap.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var seen float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := float64(bucketLower(i))
			hi := float64(bucketLower(i + 1))
			frac := (rank - seen) / c
			return time.Duration(lo + (hi-lo)*frac)
		}
		seen += c
	}
	return h.Max()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramStats is a point-in-time summary of a Histogram.
type HistogramStats struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Stats summarises the histogram.
func (h *Histogram) Stats() HistogramStats {
	return HistogramStats{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Metrics is a named registry of counters, gauges, and histograms.
// Get-or-create lookups take a read lock on the fast path; the returned
// pointers may be cached indefinitely.
type Metrics struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// Cardinality guard (see cardinality.go): seriesCount tracks, per base
	// name, how many keyed series exist across all three kinds; maxSeries
	// caps it (0 = unlimited).
	seriesCount map[string]int
	maxSeries   int
}

// New returns an empty registry with the default keyed-series cap.
func New() *Metrics {
	return &Metrics{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		seriesCount: make(map[string]int),
		maxSeries:   DefaultMaxKeyedSeries,
	}
}

// Default is the process-wide registry used by the instrumented layers.
var Default = New()

// Key composes a metric name with a dynamic label, e.g.
// Key("service.invoke.calls", "getTemperature|sensor1") →
// "service.invoke.calls{getTemperature|sensor1}".
func Key(name, label string) string {
	return name + "{" + label + "}"
}

// Counter returns the counter registered under name, creating it if needed.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c != nil {
		return c
	}
	name = m.admitLocked(name)
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g != nil {
		return g
	}
	name = m.admitLocked(name)
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.RLock()
	h := m.histograms[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.histograms[name]; h != nil {
		return h
	}
	name = m.admitLocked(name)
	if h = m.histograms[name]; h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Pointers handed out
// earlier remain valid. Intended for tests and benchmarks.
func (m *Metrics) Reset() {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, c := range m.counters {
		c.reset()
	}
	for _, g := range m.gauges {
		g.reset()
	}
	for _, h := range m.histograms {
		h.reset()
	}
}

// Snapshot is a consistent-enough point-in-time copy of a registry: each
// metric is read atomically, though the set as a whole is not a transaction.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(m.counters)),
		Gauges:     make(map[string]int64, len(m.gauges)),
		Histograms: make(map[string]HistogramStats, len(m.histograms)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// Render formats the snapshot as sorted human-readable text, one metric per
// line, for the shell's .metrics command and /debug/serena.
func (s Snapshot) Render() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-60s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-60s %d\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-60s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry under the expvar key "serena".
// Safe to call more than once; only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("serena", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
