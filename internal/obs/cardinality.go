package obs

// Cardinality guard: keyed series (per-(proto,ref) invocation bundles,
// per-relation lag gauges, per-query eval gauges — anything created through
// Key(name, label)) are driven by dynamic environment content, so millions
// of discovered services must not grow the registry unboundedly. Each base
// name admits at most MaxKeyedSeries distinct labels; past the cap, new
// labels collapse into one overflow series Key(base, OverflowLabel) and the
// obs.dropped_series counter records every collapsed creation. Unkeyed
// metrics (static package-level names) are never capped.

// OverflowLabel is the label of the per-base overflow series that absorbs
// keyed metrics created past the cardinality cap.
const OverflowLabel = "__overflow__"

// DroppedSeriesMetric counts keyed series creations redirected to an
// overflow series because their base name was at the cardinality cap.
const DroppedSeriesMetric = "obs.dropped_series"

// DefaultMaxKeyedSeries is the per-base-name keyed-series cap applied to
// new registries (override with SetMaxKeyedSeries).
const DefaultMaxKeyedSeries = 1024

// SetMaxKeyedSeries sets the per-base-name cap on keyed series (n ≤ 0
// disables the guard). Lowering the cap does not remove existing series; it
// only redirects future creations.
func (m *Metrics) SetMaxKeyedSeries(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxSeries = n
}

// MaxKeyedSeries returns the per-base-name keyed-series cap (0 = unlimited).
func (m *Metrics) MaxKeyedSeries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxSeries
}

// splitSeries splits a metric name produced by Key into its base name and
// label. keyed is false for plain (unkeyed) names.
func splitSeries(name string) (base, label string, keyed bool) {
	if len(name) == 0 || name[len(name)-1] != '}' {
		return name, "", false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i+1 : len(name)-1], true
		}
	}
	return name, "", false
}

// admitLocked gates the creation of a new series (write lock held). It
// returns the name to create: unkeyed names and labels under the cap pass
// through; a keyed name past its base's cap is redirected to the base's
// overflow series, with the drop counted.
func (m *Metrics) admitLocked(name string) string {
	base, label, keyed := splitSeries(name)
	if !keyed || label == OverflowLabel {
		return name
	}
	if m.maxSeries > 0 && m.seriesCount[base] >= m.maxSeries {
		// Direct map access — the registry lock is already held, so going
		// through Counter() here would deadlock.
		c := m.counters[DroppedSeriesMetric]
		if c == nil {
			c = &Counter{}
			m.counters[DroppedSeriesMetric] = c
		}
		c.Inc()
		return Key(base, OverflowLabel)
	}
	m.seriesCount[base]++
	return name
}
