package value

import "strings"

// Tuple is an element of D^n (paper Section 2.3.1). For extended relations
// tuples range only over the real schema (Definition 3); positional access
// therefore always refers to real-attribute coordinates.
type Tuple []Value

// Clone returns a copy of the tuple sharing the (immutable) values.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns the sub-tuple at the given coordinate indexes (paper
// Definition 4 generalized projection). It panics on out-of-range indexes,
// which indicates a schema-resolution bug upstream.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation t ++ u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	return append(out, u...)
}

// Equal reports coordinate-wise equality of equal-length tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically coordinate by coordinate; shorter
// tuples order first on ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key builds an identity key for the tuple, suitable for set/multiset
// bookkeeping. Coordinates are separated by unit separators so that keys of
// distinct tuples never collide.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// String renders the tuple as "(v1, v2, …)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
