// Package value implements the constant domain D of the Serena data model
// (Gripay et al., EDBT 2010, Section 2.3.1): typed atomic values, total
// ordering, hashing keys and literal parsing.
//
// The paper treats service references as "classical data values" (Section
// 2.2); they are represented here by the dedicated kind Service so that the
// DDL type SERVICE can be checked, but they compare and print like strings.
package value

import (
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the atomic types of the domain D. The zero Kind is Null,
// which represents the SQL-like absence of value inside real attributes
// (virtual attributes never hold values at all; see the schema package).
type Kind uint8

// The supported kinds, mirroring the Serena DDL type names.
const (
	Null    Kind = iota // absence of value
	Bool                // BOOLEAN
	Int                 // INTEGER (64-bit signed)
	Real                // REAL (IEEE-754 double)
	String              // STRING
	Blob                // BLOB (byte string)
	Service             // SERVICE (service reference)
	numKinds
)

// kindNames maps kinds to their Serena DDL spelling.
var kindNames = [numKinds]string{
	Null:    "NULL",
	Bool:    "BOOLEAN",
	Int:     "INTEGER",
	Real:    "REAL",
	String:  "STRING",
	Blob:    "BLOB",
	Service: "SERVICE",
}

// String returns the Serena DDL name of the kind ("INTEGER", "SERVICE", …).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the declared kinds.
func (k Kind) Valid() bool { return k < numKinds }

// KindFromName parses a Serena DDL type name (case-insensitive). It returns
// false when the name is not a known type.
func KindFromName(name string) (Kind, bool) {
	switch strings.ToUpper(name) {
	case "BOOLEAN", "BOOL":
		return Bool, true
	case "INTEGER", "INT":
		return Int, true
	case "REAL", "FLOAT", "DOUBLE":
		return Real, true
	case "STRING", "VARCHAR", "TEXT":
		return String, true
	case "BLOB", "BYTES":
		return Blob, true
	case "SERVICE":
		return Service, true
	case "NULL":
		return Null, true
	}
	return 0, false
}

// Value is one constant from the domain D. The zero Value is the NULL value.
// Values are immutable; the Blob payload must not be mutated after
// construction.
type Value struct {
	kind Kind
	num  uint64 // Bool (0/1), Int (two's complement), Real (IEEE bits)
	str  string // String and Service payload
	blob []byte // Blob payload
}

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: Bool, num: n}
}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{kind: Int, num: uint64(i)} }

// NewReal returns a REAL value.
func NewReal(f float64) Value { return Value{kind: Real, num: math.Float64bits(f)} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{kind: String, str: s} }

// NewBlob returns a BLOB value wrapping b. The caller must not mutate b
// afterwards.
func NewBlob(b []byte) Value { return Value{kind: Blob, blob: b} }

// NewService returns a SERVICE reference value (paper Section 2.2: service
// references are plain data values identifying services).
func NewService(ref string) Value { return Value{kind: Service, str: ref} }

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == Null }

// Bool returns the boolean payload; it panics when the kind is not Bool.
func (v Value) Bool() bool {
	v.mustBe(Bool)
	return v.num != 0
}

// Int returns the integer payload; it panics when the kind is not Int.
func (v Value) Int() int64 {
	v.mustBe(Int)
	return int64(v.num)
}

// Real returns the float payload; it panics when the kind is not Real.
func (v Value) Real() float64 {
	v.mustBe(Real)
	return math.Float64frombits(v.num)
}

// Str returns the string payload; it panics when the kind is not String.
func (v Value) Str() string {
	v.mustBe(String)
	return v.str
}

// Blob returns the blob payload; it panics when the kind is not Blob. The
// returned slice must not be mutated.
func (v Value) Blob() []byte {
	v.mustBe(Blob)
	return v.blob
}

// ServiceRef returns the service reference; it panics when the kind is not
// Service.
func (v Value) ServiceRef() string {
	v.mustBe(Service)
	return v.str
}

// AsFloat converts numeric values (Int, Real, Bool) to float64 for numeric
// comparison; ok is false for other kinds.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case Int:
		return float64(int64(v.num)), true
	case Real:
		return math.Float64frombits(v.num), true
	case Bool:
		if v.num != 0 {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsString returns the textual payload of String and Service values; ok is
// false for other kinds.
func (v Value) AsString() (string, bool) {
	if v.kind == String || v.kind == Service {
		return v.str, true
	}
	return "", false
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s value accessed as %s", v.kind, k))
	}
}

// Numeric reports whether the kind holds a number (Int or Real).
func (k Kind) Numeric() bool { return k == Int || k == Real }

// Textual reports whether the kind holds text (String or Service — the
// paper treats service references as classical string-like data values).
func (k Kind) Textual() bool { return k == String || k == Service }

// Comparable reports whether values of kinds a and b can be ordered against
// each other: identical kinds always can, Int/Real mix numerically, and
// String/Service mix textually.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	return (a.Numeric() && b.Numeric()) || (a.Textual() && b.Textual())
}

// Compare totally orders values. Within comparable kinds the natural order
// is used (numeric for Int/Real mixes, lexicographic for String/Service
// mixes, blobs, false<true for booleans); across non-comparable kinds the
// kind number decides, with NULL first. This yields a deterministic total
// order suitable for sorting and set operations.
func Compare(a, b Value) int {
	if a.kind.Textual() && b.kind.Textual() {
		return strings.Compare(a.str, b.str)
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		// Equal numerically: Int and Real compare equal (3 == 3.0).
		return 0
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case Null:
		return 0
	case Bool:
		switch {
		case a.num == b.num:
			return 0
		case a.num < b.num:
			return -1
		}
		return 1
	case String, Service:
		return strings.Compare(a.str, b.str)
	case Blob:
		return compareBytes(a.blob, b.blob)
	}
	return 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports whether a orders strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Key returns a string usable as a map key such that Key(a)==Key(b) iff the
// values are identical (same kind and payload). Unlike Compare, Key
// distinguishes Int(3) from Real(3.0) so it can serve as an exact identity
// for memoization; set semantics over tuples use tuple keys built from it.
func (v Value) Key() string {
	switch v.kind {
	case Null:
		return "n"
	case Bool:
		if v.num != 0 {
			return "bT"
		}
		return "bF"
	case Int:
		return "i" + strconv.FormatInt(int64(v.num), 10)
	case Real:
		return "r" + strconv.FormatUint(v.num, 16)
	case String:
		return "s" + v.str
	case Service:
		return "v" + v.str
	case Blob:
		return "x" + string(v.blob)
	}
	return "?"
}

// String renders the value for display: strings are quoted, blobs hex-dumped
// (truncated), NULL prints as "*" following the paper's tables where '*'
// denotes absence of value.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "*"
	case Bool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(int64(v.num), 10)
	case Real:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case String:
		return quoteSAL(v.str)
	case Service:
		return v.str
	case Blob:
		const max = 8
		if len(v.blob) <= max {
			return "0x" + hex.EncodeToString(v.blob)
		}
		return fmt.Sprintf("0x%s…(%dB)", hex.EncodeToString(v.blob[:max]), len(v.blob))
	}
	return "?"
}

// Quote renders s as a double-quoted string literal using only the escape
// sequences the SAL/DDL lexer understands (\\ \" \n \t); every other byte
// is emitted verbatim. strconv.Quote is unsuitable for anything the lexer
// re-reads: it emits \xNN / \uNNNN escapes for non-printable or non-UTF-8
// content, which the lexer would re-read as the literal characters
// 'x', 'N', 'N' — a lossy round trip.
func Quote(s string) string { return quoteSAL(s) }

func quoteSAL(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Parse parses a literal in Serena Algebra Language syntax: quoted strings
// ("…" or '…'), booleans (true/false), NULL/*, integers, reals, and 0x-blobs.
// Bare identifiers are NOT literals (they are attribute references) and
// yield an error.
func Parse(text string) (Value, error) {
	t := strings.TrimSpace(text)
	switch {
	case t == "":
		return Value{}, fmt.Errorf("value: empty literal")
	case t == "*" || strings.EqualFold(t, "null"):
		return NewNull(), nil
	case strings.EqualFold(t, "true"):
		return NewBool(true), nil
	case strings.EqualFold(t, "false"):
		return NewBool(false), nil
	case len(t) >= 2 && (t[0] == '"' || t[0] == '\''):
		q := t[0]
		if t[len(t)-1] != q {
			return Value{}, fmt.Errorf("value: unterminated string literal %q", text)
		}
		body := t[1 : len(t)-1]
		if q == '\'' {
			body = strings.ReplaceAll(body, `\'`, `'`)
			return NewString(body), nil
		}
		s, err := strconv.Unquote(t)
		if err != nil {
			// Tolerate raw bodies that Unquote rejects (e.g. lone backslash).
			return NewString(body), nil
		}
		return NewString(s), nil
	case strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X"):
		b, err := hex.DecodeString(t[2:])
		if err != nil {
			return Value{}, fmt.Errorf("value: bad blob literal %q: %w", text, err)
		}
		return NewBlob(b), nil
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return NewReal(f), nil
	}
	return Value{}, fmt.Errorf("value: cannot parse literal %q", text)
}

// Coerce converts v to kind k when a lossless natural conversion exists
// (Int→Real, String↔Service, NULL→anything). It returns false otherwise.
// Coerce never converts Real→Int (lossy) nor anything to Bool.
func Coerce(v Value, k Kind) (Value, bool) {
	if v.kind == k {
		return v, true
	}
	switch {
	case v.kind == Null:
		return v, true
	case v.kind == Int && k == Real:
		return NewReal(float64(int64(v.num))), true
	case v.kind == String && k == Service:
		return NewService(v.str), true
	case v.kind == Service && k == String:
		return NewString(v.str), true
	}
	return Value{}, false
}
