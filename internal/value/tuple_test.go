package value

import (
	"testing"
	"testing/quick"
)

func tup(vs ...Value) Tuple { return Tuple(vs) }

func TestTupleClone(t *testing.T) {
	orig := tup(NewInt(1), NewString("a"))
	c := orig.Clone()
	if !c.Equal(orig) {
		t.Fatal("clone differs")
	}
	c[0] = NewInt(2)
	if orig[0].Int() != 1 {
		t.Fatal("clone aliases original")
	}
	if Tuple(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestTupleProject(t *testing.T) {
	u := tup(NewInt(10), NewInt(20), NewInt(30))
	got := u.Project([]int{2, 0})
	want := tup(NewInt(30), NewInt(10))
	if !got.Equal(want) {
		t.Fatalf("Project = %v want %v", got, want)
	}
	if len(u.Project(nil)) != 0 {
		t.Fatal("empty projection should yield empty tuple")
	}
}

func TestTupleConcat(t *testing.T) {
	a := tup(NewInt(1))
	b := tup(NewInt(2), NewInt(3))
	got := a.Concat(b)
	if !got.Equal(tup(NewInt(1), NewInt(2), NewInt(3))) {
		t.Fatalf("Concat = %v", got)
	}
	// Concat must not alias a's backing array in a way that mutates it.
	got[0] = NewInt(9)
	if a[0].Int() != 1 {
		t.Fatal("Concat aliases input")
	}
}

func TestTupleEqualAndCompare(t *testing.T) {
	a := tup(NewInt(1), NewString("x"))
	b := tup(NewInt(1), NewString("x"))
	c := tup(NewInt(1), NewString("y"))
	short := tup(NewInt(1))
	if !a.Equal(b) || a.Equal(c) || a.Equal(short) {
		t.Fatal("Equal broken")
	}
	if a.Compare(b) != 0 || a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Fatal("Compare broken")
	}
	if short.Compare(a) >= 0 || a.Compare(short) <= 0 {
		t.Fatal("prefix tuples should order first")
	}
}

func TestTupleKeyDistinguishes(t *testing.T) {
	// Keys must not collide across different arrangements of the same text.
	a := tup(NewString("ab"), NewString("c"))
	b := tup(NewString("a"), NewString("bc"))
	if a.Key() == b.Key() {
		t.Fatal("tuple keys collide across boundaries")
	}
	if a.Key() != tup(NewString("ab"), NewString("c")).Key() {
		t.Fatal("identical tuples must share keys")
	}
}

func TestTupleString(t *testing.T) {
	s := tup(NewInt(1), NewNull(), NewService("email")).String()
	if s != "(1, *, email)" {
		t.Fatalf("String = %q", s)
	}
}

func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(a, b []int64) bool {
		ta := make(Tuple, len(a))
		for i, x := range a {
			ta[i] = NewInt(x)
		}
		tb := make(Tuple, len(b))
		for i, x := range b {
			tb[i] = NewInt(x)
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
