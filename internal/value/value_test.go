package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromName(k.String())
		if !ok {
			t.Fatalf("KindFromName(%q) not recognised", k.String())
		}
		if got != k {
			t.Fatalf("KindFromName(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestKindFromNameAliases(t *testing.T) {
	cases := map[string]Kind{
		"int": Int, "INT": Int, "Integer": Int,
		"bool": Bool, "float": Real, "double": Real,
		"varchar": String, "text": String, "bytes": Blob,
		"service": Service,
	}
	for name, want := range cases {
		got, ok := KindFromName(name)
		if !ok || got != want {
			t.Errorf("KindFromName(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := KindFromName("datetime"); ok {
		t.Error("KindFromName accepted unknown type name")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !NewNull().IsNull() {
		t.Error("NewNull not null")
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != Bool {
		t.Error("NewBool broken")
	}
	if v := NewInt(-42); v.Int() != -42 {
		t.Error("NewInt broken")
	}
	if v := NewReal(3.25); v.Real() != 3.25 {
		t.Error("NewReal broken")
	}
	if v := NewString("hi"); v.Str() != "hi" {
		t.Error("NewString broken")
	}
	if v := NewBlob([]byte{1, 2}); string(v.Blob()) != "\x01\x02" {
		t.Error("NewBlob broken")
	}
	if v := NewService("sensor01"); v.ServiceRef() != "sensor01" {
		t.Error("NewService broken")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-kind accessor")
		}
	}()
	_ = NewInt(1).Str()
}

func TestAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{NewInt(7), 7, true},
		{NewReal(2.5), 2.5, true},
		{NewBool(true), 1, true},
		{NewBool(false), 0, true},
		{NewString("x"), 0, false},
		{NewNull(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if ok != c.ok || got != c.want {
			t.Errorf("AsFloat(%v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsString(t *testing.T) {
	if s, ok := NewString("a").AsString(); !ok || s != "a" {
		t.Error("AsString(String) broken")
	}
	if s, ok := NewService("svc").AsString(); !ok || s != "svc" {
		t.Error("AsString(Service) broken")
	}
	if _, ok := NewInt(1).AsString(); ok {
		t.Error("AsString(Int) should fail")
	}
}

func TestCompareNumericMix(t *testing.T) {
	if Compare(NewInt(3), NewReal(3.0)) != 0 {
		t.Error("Int 3 should equal Real 3.0")
	}
	if Compare(NewInt(3), NewReal(3.5)) >= 0 {
		t.Error("3 < 3.5 expected")
	}
	if Compare(NewReal(4), NewInt(3)) <= 0 {
		t.Error("4.0 > 3 expected")
	}
}

func TestCompareWithinKinds(t *testing.T) {
	if Compare(NewBool(false), NewBool(true)) >= 0 {
		t.Error("false < true expected")
	}
	if Compare(NewString("a"), NewString("b")) >= 0 {
		t.Error("a < b expected")
	}
	if Compare(NewService("a"), NewService("a")) != 0 {
		t.Error("same service refs should be equal")
	}
	if Compare(NewBlob([]byte{1}), NewBlob([]byte{1, 0})) >= 0 {
		t.Error("shorter blob prefix orders first")
	}
	if Compare(NewNull(), NewNull()) != 0 {
		t.Error("NULL == NULL under Compare")
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	// NULL orders before everything.
	if Compare(NewNull(), NewInt(-1)) >= 0 {
		t.Error("NULL should order first")
	}
	// String and Service mix textually (service refs are classical data
	// values, Section 2.2).
	if Compare(NewString("email"), NewService("email")) != 0 {
		t.Error(`String "email" should equal Service email under Compare`)
	}
	if Compare(NewString("a"), NewService("b")) >= 0 || Compare(NewService("b"), NewString("a")) <= 0 {
		t.Error("textual mix should order lexicographically")
	}
	// Non-comparable kinds order by kind number (Int < String).
	if Compare(NewInt(999), NewString("a")) >= 0 {
		t.Error("Int kind orders before String kind")
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	vals := []Value{
		NewNull(), NewBool(false), NewBool(true), NewInt(-5), NewInt(0),
		NewInt(5), NewReal(-5), NewReal(2.5), NewReal(5), NewString(""),
		NewString("abc"), NewBlob(nil), NewBlob([]byte("xy")),
		NewService("s1"), NewService("s2"),
	}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := Compare(a, b), Compare(b, a)
			if ab != -ba {
				t.Fatalf("antisymmetry violated for %v,%v: %d vs %d", a, b, ab, ba)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestKeyIdentity(t *testing.T) {
	pairs := []struct {
		a, b Value
		same bool
	}{
		{NewInt(3), NewInt(3), true},
		{NewInt(3), NewReal(3), false}, // Key is exact identity, unlike Compare
		{NewString("x"), NewService("x"), false},
		{NewString("bT"), NewBool(true), false},
		{NewBlob([]byte("i3")), NewInt(3), false},
		{NewNull(), NewNull(), true},
	}
	for _, p := range pairs {
		if (p.a.Key() == p.b.Key()) != p.same {
			t.Errorf("Key(%v) vs Key(%v): same=%v want %v", p.a, p.b, p.a.Key() == p.b.Key(), p.same)
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"*":        NewNull(),
		"true":     NewBool(true),
		"-7":       NewInt(-7),
		"2.5":      NewReal(2.5),
		`"hi"`:     NewString("hi"),
		"sensor01": NewService("sensor01"),
		"0x0102":   NewBlob([]byte{1, 2}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q want %q", v, got, want)
		}
	}
	long := NewBlob(make([]byte, 100))
	if s := long.String(); !strings.Contains(s, "(100B)") {
		t.Errorf("long blob should be truncated with size, got %q", s)
	}
}

func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want Value
	}{
		{"42", NewInt(42)},
		{"-42", NewInt(-42)},
		{"3.5", NewReal(3.5)},
		{"1e3", NewReal(1000)},
		{`"hello"`, NewString("hello")},
		{`'hello'`, NewString("hello")},
		{`"with \"quote\""`, NewString(`with "quote"`)},
		{"true", NewBool(true)},
		{"FALSE", NewBool(false)},
		{"*", NewNull()},
		{"null", NewNull()},
		{"0x0aff", NewBlob([]byte{0x0a, 0xff})},
		{"  7 ", NewInt(7)},
	}
	for _, c := range good {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got.Key() != c.want.Key() {
			t.Errorf("Parse(%q) = %v want %v", c.in, got, c.want)
		}
	}
	bad := []string{"", "abc", `"unterminated`, "0xzz", "--3"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, ok := Coerce(NewInt(3), Real); !ok || v.Real() != 3 {
		t.Error("Int→Real coercion failed")
	}
	if v, ok := Coerce(NewString("s"), Service); !ok || v.ServiceRef() != "s" {
		t.Error("String→Service coercion failed")
	}
	if v, ok := Coerce(NewService("s"), String); !ok || v.Str() != "s" {
		t.Error("Service→String coercion failed")
	}
	if _, ok := Coerce(NewReal(3.5), Int); ok {
		t.Error("Real→Int must not coerce (lossy)")
	}
	if _, ok := Coerce(NewInt(1), Bool); ok {
		t.Error("Int→Bool must not coerce")
	}
	if v, ok := Coerce(NewNull(), Blob); !ok || !v.IsNull() {
		t.Error("NULL coerces to anything, staying NULL")
	}
	if v, ok := Coerce(NewInt(5), Int); !ok || v.Int() != 5 {
		t.Error("identity coercion failed")
	}
}

func TestComparableKinds(t *testing.T) {
	if !Comparable(Int, Real) || !Comparable(Real, Int) {
		t.Error("numeric kinds must be comparable")
	}
	if !Comparable(String, String) {
		t.Error("same kinds must be comparable")
	}
	if Comparable(String, Int) {
		t.Error("String vs Int must not be comparable")
	}
}

func TestQuickCompareConsistency(t *testing.T) {
	// For random int/float pairs, Compare must agree with float ordering.
	f := func(a int64, b float64) bool {
		if math.IsNaN(b) {
			return true // NaN excluded from the model (never produced by Parse)
		}
		c := Compare(NewInt(a), NewReal(b))
		af := float64(a)
		switch {
		case af < b:
			return c == -1
		case af > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := NewString(a), NewString(b)
		return (va.Key() == vb.Key()) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
