package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"serena/internal/cq"
	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/stream"
)

// A checkpoint bounds replay: it snapshots the whole environment — the
// catalog as re-executable DDL and the executor's cross-tick state — so
// recovery restores it and replays only the WAL segments written after it.
// The file is written beside the segments via temp-file + rename, making it
// atomic: a crash mid-checkpoint leaves the previous one intact.
const (
	checkpointMagic = "SRNCKPT1"
	checkpointFile  = "checkpoint"
	checkpointTmp   = "checkpoint.tmp"
)

// Checkpoint is one durable snapshot of a pervasive environment.
type Checkpoint struct {
	// NextSeq is the first WAL segment to replay after restoring; older
	// segments are redundant and pruned.
	NextSeq uint64
	// Catalog is a DDL script re-creating services, prototypes, relations
	// and registered queries (no data — that lives in State).
	Catalog string
	// State is the executor snapshot.
	State cq.CheckpointState
}

func encodeCheckpoint(c *Checkpoint) []byte {
	e := encoder{}
	e.u64(c.NextSeq)
	e.str(c.Catalog)
	e.varint(int64(c.State.At))
	e.uvarint(uint64(len(c.State.Relations)))
	for _, rs := range c.State.Relations {
		e.str(rs.Name)
		e.bool(rs.Derived)
		e.varint(int64(rs.LastAt))
		e.uvarint(uint64(len(rs.Events)))
		for _, ev := range rs.Events {
			e.varint(int64(ev.At))
			e.u8(byte(ev.Kind))
			e.tuple(ev.Tuple)
		}
		e.uvarint(uint64(len(rs.Current)))
		for _, ct := range rs.Current {
			e.tuple(ct.Tuple)
			e.uvarint(uint64(ct.Count))
		}
	}
	e.uvarint(uint64(len(c.State.Queries)))
	for _, qs := range c.State.Queries {
		e.str(qs.Name)
		e.str(qs.Source)
		e.str(qs.OnError)
		e.str(qs.Into)
		e.varint(int64(qs.Retain))
		e.rows(qs.PrevOutput)
		e.uvarint(uint64(len(qs.InvCache)))
		for _, ce := range qs.InvCache {
			e.uvarint(uint64(ce.Node))
			e.str(ce.Key)
			// Distinguish "cached as empty/pinned" (nil rows) from rows
			// present: a pinned entry must survive the round trip as an
			// entry, so presence is the entry itself and rows may be empty.
			e.rows(ce.Rows)
		}
		e.uvarint(uint64(len(qs.StreamPrev)))
		for _, se := range qs.StreamPrev {
			e.uvarint(uint64(se.Node))
			e.tuple(se.Tuple)
		}
		e.varint(qs.Stats.Passive)
		e.varint(qs.Stats.Active)
		e.varint(qs.Stats.Memoized)
		e.uvarint(uint64(len(qs.Actions)))
		for _, a := range qs.Actions {
			e.str(a.BP)
			e.str(a.Ref)
			e.tuple(a.Input)
		}
	}
	return e.buf
}

func decodeCheckpoint(payload []byte) (*Checkpoint, error) {
	d := decoder{buf: payload}
	c := &Checkpoint{}
	c.NextSeq = d.u64()
	c.Catalog = d.str()
	c.State.At = service.Instant(d.varint())
	nrel := d.count(1)
	for i := 0; i < nrel && d.err == nil; i++ {
		var rs cq.RelationState
		rs.Name = d.str()
		rs.Derived = d.bool()
		rs.LastAt = service.Instant(d.varint())
		nev := d.count(1)
		for j := 0; j < nev && d.err == nil; j++ {
			rs.Events = append(rs.Events, stream.Event{
				At:    service.Instant(d.varint()),
				Kind:  stream.EventKind(d.u8()),
				Tuple: d.tuple(),
			})
		}
		ncur := d.count(1)
		for j := 0; j < ncur && d.err == nil; j++ {
			t := d.tuple()
			rs.Current = append(rs.Current, stream.Counted{Tuple: t, Count: int(d.uvarint())})
		}
		c.State.Relations = append(c.State.Relations, rs)
	}
	nq := d.count(1)
	for i := 0; i < nq && d.err == nil; i++ {
		var qs cq.QueryState
		qs.Name = d.str()
		qs.Source = d.str()
		qs.OnError = d.str()
		qs.Into = d.str()
		qs.Retain = service.Instant(d.varint())
		qs.PrevOutput = d.rows()
		nc := d.count(1)
		for j := 0; j < nc && d.err == nil; j++ {
			qs.InvCache = append(qs.InvCache, cq.InvCacheEntry{
				Node: int(d.uvarint()),
				Key:  d.str(),
				Rows: d.rows(),
			})
		}
		ns := d.count(1)
		for j := 0; j < ns && d.err == nil; j++ {
			qs.StreamPrev = append(qs.StreamPrev, cq.StreamPrevEntry{
				Node:  int(d.uvarint()),
				Tuple: d.tuple(),
			})
		}
		qs.Stats.Passive = d.varint()
		qs.Stats.Active = d.varint()
		qs.Stats.Memoized = d.varint()
		na := d.count(1)
		for j := 0; j < na && d.err == nil; j++ {
			qs.Actions = append(qs.Actions, query.Action{
				BP:    d.str(),
				Ref:   d.str(),
				Input: d.tuple(),
			})
		}
		c.State.Queries = append(c.State.Queries, qs)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", d.err)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("wal: checkpoint: %d trailing bytes", len(d.buf)-d.pos)
	}
	return c, nil
}

// writeCheckpointFile atomically persists the checkpoint: write + fsync the
// temp file, rename over the live name, fsync the directory. Checkpoints
// always fsync, whatever the log's policy — they are the recovery floor.
func writeCheckpointFile(dir string, c *Checkpoint) error {
	payload := encodeCheckpoint(c)
	buf := make([]byte, 0, len(checkpointMagic)+frameHeaderSize+len(payload))
	buf = append(buf, checkpointMagic...)
	buf = appendFrame(buf, payload)
	tmp := filepath.Join(dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadCheckpoint reads the checkpoint file, returning (nil, nil) when none
// exists. A corrupt checkpoint is an error; the caller degrades to replaying
// the full log rather than refusing to start.
func loadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(checkpointMagic) || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("wal: checkpoint: bad magic")
	}
	rest := data[len(checkpointMagic):]
	var c *Checkpoint
	consumed := ScanFrames(rest, func(payload []byte) error {
		if c != nil {
			return fmt.Errorf("wal: checkpoint: extra frame")
		}
		dc, derr := decodeCheckpoint(payload)
		if derr != nil {
			return derr
		}
		c = dc
		return nil
	})
	if c == nil || consumed != len(rest) {
		return nil, fmt.Errorf("wal: checkpoint: corrupt frame")
	}
	return c, nil
}
