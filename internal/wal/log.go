package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SyncPolicy selects when the log fsyncs. Regardless of policy, buffered
// frames are flushed to the operating system at every tick commit and
// before every active-β intent, so a killed process (SIGKILL) loses at most
// the current in-flight tick; fsync only matters for whole-machine crashes.
type SyncPolicy uint8

// Fsync policies, in the spelling of the -fsync flag.
const (
	// SyncInterval fsyncs at tick commits, at most once per SyncInterval
	// duration (default 200ms) — the recommended trade-off.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every appended batch and every commit.
	SyncAlways
	// SyncOff never fsyncs the log (checkpoints still do).
	SyncOff
)

// String renders the -fsync spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy parses the -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return SyncInterval, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// Segment files are named wal-<16-digit sequence>.log; rotation at every
// checkpoint starts a fresh sequence and deletes the segments the
// checkpoint made redundant.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(mid) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segmentWriter appends framed records to one segment file through a
// buffered writer. flush pushes buffered bytes to the OS (SIGKILL-safe);
// sync additionally fsyncs (power-loss-safe).
type segmentWriter struct {
	path     string
	f        *os.File
	w        *bufio.Writer
	scratch  []byte
	lastSync time.Time
}

func openSegment(path string) (*segmentWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &segmentWriter{path: path, f: f, w: bufio.NewWriterSize(f, 64<<10), lastSync: time.Now()}, nil
}

func (s *segmentWriter) append(rec *Record) error {
	s.scratch = appendFrame(s.scratch[:0], encodeRecord(rec))
	_, err := s.w.Write(s.scratch)
	return err
}

func (s *segmentWriter) flush() error { return s.w.Flush() }

func (s *segmentWriter) sync() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.lastSync = time.Now()
	return s.f.Sync()
}

func (s *segmentWriter) close() error {
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readSegment scans one segment file into records, stopping at the first
// corrupt frame. truncated reports how many trailing bytes were discarded.
func readSegment(path string) (recs []Record, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	consumed := ScanFrames(data, func(payload []byte) error {
		r, derr := DecodeRecord(payload)
		if derr != nil {
			return derr
		}
		recs = append(recs, r)
		return nil
	})
	return recs, int64(len(data) - consumed), nil
}

// removeSegmentsBelow deletes every segment with sequence < seq.
func removeSegmentsBelow(dir string, seq uint64) error {
	seqs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(dir, segmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}
