package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"serena/internal/cq"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

func allKindsTuple() value.Tuple {
	return value.Tuple{
		value.NewNull(),
		value.NewBool(true),
		value.NewInt(-42),
		value.NewReal(3.25),
		value.NewString("a\x01b \"quoted\"\nline"),
		value.NewService("urn:svc/1"),
		value.NewBlob([]byte{0, 1, 0xff}),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := allKindsTuple()
	recs := []Record{
		{Type: TypeDDL, At: 3, Text: "PROTOTYPE p( ) : ( x INTEGER );"},
		{Type: TypeTickBegin, At: 4},
		{Type: TypeTickEnd, At: 4},
		{Type: TypeInsert, At: 5, Rel: "sensors", Tuple: in},
		{Type: TypeDelete, At: 5, Rel: "sensors", Tuple: in},
		{Type: TypeIntent, At: 6, Query: "alerts", Node: 2, BP: "sendMessage[m]", Ref: "email", Input: in},
		{Type: TypeResult, At: 6, Query: "alerts", Node: 2, BP: "sendMessage[m]", Ref: "email", Input: in,
			OK: true, Rows: []value.Tuple{{value.NewBool(true)}, {value.NewBool(false)}}},
		{Type: TypeResult, At: 7, Query: "alerts", Node: 0, BP: "b[s]", Ref: "r", OK: false},
	}
	for _, want := range recs {
		got, err := DecodeRecord(encodeRecord(&want))
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestDecodeRecordRejectsDamage(t *testing.T) {
	good := encodeRecord(&Record{Type: TypeIntent, At: 1, Query: "q", Node: 1, BP: "b", Ref: "r",
		Input: value.Tuple{value.NewInt(7)}})
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty payload decoded")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Error("unknown type decoded")
	}
	if _, err := DecodeRecord(good[:len(good)-2]); err == nil {
		t.Error("truncated payload decoded")
	}
	if _, err := DecodeRecord(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestScanFramesTornTail(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	intact := len(buf)
	// A torn write: half a frame of a fourth record.
	torn := appendFrame(nil, []byte("four"))
	buf = append(buf, torn[:5]...)

	var got []string
	consumed := ScanFrames(buf, func(p []byte) error { got = append(got, string(p)); return nil })
	if consumed != intact {
		t.Fatalf("consumed %d, want %d", consumed, intact)
	}
	if strings.Join(got, ",") != "one,two,three" {
		t.Fatalf("payloads = %v", got)
	}
}

func TestScanFramesBitFlip(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, []byte("aaaa"))
	first := len(buf)
	buf = appendFrame(buf, []byte("bbbb"))
	buf[first+frameHeaderSize] ^= 0x40 // flip a payload bit of frame 2

	var n int
	if consumed := ScanFrames(buf, func([]byte) error { n++; return nil }); consumed != first {
		t.Fatalf("consumed %d, want %d", consumed, first)
	}
	if n != 1 {
		t.Fatalf("delivered %d frames, want 1", n)
	}
}

// testRel builds a one-column finite base relation.
func testRel(t *testing.T, name string) *stream.XDRelation {
	t.Helper()
	ext, err := schema.NewExtended(name, []schema.ExtAttr{{Attribute: schema.Attribute{Name: "n", Type: value.Int}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stream.NewFinite(ext)
}

// recordingHooks captures every replay callback.
type recordingHooks struct {
	restored   *cq.CheckpointState
	catalogDDL string
	ddl        []string
	events     []string
	ticks      []service.Instant
	ledgers    []cq.ReplayLedger
	seeded     []string
	advanced   []service.Instant
}

func (r *recordingHooks) hooks() RecoveryHooks {
	return RecoveryHooks{
		Restore: func(ddl string, st *cq.CheckpointState) error {
			r.catalogDDL = ddl
			r.restored = st
			return nil
		},
		ApplyDDL: func(text string, at service.Instant) error {
			r.ddl = append(r.ddl, text)
			return nil
		},
		ApplyEvent: func(rel string, kind stream.EventKind, at service.Instant, tu value.Tuple) error {
			verb := "insert"
			if kind == stream.Delete {
				verb = "delete"
			}
			r.events = append(r.events, verb+" "+rel+" "+tu.Key())
			return nil
		},
		ReplayTick: func(at service.Instant, ledger cq.ReplayLedger) error {
			r.ticks = append(r.ticks, at)
			r.ledgers = append(r.ledgers, ledger)
			return nil
		},
		SeedActive: func(queryName string, node int, bp, ref string, input value.Tuple, completed, ok bool, rows []value.Tuple) {
			r.seeded = append(r.seeded, queryName)
		},
		AdvanceTo: func(at service.Instant) { r.advanced = append(r.advanced, at) },
	}
}

func openFresh(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Recover(RecoveryHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh {
		t.Fatalf("expected fresh recovery, got %+v", info)
	}
	return m
}

func TestManagerLogReplay(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})

	if err := m.AppendDDL("PROTOTYPE p( ) : ( x INTEGER );", 1); err != nil {
		t.Fatal(err)
	}
	rel := testRel(t, "nums")
	m.AttachRelation(rel)
	if err := m.BeginTick(1); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(1, value.Tuple{value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	in := value.Tuple{value.NewString("x")}
	if err := m.ActiveIntent("alerts", 0, "bp[s]", "email", in, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.ActiveResult("alerts", 0, "bp[s]", "email", in, 1, true, []value.Tuple{{value.NewBool(true)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CommitTick(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if info.Fresh || info.Ticks != 1 || info.Orphans != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("info = %+v", info)
	}
	if len(rec.ddl) != 1 || !strings.HasPrefix(rec.ddl[0], "PROTOTYPE p") {
		t.Fatalf("ddl = %v", rec.ddl)
	}
	if len(rec.events) != 1 || !strings.HasPrefix(rec.events[0], "insert nums") {
		t.Fatalf("events = %v", rec.events)
	}
	if len(rec.ledgers) != 1 {
		t.Fatalf("ledgers = %v", rec.ledgers)
	}
	key := "bp[s]|email|" + in.Key()
	ent, ok := rec.ledgers[0][key]
	if !ok || !ent.Completed || !ent.OK || len(ent.Rows) != 1 {
		t.Fatalf("ledger[%q] = %+v (present %v)", key, ent, ok)
	}
	if len(rec.seeded) != 0 {
		t.Fatalf("seeded = %v", rec.seeded)
	}
}

func TestManagerTrailingCrashTickSeedsOrphans(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})
	rel := testRel(t, "nums")
	m.AttachRelation(rel)
	if err := m.BeginTick(1); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(1, value.Tuple{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.ActiveIntent("q", 0, "bp[s]", "ref", nil, 1); err != nil {
		t.Fatal(err)
	}
	// No CommitTick: the process "crashed" mid-tick.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if info.Orphans != 1 || len(rec.seeded) != 1 || rec.seeded[0] != "q" {
		t.Fatalf("orphans = %d, seeded = %v", info.Orphans, rec.seeded)
	}
	// Trailing tick: its events are discarded (the restarted clock replays
	// the instant live) and the clock is NOT advanced.
	if len(rec.events) != 0 || len(rec.advanced) != 0 || len(rec.ticks) != 0 {
		t.Fatalf("events=%v advanced=%v ticks=%v", rec.events, rec.advanced, rec.ticks)
	}
}

func TestManagerMidLogFailedTickAdvances(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})
	rel := testRel(t, "nums")
	m.AttachRelation(rel)
	// Tick 1 starts, applies an event, fires an intent, then fails live
	// before TickEnd; tick 2 commits normally afterwards.
	if err := m.BeginTick(1); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(1, value.Tuple{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.ActiveIntent("q", 0, "bp[s]", "ref", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginTick(2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CommitTick(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	// The mid-log failed tick applied its event and advanced the clock; its
	// intent is seeded. Tick 2 replays normally.
	if len(rec.events) != 1 || len(rec.advanced) != 1 || rec.advanced[0] != 1 {
		t.Fatalf("events=%v advanced=%v", rec.events, rec.advanced)
	}
	if len(rec.ticks) != 1 || rec.ticks[0] != 2 || info.Orphans != 1 {
		t.Fatalf("ticks=%v orphans=%d", rec.ticks, info.Orphans)
	}
}

func TestManagerTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})
	if err := m.AppendDDL("PROTOTYPE a( ) : ( x INTEGER );", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the tail: a torn half-frame after the valid record.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if info.TruncatedBytes != 3 || len(rec.ddl) != 1 {
		t.Fatalf("info=%+v ddl=%v", info, rec.ddl)
	}
}

func TestBeginTickRequiresRecover(t *testing.T) {
	m, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.BeginTick(1); err == nil {
		t.Fatal("BeginTick before Recover should fail")
	}
}

func testState() cq.CheckpointState {
	in := allKindsTuple()
	return cq.CheckpointState{
		At: 9,
		Relations: []cq.RelationState{{
			Name:   "nums",
			LastAt: 9,
			Events: []stream.Event{{At: 8, Kind: stream.Insert, Tuple: value.Tuple{value.NewInt(1)}}},
			Current: []stream.Counted{
				{Tuple: value.Tuple{value.NewInt(1)}, Count: 2},
			},
		}, {
			Name: "out_q", Derived: true, LastAt: 9,
		}},
		Queries: []cq.QueryState{{
			Name:       "q",
			Source:     "invoke[bp](nums)",
			OnError:    "SKIP",
			Into:       "out_q",
			Retain:     16,
			PrevOutput: []value.Tuple{in},
			InvCache: []cq.InvCacheEntry{
				{Node: 0, Key: "bp|ref|" + in.Key(), Rows: []value.Tuple{{value.NewInt(3)}}},
				// A pinned orphan: the entry exists with nil rows and must
				// survive the round trip as an entry.
				{Node: 0, Key: "bp|ref|k2"},
			},
			StreamPrev: []cq.StreamPrevEntry{{Node: 1, Tuple: value.Tuple{value.NewInt(4)}}},
			Stats:      query.InvokeStats{Passive: 3, Active: 2, Memoized: 1},
			Actions:    []query.Action{{BP: "bp", Ref: "ref", Input: in}},
		}},
	}
}

func TestCheckpointEncodeDecode(t *testing.T) {
	want := &Checkpoint{NextSeq: 7, Catalog: "-- ddl\nPROTOTYPE p( ) : ( x INTEGER );", State: testState()}
	got, err := decodeCheckpoint(encodeCheckpoint(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint round trip:\n got %+v\nwant %+v", got, want)
	}
	if got.State.Queries[0].InvCache[1].Rows != nil {
		t.Fatal("pinned-nil invcache entry grew rows")
	}
}

func TestCheckpointRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})
	if err := m.AppendDDL("PROTOTYPE a( ) : ( x INTEGER );", 1); err != nil {
		t.Fatal(err)
	}
	st := testState()
	if err := m.Checkpoint("-- catalog", st); err != nil {
		t.Fatal(err)
	}
	// Rotation: the pre-checkpoint segment is pruned, a fresh one is live.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %v", segs)
	}
	if err := m.AppendDDL("PROTOTYPE b( ) : ( y INTEGER );", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if !info.HadCheckpoint || info.CheckpointAt != st.At {
		t.Fatalf("info = %+v", info)
	}
	if rec.catalogDDL != "-- catalog" || rec.restored == nil {
		t.Fatalf("restore: ddl=%q restored=%v", rec.catalogDDL, rec.restored)
	}
	if !reflect.DeepEqual(*rec.restored, st) {
		t.Fatalf("restored state:\n got %+v\nwant %+v", *rec.restored, st)
	}
	// Only the post-checkpoint DDL replays.
	if len(rec.ddl) != 1 || !strings.HasPrefix(rec.ddl[0], "PROTOTYPE b") {
		t.Fatalf("ddl = %v", rec.ddl)
	}
}

func TestCorruptCheckpointDegrades(t *testing.T) {
	dir := t.TempDir()
	m := openFresh(t, dir, Options{Fsync: SyncOff})
	if err := m.AppendDDL("PROTOTYPE a( ) : ( x INTEGER );", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint("-- catalog", testState()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Open degrades to full-log replay. The checkpoint rotation pruned the
	// pre-checkpoint segment, so only post-checkpoint records survive — but
	// the store still starts.
	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var rec recordingHooks
	info, err := m2.Recover(rec.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if info.HadCheckpoint {
		t.Fatalf("corrupt checkpoint should not restore: %+v", info)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval,
		"off": SyncOff, "none": SyncOff, "OFF": SyncOff,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		if back, err := ParseSyncPolicy(p.String()); err != nil || back != p {
			t.Errorf("round trip %v → %q → %v, %v", p, p.String(), back, err)
		}
	}
}

func TestSyncPoliciesWriteDurably(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			m := openFresh(t, dir, Options{Fsync: pol})
			if err := m.BeginTick(1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.CommitTick(1); err != nil {
				t.Fatal(err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			var rec recordingHooks
			info, err := m2.Recover(rec.hooks())
			if err != nil {
				t.Fatal(err)
			}
			if info.Ticks != 1 {
				t.Fatalf("ticks = %d under %s", info.Ticks, pol)
			}
		})
	}
}
