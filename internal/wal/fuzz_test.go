package wal

import (
	"reflect"
	"testing"

	"serena/internal/value"
)

// fuzzSeedFrames renders a few realistic log prefixes for the frame fuzzer.
func fuzzSeedFrames() [][]byte {
	in := value.Tuple{value.NewInt(7), value.NewString("x")}
	recs := []Record{
		{Type: TypeDDL, At: 1, Text: "PROTOTYPE p( ) : ( x INTEGER );"},
		{Type: TypeTickBegin, At: 2},
		{Type: TypeInsert, At: 2, Rel: "nums", Tuple: in},
		{Type: TypeIntent, At: 2, Query: "q", Node: 0, BP: "bp[s]", Ref: "r", Input: in},
		{Type: TypeResult, At: 2, Query: "q", Node: 0, BP: "bp[s]", Ref: "r", Input: in, OK: true,
			Rows: []value.Tuple{{value.NewBool(true)}}},
		{Type: TypeTickEnd, At: 2},
	}
	var full []byte
	for i := range recs {
		full = appendFrame(full, encodeRecord(&recs[i]))
	}
	torn := append(append([]byte(nil), full...), full[:frameHeaderSize+2]...)
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x20
	return [][]byte{
		full,
		torn,
		flipped,
		// A length field claiming far more than the buffer holds.
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 'x'},
		{},
	}
}

// FuzzScanFrames asserts the frame scanner never panics, never reads past
// the buffer, and always reports a consistent consumed prefix: rescanning
// it yields the same frames, and the prefix itself is fully intact.
func FuzzScanFrames(f *testing.F) {
	for _, s := range fuzzSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var n int
		consumed := ScanFrames(data, func(payload []byte) error {
			n++
			return nil
		})
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		var n2 int
		if c2 := ScanFrames(data[:consumed], func([]byte) error { n2++; return nil }); c2 != consumed || n2 != n {
			t.Fatalf("rescan of intact prefix: consumed %d/%d frames %d/%d", c2, consumed, n2, n)
		}
	})
}

// FuzzDecodeRecord asserts the record decoder never panics and that any
// accepted record survives a re-encode/decode cycle unchanged (the codec is
// self-consistent even when the accepted input used a non-canonical varint).
func FuzzDecodeRecord(f *testing.F) {
	in := allKindsTuple()
	for _, r := range []Record{
		{Type: TypeDDL, At: 1, Text: "DROP RELATION r;"},
		{Type: TypeTickBegin, At: 2},
		{Type: TypeTickEnd, At: -3},
		{Type: TypeInsert, At: 4, Rel: "nums", Tuple: in},
		{Type: TypeDelete, At: 4, Rel: "nums", Tuple: in},
		{Type: TypeIntent, At: 5, Query: "q", Node: 3, BP: "bp[s]", Ref: "svc", Input: in},
		{Type: TypeResult, At: 5, Query: "q", Node: 3, BP: "bp[s]", Ref: "svc", Input: in, OK: true, Rows: []value.Tuple{in}},
	} {
		rec := r
		f.Add(encodeRecord(&rec))
	}
	// Structurally hostile seeds: unknown type, oversized count, truncation.
	f.Add([]byte{99, 0})
	f.Add([]byte{byte(TypeResult), 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{byte(TypeInsert), 0, 4, 'n', 'u'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		back, err := DecodeRecord(encodeRecord(&rec))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if !reflect.DeepEqual(back, rec) {
			t.Fatalf("re-encode changed record:\n was %+v\n now %+v", rec, back)
		}
	})
}

// FuzzDecodeCheckpoint asserts the checkpoint decoder never panics and
// never over-allocates on hostile counts.
func FuzzDecodeCheckpoint(f *testing.F) {
	good := &Checkpoint{NextSeq: 3, Catalog: "-- ddl", State: testState()}
	f.Add(encodeCheckpoint(good))
	payload := encodeCheckpoint(good)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		c, err := decodeCheckpoint(payload)
		if err != nil {
			return
		}
		back, err := decodeCheckpoint(encodeCheckpoint(c))
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint failed: %v", err)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatal("re-encode changed checkpoint")
		}
	})
}
