// Package wal makes a pervasive environment durable: a CRC32-framed,
// length-prefixed append log of environment mutations (DDL, per-tick stream
// events, and the intent/completion of every ACTIVE β invocation) plus
// periodic checkpoints written via temp-file + rename. Recovery restores the
// last checkpoint and replays the log after it; replayed ticks recompute
// passive invocations but never re-fire active ones (Definitions 8/9: a
// restart may not duplicate the action set), consulting the logged
// intent/completion ledger instead.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"serena/internal/service"
	"serena/internal/value"
)

// Type tags one log record.
type Type uint8

// Record types. The intent/result pair implements the effectful-once
// protocol for active β: the intent is made durable BEFORE the physical
// call, the result right after, so a crash between them leaves an orphan
// intent whose outcome is unknown — recovery then treats the action as
// attempted (it enters the action set, like a failed active invocation
// does live) but never re-fires it.
const (
	TypeDDL       Type = 1 // schema mutation (declare/register/unregister), re-executable text
	TypeTickBegin Type = 2 // clock tick τ started
	TypeTickEnd   Type = 3 // clock tick τ committed (all its records precede this)
	TypeInsert    Type = 4 // tuple inserted into a base relation
	TypeDelete    Type = 5 // tuple deleted from a base relation
	TypeIntent    Type = 6 // active β about to fire (query, plan node, bp, ref, input)
	TypeResult    Type = 7 // active β returned (ok + realized rows)
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TypeDDL:
		return "ddl"
	case TypeTickBegin:
		return "tick-begin"
	case TypeTickEnd:
		return "tick-end"
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	case TypeIntent:
		return "intent"
	case TypeResult:
		return "result"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Record is one entry of the append log. Which fields are meaningful
// depends on Type; unused fields stay zero and are not encoded.
type Record struct {
	Type Type
	At   service.Instant

	// DDL
	Text string

	// Insert / Delete
	Rel   string
	Tuple value.Tuple

	// Intent / Result
	Query string // continuous-query name
	Node  int    // invoke-node index in the registered plan (DFS preorder)
	BP    string // binding-pattern identity "proto[serviceAttr]"
	Ref   string // service reference
	Input value.Tuple
	OK    bool          // Result only: physical call succeeded
	Rows  []value.Tuple // Result only: realized output rows
}

// ActionKey is the delta-cache / ledger identity of an active invocation —
// the same key the continuous executor caches invocation results under.
func (r *Record) ActionKey() string { return r.BP + "|" + r.Ref + "|" + r.Input.Key() }

// encode appends the record's payload (without framing) to the encoder.
func (r *Record) encode(e *encoder) {
	e.u8(byte(r.Type))
	e.varint(int64(r.At))
	switch r.Type {
	case TypeDDL:
		e.str(r.Text)
	case TypeTickBegin, TypeTickEnd:
	case TypeInsert, TypeDelete:
		e.str(r.Rel)
		e.tuple(r.Tuple)
	case TypeIntent:
		e.str(r.Query)
		e.uvarint(uint64(r.Node))
		e.str(r.BP)
		e.str(r.Ref)
		e.tuple(r.Input)
	case TypeResult:
		e.str(r.Query)
		e.uvarint(uint64(r.Node))
		e.str(r.BP)
		e.str(r.Ref)
		e.tuple(r.Input)
		e.bool(r.OK)
		e.rows(r.Rows)
	}
}

// DecodeRecord parses one framed payload back into a Record. Any structural
// problem — unknown type, short buffer, oversized count, trailing garbage —
// is an error; the log scanner treats it as corruption and truncates there.
func DecodeRecord(payload []byte) (Record, error) {
	d := decoder{buf: payload}
	var r Record
	r.Type = Type(d.u8())
	r.At = service.Instant(d.varint())
	switch r.Type {
	case TypeDDL:
		r.Text = d.str()
	case TypeTickBegin, TypeTickEnd:
	case TypeInsert, TypeDelete:
		r.Rel = d.str()
		r.Tuple = d.tuple()
	case TypeIntent:
		r.Query = d.str()
		r.Node = int(d.uvarint())
		r.BP = d.str()
		r.Ref = d.str()
		r.Input = d.tuple()
	case TypeResult:
		r.Query = d.str()
		r.Node = int(d.uvarint())
		r.BP = d.str()
		r.Ref = d.str()
		r.Input = d.tuple()
		r.OK = d.bool()
		r.Rows = d.rows()
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", uint8(r.Type))
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("wal: %s record: %w", r.Type, d.err)
	}
	if d.pos != len(d.buf) {
		return Record{}, fmt.Errorf("wal: %s record: %d trailing bytes", r.Type, len(d.buf)-d.pos)
	}
	return r, nil
}

// encodeRecord renders the record payload (unframed).
func encodeRecord(r *Record) []byte {
	e := encoder{}
	r.encode(&e)
	return e.buf
}

// ---------------------------------------------------------------------------
// Compact binary primitives. Hand-rolled rather than gob: the value package
// has unexported fields, and a fixed byte-level format keeps the decoder
// fuzzable and the on-disk frames stable across Go versions.

type encoder struct{ buf []byte }

func (e *encoder) u8(b byte)        { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) bool(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) value(v value.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case value.Null:
	case value.Bool:
		e.bool(v.Bool())
	case value.Int:
		e.varint(v.Int())
	case value.Real:
		e.u64(math.Float64bits(v.Real()))
	case value.String:
		e.str(v.Str())
	case value.Service:
		e.str(v.ServiceRef())
	case value.Blob:
		e.bytes(v.Blob())
	}
}

func (e *encoder) tuple(t value.Tuple) {
	e.uvarint(uint64(len(t)))
	for _, v := range t {
		e.value(v)
	}
}

func (e *encoder) rows(rs []value.Tuple) {
	e.uvarint(uint64(len(rs)))
	for _, t := range rs {
		e.tuple(t)
	}
}

// decoder reads the primitives back with a sticky error: after the first
// failure every read returns a zero value, and the caller checks err once.
// Counts are validated against the remaining buffer before allocating, so
// fuzzed garbage cannot demand huge slices.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("short buffer reading byte at %d", d.pos)
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad varint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("short buffer reading u64 at %d", d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// count reads a collection length and checks it against the minimum bytes
// each element needs, bounding allocation by the buffer size.
func (d *decoder) count(minPerElem int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if remaining := len(d.buf) - d.pos; n > uint64(remaining/minPerElem)+1 {
		d.fail("count %d exceeds remaining %d bytes", n, remaining)
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.buf) {
		d.fail("short buffer reading %d-byte string at %d", n, d.pos)
		return ""
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.fail("short buffer reading %d-byte blob at %d", n, d.pos)
		return nil
	}
	b := append([]byte(nil), d.buf[d.pos:d.pos+n]...)
	d.pos += n
	return b
}

func (d *decoder) value() value.Value {
	k := value.Kind(d.u8())
	if d.err != nil {
		return value.NewNull()
	}
	switch k {
	case value.Null:
		return value.NewNull()
	case value.Bool:
		return value.NewBool(d.bool())
	case value.Int:
		return value.NewInt(d.varint())
	case value.Real:
		return value.NewReal(math.Float64frombits(d.u64()))
	case value.String:
		return value.NewString(d.str())
	case value.Service:
		return value.NewService(d.str())
	case value.Blob:
		return value.NewBlob(d.bytes())
	}
	d.fail("unknown value kind %d", uint8(k))
	return value.NewNull()
}

func (d *decoder) tuple() value.Tuple {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	t := make(value.Tuple, n)
	for i := range t {
		t[i] = d.value()
	}
	return t
}

func (d *decoder) rows() []value.Tuple {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	rs := make([]value.Tuple, n)
	for i := range rs {
		rs[i] = d.tuple()
	}
	return rs
}
