package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame layout: [4B little-endian payload length][4B little-endian CRC32
// (IEEE) of the payload][payload]. A frame whose header or checksum does
// not parse marks the end of the intact prefix: the scanner stops there and
// recovery truncates, never refusing to start on a torn tail.
const (
	frameHeaderSize = 8
	// maxFramePayload bounds a single record; anything larger in a length
	// field is treated as corruption rather than an allocation request.
	maxFramePayload = 64 << 20
)

// appendFrame appends the framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ScanFrames walks the intact frame prefix of data, calling fn on every
// payload whose length and checksum verify. It stops at the first partial
// or corrupt frame — or when fn returns an error (a structurally valid
// frame holding an undecodable record is corruption too) — and returns the
// number of bytes consumed by fully-accepted frames. consumed < len(data)
// therefore means a damaged tail of len(data)-consumed bytes.
func ScanFrames(data []byte, fn func(payload []byte) error) (consumed int) {
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			return off
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxFramePayload || int(n) > len(data)-off-frameHeaderSize {
			return off
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return off
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off
			}
		}
		off += frameHeaderSize + int(n)
	}
}
