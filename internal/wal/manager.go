package wal

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"serena/internal/cq"
	"serena/internal/obs"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/trace"
	"serena/internal/value"
)

// Durability metrics: append/flush/fsync volume, replay progress, and
// checkpoint cost.
var (
	obsAppends        = obs.Default.Counter("wal.appends")
	obsFsyncs         = obs.Default.Counter("wal.fsyncs")
	obsFsyncTime      = obs.Default.Histogram("wal.fsync.latency")
	obsReplayRecords  = obs.Default.Counter("wal.replay.records")
	obsCheckpoints    = obs.Default.Counter("wal.checkpoints")
	obsCheckpointTime = obs.Default.Histogram("wal.checkpoint.latency")
)

// Options tunes the durability layer.
type Options struct {
	// Fsync is the log's fsync policy (default SyncInterval).
	Fsync SyncPolicy
	// SyncEvery bounds fsync frequency under SyncInterval (default 200ms).
	SyncEvery time.Duration
	// CheckpointEvery is how many committed ticks separate checkpoints
	// (default 50; values < 1 use the default).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 200 * time.Millisecond
	}
	if o.CheckpointEvery < 1 {
		o.CheckpointEvery = 50
	}
	return o
}

// Manager owns one data directory: the checkpoint file plus a sequence of
// WAL segments. It implements cq.Durability for the live path and drives
// replay for recovery. All methods are safe for concurrent use.
type Manager struct {
	dir  string
	opts Options

	mu             sync.Mutex
	seg            *segmentWriter
	seq            uint64 // current segment sequence
	closed         bool
	replaying      bool // recovery replays through live code paths; drop their appends
	recovered      bool
	ticksSinceCkpt int

	// Loaded at Open, consumed by Recover.
	ckpt          *Checkpoint
	replaySegs    []uint64
	truncatedTail int64
}

// Open prepares a data directory: creates it if needed, loads the
// checkpoint (tolerating a corrupt one with a warning — the log still
// covers everything), prunes segments the checkpoint made redundant, and
// starts a fresh segment for this process's appends. Call Recover before
// the first tick, even on an empty directory.
func Open(dir string, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, opts: opts.withDefaults()}
	var err error
	m.ckpt, err = loadCheckpoint(dir)
	if err != nil {
		// Degrade, never refuse to start: recovery falls back to replaying
		// every retained segment from an empty environment.
		slog.Warn("wal: ignoring corrupt checkpoint", "dir", dir, "err", err.Error())
		m.ckpt = nil
	}
	if m.ckpt != nil {
		if err := removeSegmentsBelow(dir, m.ckpt.NextSeq); err != nil {
			return nil, fmt.Errorf("wal: pruning stale segments: %w", err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	m.replaySegs = segs
	m.seq = 1
	if m.ckpt != nil && m.ckpt.NextSeq > m.seq {
		m.seq = m.ckpt.NextSeq
	}
	if n := len(segs); n > 0 && segs[n-1]+1 > m.seq {
		m.seq = segs[n-1] + 1
	}
	m.seg, err = openSegment(filepath.Join(dir, segmentName(m.seq)))
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Dir returns the managed data directory.
func (m *Manager) Dir() string { return m.dir }

// Policy returns the configured fsync policy.
func (m *Manager) Policy() SyncPolicy { return m.opts.Fsync }

// Recovered reports whether Recover has run.
func (m *Manager) Recovered() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// RecoveryHooks connects replay back to the live environment. Restore runs
// first (when a checkpoint exists); then the log after the checkpoint is
// replayed in order through the remaining hooks.
type RecoveryHooks struct {
	// Restore re-creates the catalog from DDL and loads the executor
	// snapshot. Called exactly once, before any replay, only when a
	// checkpoint exists.
	Restore func(catalogDDL string, st *cq.CheckpointState) error
	// ApplyDDL re-executes one logged DDL statement at its instant.
	ApplyDDL func(text string, at service.Instant) error
	// ApplyEvent re-applies one base-relation event.
	ApplyEvent func(rel string, kind stream.EventKind, at service.Instant, t value.Tuple) error
	// ReplayTick re-evaluates one committed tick; its events have already
	// been applied, and ledger carries the tick's active-β outcomes.
	ReplayTick func(at service.Instant, ledger cq.ReplayLedger) error
	// SeedActive pins an active invocation from a tick that never
	// committed (outcome per completed/ok — see cq.(*Executor).SeedActive).
	SeedActive func(queryName string, node int, bp, ref string, input value.Tuple, completed, ok bool, rows []value.Tuple)
	// AdvanceTo moves the clock past a tick that started but never
	// committed live (mid-log: the instant was consumed).
	AdvanceTo func(at service.Instant)
}

// Info summarizes one recovery.
type Info struct {
	// Fresh is true when there was nothing to recover (no checkpoint, no
	// records).
	Fresh bool
	// CheckpointAt is the restored snapshot's instant (−1 without one).
	CheckpointAt   service.Instant
	HadCheckpoint  bool
	Segments       int
	Records        int   // replayed log records
	Ticks          int   // fully committed ticks re-evaluated
	Orphans        int   // active invocations seeded from uncommitted ticks
	TruncatedBytes int64 // damaged tail bytes discarded across segments
}

// pendingTick buffers one tick's records between TickBegin and TickEnd.
type pendingTick struct {
	at      service.Instant
	events  []Record
	intents []Record
	results map[string]Record // by action key
}

// Recover restores the checkpoint (if any) and replays the retained log
// through the hooks. Appends arriving through live code paths while
// replaying (relation hooks firing as events are re-applied) are dropped —
// the log already has them. Must be called once before the first BeginTick.
func (m *Manager) Recover(h RecoveryHooks) (Info, error) {
	m.mu.Lock()
	if m.recovered {
		m.mu.Unlock()
		return Info{}, fmt.Errorf("wal: already recovered")
	}
	m.replaying = true
	ckpt := m.ckpt
	segs := m.replaySegs
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.replaying = false
		m.recovered = true
		m.ckpt = nil
		m.replaySegs = nil
		m.mu.Unlock()
	}()

	span := trace.Default.ForceRoot("wal.recover")
	defer span.Finish()
	info := Info{CheckpointAt: -1, Segments: len(segs)}
	if ckpt != nil {
		info.HadCheckpoint = true
		info.CheckpointAt = ckpt.State.At
		rs := span.Child("wal.restore")
		err := h.Restore(ckpt.Catalog, &ckpt.State)
		rs.Finish()
		if err != nil {
			return info, fmt.Errorf("wal: restoring checkpoint: %w", err)
		}
	}

	var pend *pendingTick
	// resolvePending handles a tick that started but never committed. A
	// mid-log one failed live AFTER consuming its instant and applying its
	// events, so replay applies them too and advances the clock; the
	// trailing one (the crash point) is discarded — the restarted clock
	// re-executes that instant with freshly pumped sources. Either way its
	// active invocations are seeded: fired is fired (Definition 8).
	resolvePending := func(midLog bool) error {
		if pend == nil {
			return nil
		}
		if midLog {
			for _, ev := range pend.events {
				kind := stream.Insert
				if ev.Type == TypeDelete {
					kind = stream.Delete
				}
				if err := h.ApplyEvent(ev.Rel, kind, ev.At, ev.Tuple); err != nil {
					return fmt.Errorf("wal: replaying %s into %s at %d: %w", ev.Type, ev.Rel, ev.At, err)
				}
			}
			h.AdvanceTo(pend.at)
		}
		for _, in := range pend.intents {
			res, completed := pend.results[in.ActionKey()]
			h.SeedActive(in.Query, in.Node, in.BP, in.Ref, in.Input, completed, res.OK, res.Rows)
			info.Orphans++
		}
		pend = nil
		return nil
	}

	handle := func(rec Record) error {
		info.Records++
		obsReplayRecords.Inc()
		switch rec.Type {
		case TypeTickBegin:
			if err := resolvePending(true); err != nil {
				return err
			}
			pend = &pendingTick{at: rec.At, results: map[string]Record{}}
		case TypeTickEnd:
			if pend == nil || pend.at != rec.At {
				slog.Warn("wal: unmatched tick-end, skipping", "instant", int64(rec.At))
				return nil
			}
			for _, ev := range pend.events {
				kind := stream.Insert
				if ev.Type == TypeDelete {
					kind = stream.Delete
				}
				if err := h.ApplyEvent(ev.Rel, kind, ev.At, ev.Tuple); err != nil {
					return fmt.Errorf("wal: replaying %s into %s at %d: %w", ev.Type, ev.Rel, ev.At, err)
				}
			}
			ledger := cq.ReplayLedger{}
			for _, in := range pend.intents {
				ent := cq.LedgerEntry{}
				if res, ok := pend.results[in.ActionKey()]; ok {
					ent = cq.LedgerEntry{Completed: true, OK: res.OK, Rows: res.Rows}
				}
				ledger[in.ActionKey()] = ent
			}
			at := pend.at
			pend = nil
			if err := h.ReplayTick(at, ledger); err != nil {
				return err
			}
			info.Ticks++
		case TypeDDL:
			// Applied immediately whether or not a tick is open: live DDL
			// commits independently of the tick loop.
			if err := h.ApplyDDL(rec.Text, rec.At); err != nil {
				return fmt.Errorf("wal: replaying DDL %q: %w", rec.Text, err)
			}
		case TypeInsert, TypeDelete:
			if pend != nil {
				pend.events = append(pend.events, rec)
				return nil
			}
			kind := stream.Insert
			if rec.Type == TypeDelete {
				kind = stream.Delete
			}
			if err := h.ApplyEvent(rec.Rel, kind, rec.At, rec.Tuple); err != nil {
				return fmt.Errorf("wal: replaying %s into %s at %d: %w", rec.Type, rec.Rel, rec.At, err)
			}
		case TypeIntent:
			if pend == nil {
				slog.Warn("wal: intent outside tick, seeding as orphan", "query", rec.Query)
				h.SeedActive(rec.Query, rec.Node, rec.BP, rec.Ref, rec.Input, false, false, nil)
				info.Orphans++
				return nil
			}
			pend.intents = append(pend.intents, rec)
		case TypeResult:
			if pend != nil {
				pend.results[rec.ActionKey()] = rec
			}
		}
		return nil
	}

	rp := span.Child("wal.replay")
	for _, seq := range segs {
		recs, truncated, err := readSegment(filepath.Join(m.dir, segmentName(seq)))
		if err != nil {
			rp.Finish()
			return info, fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		if truncated > 0 {
			info.TruncatedBytes += truncated
			slog.Warn("wal: truncating damaged segment tail",
				"segment", segmentName(seq), "bytes", truncated)
		}
		for i := range recs {
			if err := handle(recs[i]); err != nil {
				rp.Finish()
				return info, err
			}
		}
	}
	// Trailing tick never committed: discard its events (the restarted
	// clock re-executes the instant), seed its actives.
	if err := resolvePending(false); err != nil {
		rp.Finish()
		return info, err
	}
	rp.Finish()
	info.Fresh = !info.HadCheckpoint && info.Records == 0
	span.SetAttrInt("records", int64(info.Records))
	span.SetAttrInt("ticks", int64(info.Ticks))
	span.SetAttrInt("orphans", int64(info.Orphans))
	if !info.Fresh {
		slog.Info("wal: recovered environment",
			"dir", m.dir,
			"checkpoint_at", int64(info.CheckpointAt),
			"segments", info.Segments,
			"records", info.Records,
			"ticks", info.Ticks,
			"orphans", info.Orphans,
			"truncated_bytes", info.TruncatedBytes)
	}
	return info, nil
}

// append writes one record, optionally flushing to the OS and fsyncing per
// the configured policy. Appends during replay are dropped: they originate
// from live code paths re-applying what the log already holds.
func (m *Manager) append(rec *Record, flush bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appendLocked(rec, flush)
}

func (m *Manager) appendLocked(rec *Record, flush bool) error {
	if m.replaying || m.closed {
		return nil
	}
	if err := m.seg.append(rec); err != nil {
		return err
	}
	obsAppends.Inc()
	if m.opts.Fsync == SyncAlways {
		return m.syncLocked()
	}
	if flush {
		if err := m.seg.flush(); err != nil {
			return err
		}
		if m.opts.Fsync == SyncInterval && time.Since(m.seg.lastSync) >= m.opts.SyncEvery {
			return m.syncLocked()
		}
	}
	return nil
}

func (m *Manager) syncLocked() error {
	start := time.Now()
	if err := m.seg.sync(); err != nil {
		return err
	}
	obsFsyncs.Inc()
	obsFsyncTime.Observe(time.Since(start))
	return nil
}

// AttachRelation implements cq.Durability: every accepted event of a base
// relation is appended to the log. The callback runs under the relation
// lock; the manager takes only its own lock below it and never calls back.
func (m *Manager) AttachRelation(x *stream.XDRelation) {
	rel := x.Name()
	x.SetOnEvent(func(ev stream.Event) {
		typ := TypeInsert
		if ev.Kind == stream.Delete {
			typ = TypeDelete
		}
		if err := m.append(&Record{Type: typ, At: ev.At, Rel: rel, Tuple: ev.Tuple}, false); err != nil {
			slog.Error("wal: appending relation event", "relation", rel, "err", err.Error())
		}
	})
}

// BeginTick implements cq.Durability.
func (m *Manager) BeginTick(at service.Instant) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return fmt.Errorf("wal: Recover must run before the first tick")
	}
	return m.appendLocked(&Record{Type: TypeTickBegin, At: at}, false)
}

// CommitTick implements cq.Durability: the tick-end record is flushed to
// the operating system (SIGKILL-safe) and fsynced per policy; every
// CheckpointEvery commits it reports a checkpoint due.
func (m *Manager) CommitTick(at service.Instant) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.appendLocked(&Record{Type: TypeTickEnd, At: at}, true); err != nil {
		return false, err
	}
	if m.replaying || m.closed {
		return false, nil
	}
	m.ticksSinceCkpt++
	return m.ticksSinceCkpt >= m.opts.CheckpointEvery, nil
}

// ActiveIntent implements cq.Durability. The intent is flushed to the OS
// before the physical call so a process kill cannot lose it; SyncOff skips
// even that flush's fsync (machine-crash exposure is accepted there).
func (m *Manager) ActiveIntent(queryName string, node int, bp, ref string, input value.Tuple, at service.Instant) error {
	return m.append(&Record{
		Type: TypeIntent, At: at,
		Query: queryName, Node: node, BP: bp, Ref: ref, Input: input,
	}, true)
}

// ActiveResult implements cq.Durability. Buffered until the tick commits: a
// lost result degrades the call to an orphan intent, which recovery treats
// as attempted-but-unknown — never re-fired.
func (m *Manager) ActiveResult(queryName string, node int, bp, ref string, input value.Tuple, at service.Instant, ok bool, rows []value.Tuple) error {
	return m.append(&Record{
		Type: TypeResult, At: at,
		Query: queryName, Node: node, BP: bp, Ref: ref, Input: input,
		OK: ok, Rows: rows,
	}, false)
}

// AppendDDL logs one re-executable DDL statement (flushed, fsynced per
// policy). DDL arriving during replay is dropped like any other append.
func (m *Manager) AppendDDL(text string, at service.Instant) error {
	return m.append(&Record{Type: TypeDDL, At: at, Text: text}, true)
}

// Checkpoint persists a snapshot and rotates the log: the snapshot is
// written atomically with NextSeq pointing at a fresh segment, then every
// older segment is pruned. After a crash anywhere in this sequence the
// directory recovers: rename is atomic, and stale segments are re-pruned at
// the next Open.
func (m *Manager) Checkpoint(catalogDDL string, st cq.CheckpointState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: closed")
	}
	start := time.Now()
	next := m.seq + 1
	ck := &Checkpoint{NextSeq: next, Catalog: catalogDDL, State: st}
	// Seal the current segment before the checkpoint claims everything
	// before NextSeq is redundant.
	if err := m.seg.sync(); err != nil {
		return err
	}
	if err := writeCheckpointFile(m.dir, ck); err != nil {
		return err
	}
	seg, err := openSegment(filepath.Join(m.dir, segmentName(next)))
	if err != nil {
		return err
	}
	old := m.seg
	m.seg = seg
	m.seq = next
	if err := old.close(); err != nil {
		slog.Warn("wal: closing rotated segment", "err", err.Error())
	}
	if err := removeSegmentsBelow(m.dir, next); err != nil {
		slog.Warn("wal: pruning segments after checkpoint", "err", err.Error())
	}
	m.ticksSinceCkpt = 0
	obsCheckpoints.Inc()
	obsCheckpointTime.Observe(time.Since(start))
	obs.Default.Gauge("wal.checkpoint.instant").Set(int64(st.At))
	return nil
}

// Close flushes, fsyncs and closes the current segment. Further appends are
// dropped.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if err := m.seg.sync(); err != nil {
		m.seg.close()
		return err
	}
	return m.seg.close()
}
