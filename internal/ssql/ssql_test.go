package ssql_test

import (
	"strings"
	"testing"

	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/ssql"
)

func paperEnv() (query.MapEnv, *service.Registry, *paperenv.Devices) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{
		"contacts":     paperenv.Contacts(),
		"cameras":      paperenv.Cameras(),
		"sensors":      paperenv.Sensors(),
		"surveillance": paperenv.Surveillance(),
	}
	return env, reg, dev
}

func compile(t *testing.T, src string, env query.Environment) *ssql.Statement {
	t.Helper()
	st, err := ssql.Compile(src, env)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return st
}

func TestSelectProjectWhere(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT name, address FROM contacts WHERE name != "Carla"`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("rows = %d", res.Relation.Len())
	}
	if got := res.Relation.Schema().Names(); len(got) != 2 || got[0] != "name" {
		t.Fatalf("schema = %v", got)
	}
}

func TestSelectStar(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT * FROM contacts`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Schema().Arity() != 5 {
		t.Fatalf("star should keep the full schema, got %v", res.Relation.Schema().Names())
	}
}

func TestQ1SemanticsWhereBeforeActiveInvoke(t *testing.T) {
	// The declarative WHERE restricts WHO is messaged: Serena SQL compiles
	// to Q1, not Q1' (the action set excludes Carla).
	env, reg, dev := paperEnv()
	st := compile(t, `SELECT * FROM contacts
		SET text := "Bonjour!"
		USING sendMessage
		WHERE name != "Carla"`, env)
	if !strings.Contains(st.Text, `invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"]`) {
		t.Fatalf("WHERE not placed before the active invoke:\n%s", st.Text)
	}
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions.Len() != 2 {
		t.Fatalf("actions = %s (Carla must not be messaged)", res.Actions)
	}
	if len(dev.Messengers["email"].Outbox()) != 1 {
		t.Fatal("exactly one email expected")
	}
}

func TestQ2TwoInvokesWithSplitWhere(t *testing.T) {
	env, reg, dev := paperEnv()
	st := compile(t, `SELECT photo FROM cameras
		USING checkPhoto, takePhoto
		WHERE area = "office" AND quality >= 5`, env)
	// area conjunct sits below checkPhoto; quality between check and take.
	if !strings.Contains(st.Text, `invoke[checkPhoto](select[area = "office"](cameras))`) {
		t.Fatalf("area filter not pushed to the base:\n%s", st.Text)
	}
	if !strings.Contains(st.Text, `invoke[takePhoto](select[quality >= 5]`) {
		t.Fatalf("quality filter not placed after checkPhoto:\n%s", st.Text)
	}
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 || res.Stats.Passive != 2 {
		t.Fatalf("rows=%d passive=%d, want 1/2", res.Relation.Len(), res.Stats.Passive)
	}
	if dev.Cameras["camera01"].Shots() != 0 {
		t.Fatal("corridor camera must not shoot")
	}
}

func TestNaturalJoinAndGroupBy(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT location, mean(temperature) AS avgtemp
		FROM sensors USING getTemperature GROUP BY location`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("groups = %d", res.Relation.Len())
	}
	sch := res.Relation.Schema()
	li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
	for _, tu := range res.Relation.Tuples() {
		if tu[li].Str() == "office" && tu[ai].Real() != 21.5 {
			t.Fatalf("office mean = %v", tu[ai])
		}
	}
	// Implicit grouping: plain attrs become the grouping key.
	st2 := compile(t, `SELECT location, count(*) AS n FROM sensors`, env)
	res2, err := query.Evaluate(st2.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Relation.Len() != 3 {
		t.Fatalf("implicit grouping rows = %d", res2.Relation.Len())
	}
}

func TestJoinQuery(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT name, location FROM contacts NATURAL JOIN surveillance`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("rows = %d", res.Relation.Len())
	}
}

func TestDefaultAggregateNames(t *testing.T) {
	env, _, _ := paperEnv()
	st := compile(t, `SELECT count(*), max(location) FROM surveillance`, env)
	sch, err := st.Root.ResultSchema(env)
	if err != nil {
		t.Fatal(err)
	}
	names := sch.Names()
	if names[0] != "count" || names[1] != "max_location" {
		t.Fatalf("default names = %v", names)
	}
}

func TestCompileErrors(t *testing.T) {
	env, _, _ := paperEnv()
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT name FROM ghost`,
		`SELECT ghost FROM contacts`,
		`SELECT * FROM contacts WHERE sent = true`,                  // virtual forever (never realized)
		`SELECT * FROM contacts GROUP BY name`,                      // GROUP BY without aggregate
		`SELECT name, count(*) AS n FROM contacts GROUP BY address`, // name not grouped
		`SELECT * FROM contacts USING ghostProto`,
		`SELECT * FROM contacts SET name := 3`, // assigning a real attribute
		`SELECT * FROM contacts STREAMING sideways`,
		`SELECT * FROM contacts; trailing`,
		`SELECT median(x) FROM contacts`,
		`SELECT sum(*) FROM contacts`,
		`SELECT * FROM temperatures[0]`,
	}
	for _, src := range bad {
		if _, err := ssql.Compile(src, env); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestWhereNeverRealizableReportsCause(t *testing.T) {
	env, _, _ := paperEnv()
	_, err := ssql.Compile(`SELECT * FROM cameras WHERE quality >= 5`, env)
	if err == nil || !strings.Contains(err.Error(), "cannot be applied") {
		t.Fatalf("err = %v", err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	env, _, _ := paperEnv()
	if _, err := ssql.Compile(`select name from contacts where name contains "a"`, env); err != nil {
		t.Fatal(err)
	}
}

func TestOrAndNotInWhere(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT name FROM contacts
		WHERE (name = "Carla" OR name = "Nicolas") AND NOT (address contains "gouv")`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("rows = %d", res.Relation.Len())
	}
}

func TestSetFromAttribute(t *testing.T) {
	env, reg, _ := paperEnv()
	st := compile(t, `SELECT name, text FROM contacts SET text := address`, env)
	res, err := query.Evaluate(st.Root, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	sch := res.Relation.Schema()
	ti := sch.RealIndex("text")
	for _, tu := range res.Relation.Tuples() {
		if !strings.Contains(tu[ti].Str(), "@") {
			t.Fatalf("text not copied from address: %v", tu)
		}
	}
}
