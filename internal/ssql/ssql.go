// Package ssql implements Serena SQL — the SQL-like surface language the
// paper names as part of the framework ("the definition of a SQL-like
// language based on the Serena algebra, namely the Serena SQL", Section
// 1.1) without presenting it. The dialect here compiles declarative
// SELECT statements onto the Serena algebra of internal/query:
//
//	SELECT photo
//	FROM cameras
//	USING checkPhoto, takePhoto
//	WHERE area = "office" AND quality >= 5;
//
//	SELECT location, mean(temperature) AS avgtemp
//	FROM temperatures[1]
//	GROUP BY location;
//
//	SELECT * FROM contacts NATURAL JOIN surveillance
//	SET text := "Alert!"
//	USING sendMessage
//	WHERE location = "office"
//	STREAMING insertion;
//
// Grammar:
//
//	query   := [EXPLAIN [ANALYZE]] SELECT items FROM source {NATURAL JOIN source}
//	           [SET assign {, assign}] [USING inv {, inv}]
//	           [WHERE formula] [GROUP BY idents] [STREAMING kind] [;]
//	items   := '*' | item {, item}
//	item    := ident | agg '(' (ident|'*') ')' [AS ident]
//	source  := ident [ '[' period ']' ]            -- window over a stream
//	assign  := ident (':=' | '=') (literal | ident)
//	inv     := protoName [ '@' serviceAttr ]
//
// Semantics: WHERE is declarative — each top-level conjunct is applied at
// the earliest point of the plan where it is legal (all referenced
// attributes real), i.e. before invocations when it only touches base
// attributes. A filter on contacts therefore restricts WHO gets messaged
// (the paper's Q1, not Q1'): the action set contains only matching tuples.
// Conjuncts over invocation outputs apply right after the invocation that
// realizes them. SET assignments happen before USING invocations, USING
// invocations in written order.
package ssql

import (
	"fmt"
	"strings"

	"serena/internal/algebra"
	"serena/internal/lexer"
	"serena/internal/query"
	"serena/internal/value"
)

// Statement is a compiled Serena SQL query.
type Statement struct {
	// Root is the compiled algebra plan.
	Root query.Node
	// Text is the SAL rendering of the plan.
	Text string
	// Explain marks an EXPLAIN-prefixed statement: the caller should show
	// the plan (and optimization steps) instead of returning rows.
	Explain bool
	// Analyze additionally requests traced execution (EXPLAIN ANALYZE):
	// run the plan and annotate every operator with rows and wall time.
	Analyze bool
}

// Compile parses src and compiles it against the environment (schemas are
// needed to place WHERE conjuncts and validate attributes).
func Compile(src string, env query.Environment) (*Statement, error) {
	p := &parser{lx: lexer.New(src)}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	root, err := q.compile(env)
	if err != nil {
		return nil, err
	}
	return &Statement{Root: root, Text: root.String(), Explain: q.explain, Analyze: q.analyze}, nil
}

// ---------------------------------------------------------------------------
// AST of the surface language.

type selectItem struct {
	attr string           // plain attribute, or
	agg  *algebra.AggSpec // aggregate
}

type sourceRef struct {
	name   string
	window int64 // 0 = no window
}

type assignClause struct {
	attr    string
	src     string      // attribute copy, or
	literal value.Value // constant
	isAttr  bool
}

type invokeClause struct {
	proto   string
	svcAttr string
}

type ast struct {
	star      bool
	items     []selectItem
	sources   []sourceRef
	assigns   []assignClause
	invokes   []invokeClause
	where     []algebra.Formula // top-level conjuncts
	groupBy   []string
	streaming *query.StreamKind
	explain   bool
	analyze   bool
}

// ---------------------------------------------------------------------------
// Parser.

type parser struct{ lx *lexer.Lexer }

func (p *parser) errf(tok lexer.Token, format string, args ...any) error {
	return fmt.Errorf("ssql: line %d:%d: %s", tok.Line, tok.Col, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return "", err
	}
	if tok.Kind != lexer.Ident {
		return "", p.errf(tok, "expected identifier, got %s", tok)
	}
	return tok.Text, nil
}

func (p *parser) expectKeyword(kw string) error {
	tok, err := p.lx.Next()
	if err != nil {
		return err
	}
	if !tok.IsKeyword(kw) {
		return p.errf(tok, "expected %s, got %s", strings.ToUpper(kw), tok)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	tok, err := p.lx.Peek()
	return err == nil && tok.IsKeyword(kw)
}

func (p *parser) parse() (*ast, error) {
	q := &ast{}
	// Optional EXPLAIN [ANALYZE] prefix.
	if p.peekKeyword("EXPLAIN") {
		_, _ = p.lx.Next()
		q.explain = true
		if p.peekKeyword("ANALYZE") {
			_, _ = p.lx.Next()
			q.analyze = true
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.selectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.fromClause(q); err != nil {
		return nil, err
	}
	for {
		tok, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		switch {
		case tok.IsKeyword("SET"):
			_, _ = p.lx.Next()
			if err := p.setClause(q); err != nil {
				return nil, err
			}
		case tok.IsKeyword("USING"):
			_, _ = p.lx.Next()
			if err := p.usingClause(q); err != nil {
				return nil, err
			}
		case tok.IsKeyword("WHERE"):
			_, _ = p.lx.Next()
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			q.where = splitConjuncts(f)
		case tok.IsKeyword("GROUP"):
			_, _ = p.lx.Next()
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				q.groupBy = append(q.groupBy, name)
				nx, err := p.lx.Peek()
				if err != nil {
					return nil, err
				}
				if !nx.Is(",") {
					break
				}
				_, _ = p.lx.Next()
			}
		case tok.IsKeyword("STREAMING"):
			_, _ = p.lx.Next()
			kindName, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, ok := query.StreamKindFromString(strings.ToLower(kindName))
			if !ok {
				return nil, p.errf(tok, "unknown streaming type %q", kindName)
			}
			q.streaming = &kind
		case tok.Is(";"):
			_, _ = p.lx.Next()
			return p.finish(q)
		case tok.Kind == lexer.EOF:
			return p.finish(q)
		default:
			return nil, p.errf(tok, "unexpected %s", tok)
		}
	}
}

func (p *parser) finish(q *ast) (*ast, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind != lexer.EOF {
		return nil, p.errf(tok, "trailing input %s", tok)
	}
	return q, nil
}

func (p *parser) selectList(q *ast) error {
	tok, err := p.lx.Peek()
	if err != nil {
		return err
	}
	if tok.Is("*") {
		_, _ = p.lx.Next()
		q.star = true
		return nil
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return err
		}
		q.items = append(q.items, item)
		nx, err := p.lx.Peek()
		if err != nil {
			return err
		}
		if !nx.Is(",") {
			return nil
		}
		_, _ = p.lx.Next()
	}
}

func (p *parser) selectItem() (selectItem, error) {
	nameTok, err := p.lx.Next()
	if err != nil {
		return selectItem{}, err
	}
	if nameTok.Kind != lexer.Ident {
		return selectItem{}, p.errf(nameTok, "expected attribute or aggregate, got %s", nameTok)
	}
	nx, err := p.lx.Peek()
	if err != nil {
		return selectItem{}, err
	}
	if !nx.Is("(") {
		return selectItem{attr: nameTok.Text}, nil
	}
	fn, ok := algebra.AggFuncFromString(strings.ToLower(nameTok.Text))
	if !ok {
		return selectItem{}, p.errf(nameTok, "unknown aggregate function %q", nameTok.Text)
	}
	_, _ = p.lx.Next() // '('
	attrTok, err := p.lx.Next()
	if err != nil {
		return selectItem{}, err
	}
	attr := ""
	switch {
	case attrTok.Is("*"):
		if fn != algebra.Count {
			return selectItem{}, p.errf(attrTok, "only count may use '*'")
		}
	case attrTok.Kind == lexer.Ident:
		attr = attrTok.Text
	default:
		return selectItem{}, p.errf(attrTok, "expected attribute or '*', got %s", attrTok)
	}
	closeTok, err := p.lx.Next()
	if err != nil {
		return selectItem{}, err
	}
	if !closeTok.Is(")") {
		return selectItem{}, p.errf(closeTok, "expected ')', got %s", closeTok)
	}
	as := fn.String()
	if attr != "" {
		as = fn.String() + "_" + attr
	}
	if p.peekKeyword("AS") {
		_, _ = p.lx.Next()
		as, err = p.ident()
		if err != nil {
			return selectItem{}, err
		}
	}
	return selectItem{agg: &algebra.AggSpec{Func: fn, Attr: attr, As: as}}, nil
}

func (p *parser) fromClause(q *ast) error {
	for {
		src, err := p.source()
		if err != nil {
			return err
		}
		q.sources = append(q.sources, src)
		if !p.peekKeyword("NATURAL") {
			return nil
		}
		_, _ = p.lx.Next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return err
		}
	}
}

func (p *parser) source() (sourceRef, error) {
	name, err := p.ident()
	if err != nil {
		return sourceRef{}, err
	}
	src := sourceRef{name: name}
	nx, err := p.lx.Peek()
	if err != nil {
		return sourceRef{}, err
	}
	if nx.Is("[") {
		_, _ = p.lx.Next()
		numTok, err := p.lx.Next()
		if err != nil {
			return sourceRef{}, err
		}
		v, perr := value.Parse(numTok.Text)
		if numTok.Kind != lexer.Number || perr != nil || v.Kind() != value.Int || v.Int() < 1 {
			return sourceRef{}, p.errf(numTok, "window period must be a positive integer")
		}
		src.window = v.Int()
		closeTok, err := p.lx.Next()
		if err != nil {
			return sourceRef{}, err
		}
		if !closeTok.Is("]") {
			return sourceRef{}, p.errf(closeTok, "expected ']', got %s", closeTok)
		}
	}
	return src, nil
}

func (p *parser) setClause(q *ast) error {
	for {
		attr, err := p.ident()
		if err != nil {
			return err
		}
		opTok, err := p.lx.Next()
		if err != nil {
			return err
		}
		if !opTok.Is(":=") && !opTok.Is("=") {
			return p.errf(opTok, "expected ':=' or '=', got %s", opTok)
		}
		valTok, err := p.lx.Next()
		if err != nil {
			return err
		}
		ac := assignClause{attr: attr}
		if valTok.Kind == lexer.Ident && !valTok.IsKeyword("true") && !valTok.IsKeyword("false") && !valTok.IsKeyword("null") {
			ac.src, ac.isAttr = valTok.Text, true
		} else {
			v, err := literal(valTok)
			if err != nil {
				return p.errf(valTok, "%v", err)
			}
			ac.literal = v
		}
		q.assigns = append(q.assigns, ac)
		nx, err := p.lx.Peek()
		if err != nil {
			return err
		}
		if !nx.Is(",") {
			return nil
		}
		_, _ = p.lx.Next()
	}
}

func (p *parser) usingClause(q *ast) error {
	for {
		proto, err := p.ident()
		if err != nil {
			return err
		}
		inv := invokeClause{proto: proto}
		nx, err := p.lx.Peek()
		if err != nil {
			return err
		}
		if nx.Is("@") {
			_, _ = p.lx.Next()
			inv.svcAttr, err = p.ident()
			if err != nil {
				return err
			}
		}
		q.invokes = append(q.invokes, inv)
		nx, err = p.lx.Peek()
		if err != nil {
			return err
		}
		if !nx.Is(",") {
			return nil
		}
		_, _ = p.lx.Next()
	}
}

// formula parses WHERE expressions (same grammar as SAL, AND/OR/NOT with
// comparisons).
func (p *parser) formula() (algebra.Formula, error) {
	left, err := p.andFormula()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Formula{left}
	for p.peekKeyword("or") {
		_, _ = p.lx.Next()
		right, err := p.andFormula()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return algebra.NewOr(terms...), nil
}

func (p *parser) andFormula() (algebra.Formula, error) {
	left, err := p.unaryFormula()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Formula{left}
	for p.peekKeyword("and") {
		_, _ = p.lx.Next()
		right, err := p.unaryFormula()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return algebra.NewAnd(terms...), nil
}

func (p *parser) unaryFormula() (algebra.Formula, error) {
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("not") {
		_, _ = p.lx.Next()
		open, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if !open.Is("(") {
			return nil, p.errf(open, "expected '(' after NOT")
		}
		inner, err := p.formula()
		if err != nil {
			return nil, err
		}
		closeTok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if !closeTok.Is(")") {
			return nil, p.errf(closeTok, "expected ')'")
		}
		return algebra.NewNot(inner), nil
	}
	if tok.Is("(") {
		_, _ = p.lx.Next()
		inner, err := p.formula()
		if err != nil {
			return nil, err
		}
		closeTok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if !closeTok.Is(")") {
			return nil, p.errf(closeTok, "expected ')'")
		}
		return inner, nil
	}
	leftTok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	left, err := operandFromToken(leftTok)
	if err != nil {
		return nil, p.errf(leftTok, "%v", err)
	}
	opTok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	var op algebra.CmpOp
	ok := false
	if opTok.Kind == lexer.Punct {
		op, ok = algebra.CmpOpFromString(opTok.Text)
	} else if opTok.IsKeyword("contains") {
		op, ok = algebra.Contains, true
	}
	if !ok {
		return nil, p.errf(opTok, "expected comparison operator, got %s", opTok)
	}
	rightTok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	right, err := operandFromToken(rightTok)
	if err != nil {
		return nil, p.errf(rightTok, "%v", err)
	}
	return algebra.Compare(left, op, right), nil
}

func operandFromToken(tok lexer.Token) (algebra.Operand, error) {
	if tok.Kind == lexer.Ident && !tok.IsKeyword("true") && !tok.IsKeyword("false") && !tok.IsKeyword("null") {
		return algebra.Attr(tok.Text), nil
	}
	v, err := literal(tok)
	if err != nil {
		return algebra.Operand{}, err
	}
	return algebra.Const(v), nil
}

func literal(tok lexer.Token) (value.Value, error) {
	switch {
	case tok.Kind == lexer.String:
		return value.NewString(tok.Text), nil
	case tok.Kind == lexer.Number:
		return value.Parse(tok.Text)
	case tok.IsKeyword("true"):
		return value.NewBool(true), nil
	case tok.IsKeyword("false"):
		return value.NewBool(false), nil
	case tok.IsKeyword("null"), tok.Is("*"):
		return value.NewNull(), nil
	}
	return value.Value{}, fmt.Errorf("expected literal, got %s", tok)
}

// splitConjuncts flattens top-level ANDs into independent conjuncts.
func splitConjuncts(f algebra.Formula) []algebra.Formula {
	if and, ok := f.(*algebra.And); ok {
		var out []algebra.Formula
		for _, t := range and.Terms {
			out = append(out, splitConjuncts(t)...)
		}
		return out
	}
	return []algebra.Formula{f}
}

// ---------------------------------------------------------------------------
// Compilation.

func (q *ast) compile(env query.Environment) (query.Node, error) {
	if len(q.sources) == 0 {
		return nil, fmt.Errorf("ssql: no FROM source")
	}
	// Sources and joins.
	var node query.Node
	for i, src := range q.sources {
		var n query.Node = query.NewBase(src.name)
		if src.window > 0 {
			n = query.NewWindow(n, src.window)
		}
		if i == 0 {
			node = n
		} else {
			node = query.NewJoin(node, n)
		}
	}
	pending := append([]algebra.Formula(nil), q.where...)
	var err error
	if node, pending, err = applyReady(node, pending, env); err != nil {
		return nil, err
	}
	// SET assignments.
	for _, a := range q.assigns {
		if a.isAttr {
			node = query.NewAssignAttr(node, a.attr, a.src)
		} else {
			node = query.NewAssignConst(node, a.attr, a.literal)
		}
		if node, pending, err = applyReady(node, pending, env); err != nil {
			return nil, err
		}
	}
	// USING invocations, each followed by newly-enabled conjuncts.
	for _, inv := range q.invokes {
		node = query.NewInvoke(node, inv.proto, inv.svcAttr)
		if node, pending, err = applyReady(node, pending, env); err != nil {
			return nil, err
		}
	}
	if len(pending) > 0 {
		// Conjunct never became valid: surface its planning error.
		sch, serr := node.ResultSchema(env)
		if serr != nil {
			return nil, fmt.Errorf("ssql: %w", serr)
		}
		if verr := pending[0].Validate(sch); verr != nil {
			return nil, fmt.Errorf("ssql: WHERE condition %q cannot be applied: %w", pending[0], verr)
		}
		return nil, fmt.Errorf("ssql: WHERE condition %q cannot be applied", pending[0])
	}
	// SELECT list: aggregation or projection.
	var aggs []algebra.AggSpec
	var plain []string
	for _, it := range q.items {
		if it.agg != nil {
			aggs = append(aggs, *it.agg)
		} else {
			plain = append(plain, it.attr)
		}
	}
	switch {
	case len(aggs) > 0:
		groupBy := q.groupBy
		if len(groupBy) == 0 {
			groupBy = plain // SELECT location, mean(x) … implies grouping
		} else {
			for _, a := range plain {
				if !contains(groupBy, a) {
					return nil, fmt.Errorf("ssql: selected attribute %q is neither aggregated nor in GROUP BY", a)
				}
			}
		}
		node = query.NewAggregate(node, groupBy, aggs)
	case len(q.groupBy) > 0:
		return nil, fmt.Errorf("ssql: GROUP BY requires at least one aggregate in the SELECT list")
	case q.star:
		// keep full schema
	default:
		node = query.NewProject(node, plain...)
	}
	if q.streaming != nil {
		node = query.NewStream(node, *q.streaming)
	}
	// Final validation.
	if _, err := node.ResultSchema(env); err != nil {
		return nil, fmt.Errorf("ssql: %w", err)
	}
	return node, nil
}

// applyReady attaches every pending conjunct that is valid over the current
// node's schema.
func applyReady(node query.Node, pending []algebra.Formula, env query.Environment) (query.Node, []algebra.Formula, error) {
	sch, err := node.ResultSchema(env)
	if err != nil {
		return nil, nil, fmt.Errorf("ssql: %w", err)
	}
	var left []algebra.Formula
	for _, f := range pending {
		if f.Validate(sch) == nil {
			node = query.NewSelect(node, f)
		} else {
			left = append(left, f)
		}
	}
	return node, left, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
