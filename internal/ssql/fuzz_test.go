package ssql_test

import (
	"testing"

	"serena/internal/ssql"
)

// FuzzCompile asserts the Serena SQL compiler never panics; accepted
// statements must plan against the paper environment.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`SELECT * FROM contacts`,
		`SELECT name, address FROM contacts WHERE name != "Carla"`,
		`SELECT photo FROM cameras USING checkPhoto, takePhoto WHERE quality >= 5`,
		`SELECT location, mean(temperature) AS avg FROM sensors USING getTemperature GROUP BY location`,
		`SELECT * FROM contacts NATURAL JOIN surveillance SET text := "x" USING sendMessage`,
		`SELECT count(*) FROM contacts STREAMING insertion`,
		`SELECT * FROM t[5]`,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT a FROM r WHERE`,
		`SELECT sum( FROM r`,
		"SELECT \x00 FROM r",
		`EXPLAIN SELECT * FROM contacts`,
		`EXPLAIN ANALYZE SELECT photo FROM cameras USING checkPhoto, takePhoto WHERE quality >= 5`,
		`EXPLAIN ANALYZE`,
		`EXPLAIN EXPLAIN ANALYZE SELECT * FROM contacts`,
		`ANALYZE SELECT * FROM contacts`,
		`explain analyze select name from contacts where name <> "Carla"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env, _, _ := paperEnv()
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ssql.Compile(src, env)
		if err != nil {
			return
		}
		if st.Root == nil || st.Text == "" {
			t.Fatalf("accepted %q with empty plan", src)
		}
	})
}
