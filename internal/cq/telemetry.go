// Self-telemetry: the engine's own health as first-class XD-Relations.
//
// A periodic scraper — an ordinary tick Source — samples the obs registry,
// computes per-interval deltas, and feeds three built-in system relations:
//
//	sys$metrics  infinite  (metric STRING, kind STRING, value REAL, delta REAL)
//	sys$health   finite    (query STRING, state STRING)
//	sys$streams  finite    (stream STRING, state STRING)
//
// sys$metrics is a change stream: a metric contributes a row at the scrapes
// where its value changed (its first observation included), with delta the
// difference to its previously emitted value.
//
// so REGISTER QUERY works over engine health exactly like over a device
// feed (the Kapacitor pattern: the engine self-monitors through the same
// query language its users alert with). sys$health holds one tuple per
// registered query with its current health state; sys$streams one tuple
// per stream with OK/STALLED dead-man state. Both are reconciled
// edge-triggered — tuples change only when the state changes — so
// S[insertion](select[state = "STALLED"](sys$streams)) emits exactly one
// tuple per transition.
//
// System relations are ephemeral (stream.MarkEphemeral): never WAL-attached
// and never checkpointed. During recovery replay, sources are not pumped,
// so they stay empty and replay stays deterministic; after recovery the
// scraper re-seeds them from live state on the next tick. Queries over
// sys$ relations therefore see health reset across a crash — an active
// alert re-fires after recovery (at-least-once for health alerts, which is
// what a dead-man alert should do) while ordinary relations keep their
// exactly-once Def. 8 action-set guarantees.
package cq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"serena/internal/obs"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// System relation names. The sys$ prefix is reserved: the catalog and
// Register reject user relations and queries under it.
const (
	SysMetrics = "sys$metrics"
	SysHealth  = "sys$health"
	SysStreams = "sys$streams"
	SysPeers   = "sys$peers"

	sysPrefix = "sys$"
)

// isSystemName reports whether a relation or query name is in the reserved
// system namespace.
func isSystemName(name string) bool { return strings.HasPrefix(name, sysPrefix) }

// HealthState is a query's (or stream's) health, ordered by severity.
type HealthState int

// Health states, worst-wins precedence STALLED > OVERLOADED > DEGRADED > OK.
const (
	HealthOK HealthState = iota
	HealthDegraded
	HealthOverloaded
	HealthStalled
)

func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "OK"
	case HealthDegraded:
		return "DEGRADED"
	case HealthOverloaded:
		return "OVERLOADED"
	case HealthStalled:
		return "STALLED"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// QueryHealth is one query's current health assessment.
type QueryHealth struct {
	Query        string
	State        HealthState
	Since        service.Instant // instant of the last state change
	Reason       string          // first rule that fired, "" when OK
	LastEval     time.Duration   // latest evaluation wall-clock cost
	Coalesced    int64           // cumulative overload-coalesced instants
	InvokeErrors int64           // cumulative invocation failures
}

// StreamHealth is one stream's dead-man assessment.
type StreamHealth struct {
	Stream  string
	State   HealthState
	Since   service.Instant
	Lag     int64           // instants since last event; LagNeverProduced = silent since birth
	Cadence service.Instant // expected cadence, 0 = no dead-man configured
}

// TelemetryOptions configures EnableSelfTelemetry. The zero value means:
// scrape every instant, retain ~32 instants of sys$metrics, feed the
// process-wide obs.Default registry.
type TelemetryOptions struct {
	// Interval scrapes every N instants (≤ 1 = every instant).
	Interval service.Instant
	// Retention is the sys$metrics trim horizon in instants (≤ 0 = 32).
	// A registered window larger than this extends it automatically.
	Retention service.Instant
	// Registry to sample (nil = obs.Default).
	Registry *obs.Metrics
}

// Telemetry is the self-telemetry subsystem attached to one Executor.
type Telemetry struct {
	e        *Executor
	reg      *obs.Metrics
	interval service.Instant

	metricsRel *stream.XDRelation
	healthRel  *stream.XDRelation
	streamsRel *stream.XDRelation
	peersRel   *stream.XDRelation

	// mu guards the scrape state below against Health()/SetStreamCadence
	// callers; the scrape itself runs inside the tick (tickMu held).
	mu         sync.Mutex
	prev       map[string]float64 // last scraped value per sys$metrics row
	queries    map[string]*QueryHealth
	streams    map[string]*StreamHealth
	qprev      map[string]queryPrev
	cadence    map[string]service.Instant
	mats       map[string]bool // materialized derived relations (INTO targets), snapshotted per scrape
	lastScrape service.Instant

	// Federation membership feed (nil when the deployment has no peers):
	// peerSource snapshots the discovery manager's view, peerRows holds the
	// last tuple written per node for edge-triggered reconciliation.
	peerSource func() []PeerReport
	peerRows   map[string]value.Tuple

	// Sorted registry names, cached across scrapes: the registry only ever
	// grows, so the lists are rebuilt only when a new metric appears
	// (checked by length) instead of sorting every tick.
	counterNames, gaugeNames, histogramNames []string
}

// queryPrev is the per-query counter snapshot from the previous scrape,
// the baseline for "grew this interval" health rules.
type queryPrev struct {
	coalesced  int64
	invErrs    int64
	naiveTicks int64
}

// EnableSelfTelemetry registers the sys$ relations and the scraper source.
// Call it before the first tick and — in durable environments — before
// recovery, so WAL-logged queries over sys$ relations can re-register.
func (e *Executor) EnableSelfTelemetry(opts TelemetryOptions) (*Telemetry, error) {
	if opts.Interval < 1 {
		opts.Interval = 1
	}
	if opts.Retention < 1 {
		opts.Retention = 32
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	e.mu.Lock()
	already := e.telemetry != nil
	e.mu.Unlock()
	if already {
		return nil, fmt.Errorf("cq: self-telemetry already enabled")
	}
	t := &Telemetry{
		e:        e,
		reg:      opts.Registry,
		interval: opts.Interval,
		prev:     map[string]float64{},
		queries:  map[string]*QueryHealth{},
		streams:  map[string]*StreamHealth{},
		qprev:    map[string]queryPrev{},
		cadence:  map[string]service.Instant{},
		peerRows: map[string]value.Tuple{},
	}
	t.metricsRel = stream.NewInfinite(schema.MustExtended(SysMetrics, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "metric", Type: value.String}},
		{Attribute: schema.Attribute{Name: "kind", Type: value.String}},
		{Attribute: schema.Attribute{Name: "value", Type: value.Real}},
		{Attribute: schema.Attribute{Name: "delta", Type: value.Real}},
	}, nil))
	t.healthRel = stream.NewFinite(schema.MustExtended(SysHealth, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "query", Type: value.String}},
		{Attribute: schema.Attribute{Name: "state", Type: value.String}},
	}, nil))
	t.streamsRel = stream.NewFinite(schema.MustExtended(SysStreams, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "stream", Type: value.String}},
		{Attribute: schema.Attribute{Name: "state", Type: value.String}},
	}, nil))
	t.peersRel = stream.NewFinite(schema.MustExtended(SysPeers, []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "node", Type: value.String}},
		{Attribute: schema.Attribute{Name: "state", Type: value.String}},
		{Attribute: schema.Attribute{Name: "lease", Type: value.Int}},
		{Attribute: schema.Attribute{Name: "services", Type: value.Int}},
	}, nil))
	for _, x := range []*stream.XDRelation{t.metricsRel, t.healthRel, t.streamsRel, t.peersRel} {
		x.MarkEphemeral()
		if err := e.AddRelation(x); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.telemetry = t
	// Registering the retention horizon as a pseudo-window lets the
	// executor's existing trimmer bound the sys$metrics log; larger real
	// windows registered later extend it (recordWindows never shrinks).
	if opts.Retention > e.maxWindow[SysMetrics] {
		e.maxWindow[SysMetrics] = opts.Retention
	}
	e.mu.Unlock()
	e.AddSource(t.scrape)
	return t, nil
}

// Telemetry returns the attached self-telemetry subsystem, or nil.
func (e *Executor) Telemetry() *Telemetry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.telemetry
}

// SetStreamCadence configures dead-man detection for a stream: if it
// produces no event for more than `cadence` instants, its sys$streams
// tuple flips to STALLED. 0 removes the dead-man.
func (t *Telemetry) SetStreamCadence(name string, cadence service.Instant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cadence <= 0 {
		delete(t.cadence, name)
		return
	}
	t.cadence[name] = cadence
}

// PeerReport is one federation peer's membership row, as fed to sys$peers.
// Lease is the CONFIGURED lease in milliseconds (static per deployment, so
// the tuple only changes on real membership transitions and the relation
// stays edge-triggered), not the remaining time.
type PeerReport struct {
	Node     string
	State    string // "alive" or "down"
	Lease    int64  // configured lease, milliseconds
	Services int    // services the peer currently provides
}

// SetPeerSource installs the membership snapshot function behind sys$peers
// (typically the discovery manager's Peers view, adapted by the PEMS
// facade; the indirection keeps cq independent of the discovery package).
// nil removes the feed and retracts all peer tuples at the next scrape.
func (t *Telemetry) SetPeerSource(fn func() []PeerReport) {
	t.mu.Lock()
	t.peerSource = fn
	t.mu.Unlock()
}

// MetricsRelation returns sys$metrics.
func (t *Telemetry) MetricsRelation() *stream.XDRelation { return t.metricsRel }

// HealthRelation returns sys$health.
func (t *Telemetry) HealthRelation() *stream.XDRelation { return t.healthRel }

// StreamsRelation returns sys$streams.
func (t *Telemetry) StreamsRelation() *stream.XDRelation { return t.streamsRel }

// PeersRelation returns sys$peers.
func (t *Telemetry) PeersRelation() *stream.XDRelation { return t.peersRel }

// HealthSnapshot is a point-in-time copy of every health assessment.
type HealthSnapshot struct {
	At      service.Instant // instant of the last scrape
	Queries []QueryHealth   // sorted by query name
	Streams []StreamHealth  // sorted by stream name
}

// Health returns the current health assessments (from the last scrape).
func (t *Telemetry) Health() HealthSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := HealthSnapshot{At: t.lastScrape}
	for _, qh := range t.queries {
		out.Queries = append(out.Queries, *qh)
	}
	for _, sh := range t.streams {
		out.Streams = append(out.Streams, *sh)
	}
	sort.Slice(out.Queries, func(i, j int) bool { return out.Queries[i].Query < out.Queries[j].Query })
	sort.Slice(out.Streams, func(i, j int) bool { return out.Streams[i].Stream < out.Streams[j].Stream })
	return out
}

// scrape is the telemetry Source: it runs at the head of every tick (tickMu
// held, e.mu NOT held), before queries evaluate, so the relations it feeds
// are visible to same-instant query evaluation. Everything it reads about
// queries (eval latency, counters) is therefore the state after instant
// at−1 — health lags evaluation by exactly one instant.
func (t *Telemetry) scrape(at service.Instant) error {
	if t.interval > 1 && at%t.interval != 0 {
		return nil
	}
	e := t.e
	e.mu.Lock()
	budget := e.tickBudget
	order := append([]string(nil), e.order...)
	qs := make([]*Query, len(order))
	for i, name := range order {
		qs[i] = e.queries[name]
	}
	rels := make(map[string]*stream.XDRelation, len(e.rels))
	for name, x := range e.rels {
		rels[name] = x
	}
	mats := make(map[string]bool)
	for name, q := range e.producers {
		if q.into != "" {
			mats[name] = true
		}
	}
	e.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.mats = mats
	t.lastScrape = at
	if err := t.scrapeMetrics(at); err != nil {
		return err
	}
	if err := t.scrapeQueries(at, order, qs, rels, budget); err != nil {
		return err
	}
	if err := t.scrapeStreams(at, rels); err != nil {
		return err
	}
	return t.scrapePeers(at)
}

// scrapePeers reconciles sys$peers against the membership snapshot,
// edge-triggered like the other finite system relations: one tuple per
// peer, rewritten only when the peer's (state, lease, services) changes,
// retracted when the peer is forgotten (or the source is removed).
func (t *Telemetry) scrapePeers(at service.Instant) error {
	var reports []PeerReport
	if t.peerSource != nil {
		reports = t.peerSource()
	}
	seen := make(map[string]bool, len(reports))
	for _, pr := range reports {
		if pr.Node == "" || seen[pr.Node] {
			continue
		}
		seen[pr.Node] = true
		row := value.Tuple{
			value.NewString(pr.Node), value.NewString(pr.State),
			value.NewInt(pr.Lease), value.NewInt(int64(pr.Services)),
		}
		old, ok := t.peerRows[pr.Node]
		if ok && old.Equal(row) {
			continue
		}
		if ok {
			if err := t.peersRel.Delete(at, old); err != nil {
				return err
			}
		}
		if err := t.peersRel.Insert(at, row); err != nil {
			return err
		}
		t.peerRows[pr.Node] = row
		obs.Default.Counter("cq.health.transitions").Inc()
	}
	for node, old := range t.peerRows {
		if seen[node] {
			continue
		}
		if err := t.peersRel.Delete(at, old); err != nil {
			return err
		}
		delete(t.peerRows, node)
	}
	return nil
}

// scrapeMetrics turns the registry snapshot into sys$metrics rows with
// per-interval deltas (first observation: delta = value). sys$metrics is a
// change stream: a metric appears at the scrapes where its value changed
// (first observation included), so an idle engine writes ~nothing per tick
// — that, not the scrape itself, is what keeps the scraper inside its ≤5%
// tick budget with hundreds of registered series.
func (t *Telemetry) scrapeMetrics(at service.Instant) error {
	snap := t.reg.Snapshot()
	row := func(metric, kind string, v float64) error {
		prev, seen := t.prev[metric]
		if seen && v == prev {
			return nil
		}
		t.prev[metric] = v
		return t.metricsRel.Insert(at, value.Tuple{
			value.NewString(metric), value.NewString(kind), value.NewReal(v), value.NewReal(v - prev),
		})
	}
	t.counterNames = sortedNamesCached(t.counterNames, snap.Counters)
	for _, name := range t.counterNames {
		if err := row(name, "counter", float64(snap.Counters[name])); err != nil {
			return err
		}
	}
	t.gaugeNames = sortedNamesCached(t.gaugeNames, snap.Gauges)
	for _, name := range t.gaugeNames {
		if err := row(name, "gauge", float64(snap.Gauges[name])); err != nil {
			return err
		}
	}
	t.histogramNames = sortedNamesCached(t.histogramNames, snap.Histograms)
	for _, name := range t.histogramNames {
		h := snap.Histograms[name]
		for _, sub := range [...]struct {
			suffix string
			v      float64
		}{
			{".count", float64(h.Count)},
			{".mean_ns", float64(h.Mean)},
			{".p50_ns", float64(h.P50)},
			{".p95_ns", float64(h.P95)},
			{".p99_ns", float64(h.P99)},
			{".max_ns", float64(h.Max)},
		} {
			if err := row(name+sub.suffix, "histogram", sub.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedNamesCached returns the sorted keys of m, reusing cached when the
// key set has not grown (registry name sets never shrink).
func sortedNamesCached[V any](cached []string, m map[string]V) []string {
	if len(cached) == len(m) {
		return cached
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// scrapeQueries runs the health state machine per registered query and
// reconciles sys$health (edge-triggered: tuples change on transition only).
func (t *Telemetry) scrapeQueries(at service.Instant, order []string, qs []*Query, rels map[string]*stream.XDRelation, budget time.Duration) error {
	seen := make(map[string]bool, len(order))
	for i, name := range order {
		q := qs[i]
		if q == nil {
			continue
		}
		seen[name] = true
		state, reason := t.assessQuery(at, q, rels, budget)
		qh := t.queries[name]
		if qh == nil {
			qh = &QueryHealth{Query: name, State: state, Since: at, Reason: reason}
			t.queries[name] = qh
			if err := t.healthRel.Insert(at, healthTuple(name, state)); err != nil {
				return err
			}
			obs.Default.Counter("cq.health.transitions").Inc()
		} else if state != qh.State {
			if err := t.healthRel.Delete(at, healthTuple(name, qh.State)); err != nil {
				return err
			}
			if err := t.healthRel.Insert(at, healthTuple(name, state)); err != nil {
				return err
			}
			qh.State, qh.Since, qh.Reason = state, at, reason
			obs.Default.Counter("cq.health.transitions").Inc()
		} else {
			qh.Reason = reason
		}
		qh.LastEval = q.LastEvalLatency()
		qh.Coalesced = q.Coalesced()
		qh.InvokeErrors = q.InvokeErrorTotal()
		obs.Default.Gauge(obs.Key("cq.query.health", name)).Set(int64(state))
		_, naive := q.EvalCounts()
		t.qprev[name] = queryPrev{
			coalesced:  qh.Coalesced,
			invErrs:    qh.InvokeErrors,
			naiveTicks: naive,
		}
	}
	// Unregistered queries: retract their tuple and forget them.
	for name, qh := range t.queries {
		if seen[name] {
			continue
		}
		if err := t.healthRel.Delete(at, healthTuple(name, qh.State)); err != nil {
			return err
		}
		delete(t.queries, name)
		delete(t.qprev, name)
	}
	return nil
}

// assessQuery applies the health rules, worst state first:
//
//	STALLED     an input stream with a configured cadence went silent
//	OVERLOADED  coalesced under overload this interval, or the latest
//	            evaluation alone exceeded the tick budget
//	DEGRADED    invocation failures this interval, a delta→naive fallback
//	            this interval, or an open breaker on a service implementing
//	            one of the plan's prototypes
//	OK          otherwise
func (t *Telemetry) assessQuery(at service.Instant, q *Query, rels map[string]*stream.XDRelation, budget time.Duration) (HealthState, string) {
	prev := t.qprev[q.Name()]
	for _, name := range planBaseStreams(q.plan, rels) {
		if stalled, lag := t.streamStalled(at, name, rels); stalled {
			return HealthStalled, fmt.Sprintf("input stream %s silent for %d instants (cadence %d)", name, lag, t.cadence[name])
		}
	}
	if c := q.Coalesced(); c > prev.coalesced {
		return HealthOverloaded, fmt.Sprintf("coalesced %d instants under overload this interval", c-prev.coalesced)
	}
	if budget > 0 {
		if ev := q.LastEvalLatency(); ev > budget {
			return HealthOverloaded, fmt.Sprintf("last evaluation %s exceeded tick budget %s", ev, budget)
		}
	}
	if n := q.InvokeErrorTotal(); n > prev.invErrs {
		return HealthDegraded, fmt.Sprintf("%d invocation failures this interval", n-prev.invErrs)
	}
	if _, naive := q.EvalCounts(); q.delta != nil && naive > prev.naiveTicks {
		return HealthDegraded, fmt.Sprintf("fell back to naive evaluation for %d instants this interval", naive-prev.naiveTicks)
	}
	if ref, proto, open := t.openBreakerFor(q); open {
		return HealthDegraded, fmt.Sprintf("breaker open on %s (prototype %s)", ref, proto)
	}
	return HealthOK, ""
}

// openBreakerFor reports an Open circuit breaker on any service
// implementing one of the plan's invocation prototypes.
func (t *Telemetry) openBreakerFor(q *Query) (ref, proto string, open bool) {
	if len(q.invNodes) == 0 {
		return "", "", false
	}
	bs := t.e.reg.Breakers()
	if bs == nil {
		return "", "", false
	}
	protos := make([]string, 0, len(q.invNodes))
	for _, inv := range q.invNodes {
		protos = append(protos, inv.Proto)
	}
	states := bs.States()
	refs := make([]string, 0, len(states))
	for r := range states {
		refs = append(refs, r)
	}
	sort.Strings(refs) // deterministic blame when several are open
	for _, r := range refs {
		if states[r] != resilience.Open {
			continue
		}
		svc, err := t.e.reg.Lookup(r)
		if err != nil {
			continue
		}
		for _, p := range protos {
			if svc.Implements(p) {
				return r, p, true
			}
		}
	}
	return "", "", false
}

// scrapeStreams runs dead-man detection over every (non-system) infinite
// relation — plus every materialized derived relation, finite or not, so a
// cadence can be configured on an INTO target whose producer went quiet —
// and reconciles sys$streams edge-triggered.
func (t *Telemetry) scrapeStreams(at service.Instant, rels map[string]*stream.XDRelation) error {
	seen := make(map[string]bool, len(rels))
	names := make([]string, 0, len(rels))
	for name, x := range rels {
		if (!x.Infinite() && !t.mats[name]) || isSystemName(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		seen[name] = true
		stalled, lag := t.streamStalled(at, name, rels)
		state := HealthOK
		if stalled {
			state = HealthStalled
		}
		sh := t.streams[name]
		if sh == nil {
			sh = &StreamHealth{Stream: name, State: state, Since: at}
			t.streams[name] = sh
			if err := t.streamsRel.Insert(at, streamTuple(name, state)); err != nil {
				return err
			}
			obs.Default.Counter("cq.health.transitions").Inc()
		} else if state != sh.State {
			if err := t.streamsRel.Delete(at, streamTuple(name, sh.State)); err != nil {
				return err
			}
			if err := t.streamsRel.Insert(at, streamTuple(name, state)); err != nil {
				return err
			}
			sh.State, sh.Since = state, at
			obs.Default.Counter("cq.health.transitions").Inc()
		}
		sh.Lag = lag
		sh.Cadence = t.cadence[name]
		obs.Default.Gauge(obs.Key("cq.stream.health", name)).Set(int64(state))
	}
	for name, sh := range t.streams {
		if seen[name] {
			continue
		}
		if err := t.streamsRel.Delete(at, streamTuple(name, sh.State)); err != nil {
			return err
		}
		delete(t.streams, name)
	}
	return nil
}

// streamStalled evaluates the dead-man rule for one stream at scrape time
// (before this instant's sources pump, so a continuously producing stream
// shows lag 1). Without a configured cadence a stream never stalls. The
// returned lag is LagNeverProduced for a stream that has no events at all;
// for the stall comparison such a stream counts as infinitely late.
func (t *Telemetry) streamStalled(at service.Instant, name string, rels map[string]*stream.XDRelation) (bool, int64) {
	x := rels[name]
	if x == nil || (!x.Infinite() && !t.mats[name]) {
		return false, 0
	}
	last := x.LastInstant()
	lag := int64(at - last)
	effective := lag
	if last < 0 {
		lag = LagNeverProduced
		effective = int64(at) + 1
	}
	cadence, ok := t.cadence[name]
	if !ok {
		return false, lag
	}
	return effective > int64(cadence), lag
}

// planBaseStreams lists the infinite base relations a plan reads (sorted,
// deduplicated), skipping the system relations themselves so health queries
// over sys$ feeds don't self-assess.
func planBaseStreams(n query.Node, rels map[string]*stream.XDRelation) []string {
	set := map[string]bool{}
	var walk func(n query.Node)
	walk = func(n query.Node) {
		if b, ok := n.(*query.Base); ok {
			if x := rels[b.Name]; x != nil && x.Infinite() && !isSystemName(b.Name) {
				set[b.Name] = true
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func healthTuple(name string, state HealthState) value.Tuple {
	return value.Tuple{value.NewString(name), value.NewString(state.String())}
}

func streamTuple(name string, state HealthState) value.Tuple {
	return value.Tuple{value.NewString(name), value.NewString(state.String())}
}
