package cq_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// slowTickExec builds an executor whose single query invokes services that
// each take `lat` per call, so one tick holds the tick path busy for a
// measurable while.
func slowTickExec(t *testing.T, n int, lat time.Duration) *cq.Executor {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	fin := stream.NewFinite(paperenv.SensorsSchema())
	for i := 0; i < n; i++ {
		ref := fmt.Sprintf("s%03d", i)
		err := reg.Register(service.NewFunc(ref, map[string]service.InvokeFunc{
			"getTemperature": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				time.Sleep(lat)
				return []value.Tuple{{value.NewReal(20)}}, nil
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := fin.Insert(0, value.Tuple{value.NewService(ref), value.NewString("lab")}); err != nil {
			t.Fatal(err)
		}
	}
	exec := cq.NewExecutor(reg)
	if err := exec.AddRelation(fin); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Register("temps", query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")); err != nil {
		t.Fatal(err)
	}
	return exec
}

// TestReadersDoNotBlockDuringSlowTick pins the lock-narrowing behavior: a
// tick spending hundreds of milliseconds in β invocations must not make
// Query/QueryNames/Stats/LastResult readers wait it out — they read under
// short field locks, not the tick lock.
func TestReadersDoNotBlockDuringSlowTick(t *testing.T) {
	const lat = 120 * time.Millisecond
	exec := slowTickExec(t, 3, lat) // sequential tick ≈ 360ms of invocations

	var wg sync.WaitGroup
	wg.Add(1)
	tickStart := time.Now()
	go func() {
		defer wg.Done()
		if _, err := exec.Tick(); err != nil {
			t.Errorf("tick: %v", err)
		}
	}()
	time.Sleep(40 * time.Millisecond) // let the tick get into its invocations

	readStart := time.Now()
	names := exec.QueryNames()
	q, ok := exec.Query("temps")
	if !ok {
		t.Fatal("query not visible mid-tick")
	}
	_ = q.Stats()
	_ = q.LastResult()
	_ = q.InvokeErrors()
	readLat := time.Since(readStart)

	wg.Wait()
	tickLat := time.Since(tickStart)
	if len(names) != 1 || names[0] != "temps" {
		t.Fatalf("names = %v", names)
	}
	if tickLat < 3*lat {
		t.Fatalf("fixture broken: tick took %v, expected ≥ %v of invocation latency", tickLat, 3*lat)
	}
	// The readers ran while the tick still had ≥200ms to go; anything near
	// the tick duration means they queued behind the tick lock.
	if readLat > lat {
		t.Fatalf("readers took %v during a %v tick — blocked on the tick lock", readLat, tickLat)
	}
}

// TestDependentQueriesUnderParallelTick: with query-level parallelism on,
// a query reading another's derived relation must still see the SAME
// instant's output — dependents run in a later stage, not concurrently
// with their producer.
func TestDependentQueriesUnderParallelTick(t *testing.T) {
	s := newScenario(t)
	s.exec.SetQueryParallelism(4)
	if _, err := s.exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28))))); err != nil {
		t.Fatal(err)
	}
	alerts, err := s.exec.Register("alerts", query.NewInvoke(
		query.NewAssignConst(
			query.NewJoin(query.NewBase("contacts"), query.NewBase("hot")),
			"text", value.NewString("Hot!")),
		"sendMessage", ""))
	if err != nil {
		t.Fatal(err)
	}
	// An independent third query rides in the same stage pool.
	if _, err := s.exec.Register("views", query.NewBase("cameras")); err != nil {
		t.Fatal(err)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 4, Delta: 10})
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if alerts.Actions().Len() != 3 {
		t.Fatalf("actions = %s, want the 3 contacts alerted in the hot instant", alerts.Actions())
	}
	total := len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3", total)
	}
}

// TestParallelTickEquivalentToSequential runs the same scenario twice —
// fully sequential vs query-parallel + invocation-parallel + batched — and
// demands identical query results, action sets and physical deliveries
// (Definition 9 equivalence, end to end through the continuous executor).
func TestParallelTickEquivalentToSequential(t *testing.T) {
	type outcome struct {
		actions    int
		deliveries int
		lastQ3     *algebra.XRelation
		lastHot    *algebra.XRelation
	}
	run := func(parallel bool) outcome {
		s := newScenario(t)
		if parallel {
			s.exec.SetQueryParallelism(4)
			s.exec.SetParallelism(8)
			s.exec.SetBatchSize(4)
		}
		q, err := s.exec.Register("q3", q3())
		if err != nil {
			t.Fatal(err)
		}
		hot, err := s.exec.Register("hot", query.NewSelect(
			query.NewWindow(query.NewBase("temperatures"), 1),
			algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28)))))
		if err != nil {
			t.Fatal(err)
		}
		s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 5, To: 8, Delta: 20})
		if err := s.exec.RunUntil(10); err != nil {
			t.Fatal(err)
		}
		return outcome{
			actions:    q.Actions().Len(),
			deliveries: len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox()),
			lastQ3:     q.LastResult(),
			lastHot:    hot.LastResult(),
		}
	}
	seq := run(false)
	par := run(true)
	if seq.actions != par.actions {
		t.Fatalf("action sets differ: %d vs %d", seq.actions, par.actions)
	}
	if seq.deliveries != par.deliveries {
		t.Fatalf("physical deliveries differ: %d sequential vs %d parallel", seq.deliveries, par.deliveries)
	}
	if !seq.lastQ3.EqualContents(par.lastQ3) {
		t.Fatal("q3 results differ between sequential and parallel ticks")
	}
	if !seq.lastHot.EqualContents(par.lastHot) {
		t.Fatal("hot view differs between sequential and parallel ticks")
	}
}

// TestParallelDeltaEquivalentToSequentialNaive is the incremental
// evaluator's concurrency gate (run it under -race): four delta queries
// tick under SetQueryParallelism(4) — so independent operator trees mutate
// their join indexes, gates, and accumulators on different goroutines in
// the same stage — while reader goroutines hammer the delta observability
// surface mid-tick. The outcome must be bit-identical to the oracle: the
// same scenario, fully sequential (P=1), every query pinned naive.
func TestParallelDeltaEquivalentToSequentialNaive(t *testing.T) {
	plans := func() map[string]query.Node {
		return map[string]query.Node{
			"q3": q3(),
			"hot": query.NewSelect(
				query.NewWindow(query.NewBase("temperatures"), 2),
				algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28)))),
			"climate": query.NewAggregate(
				query.NewWindow(query.NewBase("temperatures"), 3),
				[]string{"location"},
				[]algebra.AggSpec{
					{Func: algebra.Count, As: "n"},
					{Func: algebra.Mean, Attr: "temperature", As: "avg"},
					{Func: algebra.Max, Attr: "temperature", As: "high"},
				}),
			"photos": query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "camera"),
		}
	}
	names := []string{"q3", "hot", "climate", "photos"}

	type outcome struct {
		results    map[string]*algebra.XRelation
		actions    *query.ActionSet
		deliveries int
	}
	run := func(parallelDelta bool) outcome {
		s := newScenario(t)
		qs := map[string]*cq.Query{}
		for name, plan := range plans() {
			q, err := s.exec.Register(name, plan)
			if err != nil {
				t.Fatal(err)
			}
			qs[name] = q
		}
		if parallelDelta {
			s.exec.SetQueryParallelism(4)
			for _, name := range names {
				if got := qs[name].EvaluationMode(); got != "delta" {
					t.Fatalf("query %s runs %q, want delta", name, got)
				}
			}
		} else {
			for _, name := range names {
				if err := s.exec.SetNaiveEvaluation(name, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 3, To: 7, Delta: 20})
		s.dev.Sensors["sensor01"].Heat(device.HeatEvent{From: 5, To: 9, Delta: 15})

		// Concurrent readers: the delta report walks per-node atomic
		// counters the tick goroutines are bumping right now.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if parallelDelta {
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, name := range names {
							_ = qs[name].DeltaReport()
							_, _ = qs[name].EvalCounts()
							_ = qs[name].EvaluationMode()
							_ = qs[name].LastResult()
						}
					}
				}()
			}
		}
		if err := s.exec.RunUntil(12); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()

		o := outcome{
			results:    map[string]*algebra.XRelation{},
			actions:    qs["q3"].Actions(),
			deliveries: len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox()),
		}
		for _, name := range names {
			o.results[name] = qs[name].LastResult()
		}
		if parallelDelta {
			for _, name := range names {
				if d, n := qs[name].EvalCounts(); d == 0 || n != 0 {
					t.Fatalf("query %s EvalCounts = (%d, %d), want all-delta", name, d, n)
				}
			}
		}
		return o
	}

	oracle := run(false)
	par := run(true)
	for _, name := range names {
		if !oracle.results[name].EqualContents(par.results[name]) {
			t.Errorf("query %s diverged from the sequential naive oracle\n naive: %s\n delta: %s",
				name, oracle.results[name], par.results[name])
		}
	}
	if !oracle.actions.Equal(par.actions) {
		t.Errorf("q3 action sets diverged\n naive: %s\n delta: %s", oracle.actions, par.actions)
	}
	if oracle.deliveries != par.deliveries {
		t.Errorf("physical deliveries diverged: %d naive vs %d delta", oracle.deliveries, par.deliveries)
	}
}
