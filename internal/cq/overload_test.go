package cq_test

import (
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/value"
)

// TestIngestDrainOnTick: tuples staged with Offer become visible exactly at
// the next tick instant, via the normal Insert path.
func TestIngestDrainOnTick(t *testing.T) {
	s := newScenario(t)
	s.temps.SetOverloadPolicy(resilience.ShedOldest, 16)
	ref := value.NewService("sensor01")
	for i := 0; i < 3; i++ {
		if err := s.temps.Offer(value.Tuple{ref, value.NewString("lab"), value.NewReal(20)}); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.temps.IngestDepth(); d != 3 {
		t.Fatalf("depth = %d", d)
	}
	at, err := s.exec.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if d := s.temps.IngestDepth(); d != 0 {
		t.Fatalf("depth after tick = %d", d)
	}
	if got := len(s.temps.InsertedIn(at-1, at)); got < 3 {
		t.Fatalf("drained rows at instant %d = %d, want >= 3", at, got)
	}
}

// TestTickOverrunDetection: a tick slower than its budget is counted.
func TestTickOverrunDetection(t *testing.T) {
	s := newScenario(t)
	s.exec.SetTickBudget(time.Nanosecond)
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if n := s.exec.TickOverruns(); n != 1 {
		t.Fatalf("overruns = %d, want 1", n)
	}
	s.exec.SetTickBudget(0)
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if n := s.exec.TickOverruns(); n != 1 {
		t.Fatalf("overruns after disabling budget = %d, want still 1", n)
	}
}

// passiveView is an unconnected passive query — the only legal shedding
// victim.
func passiveView() query.Node {
	return query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28))))
}

// TestCoalescingNeverShedsActiveCone proves the Definition 8 invariant: an
// overloaded run (every tick over budget, coalescing on) produces exactly
// the control's action set; only passive-only queries detached from every
// active β are skipped, including transitively — a passive view FEEDING an
// active query is protected.
func TestCoalescingNeverShedsActiveCone(t *testing.T) {
	run := func(overloaded bool) (actions string, coalescedView, coalescedHot, coalescedAlert int64) {
		s := newScenario(t)
		if overloaded {
			s.exec.SetTickBudget(time.Nanosecond)
			s.exec.SetOverloadCoalescing(true)
		}
		// "hot" is passive but feeds the active "alerts" query → protected.
		hot, err := s.exec.Register("hot", passiveView())
		if err != nil {
			t.Fatal(err)
		}
		alerts, err := s.exec.Register("alerts", query.NewInvoke(
			query.NewAssignConst(
				query.NewJoin(query.NewBase("contacts"), query.NewBase("hot")),
				"text", value.NewString("Hot!")),
			"sendMessage", ""))
		if err != nil {
			t.Fatal(err)
		}
		if !alerts.HasActive() || hot.HasActive() {
			t.Fatal("HasActive misclassified the plans")
		}
		// "view" is passive and feeds nothing → shedable.
		view, err := s.exec.Register("view", passiveView())
		if err != nil {
			t.Fatal(err)
		}
		s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 4, Delta: 10})
		if err := s.exec.RunUntil(6); err != nil {
			t.Fatal(err)
		}
		return alerts.Actions().String(), view.Coalesced(), hot.Coalesced(), alerts.Coalesced()
	}
	ctrlActions, _, _, _ := run(false)
	overActions, view, hot, alert := run(true)
	if ctrlActions != overActions {
		t.Fatalf("action set diverged under overload:\ncontrol:    %s\noverloaded: %s", ctrlActions, overActions)
	}
	if view == 0 {
		t.Fatal("the detached passive view was never coalesced — coalescing did not engage")
	}
	if hot != 0 {
		t.Fatalf("passive view feeding an active query was coalesced %d times", hot)
	}
	if alert != 0 {
		t.Fatalf("active query was coalesced %d times", alert)
	}
}

// TestBlockedProducerUnblocksOnTick: a producer blocked on BLOCK
// backpressure resumes when the tick drains the buffer.
func TestBlockedProducerUnblocksOnTick(t *testing.T) {
	s := newScenario(t)
	s.temps.SetOverloadPolicy(resilience.Block, 1)
	ref := value.NewService("sensor01")
	mk := func(v float64) value.Tuple {
		return value.Tuple{ref, value.NewString("lab"), value.NewReal(v)}
	}
	if err := s.temps.Offer(mk(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.temps.Offer(mk(2)) }()
	select {
	case err := <-done:
		t.Fatalf("second offer should block, returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked offer failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("tick drain did not unblock the producer")
	}
}
