// Package cq implements continuous query execution over XD-Relations
// (Gripay et al., EDBT 2010, Section 4): a discrete clock drives the
// per-instant evaluation of registered query plans. Operators are applied
// to instantaneous relations; the Window operator W[period] reads the last
// `period` instants of a stream; the Streaming operators S[type] emit
// insertion/deletion/heartbeat deltas; and — following Section 4.2 — the
// invocation operator fires only for tuples newly inserted into its input,
// never again for tuples that persist across instants.
package cq

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"serena/internal/algebra"
	"serena/internal/obs"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/trace"
	"serena/internal/value"
)

// Continuous-execution metrics: tick latency, Section 4.2 invocation-cache
// effectiveness, operator-level delta-path volume, and per-stream instant
// lag (clock instant minus the last instant with events — how stale each
// stream is).
//
// cq.invoke_cache.* is the Section 4.2 cross-instant invocation memo
// (formerly misnamed cq.delta_cache.*, which conflated it with the
// operator-level delta evaluation the cq.delta.* family now covers).
var (
	obsTickLatency        = obs.Default.Histogram("cq.tick.latency")
	obsTicks              = obs.Default.Counter("cq.ticks")
	obsInvokeCacheHits    = obs.Default.Counter("cq.invoke_cache.hits")
	obsInvokeCacheMisses  = obs.Default.Counter("cq.invoke_cache.misses")
	obsQueryEvals         = obs.Default.Counter("cq.query.evals")
	obsQueryEvalTime      = obs.Default.Histogram("cq.query.eval_latency")
	obsDeltaTicks         = obs.Default.Counter("cq.delta.ticks")
	obsDeltaFallbackTicks = obs.Default.Counter("cq.delta.fallback_ticks")
	obsDeltaReinits       = obs.Default.Counter("cq.delta.reinits")
	obsDeltaRowsIn        = obs.Default.Counter("cq.delta.rows_in")
	obsDeltaRowsOut       = obs.Default.Counter("cq.delta.rows_out")
)

// Executor owns a set of dynamic relations and registered continuous
// queries, and advances them over a shared discrete clock.
//
// Locking: tickMu serializes whole ticks (live and replay) and every
// structural mutation that must not interleave with one (Register,
// Unregister, AddRelation, SetDurability, Restore, Snapshot). mu guards the
// executor's fields for brief reads and writes only — readers like Query,
// QueryNames and the metrics pollers take mu alone, so they observe
// consistent state without blocking for a whole tick. Lock order is always
// tickMu before mu, never the reverse.
type Executor struct {
	tickMu  sync.Mutex
	mu      sync.Mutex
	reg     *service.Registry
	rels    map[string]*stream.XDRelation
	queries map[string]*Query
	// producers maps each query's output-relation name (the INTO target
	// when set, the query name otherwise) back to the producing query —
	// the dependency index Unregister, trimming, checkpointing and the
	// producer→consumer delta fast path all consult.
	producers map[string]*Query
	order     []string // query evaluation order (registration order)
	sources []Source
	now     service.Instant
	// parallelism bounds concurrent invocations per invocation operator.
	parallelism int
	// queryParallelism bounds how many independent queries one tick
	// evaluates concurrently (1 = sequential, the default).
	queryParallelism int
	// batchSize bounds the invocation batch planner's dispatch chunks
	// (0 = query.DefaultBatchSize, negative disables batching).
	batchSize int
	// maxWindow tracks, per stream name, the largest window period any
	// registered query uses — the retention horizon for log trimming.
	maxWindow map[string]service.Instant
	// dur, when set, write-ahead-logs tick boundaries, base-relation events
	// and active-β intents/results (see durable.go).
	dur Durability
	// onCheckpoint persists a state snapshot when dur reports one is due.
	onCheckpoint func(CheckpointState) error
	// Overload protection (see overload.go): tickBudget is the soft tick
	// deadline (0 = none); coalescePassive lets the tick after an overrun
	// skip shedable passive-only queries; overranLast carries the overrun
	// signal from one tick to the next; tickOverruns counts them.
	tickBudget      time.Duration
	coalescePassive bool
	overranLast     bool
	tickOverruns    int64
	// telemetry, when enabled, owns the sys$ system relations and the
	// health scraper source (see telemetry.go).
	telemetry *Telemetry
}

// Source is a data producer pumped at the start of every tick, before
// query evaluation — e.g. a sensor poller or an RSS feed wrapper.
type Source func(at service.Instant) error

// NewExecutor returns an executor starting before instant 0.
func NewExecutor(reg *service.Registry) *Executor {
	return &Executor{
		reg:       reg,
		rels:      make(map[string]*stream.XDRelation),
		queries:   make(map[string]*Query),
		producers: make(map[string]*Query),
		maxWindow: make(map[string]service.Instant),
		now:       -1,
	}
}

// Now returns the last executed instant (−1 before the first tick).
func (e *Executor) Now() service.Instant {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// AddRelation registers a dynamic relation under its schema name.
func (e *Executor) AddRelation(x *stream.XDRelation) error {
	if x.Name() == "" {
		return fmt.Errorf("cq: relation needs a named schema")
	}
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rels[x.Name()]; dup {
		return fmt.Errorf("cq: relation %q already registered", x.Name())
	}
	e.rels[x.Name()] = x
	if e.dur != nil && !x.Ephemeral() {
		e.dur.AttachRelation(x)
	}
	return nil
}

// Relation returns a registered dynamic relation.
func (e *Executor) Relation(name string) (*stream.XDRelation, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	x, ok := e.rels[name]
	return x, ok
}

// Materialized reports whether name is a materialized derived relation —
// the INTO target of a registered query. Its WAL events are informational
// during replay: recovery re-derives the contents by re-evaluating the
// producer, so applying the logged events too would double-apply.
func (e *Executor) Materialized(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.producers[name]
	return q != nil && q.into != ""
}

// SetParallelism bounds how many service invocations one invocation
// operator may run concurrently (default 1 = sequential; Section 5.1's
// asynchronous invocation handling).
func (e *Executor) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parallelism = n
}

// SetQueryParallelism bounds how many registered queries one tick evaluates
// concurrently (default 1 = sequential). Queries reading another query's
// output relation always run after their producer — see stageQueries — so
// derived views keep their same-instant semantics.
func (e *Executor) SetQueryParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queryParallelism = n
}

// SetBatchSize bounds the invocation batch planner's dispatch chunks: 0
// restores query.DefaultBatchSize, negative disables batching entirely
// (per-tuple invocation, the pre-batching behavior).
func (e *Executor) SetBatchSize(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchSize = n
}

// AddSource registers a producer pumped at each tick before evaluation.
func (e *Executor) AddSource(s Source) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sources = append(e.sources, s)
}

// Query is one registered continuous query with its cross-instant state.
type Query struct {
	name string
	plan query.Node

	// OnResult, when set, is called after each tick with the instantaneous
	// result and its insertion/deletion deltas relative to the previous
	// instant.
	OnResult func(at service.Instant, result *algebra.XRelation, inserted, deleted []value.Tuple)

	infinite   bool // root is a Stream node → result is a stream
	out        *stream.XDRelation
	prevOutput map[string]value.Tuple // previous instantaneous result, by key

	// into names the materialized output relation (REGISTER QUERY … INTO);
	// "" means the output is registered under the query's own name and is
	// recomputed rather than logged. retain is the INTO relation's RETAIN
	// horizon in instants (0 = engine default for infinite outputs, no
	// trimming for finite ones). Both are set at Register, then read-only.
	into   string
	retain service.Instant

	invCache   map[*query.Invoke]map[string][]value.Tuple
	streamPrev map[*query.Stream]map[string]value.Tuple

	// Plan nodes with cross-instant state, in DFS preorder. The indexes give
	// invoke and stream nodes a stable identity that survives a restart (the
	// checkpointed plan text re-parses to the same shape), letting WAL
	// records and snapshots address them by position.
	invNodes    []*query.Invoke
	invIdx      map[*query.Invoke]int
	streamNodes []*query.Stream

	// mu guards the accessor-visible state below, so Stats/LastResult/
	// InvokeErrors readers never race the tick writing them (and never
	// block on the tick lock). actions is internally synchronized.
	mu      sync.Mutex
	stats   query.InvokeStats
	actions *query.ActionSet
	lastRes *algebra.XRelation
	invErrs []query.InvokeError
	// invErrTotal counts every invocation failure ever recorded — invErrs
	// is capped at the last 100, so interval deltas (the health state
	// machine's DEGRADED signal) need a monotonic counter.
	invErrTotal int64
	// lastEvalNS is the wall-clock cost of the query's latest evaluation,
	// compared against the tick budget by the health state machine.
	lastEvalNS int64

	// degradation selects the query's β failure policy (guarded by mu;
	// resilience.Default behaves like SkipTuple here).
	degradation resilience.DegradationPolicy

	// hasActive marks plans containing an active β (set at Register, then
	// read-only); such queries are exempt from overload coalescing, as is
	// everything their plan reads. coalesced (guarded by mu) counts the
	// instants this query was skipped under overload.
	hasActive bool
	coalesced int64

	// delta is the compiled incremental-evaluation program (see delta.go),
	// nil when the plan has no delta form (the query then runs naive-only;
	// deltaErr records why). naive, guarded by mu, pins the query to the
	// naive path (SetNaiveEvaluation); deltaTicks/naiveTicks (mu) count
	// instants evaluated by each path.
	delta      *deltaProgram
	deltaErr   string
	naive      bool
	deltaTicks int64
	naiveTicks int64

	// lastDelta (guarded by mu) is the query's most recent per-tick output
	// delta, recorded for finite outputs on both evaluation paths. A
	// downstream consumer's deltaBase reads it through producerDelta,
	// feeding the producer's (inserts, deletes) straight into its gate
	// instead of re-diffing the materialized relation's event log.
	lastDelta queryDelta
}

// queryDelta is one tick's (inserts, deletes) as applied to the query's
// output relation. at identifies the instant it belongs to — a consumer
// must only consume it when the producer evaluated at the same instant.
type queryDelta struct {
	at  service.Instant
	ins []value.Tuple
	del []value.Tuple
}

// Name returns the query's registration name.
func (q *Query) Name() string { return q.name }

// Plan returns the registered plan.
func (q *Query) Plan() query.Node { return q.plan }

// Infinite reports whether the result is an infinite XD-Relation (the root
// operator is a streaming operator, like the paper's Q4).
func (q *Query) Infinite() bool { return q.infinite }

// Output returns the result XD-Relation, fed with the query's deltas.
func (q *Query) Output() *stream.XDRelation { return q.out }

// Into returns the materialized output relation name (REGISTER QUERY …
// INTO), or "" when the output is registered under the query's own name.
func (q *Query) Into() string { return q.into }

// Retain returns the output relation's explicit RETAIN horizon in
// instants (0 = none configured; infinite materialized outputs then fall
// back to DefaultDerivedRetention).
func (q *Query) Retain() service.Instant { return q.retain }

// IsMaterialized reports whether the query materializes its output into a
// named derived relation (INTO): such outputs are WAL-logged and
// checkpointed like base relations instead of being recomputed on replay.
func (q *Query) IsMaterialized() bool { return q.into != "" }

// OutName returns the name the query's output relation is registered
// under: the INTO target when set, the query name otherwise.
func (q *Query) OutName() string {
	if q.into != "" {
		return q.into
	}
	return q.name
}

// Stats returns cumulative invocation statistics.
func (q *Query) Stats() query.InvokeStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Actions returns the cumulative action set (all active invocations fired
// since registration — each distinct action appears once).
func (q *Query) Actions() *query.ActionSet { return q.actions }

// LastResult returns the instantaneous result of the latest tick.
func (q *Query) LastResult() *algebra.XRelation {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lastRes
}

// Degradation returns the query's β failure policy.
func (q *Query) Degradation() resilience.DegradationPolicy {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.degradation
}

// InvokeErrors returns the invocation failures skipped so far (most recent
// last, bounded to the last 100). A flaky device degrades a continuous
// query to partial results instead of killing it; the failures are
// reported here.
func (q *Query) InvokeErrors() []query.InvokeError {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]query.InvokeError, len(q.invErrs))
	copy(out, q.invErrs)
	return out
}

func (q *Query) recordInvokeError(e query.InvokeError) {
	const keep = 100
	q.mu.Lock()
	defer q.mu.Unlock()
	q.invErrTotal++
	q.invErrs = append(q.invErrs, e)
	if len(q.invErrs) > keep {
		q.invErrs = q.invErrs[len(q.invErrs)-keep:]
	}
}

// InvokeErrorTotal returns the total number of invocation failures recorded
// since registration (monotonic, unlike the bounded InvokeErrors buffer).
func (q *Query) InvokeErrorTotal() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.invErrTotal
}

// LastEvalLatency returns the wall-clock duration of the query's most
// recent evaluation (0 before the first tick).
func (q *Query) LastEvalLatency() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return time.Duration(q.lastEvalNS)
}

// schemaEnv adapts the executor's relations to query.Environment for
// schema derivation (empty relations carrying the real schemas).
type schemaEnv struct{ e *Executor }

func (s schemaEnv) Relation(name string) (*algebra.XRelation, error) {
	x, ok := s.e.rels[name]
	if !ok {
		return nil, fmt.Errorf("cq: unknown relation %q", name)
	}
	return algebra.Empty(x.Schema()), nil
}

// DefaultDerivedRetention is the event-log horizon, in instants, applied
// to an infinite derived output relation whose query declares no RETAIN
// clause. Without it a cascaded stream query with no windowed reader would
// grow its event log without bound.
const DefaultDerivedRetention service.Instant = 256

// RegisterOptions carries the optional clauses of REGISTER QUERY.
type RegisterOptions struct {
	// Into materializes the query's output as a named derived XD-Relation
	// ("" = register the output under the query's own name, recomputed on
	// replay rather than WAL-logged).
	Into string
	// Retain bounds the output relation's event log to the last n instants
	// (0 = no explicit policy; infinite INTO outputs then default to
	// DefaultDerivedRetention).
	Retain service.Instant
}

// Register adds a continuous query under a unique name. The plan is
// validated: schemas must derive, and every base reference to an infinite
// XD-Relation must appear directly under a Window operator (an unwindowed
// stream has no finite instantaneous relation).
func (e *Executor) Register(name string, plan query.Node) (*Query, error) {
	return e.RegisterWith(name, plan, RegisterOptions{})
}

// RegisterWith is Register plus the INTO/RETAIN clauses: the output
// relation is registered under opts.Into, WAL-logged and checkpointed like
// a base relation, and trimmed to opts.Retain instants.
func (e *Executor) RegisterWith(name string, plan query.Node, opts RegisterOptions) (*Query, error) {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[name]; dup {
		return nil, fmt.Errorf("cq: query %q already registered", name)
	}
	if isSystemName(name) {
		return nil, fmt.Errorf("cq: query name %q: the sys$ prefix is reserved for system relations", name)
	}
	if opts.Retain < 0 {
		return nil, fmt.Errorf("cq: query %q: negative retention %d", name, opts.Retain)
	}
	outName := name
	if opts.Into != "" {
		// Mirror the Register-side guards for the materialized target: the
		// sys$ namespace stays reserved, and the name must not shadow an
		// existing relation, query, or the query being registered.
		if isSystemName(opts.Into) {
			return nil, fmt.Errorf("cq: query %q: INTO target %q: the sys$ prefix is reserved for system relations", name, opts.Into)
		}
		if opts.Into == name {
			return nil, fmt.Errorf("cq: query %q: INTO target must differ from the query name", name)
		}
		if _, taken := e.rels[opts.Into]; taken {
			return nil, fmt.Errorf("cq: query %q: INTO target %q collides with an existing relation", name, opts.Into)
		}
		if _, taken := e.queries[opts.Into]; taken {
			return nil, fmt.Errorf("cq: query %q: INTO target %q collides with a registered query", name, opts.Into)
		}
		outName = opts.Into
	}
	env := schemaEnv{e}
	outSch, err := plan.ResultSchema(env)
	if err != nil {
		return nil, fmt.Errorf("cq: query %q: %w", name, err)
	}
	if err := e.checkStreamsWindowed(plan, false); err != nil {
		return nil, fmt.Errorf("cq: query %q: %w", name, err)
	}
	_, infinite := plan.(*query.Stream)
	var out *stream.XDRelation
	if infinite {
		out = stream.NewInfinite(outSch.WithName(outName))
	} else {
		out = stream.NewFinite(outSch.WithName(outName))
	}
	if _, taken := e.rels[name]; taken {
		return nil, fmt.Errorf("cq: query name %q collides with a relation", name)
	}
	q := &Query{
		name:       name,
		plan:       plan,
		infinite:   infinite,
		out:        out,
		into:       opts.Into,
		retain:     opts.Retain,
		prevOutput: map[string]value.Tuple{},
		invCache:   map[*query.Invoke]map[string][]value.Tuple{},
		streamPrev: map[*query.Stream]map[string]value.Tuple{},
		actions:    query.NewActionSet(),
		lastDelta:  queryDelta{at: -1},
	}
	q.indexPlanNodes()
	e.computeHasActive(q)
	// Compile the incremental-evaluation program (delta.go). A plan some
	// delta operator cannot cover falls back to the naive evaluator — the
	// query still runs, just re-evaluating per tick.
	if p, derr := compileDelta(e, q); derr == nil {
		q.delta = p
	} else {
		q.deltaErr = derr.Error()
		slog.Info("cq: query runs naive (no delta form)", "query", name, "reason", derr.Error())
	}
	e.queries[name] = q
	e.order = append(e.order, name)
	e.recordWindows(plan)
	// The output XD-Relation is itself part of the environment: queries
	// registered later may read it by name (derived relations / continuous
	// views). Within one tick, queries evaluate in registration order, so a
	// downstream consumer sees the producer's output for the same instant.
	e.rels[outName] = out
	e.producers[outName] = q
	// A materialized output is durable like a base relation: its events
	// flow to the WAL so dump→replay→recovery rebuilds it even though
	// replay re-derives the contents by re-evaluating the producer (see
	// pems.applyRecoveredEvent, which skips the logged events in favor of
	// the re-evaluation to avoid double-apply).
	if opts.Into != "" && e.dur != nil && !out.Ephemeral() {
		e.dur.AttachRelation(out)
	}
	return q, nil
}

// indexPlanNodes assigns every invoke and stream node its DFS-preorder
// index (durable node identity for WAL records and checkpoints).
func (q *Query) indexPlanNodes() {
	q.invIdx = map[*query.Invoke]int{}
	var walk func(n query.Node)
	walk = func(n query.Node) {
		switch t := n.(type) {
		case *query.Invoke:
			q.invIdx[t] = len(q.invNodes)
			q.invNodes = append(q.invNodes, t)
		case *query.Stream:
			q.streamNodes = append(q.streamNodes, t)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(q.plan)
}

// SetDegradation selects a registered query's β failure policy:
// resilience.FailFast aborts the tick on the first invocation failure
// (today's one-shot behavior), resilience.SkipTuple drops the failing
// tuple (the default for continuous queries — the paper's no-service
// case), resilience.NullFill keeps the tuple with its virtual attributes
// realized as NULL. Failed tuples are never cached: they are retried at
// the next instant under every policy.
func (e *Executor) SetDegradation(name string, p resilience.DegradationPolicy) error {
	e.mu.Lock()
	q, ok := e.queries[name]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("cq: unknown query %q", name)
	}
	q.mu.Lock()
	q.degradation = p
	q.mu.Unlock()
	return nil
}

// Query returns a registered continuous query by name.
func (e *Executor) Query(name string) (*Query, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	return q, ok
}

// QueryNames lists the registered continuous queries in registration order.
func (e *Executor) QueryNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.order...)
}

// RelationNames lists every relation the executor knows about (catalog
// tables, streams, and derived continuous-query outputs), sorted.
func (e *Executor) RelationNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.rels))
	for name := range e.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Unregister stops and removes a continuous query along with its derived
// output relation. It refuses to remove a producer whose output relation a
// still-registered query reads — silently dropping it would leave every
// consumer evaluating against a dangling base. Unregister the consumers
// first.
func (e *Executor) Unregister(name string) error {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	if !ok {
		return fmt.Errorf("cq: unknown query %q", name)
	}
	out := q.OutName()
	var consumers []string
	for _, other := range e.order {
		if other == name {
			continue
		}
		for _, dep := range planBaseNames(e.queries[other].plan) {
			if dep == out {
				consumers = append(consumers, other)
				break
			}
		}
	}
	if len(consumers) > 0 {
		return fmt.Errorf("cq: cannot unregister query %q: its derived relation %q is read by registered queries [%s] — unregister those first",
			name, out, strings.Join(consumers, ", "))
	}
	delete(e.queries, name)
	delete(e.rels, out) // drop the derived output relation
	delete(e.producers, out)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	return nil
}

// recordWindows updates the per-stream retention horizon from a plan's
// window operators (never shrinks: unregistered queries keep their horizon
// to stay conservative).
func (e *Executor) recordWindows(n query.Node) {
	if w, ok := n.(*query.Window); ok {
		if base, ok := w.Child.(*query.Base); ok {
			p := service.Instant(w.Period)
			if p > e.maxWindow[base.Name] {
				e.maxWindow[base.Name] = p
			}
		}
	}
	for _, c := range n.Children() {
		e.recordWindows(c)
	}
}

// trimStreams drops stream events that no registered window can reach any
// more, bounding memory for long-running executions. Events are kept for
// one extra instant of slack. Per-relation RETAIN policies add a second
// horizon: an explicit RETAIN trims the relation (finite or infinite) to
// its last n instants, and an infinite derived output with no policy
// falls back to DefaultDerivedRetention so a cascaded stream query
// holds bounded memory even with no windowed reader. When both a window
// and a retention apply, the more conservative (least-trimming) horizon
// wins, so RETAIN never starves a registered window. Base relations
// without any windowed reader or retention are never trimmed automatically
// (their full history may still be inspected via At or dumped).
func (e *Executor) trimStreams(at service.Instant) {
	for name, x := range e.rels {
		var retain service.Instant
		if q := e.producers[name]; q != nil {
			retain = q.retain
			if retain == 0 && x.Infinite() {
				retain = DefaultDerivedRetention
			}
		}
		period, windowed := e.maxWindow[name]
		windowed = windowed && x.Infinite() // finite windows read Current, not the log
		var horizon service.Instant
		switch {
		case windowed && retain > 0:
			horizon = min(at-period-1, at-retain+1)
		case windowed:
			horizon = at - period - 1
		case retain > 0:
			horizon = at - retain + 1
		default:
			continue
		}
		if horizon > 0 {
			x.TrimBefore(horizon)
		}
	}
}

// checkStreamsWindowed walks the plan ensuring infinite base relations are
// directly wrapped by a Window operator.
func (e *Executor) checkStreamsWindowed(n query.Node, directlyUnderWindow bool) error {
	switch t := n.(type) {
	case *query.Base:
		x, ok := e.rels[t.Name]
		if !ok {
			return fmt.Errorf("unknown relation %q", t.Name)
		}
		if x.Infinite() && !directlyUnderWindow {
			return fmt.Errorf("stream %q must be accessed through a window operator (Section 4.2)", t.Name)
		}
		return nil
	case *query.Window:
		if _, ok := t.Child.(*query.Base); !ok {
			return fmt.Errorf("window operator applies to base streams, not %T", t.Child)
		}
		return e.checkStreamsWindowed(t.Child, true)
	}
	for _, c := range n.Children() {
		if err := e.checkStreamsWindowed(c, false); err != nil {
			return err
		}
	}
	return nil
}

// Tick advances the clock one instant: it pumps every source, then
// evaluates every registered query at the new instant, updating outputs and
// firing OnResult callbacks. It returns the instant just executed.
//
// Only tickMu is held across the tick; e.mu is taken briefly around field
// access, so Query/QueryNames/Relation readers and the metrics pollers
// never wait a whole tick out. WAL BeginTick/CommitTick still bracket
// everything the tick does, and queries evaluate in dependency stages (see
// evalTickQueries) so derived views keep reading their producer's
// same-instant output.
func (e *Executor) Tick() (service.Instant, error) {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	start := time.Now()
	e.mu.Lock()
	e.now++
	at := e.now
	order := append([]string(nil), e.order...)
	qs := make([]*Query, len(order))
	for i, name := range order {
		qs[i] = e.queries[name]
	}
	sources := append([]Source(nil), e.sources...)
	dur := e.dur
	onCheckpoint := e.onCheckpoint
	workers := e.queryParallelism
	budget := e.tickBudget
	skipPassive := e.coalescePassive && e.overranLast
	rels := make([]*stream.XDRelation, 0, len(e.rels))
	for _, x := range e.rels {
		rels = append(rels, x)
	}
	e.mu.Unlock()
	// The head-sampling decision for the whole tick: a sampled tick gets a
	// root span; everything below (query evals, operators, β tuples, wire
	// round trips) records as its descendants. An unsampled tick threads a
	// nil span and every instrumentation site below degrades to a nil check.
	tick := trace.Default.StartRoot("cq.tick")
	tick.SetAttrInt("instant", int64(at))
	defer tick.Finish()
	if dur != nil {
		if err := dur.BeginTick(at); err != nil {
			tick.SetAttr("error", err.Error())
			e.logTickError(tick, at, "", err)
			return at, fmt.Errorf("cq: wal begin at instant %d: %w", at, err)
		}
	}
	// Ingest buffers drain inside the WAL window (after BeginTick), so
	// drained events are durably attributed to this tick.
	if err := e.drainIngest(rels, at); err != nil {
		tick.SetAttr("error", err.Error())
		e.logTickError(tick, at, "", err)
		return at, fmt.Errorf("cq: ingest drain at instant %d: %w", at, err)
	}
	for _, src := range sources {
		if err := src(at); err != nil {
			tick.SetAttr("error", err.Error())
			e.logTickError(tick, at, "", err)
			return at, fmt.Errorf("cq: source at instant %d: %w", at, err)
		}
	}
	if err := e.evalTickQueries(order, qs, at, tick, nil, workers, skipPassive); err != nil {
		return at, err
	}
	e.mu.Lock()
	e.trimStreams(at)
	e.mu.Unlock()
	if dur != nil {
		due, err := dur.CommitTick(at)
		if err != nil {
			tick.SetAttr("error", err.Error())
			e.logTickError(tick, at, "", err)
			return at, fmt.Errorf("cq: wal commit at instant %d: %w", at, err)
		}
		if due && onCheckpoint != nil {
			e.mu.Lock()
			st := e.snapshotLocked()
			e.mu.Unlock()
			if err := onCheckpoint(st); err != nil {
				// Non-fatal: the log still covers everything; retried at the
				// next due tick.
				slog.Warn("cq: checkpoint failed", "instant", int64(at), "err", err.Error())
			}
		}
	}
	elapsed := time.Since(start)
	e.mu.Lock()
	e.recordLag(at)
	overran := budget > 0 && elapsed > budget
	e.overranLast = overran
	if overran {
		e.tickOverruns++
	}
	e.mu.Unlock()
	if overran {
		obsTickOverruns.Inc()
		tick.SetAttr("overrun", "true")
	}
	obsLastTickElapsed.Set(int64(elapsed))
	obsTicks.Inc()
	obsTickLatency.Observe(elapsed)
	return at, nil
}

// evalTickQueries evaluates one tick's queries in dependency stages. A
// query reading another registered query's output relation (a derived
// view) must evaluate after its producer to see the producer's
// same-instant output; registration order is topological (Register only
// accepts plans whose relations already exist), so one pass over the
// queries assigns each its stage. Within a stage, queries are independent
// and evaluate concurrently on a bounded pool when workers > 1. Errors are
// deterministic: the failing query earliest in registration order wins.
//
// skipPassive is the overload-coalescing signal: when set (only ever on a
// live tick following a budget overrun — replay never coalesces), queries
// that shedableQueries proves safe are skipped for this instant. A skipped
// query's cross-instant state is untouched, so its next evaluation emits
// the accumulated delta.
func (e *Executor) evalTickQueries(order []string, qs []*Query, at service.Instant, tick *trace.Span, replay ReplayLedger, workers int, skipPassive bool) error {
	fail := func(i int, err error) error {
		tick.SetAttr("error", err.Error())
		e.logTickError(tick, at, order[i], err)
		return fmt.Errorf("cq: query %q at instant %d: %w", order[i], at, err)
	}
	var skip []bool
	if skipPassive {
		skip = shedableQueries(order, qs)
	}
	skipped := func(i int) bool {
		if skip != nil && skip[i] {
			qs[i].noteCoalesced()
			return true
		}
		return false
	}
	if workers < 2 || len(qs) < 2 {
		for i, q := range qs {
			if skipped(i) {
				continue
			}
			if err := e.evalQuery(q, at, tick, replay); err != nil {
				return fail(i, err)
			}
		}
		return nil
	}
	for _, stage := range stageQueries(order, qs) {
		w := workers
		if w > len(stage) {
			w = len(stage)
		}
		if w < 2 {
			for _, i := range stage {
				if skipped(i) {
					continue
				}
				if err := e.evalQuery(qs[i], at, tick, replay); err != nil {
					return fail(i, err)
				}
			}
			continue
		}
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			errIdx   = -1
			firstErr error
		)
		next := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if err := e.evalQuery(qs[i], at, tick, replay); err != nil {
						errMu.Lock()
						if errIdx == -1 || i < errIdx {
							errIdx, firstErr = i, err
						}
						errMu.Unlock()
					}
				}
			}()
		}
		for _, i := range stage {
			if skipped(i) {
				continue
			}
			next <- i
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return fail(errIdx, firstErr)
		}
	}
	return nil
}

// stageQueries groups query indexes into evaluation stages by derived-view
// dependency depth: stage 0 reads only base relations, stage k reads at
// least one stage k−1 output. The dependency index is keyed by each
// query's OUTPUT relation name (the INTO target when set) — a consumer
// reads its producer through that name, not through the producer's query
// name. Dependencies always point at earlier registrations, so depths
// resolve in one forward pass.
func stageQueries(order []string, qs []*Query) [][]int {
	idxOf := make(map[string]int, len(qs))
	for i, q := range qs {
		idxOf[q.OutName()] = i
	}
	depth := make([]int, len(qs))
	maxDepth := 0
	for i, q := range qs {
		d := 0
		for _, dep := range planBaseNames(q.plan) {
			if j, ok := idxOf[dep]; ok && j < i && depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	stages := make([][]int, maxDepth+1)
	for i, d := range depth {
		stages[d] = append(stages[d], i)
	}
	return stages
}

// planBaseNames collects every base-relation name a plan reads.
func planBaseNames(n query.Node) []string {
	var out []string
	var walk func(query.Node)
	walk = func(n query.Node) {
		if b, ok := n.(*query.Base); ok {
			out = append(out, b.Name)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// logTickError emits a structured log line for a failed tick, correlated
// with the tick's span when the tick is sampled (trace_id/span_id attrs let
// the operator jump from the log line to /debug/trace).
func (e *Executor) logTickError(tick *trace.Span, at service.Instant, queryName string, err error) {
	attrs := append(tick.LogAttrs(),
		slog.Int64("instant", int64(at)),
		slog.String("err", err.Error()))
	if queryName != "" {
		attrs = append(attrs, slog.String("query", queryName))
	}
	slog.LogAttrs(context.Background(), slog.LevelError, "cq: tick failed", attrs...)
}

// LagNeverProduced is the cq.stream.lag gauge sentinel for a stream that
// has never produced an event. A distinct negative value — rather than the
// old `at+1` encoding, which after enough ticks is indistinguishable from a
// genuinely lagging stream — so dashboards and the health state machine can
// tell "silent since birth" from "went silent".
const LagNeverProduced int64 = -1

// recordLag publishes, per infinite XD-Relation, how many instants behind
// the clock its newest event is (0 = produced this instant,
// LagNeverProduced = never produced anything).
func (e *Executor) recordLag(at service.Instant) {
	for name, x := range e.rels {
		if !x.Infinite() {
			continue
		}
		last := x.LastInstant()
		lag := int64(at - last)
		if last < 0 {
			lag = LagNeverProduced
		}
		obs.Default.Gauge(obs.Key("cq.stream.lag", name)).Set(lag)
	}
}

// RunUntil ticks until (and including) the given instant.
func (e *Executor) RunUntil(at service.Instant) error {
	for e.Now() < at {
		if _, err := e.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// evalQuery evaluates one query at one instant (tickMu held by the caller;
// e.mu is NOT held — parallel stages run several evalQuery calls at once).
// tick is the enclosing tick span (nil when the tick is unsampled). replay,
// non-nil during recovery, carries the tick's logged active-invocation
// outcomes; live ticks pass nil.
func (e *Executor) evalQuery(q *Query, at service.Instant, tick *trace.Span, replay ReplayLedger) error {
	ctx := query.NewContext(schemaEnv{e}, e.reg, at)
	e.mu.Lock()
	ctx.Parallelism = e.parallelism
	ctx.BatchSize = e.batchSize
	e.mu.Unlock()
	qspan := tick.Child("cq.query")
	qspan.SetAttr("query", q.name)
	ctx.Span = qspan
	ev := &evaluator{exec: e, q: q, ctx: ctx, at: at, replay: replay}
	// The query's degradation policy decides what β does with a failing
	// device; continuous queries default to SkipTuple so one flaky sensor
	// degrades a standing query to partial results instead of killing it.
	// Every failure is recorded on the query either way.
	q.mu.Lock()
	ctx.Degradation = q.degradation
	q.mu.Unlock()
	if ctx.Degradation == resilience.Default {
		ctx.Degradation = resilience.SkipTuple
	}
	ctx.OnInvokeError = func(bp schema.BindingPattern, ref string, input value.Tuple, err error) error {
		q.recordInvokeError(query.InvokeError{BP: bp.ID(), Ref: ref, Input: input.Clone(), Err: err})
		return nil
	}
	// Evaluator selection: the compiled delta program unless the query is
	// pinned naive (or never compiled). Both paths produce the same
	// (result, cur, inserted, deleted) quadruple — the differential test
	// harness holds them to bit-identical results and action sets.
	q.mu.Lock()
	useDelta := q.delta != nil && !q.naive
	q.mu.Unlock()
	qspan.SetAttr("evaluator", map[bool]string{true: "delta", false: "naive"}[useDelta])

	evalStart := time.Now()
	var (
		res               *algebra.XRelation
		cur               map[string]value.Tuple
		inserted, deleted []value.Tuple
		err               error
	)
	if useDelta {
		res, cur, inserted, deleted, err = ev.evalDelta()
	} else {
		res, err = ev.eval(q.plan)
	}
	evalElapsed := time.Since(evalStart)
	ctx.PublishObsStats()
	obsQueryEvals.Inc()
	obsQueryEvalTime.Observe(evalElapsed)
	obs.Default.Gauge(obs.Key("cq.query.eval_ns", q.name)).Set(int64(evalElapsed))
	if err != nil {
		qspan.SetAttr("error", err.Error())
		qspan.Finish()
		return err
	}
	if useDelta {
		obsDeltaTicks.Inc()
	} else if q.delta != nil {
		obsDeltaFallbackTicks.Inc()
	}
	qspan.SetAttrInt("rows", int64(res.Len()))
	qspan.Finish()
	q.mu.Lock()
	q.lastRes = res
	q.lastEvalNS = int64(evalElapsed)
	q.stats.Active += ctx.Stats.Active
	q.stats.Passive += ctx.Stats.Passive
	q.stats.Memoized += ctx.Stats.Memoized
	q.stats.Coalesced += ctx.Stats.Coalesced
	if useDelta {
		q.deltaTicks++
	} else {
		q.naiveTicks++
	}
	q.mu.Unlock()
	for _, a := range ctx.Actions.Sorted() {
		q.actions.Add(a)
	}

	if !useDelta {
		// Delta the instantaneous result against the previous instant (the
		// incremental path derived all four pieces directly from the root
		// operator's delta).
		cur = map[string]value.Tuple{}
		for _, t := range res.Tuples() {
			cur[t.Key()] = t
		}
		for k, t := range cur {
			if _, ok := q.prevOutput[k]; !ok {
				inserted = append(inserted, t)
			}
		}
		for k, t := range q.prevOutput {
			if _, ok := cur[k]; !ok {
				deleted = append(deleted, t)
			}
		}
	}
	sortTuples(inserted)
	sortTuples(deleted)
	if !q.infinite {
		// Publish this tick's output delta for downstream consumers: the
		// slices below are exactly what is applied to q.out, so a consumer's
		// deltaBase can ingest them directly (producerDelta) instead of
		// re-reading the relation's event log. Recorded on both evaluation
		// paths — a naive-pinned producer still feeds delta consumers.
		q.mu.Lock()
		q.lastDelta = queryDelta{at: at, ins: inserted, del: deleted}
		q.mu.Unlock()
	}
	if q.infinite {
		// Stream result: the instantaneous relation already IS the emitted
		// delta (the root streaming operator computed it); append each
		// emitted tuple.
		for _, t := range res.Sorted() {
			if err := q.out.Insert(at, t); err != nil {
				return err
			}
		}
	} else {
		for _, t := range inserted {
			if err := q.out.Insert(at, t); err != nil {
				return err
			}
		}
		for _, t := range deleted {
			if err := q.out.Delete(at, t); err != nil {
				return err
			}
		}
	}
	q.prevOutput = cur
	if q.OnResult != nil {
		q.OnResult(at, res, inserted, deleted)
	}
	return nil
}

func sortTuples(ts []value.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// producerDelta returns the (inserts, deletes) another query applied to
// its finite output relation this tick — the cascade fast path a
// consumer's deltaBase takes instead of re-diffing the event log. It is
// only valid for a steady consecutive-tick step (from == at−1) when the
// producer itself evaluated at the same instant; any other shape (re-init,
// clock gap, producer coalesced under overload this instant) reports
// ok=false and the consumer falls back to the event log.
func (e *Executor) producerDelta(name string, from, at service.Instant) (ins, del []value.Tuple, ok bool) {
	if from != at-1 {
		return nil, nil, false
	}
	e.mu.Lock()
	q := e.producers[name]
	e.mu.Unlock()
	if q == nil || q.infinite {
		return nil, nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lastDelta.at != at {
		return nil, nil, false
	}
	return q.lastDelta.ins, q.lastDelta.del, true
}

// evaluator computes instantaneous relations for one (query, instant).
type evaluator struct {
	exec *Executor
	q    *Query
	ctx  *query.Context
	at   service.Instant
	// replay is non-nil during recovery: the logged outcomes of this tick's
	// active invocations, consulted instead of re-firing them.
	replay ReplayLedger
}

// eval dispatches on node type. Window, Stream and Invoke get time-aware
// semantics; everything else mirrors one-shot evaluation over the
// instantaneous operand relations.
func (ev *evaluator) eval(n query.Node) (*algebra.XRelation, error) {
	switch t := n.(type) {
	case *query.Base:
		x, ok := ev.exec.rels[t.Name]
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", t.Name)
		}
		if x.Infinite() {
			return nil, fmt.Errorf("stream %q used without a window", t.Name)
		}
		return ev.instantaneous(x)

	case *query.Window:
		base := t.Child.(*query.Base) // validated at registration
		x, ok := ev.exec.rels[base.Name]
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", base.Name)
		}
		span := ev.ctx.Span.Child("cq.window")
		span.SetAttr("stream", base.Name)
		span.SetAttrInt("period", int64(t.Period))
		tuples := x.InsertedIn(ev.at-service.Instant(t.Period), ev.at)
		span.SetAttrInt("rows", int64(len(tuples)))
		span.Finish()
		return algebra.New(x.Schema(), tuples)

	case *query.Stream:
		child, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		prev := ev.q.streamPrev[t]
		cur := map[string]value.Tuple{}
		for _, tu := range child.Tuples() {
			cur[tu.Key()] = tu
		}
		ev.q.streamPrev[t] = cur
		var emit []value.Tuple
		switch t.Kind {
		case query.StreamInsertion:
			for k, tu := range cur {
				if _, ok := prev[k]; !ok {
					emit = append(emit, tu)
				}
			}
		case query.StreamDeletion:
			for k, tu := range prev {
				if _, ok := cur[k]; !ok {
					emit = append(emit, tu)
				}
			}
		case query.StreamHeartbeat:
			for _, tu := range cur {
				emit = append(emit, tu)
			}
		}
		sortTuples(emit)
		if span := ev.ctx.Span.Child("cq.stream"); span != nil {
			span.SetAttr("kind", t.Kind.String())
			span.SetAttrInt("emitted", int64(len(emit)))
			span.Finish()
		}
		return algebra.New(child.Schema(), emit)

	case *query.Invoke:
		child, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		return ev.evalInvokeDelta(t, child)

	case *query.Aggregate:
		c, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		return algebra.Aggregate(c, t.GroupBy, t.Aggs)

	case *query.Project:
		c, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		return algebra.Project(c, t.Attrs)

	case *query.Select:
		c, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		return algebra.Select(c, t.Formula)

	case *query.Rename:
		c, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		return algebra.Rename(c, t.Old, t.New)

	case *query.Assign:
		c, err := ev.eval(t.Child)
		if err != nil {
			return nil, err
		}
		if t.Src != "" {
			return algebra.AssignAttr(c, t.Attr, t.Src)
		}
		return algebra.AssignConst(c, t.Attr, t.Const)

	case *query.Join:
		l, err := ev.eval(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(t.Right)
		if err != nil {
			return nil, err
		}
		return algebra.NaturalJoin(l, r)

	case *query.SetOp:
		l, err := ev.eval(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(t.Right)
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case query.UnionOp:
			return algebra.Union(l, r)
		case query.IntersectOp:
			return algebra.Intersect(l, r)
		case query.DiffOp:
			return algebra.Diff(l, r)
		}
	}
	return nil, fmt.Errorf("cq: unsupported node %T", n)
}

// instantaneous converts an XD-Relation's multiset at the current instant
// into a (set-semantics) X-Relation.
func (ev *evaluator) instantaneous(x *stream.XDRelation) (*algebra.XRelation, error) {
	var tuples []value.Tuple
	if x.LastInstant() <= ev.at {
		tuples = x.Current()
	} else {
		tuples = x.At(ev.at)
	}
	return algebra.New(x.Schema(), tuples)
}

// evalInvokeDelta implements the Section 4.2 invocation semantics: only
// tuples newly inserted into the operand trigger invocations; persisting
// tuples reuse the outputs computed when they first appeared. The cache is
// keyed by input-tuple identity and pruned to the current operand.
func (ev *evaluator) evalInvokeDelta(node *query.Invoke, child *algebra.XRelation) (*algebra.XRelation, error) {
	bp, err := child.Schema().FindBP(node.Proto, node.ServiceAttr)
	if err != nil {
		return nil, err
	}
	cache := ev.q.invCache[node]
	if cache == nil {
		cache = map[string][]value.Tuple{}
	}
	next := make(map[string][]value.Tuple, child.Len())

	// We reuse algebra.Invoke but intercept per-tuple invocations with a
	// caching Invoker. The cache key is (bp, ref, input): the realized
	// outputs depend only on that triple, and a persisting operand tuple
	// produces the same triple at every instant, so it is never re-invoked.
	cachingInvoker := &deltaInvoker{ev: ev, node: node, cache: cache, next: next}

	// On a sampled tick, wrap the operator in a "cq.invoke" span and make
	// it the parent of the per-tuple β spans for the duration of the call
	// (evaluation walks the plan sequentially, so swapping ctx.Span is
	// safe; parallel per-tuple invocations only read it).
	opSpan := ev.ctx.Span.Child("cq.invoke")
	if opSpan != nil {
		opSpan.SetAttr("bp", bp.ID())
		saved := ev.ctx.Span
		ev.ctx.Span = opSpan
		defer func() { ev.ctx.Span = saved }()
	}
	out, err := algebra.Invoke(child, bp, cachingInvoker)
	if opSpan != nil {
		opSpan.SetAttrInt("cache_hits", cachingInvoker.hits.Load())
		opSpan.SetAttrInt("cache_misses", cachingInvoker.misses.Load())
		if err != nil {
			opSpan.SetAttr("error", err.Error())
		}
		opSpan.Finish()
	}
	if err != nil {
		return nil, err
	}
	ev.q.invCache[node] = next
	return out, nil
}

// deltaInvoker caches invocation results across instants keyed by
// (bp, ref, input). Hits count neither as physical invocations nor as
// actions — a persisting tuple triggers no new action (Section 4.2).
type deltaInvoker struct {
	ev    *evaluator
	node  *query.Invoke
	mu    sync.Mutex
	cache map[string][]value.Tuple // previous instant
	next  map[string][]value.Tuple // being built for this instant
	// Per-operator-call cache effectiveness, reported as attributes on the
	// sampled "cq.invoke" operator span (atomics: tuples may invoke in
	// parallel).
	hits   atomic.Int64
	misses atomic.Int64
}

// MaxParallel implements algebra.ParallelInvoker (from the evaluation
// context, snapshotted at the start of the tick).
func (d *deltaInvoker) MaxParallel() int { return d.ev.ctx.Parallelism }

// MaxBatch implements algebra.BatchInvoker (from the evaluation context).
func (d *deltaInvoker) MaxBatch() int { return d.ev.ctx.MaxBatch() }

// InvokeBatch implements algebra.BatchInvoker for passive β fan-out: jobs
// answered by the cross-instant delta cache resolve locally, the misses go
// through the context's batch planner in one pass (dedup, coalescing,
// grouped wire frames), and fresh successful results enter this instant's
// cache exactly as the per-tuple path would. Active patterns never come
// here — the algebra keeps them on the per-tuple path, where the
// effectful-once WAL protocol lives.
func (d *deltaInvoker) InvokeBatch(bp schema.BindingPattern, refs []string, inputs []value.Tuple) []algebra.BatchResult {
	out := make([]algebra.BatchResult, len(refs))
	keys := make([]string, len(refs))
	missIdx := make([]int, 0, len(refs))
	d.mu.Lock()
	for i := range refs {
		key := bp.ID() + "|" + refs[i] + "|" + inputs[i].Key()
		keys[i] = key
		if rows, ok := d.cache[key]; ok {
			d.next[key] = rows
			out[i].Rows = rows
			d.hits.Add(1)
			obsInvokeCacheHits.Inc()
			continue
		}
		if rows, ok := d.next[key]; ok {
			out[i].Rows = rows
			d.hits.Add(1)
			obsInvokeCacheHits.Inc()
			continue
		}
		missIdx = append(missIdx, i)
	}
	d.mu.Unlock()
	if len(missIdx) == 0 {
		return out
	}
	obsInvokeCacheMisses.Add(int64(len(missIdx)))
	d.misses.Add(int64(len(missIdx)))
	missRefs := make([]string, len(missIdx))
	missInputs := make([]value.Tuple, len(missIdx))
	for j, i := range missIdx {
		missRefs[j], missInputs[j] = refs[i], inputs[i]
	}
	skipped := make([]bool, len(missIdx))
	brs := d.ev.ctx.InvokeBatchTracked(bp, missRefs, missInputs, skipped)
	d.mu.Lock()
	for j, i := range missIdx {
		out[i] = brs[j]
		// Absorbed failures (skipped) pass their stand-in rows through
		// WITHOUT being cached, so the tuple retries next instant.
		if brs[j].Err == nil && !skipped[j] {
			d.next[keys[i]] = brs[j].Rows
		}
	}
	d.mu.Unlock()
	return out
}

// Invoke implements algebra.Invoker. It is safe for concurrent use.
func (d *deltaInvoker) Invoke(bp schema.BindingPattern, ref string, input value.Tuple) ([]value.Tuple, error) {
	key := bp.ID() + "|" + ref + "|" + input.Key()
	d.mu.Lock()
	if rows, ok := d.cache[key]; ok {
		d.next[key] = rows
		d.mu.Unlock()
		obsInvokeCacheHits.Inc()
		d.hits.Add(1)
		return rows, nil
	}
	if rows, ok := d.next[key]; ok {
		d.mu.Unlock()
		obsInvokeCacheHits.Inc()
		d.hits.Add(1)
		return rows, nil
	}
	d.mu.Unlock()
	obsInvokeCacheMisses.Inc()
	d.misses.Add(1)

	rows, cacheable, err := d.ev.invokePhysical(d.node, bp, ref, input)
	if err != nil {
		return nil, err
	}
	if cacheable {
		d.mu.Lock()
		d.next[key] = rows
		d.mu.Unlock()
	}
	return rows, nil
}

// invokePhysical is the cache-independent core of one β invocation,
// shared by the naive deltaInvoker and the incremental deltaInvoke
// operator: replay-ledger consultation for active patterns, the
// effectful-once WAL bracket, the tracked call itself, and the degradation
// policy's absorbed-failure handling. cacheable reports whether the rows
// may enter the cross-instant invocation cache (false for absorbed
// failures and unknown replay outcomes — those retry next instant).
func (ev *evaluator) invokePhysical(node *query.Invoke, bp schema.BindingPattern, ref string, input value.Tuple) (rows []value.Tuple, cacheable bool, err error) {
	if bp.Active() && ev.replay != nil {
		key := bp.ID() + "|" + ref + "|" + input.Key()
		if ent, ok := ev.replay[key]; ok {
			// The action fired (or at least durably intended to) before the
			// crash: it joins the action set and counts as physical, but is
			// NEVER re-fired (Definition 8 — recovery must not duplicate
			// actions on the environment).
			ev.ctx.Actions.Add(query.Action{BP: bp.ID(), Ref: ref, Input: input.Clone()})
			ev.ctx.CountActive()
			if ent.Completed && ent.OK {
				return ent.Rows, true, nil
			}
			// Failed or unknown outcome: behave like an absorbed failure —
			// contribute no rows and stay uncached, so the live retry at the
			// next instant (itself in the log) replays identically.
			return nil, false, nil
		}
		// No ledger entry means the intent never became durable, so the call
		// never fired live; fall through and fire it for real.
	}

	logActive := bp.Active() && ev.replay == nil && ev.exec.dur != nil
	var nodeIdx int
	if logActive {
		nodeIdx = ev.q.invIdx[node]
		// Effectful-once: the intent must be durable BEFORE the physical
		// call. If it cannot be persisted, firing would risk an invisible
		// duplicate after a crash — abort the invocation instead.
		if err := ev.exec.dur.ActiveIntent(ev.q.name, nodeIdx, bp.ID(), ref, input, ev.at); err != nil {
			return nil, false, fmt.Errorf("durable intent for %s on %s: %w", bp.ID(), ref, err)
		}
	}
	skipped := new(bool)
	var physErr error
	rows, err = ev.ctx.InvokeObserved(bp, ref, input, skipped, &physErr)
	// Federation (Definition 8): an active request whose outcome is unknown
	// — sent to a peer, answer lost — may have fired. It must never be
	// re-sent (the transport already refused to), never re-fired at a
	// replica, and never retried at the next instant.
	outcomeUnknown := bp.Active() && physErr != nil && errors.Is(physErr, resilience.ErrOutcomeUnknown)
	if logActive && !outcomeUnknown {
		ok := err == nil && !*skipped
		var res []value.Tuple
		if ok {
			res = rows
		}
		// A failed completion append degrades this call to an orphan intent
		// on recovery — the safe direction (attempted, never re-fired).
		_ = ev.exec.dur.ActiveResult(ev.q.name, nodeIdx, bp.ID(), ref, input, ev.at, ok, res)
	}
	// outcomeUnknown intentionally skips ActiveResult: the intent stays an
	// ORPHAN in the WAL, so recovery replays it as attempted-never-refire
	// (SeedActive pins it) — the durable form of the live pin below.
	if err != nil {
		return nil, false, err
	}
	if outcomeUnknown {
		// Live pin: cache the stand-in rows (nothing for SkipTuple, an
		// all-NULL fill for NullFill) so the persisting tuple does NOT
		// re-invoke next instant. This is the one absorbed failure that must
		// not retry — a retry could duplicate the action on the environment.
		return rows, true, nil
	}
	// A skipped invocation was absorbed by the degradation policy: its
	// stand-in rows pass through (nothing for SkipTuple, an all-NULL fill
	// for NullFill) WITHOUT being cacheable, so the tuple is retried at
	// the next instant.
	return rows, !*skipped, nil
}
