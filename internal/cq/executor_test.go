package cq_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// scenario wires the paper's §5.2 environment: contacts/cameras as finite
// XD-Relations, temperatures as an infinite stream pumped from the
// simulated sensors at every tick.
type scenario struct {
	exec  *cq.Executor
	reg   *service.Registry
	dev   *paperenv.Devices
	temps *stream.XDRelation
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	reg, dev := paperenv.MustRegistry()
	exec := cq.NewExecutor(reg)

	contacts := stream.NewFinite(paperenv.ContactsSchema())
	for _, tu := range paperenv.Contacts().Tuples() {
		if err := contacts.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	cameras := stream.NewFinite(paperenv.CamerasSchema())
	for _, tu := range paperenv.Cameras().Tuples() {
		if err := cameras.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	temps := stream.NewInfinite(paperenv.TemperaturesSchema())
	for _, x := range []*stream.XDRelation{contacts, cameras, temps} {
		if err := exec.AddRelation(x); err != nil {
			t.Fatal(err)
		}
	}
	s := &scenario{exec: exec, reg: reg, dev: dev, temps: temps}
	exec.AddSource(func(at service.Instant) error {
		// Poll every sensor currently known to the registry — this is what
		// lets newly discovered sensors join the stream live (§5.2).
		for _, ref := range reg.Implementing("getTemperature") {
			svc, err := reg.Lookup(ref)
			if err != nil {
				return err
			}
			sensor := svc.(*device.Sensor)
			err = temps.Insert(at, value.Tuple{
				value.NewService(ref),
				value.NewString(sensor.Location()),
				value.NewReal(sensor.TemperatureAt(at)),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	return s
}

// q3 is Table 4's Q3: when a temperature exceeds 35.5 °C, send "Hot!" to
// the contacts.
func q3() query.Node {
	return query.NewInvoke(
		query.NewAssignConst(
			query.NewJoin(
				query.NewBase("contacts"),
				query.NewSelect(
					query.NewWindow(query.NewBase("temperatures"), 1),
					algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(35.5))))),
			"text", value.NewString("Hot!")),
		"sendMessage", "")
}

// q4 is Table 4's Q4: when a temperature goes below 12.0 °C, take a photo
// of the area; the result is a photo stream.
func q4() query.Node {
	return query.NewStream(
		query.NewProject(
			query.NewInvoke(
				query.NewInvoke(
					query.NewJoin(
						query.NewBase("cameras"),
						query.NewRename(
							query.NewSelect(
								query.NewWindow(query.NewBase("temperatures"), 1),
								algebra.Compare(algebra.Attr("temperature"), algebra.Lt, algebra.Const(value.NewReal(12.0)))),
							"location", "area")),
					"checkPhoto", ""),
				"takePhoto", ""),
			"photo"),
		query.StreamInsertion)
}

func TestQ3HotAlertFiresOncePerEpisode(t *testing.T) {
	s := newScenario(t)
	q, err := s.exec.Register("q3", q3())
	if err != nil {
		t.Fatal(err)
	}
	// Heat sensor06 (office, base 21) by +20 over instants [5,8] → 41 °C.
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 5, To: 8, Delta: 20})

	if err := s.exec.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if got := len(s.dev.Messengers["email"].Outbox()); got != 0 {
		t.Fatalf("no alerts expected before the heat event, got %d", got)
	}
	if err := s.exec.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	emails := s.dev.Messengers["email"].Outbox()
	jabbers := s.dev.Messengers["jabber"].Outbox()
	// 3 contacts alerted exactly ONCE despite 4 hot instants: the reading
	// tuple persists across the window ticks and the invocation operator
	// only fires for newly inserted tuples (Section 4.2).
	if len(emails) != 2 || len(jabbers) != 1 {
		t.Fatalf("outboxes = %d emails / %d jabbers, want 2/1", len(emails), len(jabbers))
	}
	if emails[0].Text != "Hot!" {
		t.Fatalf("alert text = %q", emails[0].Text)
	}
	if q.Actions().Len() != 3 {
		t.Fatalf("action set = %s", q.Actions())
	}
	// After cooling, a second episode re-alerts.
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 12, To: 12, Delta: 20})
	if err := s.exec.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	if got := len(s.dev.Messengers["email"].Outbox()); got != 4 {
		t.Fatalf("second episode should re-alert: %d emails, want 4", got)
	}
}

func TestQ4PhotoStream(t *testing.T) {
	s := newScenario(t)
	q, err := s.exec.Register("q4", q4())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Infinite() {
		t.Fatal("Q4's result must be an infinite XD-Relation (root is S[insertion])")
	}
	// Cool sensor22 (roof, base 15) by −5 over [3,4] → 10 °C < 12.
	s.dev.Sensors["sensor22"].Heat(device.HeatEvent{From: 3, To: 4, Delta: -5})
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	photos := q.Output()
	if photos.EventCount() != 1 {
		t.Fatalf("photo stream has %d events, want 1 (delta invocation)", photos.EventCount())
	}
	shot := photos.Current()[0][0]
	if shot.Kind() != value.Blob || len(shot.Blob()) == 0 {
		t.Fatalf("photo = %v", shot)
	}
	if s.dev.Cameras["webcam07"].Shots() != 1 {
		t.Fatal("roof webcam should have taken exactly one photo")
	}
	if s.dev.Cameras["camera01"].Shots()+s.dev.Cameras["camera02"].Shots() != 0 {
		t.Fatal("other cameras must not shoot")
	}
	// All prototypes involved are passive → empty action set (Example 7).
	if q.Actions().Len() != 0 {
		t.Fatalf("Q4 actions = %s", q.Actions())
	}
}

func TestLiveSensorDiscovery(t *testing.T) {
	// §5.2: "new temperature sensors have been dynamically discovered and
	// integrated in the temperature stream without stopping the query".
	s := newScenario(t)
	q, err := s.exec.Register("q3", q3())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	// A brand-new, already-hot sensor joins the environment.
	hot := device.NewSensor("sensor99", "basement", 40)
	if err := s.reg.Register(hot); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if got := len(s.dev.Messengers["email"].Outbox()); got != 2 {
		t.Fatalf("new sensor should trigger alerts without re-registering the query: %d emails", got)
	}
	if q.Actions().Len() != 3 {
		t.Fatalf("actions = %s", q.Actions())
	}
}

func TestWindowAccumulation(t *testing.T) {
	s := newScenario(t)
	// Count readings visible in a 3-instant window: 4 sensors × 3 instants.
	q, err := s.exec.Register("w3", query.NewWindow(query.NewBase("temperatures"), 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// Readings are identical across instants for constant sensors → the
	// set-semantics X-Relation collapses them to 4.
	if q.LastResult().Len() != 4 {
		t.Fatalf("window result = %d tuples, want 4", q.LastResult().Len())
	}
}

func TestStreamKindsOverFiniteRelation(t *testing.T) {
	reg, _ := paperenv.MustRegistry()
	exec := cq.NewExecutor(reg)
	contacts := stream.NewFinite(paperenv.ContactsSchema())
	if err := exec.AddRelation(contacts); err != nil {
		t.Fatal(err)
	}
	ins, _ := exec.Register("ins", query.NewStream(query.NewBase("contacts"), query.StreamInsertion))
	del, _ := exec.Register("del", query.NewStream(query.NewBase("contacts"), query.StreamDeletion))
	hb, _ := exec.Register("hb", query.NewStream(query.NewBase("contacts"), query.StreamHeartbeat))

	row := paperenv.Contacts().Tuples()[0]
	if _, err := exec.Tick(); err != nil { // instant 0: empty
		t.Fatal(err)
	}
	if err := contacts.Insert(1, row); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Tick(); err != nil { // instant 1: +row
		t.Fatal(err)
	}
	if ins.LastResult().Len() != 1 || del.LastResult().Len() != 0 || hb.LastResult().Len() != 1 {
		t.Fatalf("after insert: ins=%d del=%d hb=%d", ins.LastResult().Len(), del.LastResult().Len(), hb.LastResult().Len())
	}
	if _, err := exec.Tick(); err != nil { // instant 2: unchanged
		t.Fatal(err)
	}
	if ins.LastResult().Len() != 0 || hb.LastResult().Len() != 1 {
		t.Fatalf("steady state: ins=%d hb=%d", ins.LastResult().Len(), hb.LastResult().Len())
	}
	if err := contacts.Delete(3, row); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Tick(); err != nil { // instant 3: -row
		t.Fatal(err)
	}
	if del.LastResult().Len() != 1 || hb.LastResult().Len() != 0 {
		t.Fatalf("after delete: del=%d hb=%d", del.LastResult().Len(), hb.LastResult().Len())
	}
}

func TestFiniteOutputDeltas(t *testing.T) {
	s := newScenario(t)
	// Finite result: hot readings with location.
	q, err := s.exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(35.5)))))
	if err != nil {
		t.Fatal(err)
	}
	var lastInserted, lastDeleted int
	q.OnResult = func(_ service.Instant, _ *algebra.XRelation, inserted, deleted []value.Tuple) {
		lastInserted, lastDeleted = len(inserted), len(deleted)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 3, Delta: 20})
	if err := s.exec.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if lastInserted != 1 || lastDeleted != 0 {
		t.Fatalf("at heat start: +%d -%d", lastInserted, lastDeleted)
	}
	if q.Output().Infinite() {
		t.Fatal("finite query output must be finite")
	}
	if err := s.exec.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if lastDeleted != 1 {
		t.Fatalf("at heat end: -%d, want 1", lastDeleted)
	}
	if len(q.Output().Current()) != 0 {
		t.Fatal("output relation should be empty after cooling")
	}
}

func TestUnwindowedStreamRejected(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("bad", query.NewBase("temperatures")); err == nil {
		t.Fatal("unwindowed stream accepted")
	}
	if _, err := s.exec.Register("bad2", query.NewSelect(query.NewBase("temperatures"), algebra.True{})); err == nil {
		t.Fatal("nested unwindowed stream accepted")
	}
	// Window over non-base is rejected.
	if _, err := s.exec.Register("bad3", query.NewWindow(query.NewSelect(query.NewBase("temperatures"), algebra.True{}), 1)); err == nil {
		t.Fatal("window over derived expression accepted")
	}
}

func TestRegistrationLifecycle(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("q", q3()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("q", q3()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.exec.Unregister("q"); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.Unregister("q"); err == nil {
		t.Fatal("double unregister accepted")
	}
	if _, err := s.exec.Register("bad", query.NewBase("ghost")); err == nil {
		t.Fatal("query over unknown relation accepted")
	}
	x := stream.NewFinite(paperenv.SurveillanceSchema())
	if err := s.exec.AddRelation(x); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.AddRelation(x); err == nil {
		t.Fatal("duplicate relation accepted")
	}
}

func TestMemoizationAcrossQueriesWithinTick(t *testing.T) {
	// Two queries over the same sensors: within one tick, each query has its
	// own context/memo, so physical invocations happen per query — but the
	// delta cache keeps each query from re-invoking across ticks.
	reg, dev := paperenv.MustRegistry()
	exec := cq.NewExecutor(reg)
	sensors := stream.NewFinite(paperenv.SensorsSchema())
	for _, tu := range paperenv.Sensors().Tuples() {
		_ = sensors.Insert(0, tu)
	}
	if err := exec.AddRelation(sensors); err != nil {
		t.Fatal(err)
	}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	if _, err := exec.Register("t1", q); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(9); err != nil {
		t.Fatal(err)
	}
	// 4 sensors invoked at instant 0 only; ticks 1..9 reuse the cache.
	var total int64
	for _, s := range dev.Sensors {
		total += s.Invocations()
	}
	if total != 4 {
		t.Fatalf("physical invocations = %d, want 4 (delta semantics)", total)
	}
}
