package cq_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"serena/internal/cq"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// chaosEnv builds a 1000-tuple environment over a single faulty device:
// relation work(dev SERVICE, id INTEGER, v REAL VIRTUAL) with binding
// pattern probe[dev](id):(v), where the probe fails a deterministic ~30% of
// calls at every instant.
func chaosEnv(t *testing.T, plan *resilience.FaultPlan) (*cq.Executor, *service.Faulty, *schema.Prototype) {
	t.Helper()
	proto := schema.MustPrototype("probe",
		schema.MustRel(schema.Attribute{Name: "id", Type: value.Int}),
		schema.MustRel(schema.Attribute{Name: "v", Type: value.Real}), false)
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(proto); err != nil {
		t.Fatal(err)
	}
	inner := service.NewFunc("dev", map[string]service.InvokeFunc{
		"probe": func(in value.Tuple, at service.Instant) ([]value.Tuple, error) {
			return []value.Tuple{{value.NewReal(float64(in[0].Int()))}}, nil
		},
	})
	faulty := service.NewFaulty(inner, plan)
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	exec := cq.NewExecutor(reg)
	sch := schema.MustExtended("work",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "dev", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "id", Type: value.Int}},
			{Attribute: schema.Attribute{Name: "v", Type: value.Real}, Virtual: true},
		},
		[]schema.BindingPattern{{Proto: proto, ServiceAttr: "dev"}})
	work := stream.NewFinite(sch)
	for i := 0; i < 1000; i++ {
		if err := work.Insert(0, value.Tuple{value.NewService("dev"), value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := exec.AddRelation(work); err != nil {
		t.Fatal(err)
	}
	return exec, faulty, proto
}

// expectedFailures replays the fault plan's deterministic decision for
// every tuple at the given instant — the test oracle.
func expectedFailures(plan *resilience.FaultPlan, at int64) int {
	n := 0
	for i := 0; i < 1000; i++ {
		input := value.Tuple{value.NewInt(int64(i))}
		if plan.ShouldFail(at, "dev|probe|"+input.Key()) {
			n++
		}
	}
	return n
}

func TestChaosDegradationPolicies(t *testing.T) {
	// The executor's first Tick runs at instant 0, so the oracle replays the
	// plan at that instant.
	plan := &resilience.FaultPlan{Seed: 2026, FailureRate: 0.3}
	wantFail := expectedFailures(plan, 0)
	if wantFail < 250 || wantFail > 350 {
		t.Fatalf("fault plan failed %d/1000 calls; want ≈300", wantFail)
	}

	t.Run("FailFast", func(t *testing.T) {
		exec, _, _ := chaosEnv(t, plan)
		if _, err := exec.Register("q", query.NewInvoke(query.NewBase("work"), "probe", "dev")); err != nil {
			t.Fatal(err)
		}
		if err := exec.SetDegradation("q", resilience.FailFast); err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Tick(); !errors.Is(err, resilience.ErrInjected) {
			t.Fatalf("FailFast tick error = %v, want injected fault", err)
		}
	})

	t.Run("SkipTuple", func(t *testing.T) {
		exec, _, _ := chaosEnv(t, plan)
		q, err := exec.Register("q", query.NewInvoke(query.NewBase("work"), "probe", "dev"))
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.SetDegradation("q", resilience.SkipTuple); err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Tick(); err != nil {
			t.Fatalf("SkipTuple tick aborted: %v", err)
		}
		// Only the succeeded tuples appear; every one is fully realized.
		if got := q.LastResult().Len(); got != 1000-wantFail {
			t.Fatalf("SkipTuple result = %d tuples, want %d", got, 1000-wantFail)
		}
		for _, tu := range q.LastResult().Tuples() {
			if tu[2].IsNull() {
				t.Fatalf("SkipTuple leaked a NULL-filled tuple: %v", tu)
			}
		}
	})

	t.Run("NullFill", func(t *testing.T) {
		exec, _, _ := chaosEnv(t, plan)
		q, err := exec.Register("q", query.NewInvoke(query.NewBase("work"), "probe", "dev"))
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.SetDegradation("q", resilience.NullFill); err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Tick(); err != nil {
			t.Fatalf("NullFill tick aborted: %v", err)
		}
		// Every tuple appears; exactly the failed ones carry NULL in the
		// realized virtual attribute.
		if got := q.LastResult().Len(); got != 1000 {
			t.Fatalf("NullFill result = %d tuples, want 1000", got)
		}
		nulls := 0
		for _, tu := range q.LastResult().Tuples() {
			if tu[2].IsNull() {
				nulls++
			}
		}
		if nulls != wantFail {
			t.Fatalf("NullFill realized %d NULLs, want %d", nulls, wantFail)
		}
		if len(q.InvokeErrors()) == 0 {
			t.Fatal("failures not recorded on the query")
		}
	})
}

// TestNullFilledTuplesRetryNextInstant pins the no-cache rule: a
// null-filled result is a stand-in, not a memoized answer — the tuple is
// re-invoked at the next instant and heals when the device does.
func TestNullFilledTuplesRetryNextInstant(t *testing.T) {
	plan := &resilience.FaultPlan{DownIntervals: [][2]int64{{0, 0}}} // down only at instant 0, the first tick
	exec, faulty, _ := chaosEnv(t, plan)
	q, err := exec.Register("q", query.NewInvoke(query.NewBase("work"), "probe", "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.SetDegradation("q", resilience.NullFill); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Tick(); err != nil { // instant 1: everything fails
		t.Fatal(err)
	}
	for _, tu := range q.LastResult().Tuples() {
		if !tu[2].IsNull() {
			t.Fatalf("first instant should be all NULLs: %v", tu)
		}
	}
	calls := faulty.Calls()
	if _, err := exec.Tick(); err != nil { // instant 2: device healthy again
		t.Fatal(err)
	}
	if faulty.Calls() != calls+1000 {
		t.Fatalf("failed tuples not retried: %d extra calls, want 1000", faulty.Calls()-calls)
	}
	for _, tu := range q.LastResult().Tuples() {
		if tu[2].IsNull() {
			t.Fatalf("second instant should be healed: %v", tu)
		}
	}
	// Healthy results ARE cached: the next instant re-invokes nothing.
	calls = faulty.Calls()
	if _, err := exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if faulty.Calls() != calls {
		t.Fatalf("cached tuples re-invoked %d times", faulty.Calls()-calls)
	}
}

// TestServiceWithdrawnMidQuery drives the paper's central volatility story
// end to end: tick N succeeds, the service withdraws, tick N+1 follows the
// degradation policy, the service re-registers, tick N+2 recovers.
func TestServiceWithdrawnMidQuery(t *testing.T) {
	for _, tc := range []struct {
		policy resilience.DegradationPolicy
		check  func(t *testing.T, q *cq.Query, tickErr error)
	}{
		{resilience.SkipTuple, func(t *testing.T, q *cq.Query, tickErr error) {
			if tickErr != nil {
				t.Fatalf("SkipTuple tick aborted: %v", tickErr)
			}
			if q.LastResult().Len() != 0 {
				t.Fatalf("withdrawn service still produced %d tuples", q.LastResult().Len())
			}
		}},
		{resilience.NullFill, func(t *testing.T, q *cq.Query, tickErr error) {
			if tickErr != nil {
				t.Fatalf("NullFill tick aborted: %v", tickErr)
			}
			if q.LastResult().Len() != 1 {
				t.Fatalf("NullFill dropped the tuple: %d", q.LastResult().Len())
			}
			if tu := q.LastResult().Tuples()[0]; !tu[2].IsNull() {
				t.Fatalf("NullFill tuple not null-filled: %v", tu)
			}
		}},
		{resilience.FailFast, func(t *testing.T, q *cq.Query, tickErr error) {
			if !errors.Is(tickErr, service.ErrUnknownService) {
				t.Fatalf("FailFast tick error = %v, want unknown service", tickErr)
			}
		}},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			proto := schema.MustPrototype("probe",
				schema.MustRel(schema.Attribute{Name: "id", Type: value.Int}),
				schema.MustRel(schema.Attribute{Name: "v", Type: value.Real}), false)
			reg := service.NewRegistry()
			if err := reg.RegisterPrototype(proto); err != nil {
				t.Fatal(err)
			}
			mkDev := func() service.Service {
				return service.NewFunc("dev", map[string]service.InvokeFunc{
					"probe": func(in value.Tuple, at service.Instant) ([]value.Tuple, error) {
						return []value.Tuple{{value.NewReal(float64(at))}}, nil
					},
				})
			}
			if err := reg.Register(mkDev()); err != nil {
				t.Fatal(err)
			}
			exec := cq.NewExecutor(reg)
			sch := schema.MustExtended("work",
				[]schema.ExtAttr{
					{Attribute: schema.Attribute{Name: "dev", Type: value.Service}},
					{Attribute: schema.Attribute{Name: "id", Type: value.Int}},
					{Attribute: schema.Attribute{Name: "v", Type: value.Real}, Virtual: true},
				},
				[]schema.BindingPattern{{Proto: proto, ServiceAttr: "dev"}})
			work := stream.NewInfinite(sch)
			if err := exec.AddRelation(work); err != nil {
				t.Fatal(err)
			}
			// A fresh input tuple per instant, so the delta semantics of
			// Section 4.2 actually fire a new invocation every tick.
			exec.AddSource(func(at service.Instant) error {
				return work.Insert(at, value.Tuple{value.NewService("dev"), value.NewInt(int64(at))})
			})
			q, err := exec.Register("q",
				query.NewInvoke(query.NewWindow(query.NewBase("work"), 1), "probe", "dev"))
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.SetDegradation("q", tc.policy); err != nil {
				t.Fatal(err)
			}

			// Tick 0: healthy.
			if _, err := exec.Tick(); err != nil {
				t.Fatal(err)
			}
			if q.LastResult().Len() != 1 {
				t.Fatalf("healthy tick = %d tuples", q.LastResult().Len())
			}

			// The service withdraws; tick 1 follows the policy.
			if err := reg.Unregister("dev"); err != nil {
				t.Fatal(err)
			}
			_, tickErr := exec.Tick()
			tc.check(t, q, tickErr)

			// The service re-registers; the next tick recovers fully.
			if err := reg.Register(mkDev()); err != nil {
				t.Fatal(err)
			}
			if _, err := exec.Tick(); err != nil {
				t.Fatalf("recovery tick: %v", err)
			}
			if q.LastResult().Len() != 1 {
				t.Fatalf("recovery tick = %d tuples", q.LastResult().Len())
			}
			if tu := q.LastResult().Tuples()[0]; tu[2].IsNull() {
				t.Fatalf("recovery tuple still null-filled: %v", tu)
			}
		})
	}
}

// TestBreakerWithdrawsServiceFromPolling proves the breaker ↔ discovery
// integration under the executor: a tripped breaker masks the service out
// of Implementing, so per-tick polling stops reaching it at all.
func TestBreakerShortCircuitsUnderExecutor(t *testing.T) {
	proto := schema.MustPrototype("probe", nil,
		schema.MustRel(schema.Attribute{Name: "v", Type: value.Real}), false)
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(proto); err != nil {
		t.Fatal(err)
	}
	inner := service.NewFunc("dev", map[string]service.InvokeFunc{
		"probe": func(value.Tuple, service.Instant) ([]value.Tuple, error) {
			return nil, fmt.Errorf("device down")
		},
	})
	faulty := service.NewFaulty(inner, nil)
	if err := reg.Register(faulty); err != nil {
		t.Fatal(err)
	}
	reg.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Hour})

	for i := 0; i < 2; i++ {
		if _, err := reg.Invoke("probe", "dev", nil, service.Instant(i)); err == nil {
			t.Fatal("down device succeeded")
		}
	}
	if reg.Breakers().State("dev") != resilience.Open {
		t.Fatal("breaker did not trip")
	}
	// Masked out of discovery: a poll loop over Implementing never even
	// dials the tripped device.
	before := faulty.Calls()
	for _, ref := range reg.Implementing("probe") {
		_, _ = reg.Invoke("probe", ref, nil, 10)
	}
	if faulty.Calls() != before {
		t.Fatal("tripped device was still polled")
	}
}
