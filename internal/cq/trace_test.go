package cq_test

import (
	"testing"

	"serena/internal/query"
	"serena/internal/trace"
)

// TestTickSpans asserts the continuous executor's trace shape: each sampled
// tick is one trace rooted at cq.tick, with per-query spans, window/stream
// operator spans, a cq.invoke operator span carrying Section 4.2
// delta-cache effectiveness, and per-tuple β spans only for tuples that
// actually invoked (cache misses).
func TestTickSpans(t *testing.T) {
	s := newScenario(t)
	// photos: invocation over the (static) cameras relation → all misses at
	// instant 0, all delta-cache hits at instant 1.
	if _, err := s.exec.Register("photos", query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "camera")); err != nil {
		t.Fatal(err)
	}
	// recent: windowed stream read → cq.window and cq.stream spans.
	if _, err := s.exec.Register("recent",
		query.NewStream(query.NewWindow(query.NewBase("temperatures"), 1), query.StreamInsertion)); err != nil {
		t.Fatal(err)
	}
	// The instant-1 cache_hits assertion below is naive-evaluator semantics:
	// only the re-evaluate-then-diff path re-consults the §4.2 cache for
	// persisting tuples (the delta path never revisits them — see
	// TestTickSpansDelta). Pin both queries naive.
	for _, name := range []string{"photos", "recent"} {
		if err := s.exec.SetNaiveEvaluation(name, true); err != nil {
			t.Fatal(err)
		}
	}

	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(1)
	trace.Default.Reset()
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()

	for i := 0; i < 2; i++ {
		if _, err := s.exec.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	// Index the two tick traces by instant.
	ticks := map[string]*trace.Span{}
	for _, sp := range trace.Default.Snapshot() {
		if sp.Name == "cq.tick" {
			ticks[sp.Attr("instant")] = sp
		}
	}
	if len(ticks) != 2 {
		t.Fatalf("recorded %d tick roots, want 2", len(ticks))
	}

	type tickView struct {
		invokeOp *trace.Span
		betas    int
		window   *trace.Span
		stream   *trace.Span
	}
	view := func(root *trace.Span) tickView {
		var v tickView
		for _, sp := range trace.Default.TraceSpans(root.TraceID) {
			switch sp.Name {
			case "cq.invoke":
				v.invokeOp = sp
			case trace.SpanInvoke:
				v.betas++
			case "cq.window":
				v.window = sp
			case "cq.stream":
				v.stream = sp
			}
		}
		return v
	}

	// Instant 0: three cameras invoke physically.
	v0 := view(ticks["0"])
	if v0.invokeOp == nil || v0.window == nil || v0.stream == nil {
		t.Fatalf("instant 0 missing operator spans: %+v", v0)
	}
	if v0.invokeOp.Attr("cache_misses") != "3" || v0.invokeOp.Attr("cache_hits") != "0" {
		t.Fatalf("instant 0 delta-cache attrs: %v", v0.invokeOp.Attrs)
	}
	if v0.betas != 3 {
		t.Fatalf("instant 0 recorded %d β spans, want 3", v0.betas)
	}
	if v0.window.Attr("stream") != "temperatures" {
		t.Fatalf("window span attrs: %v", v0.window.Attrs)
	}
	if v0.stream.Attr("kind") != "insertion" {
		t.Fatalf("stream span attrs: %v", v0.stream.Attrs)
	}

	// Instant 1: persisting camera tuples reuse the delta cache — no
	// physical invocations, so no β spans (Section 4.2).
	v1 := view(ticks["1"])
	if v1.invokeOp.Attr("cache_hits") != "3" || v1.invokeOp.Attr("cache_misses") != "0" {
		t.Fatalf("instant 1 delta-cache attrs: %v", v1.invokeOp.Attrs)
	}
	if v1.betas != 0 {
		t.Fatalf("instant 1 recorded %d β spans, want 0 (all cached)", v1.betas)
	}
}

// TestTickSpansDelta asserts the incremental evaluator records the same
// operator-span shape — and that on a steady tick with no operand churn the
// cq.invoke span shows zero cache traffic, because persisting tuples never
// reach the §4.2 cache at all (they are carried forward as operator state).
func TestTickSpansDelta(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("photos", query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "camera")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("recent",
		query.NewStream(query.NewWindow(query.NewBase("temperatures"), 1), query.StreamInsertion)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"photos", "recent"} {
		q, ok := s.exec.Query(name)
		if !ok {
			t.Fatalf("query %q not registered", name)
		}
		if got := q.EvaluationMode(); got != "delta" {
			t.Fatalf("query %q evaluation mode = %q, want delta", name, got)
		}
	}

	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(1)
	trace.Default.Reset()
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()

	for i := 0; i < 2; i++ {
		if _, err := s.exec.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	ticks := map[string]*trace.Span{}
	for _, sp := range trace.Default.Snapshot() {
		if sp.Name == "cq.tick" {
			ticks[sp.Attr("instant")] = sp
		}
	}
	type tickView struct {
		invokeOp *trace.Span
		betas    int
		window   *trace.Span
		stream   *trace.Span
	}
	view := func(root *trace.Span) tickView {
		var v tickView
		for _, sp := range trace.Default.TraceSpans(root.TraceID) {
			switch sp.Name {
			case "cq.invoke":
				v.invokeOp = sp
			case trace.SpanInvoke:
				v.betas++
			case "cq.window":
				v.window = sp
			case "cq.stream":
				v.stream = sp
			}
		}
		return v
	}

	// Instant 0 is the re-init tick: every camera is a fresh insert, so all
	// three consult the cache, miss, and invoke physically (β spans parented
	// under the operator span).
	v0 := view(ticks["0"])
	if v0.invokeOp == nil || v0.window == nil || v0.stream == nil {
		t.Fatalf("instant 0 missing operator spans: %+v", v0)
	}
	if v0.invokeOp.Attr("cache_misses") != "3" || v0.invokeOp.Attr("cache_hits") != "0" {
		t.Fatalf("instant 0 cache attrs: %v", v0.invokeOp.Attrs)
	}
	if v0.betas != 3 {
		t.Fatalf("instant 0 recorded %d β spans, want 3", v0.betas)
	}
	if v0.window.Attr("stream") != "temperatures" {
		t.Fatalf("window span attrs: %v", v0.window.Attrs)
	}
	if v0.stream.Attr("kind") != "insertion" {
		t.Fatalf("stream span attrs: %v", v0.stream.Attrs)
	}

	// Instant 1: the cameras relation is unchanged, so the delta operator
	// sees an empty input delta — no cache consults, no β spans.
	v1 := view(ticks["1"])
	if v1.invokeOp == nil {
		t.Fatalf("instant 1 missing cq.invoke span: %+v", v1)
	}
	if v1.invokeOp.Attr("cache_hits") != "0" || v1.invokeOp.Attr("cache_misses") != "0" {
		t.Fatalf("instant 1 cache attrs: %v", v1.invokeOp.Attrs)
	}
	if v1.betas != 0 {
		t.Fatalf("instant 1 recorded %d β spans, want 0", v1.betas)
	}
}

// TestUnsampledTickRecordsNothing pins the hot-path contract: with tracing
// disabled, a tick must leave the ring untouched.
func TestUnsampledTickRecordsNothing(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("photos", query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "camera")); err != nil {
		t.Fatal(err)
	}
	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(0)
	trace.Default.Reset()
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := len(trace.Default.Snapshot()); got != 0 {
		t.Fatalf("disabled tracer retained %d spans", got)
	}
}
