package cq

import (
	"fmt"
	"log/slog"
	"sort"

	"serena/internal/query"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/trace"
	"serena/internal/value"
)

// Durability is the executor's hook into a write-ahead log (implemented by
// wal.Manager). When set, the executor brackets every tick with
// BeginTick/CommitTick, base-relation events flow to the log through
// AttachRelation, and every ACTIVE β invocation is logged as a durable
// intent before the physical call and a completion after it — the
// effectful-once protocol that lets recovery skip already-fired active
// invocations (Definition 8) while freely recomputing passive ones.
type Durability interface {
	// AttachRelation starts logging the relation's events. Base relations
	// and materialized (INTO) derived outputs are attached; plain derived
	// query outputs are recomputed on replay instead.
	AttachRelation(x *stream.XDRelation)
	// BeginTick logs the start of instant at.
	BeginTick(at service.Instant) error
	// CommitTick logs the end of instant at and flushes per the fsync
	// policy. checkpointDue asks the executor to snapshot its state for a
	// periodic checkpoint.
	CommitTick(at service.Instant) (checkpointDue bool, err error)
	// ActiveIntent makes an active invocation durable BEFORE it fires. An
	// error means the intent could not be persisted; the invocation must
	// not proceed.
	ActiveIntent(queryName string, node int, bp, ref string, input value.Tuple, at service.Instant) error
	// ActiveResult logs the invocation's outcome (ok=false covers both
	// physical failure and absorbed degradation). rows are the realized
	// outputs on success.
	ActiveResult(queryName string, node int, bp, ref string, input value.Tuple, at service.Instant, ok bool, rows []value.Tuple) error
}

// CheckpointState is the executor's entire cross-tick state: every
// relation's event log and multiset, and every query's delta-cache,
// streaming-operator memory, previous output, statistics and action set.
// Restoring it into a fresh executor (after re-registering the same
// queries) resumes continuous execution exactly where the snapshot was
// taken.
type CheckpointState struct {
	At        service.Instant
	Relations []RelationState
	Queries   []QueryState
}

// RelationState snapshots one XD-Relation.
type RelationState struct {
	Name    string
	Derived bool // a continuous query's output relation
	LastAt  service.Instant
	Events  []stream.Event
	Current []stream.Counted
}

// QueryState snapshots one registered continuous query. Source is the
// registered plan in SAL syntax (already optimized — re-register it with
// optimization off so invoke-node indexes stay stable).
type QueryState struct {
	Name       string
	Source     string
	OnError    string          // degradation policy DDL spelling
	Into       string          // materialized output relation ("" = none)
	Retain     service.Instant // explicit RETAIN horizon (0 = none)
	PrevOutput []value.Tuple
	InvCache   []InvCacheEntry
	StreamPrev []StreamPrevEntry
	Stats      query.InvokeStats
	Actions    []query.Action
}

// InvCacheEntry is one Section 4.2 delta-cache entry: the (bp, ref, input)
// key and the realized rows, attached to an invoke node by its DFS-preorder
// index in the plan.
type InvCacheEntry struct {
	Node int
	Key  string
	Rows []value.Tuple
}

// StreamPrevEntry is one tuple of a streaming operator's previous-instant
// snapshot, attached to the stream node by DFS-preorder index.
type StreamPrevEntry struct {
	Node  int
	Tuple value.Tuple
}

// LedgerEntry is the replayed outcome of one active invocation within a
// tick. Completed=false means an orphan intent: the call may or may not
// have reached the service, so the action counts as attempted but is never
// re-fired.
type LedgerEntry struct {
	Completed bool
	OK        bool
	Rows      []value.Tuple
}

// ReplayLedger maps action keys (bp|ref|inputKey) to their logged outcomes
// for one replayed tick.
type ReplayLedger map[string]LedgerEntry

// SetDurability attaches a write-ahead log to the executor. Call it before
// the first tick; existing base relations are attached immediately, later
// ones as they are added.
func (e *Executor) SetDurability(d Durability) {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dur = d
	if d == nil {
		return
	}
	for name, x := range e.rels {
		if q := e.producers[name]; q != nil && q.into == "" {
			continue // plain derived outputs are recomputed on replay, not logged
		}
		if x.Ephemeral() {
			continue // sys$ telemetry relations are never WAL-logged
		}
		d.AttachRelation(x)
	}
}

// OnCheckpoint installs the callback invoked (with the executor lock held,
// at a tick boundary) whenever the durability layer reports a checkpoint is
// due. The callback persists the snapshot; a failure is logged and retried
// at the next tick.
func (e *Executor) OnCheckpoint(fn func(CheckpointState) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onCheckpoint = fn
}

// Snapshot captures the executor's full durable state at a consistent
// point (between ticks — tickMu excludes a tick mutating it mid-copy).
func (e *Executor) Snapshot() CheckpointState {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Executor) snapshotLocked() CheckpointState {
	st := CheckpointState{At: e.now}
	names := make([]string, 0, len(e.rels))
	for name := range e.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		x := e.rels[name]
		if x.Ephemeral() {
			// sys$ telemetry relations carry no durable state: excluded from
			// checkpoints, re-seeded by the scraper after recovery.
			continue
		}
		derived := e.producers[name] != nil
		events, current, lastAt := x.StateSnapshot()
		st.Relations = append(st.Relations, RelationState{
			Name: name, Derived: derived, LastAt: lastAt, Events: events, Current: current,
		})
	}
	for _, name := range e.order {
		q := e.queries[name]
		q.mu.Lock()
		deg, stats := q.degradation, q.stats
		q.mu.Unlock()
		qs := QueryState{
			Name:    name,
			Source:  q.plan.String(),
			OnError: deg.String(),
			Into:    q.into,
			Retain:  q.retain,
			Stats:   stats,
			Actions: q.actions.Sorted(),
		}
		keys := make([]string, 0, len(q.prevOutput))
		for k := range q.prevOutput {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			qs.PrevOutput = append(qs.PrevOutput, q.prevOutput[k])
		}
		for i, inv := range q.invNodes {
			cache := q.invCache[inv]
			ckeys := make([]string, 0, len(cache))
			for k := range cache {
				ckeys = append(ckeys, k)
			}
			sort.Strings(ckeys)
			for _, k := range ckeys {
				qs.InvCache = append(qs.InvCache, InvCacheEntry{Node: i, Key: k, Rows: cache[k]})
			}
		}
		for i, sn := range q.streamNodes {
			prev := q.streamPrev[sn]
			pkeys := make([]string, 0, len(prev))
			for k := range prev {
				pkeys = append(pkeys, k)
			}
			sort.Strings(pkeys)
			for _, k := range pkeys {
				qs.StreamPrev = append(qs.StreamPrev, StreamPrevEntry{Node: i, Tuple: prev[k]})
			}
		}
		st.Queries = append(st.Queries, qs)
	}
	return st
}

// Restore loads a checkpoint snapshot into the executor. The same queries
// must already be re-registered (from QueryState.Source, unoptimized) and
// base relations re-created — catalog relations via the checkpoint's DDL,
// code-created ones by the embedding application. Unknown non-derived
// relations are skipped with a warning so an embedder that dropped a code
// relation does not brick recovery.
func (e *Executor) Restore(st CheckpointState) error {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = st.At
	for _, rs := range st.Relations {
		x, ok := e.rels[rs.Name]
		if !ok {
			if rs.Derived {
				return fmt.Errorf("cq: restore: derived relation %q has no registered query", rs.Name)
			}
			slog.Warn("cq: restore: skipping unknown relation (re-create code-defined relations before recovery)",
				"relation", rs.Name)
			continue
		}
		x.RestoreState(rs.Events, rs.Current, rs.LastAt)
	}
	for _, qs := range st.Queries {
		q, ok := e.queries[qs.Name]
		if !ok {
			return fmt.Errorf("cq: restore: query %q not registered", qs.Name)
		}
		q.prevOutput = make(map[string]value.Tuple, len(qs.PrevOutput))
		for _, t := range qs.PrevOutput {
			q.prevOutput[t.Key()] = t
		}
		q.invCache = map[*query.Invoke]map[string][]value.Tuple{}
		for _, ce := range qs.InvCache {
			if ce.Node < 0 || ce.Node >= len(q.invNodes) {
				return fmt.Errorf("cq: restore: query %q: invoke node %d out of range (plan changed?)", qs.Name, ce.Node)
			}
			inv := q.invNodes[ce.Node]
			cache := q.invCache[inv]
			if cache == nil {
				cache = map[string][]value.Tuple{}
				q.invCache[inv] = cache
			}
			cache[ce.Key] = ce.Rows
		}
		q.streamPrev = map[*query.Stream]map[string]value.Tuple{}
		for _, se := range qs.StreamPrev {
			if se.Node < 0 || se.Node >= len(q.streamNodes) {
				return fmt.Errorf("cq: restore: query %q: stream node %d out of range (plan changed?)", qs.Name, se.Node)
			}
			sn := q.streamNodes[se.Node]
			prev := q.streamPrev[sn]
			if prev == nil {
				prev = map[string]value.Tuple{}
				q.streamPrev[sn] = prev
			}
			prev[se.Tuple.Key()] = se.Tuple
		}
		q.mu.Lock()
		q.stats = qs.Stats
		q.mu.Unlock()
		q.actions = query.NewActionSet()
		for _, a := range qs.Actions {
			q.actions.Add(a)
		}
		// Delta operator state (window multisets, join indexes, aggregate
		// accumulators) is not serialized: it is a pure function of the
		// restored relations and the maps above, so invalidating the program
		// makes the first post-restore tick rebuild it — with the restored
		// invocation cache (including SeedActive's orphan pins) keeping
		// active β invocations from re-firing.
		if q.delta != nil {
			q.delta.invalidate()
		}
	}
	return nil
}

// ReplayTick re-executes one logged tick during recovery. The caller has
// already applied the tick's base-relation events; sources are NOT pumped
// (their effects are those events). Queries re-evaluate exactly as live,
// except that active invocations consult the ledger: logged ones are
// replayed from their recorded outcome instead of re-firing.
func (e *Executor) ReplayTick(at service.Instant, ledger ReplayLedger, parent *trace.Span) error {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	if at <= e.now {
		now := e.now
		e.mu.Unlock()
		return fmt.Errorf("cq: replay tick %d not after current instant %d", at, now)
	}
	// A gap (at > now+1) is fine: the skipped instants were ticks that
	// failed live without committing — their clock advance is replayed by
	// AdvanceTo when their orphans are seeded.
	e.now = at
	order := append([]string(nil), e.order...)
	qs := make([]*Query, len(order))
	for i, name := range order {
		qs[i] = e.queries[name]
	}
	e.mu.Unlock()
	span := parent.Child("cq.replay.tick")
	span.SetAttrInt("instant", int64(at))
	defer span.Finish()
	// Replay stays sequential regardless of query parallelism: recovery
	// must reproduce the logged tick deterministically.
	for i, q := range qs {
		if err := e.evalQuery(q, at, span, ledger); err != nil {
			span.SetAttr("error", err.Error())
			return fmt.Errorf("cq: replay query %q at instant %d: %w", order[i], at, err)
		}
	}
	e.mu.Lock()
	e.trimStreams(at)
	e.mu.Unlock()
	return nil
}

// AdvanceTo moves the clock forward without evaluating anything — used
// when replay encounters a tick that started but never committed live (it
// consumed its instant, so recovery must too). Never moves backward.
func (e *Executor) AdvanceTo(at service.Instant) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if at > e.now {
		e.now = at
	}
}

// SeedActive pins one recovered active invocation whose tick never
// committed (an orphan). The action enters the query's action set and
// counts as a physical invocation — it was attempted live. A completed
// successful call seeds its rows into the delta-cache so the re-executed
// tick reuses them; an orphan intent (outcome unknown) is pinned with no
// rows, which blocks any re-fire while its input tuple persists
// (Definition 8: never duplicate an action). A completed FAILED call is
// deliberately not cached — live semantics retry failed invocations at the
// next instant, and that retry's own log records replay it faithfully.
func (e *Executor) SeedActive(queryName string, node int, bp, ref string, input value.Tuple, completed, ok bool, rows []value.Tuple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, found := e.queries[queryName]
	if !found || node < 0 || node >= len(q.invNodes) {
		slog.Warn("cq: recovery: dropping unmatched active-invocation record",
			"query", queryName, "node", node, "bp", bp, "ref", ref)
		return
	}
	q.actions.Add(query.Action{BP: bp, Ref: ref, Input: input.Clone()})
	q.mu.Lock()
	q.stats.Active++
	q.mu.Unlock()
	if completed && !ok {
		return
	}
	inv := q.invNodes[node]
	cache := q.invCache[inv]
	if cache == nil {
		cache = map[string][]value.Tuple{}
		q.invCache[inv] = cache
	}
	key := bp + "|" + ref + "|" + input.Key()
	if completed && ok {
		cache[key] = rows
	} else {
		cache[key] = nil
	}
}
