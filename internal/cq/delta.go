package cq

// Semi-naive incremental tick evaluation. A registered plan compiles to a
// tree of delta operators (internal/algebra's DeltaSelect/DeltaJoin/… plus
// the executor's own time-aware sources below): per tick each node consumes
// its children's (inserts, deletes) and emits its own, so a tick with k
// changed tuples over an n-tuple window does O(k) work instead of
// re-evaluating the whole tree. The naive re-evaluate-then-diff path stays
// available per query (SetNaiveEvaluation) — it is the oracle the
// differential test harness diffs against and the escape hatch for plans a
// delta operator cannot cover.
//
// Correctness contract (Definition 9): at every instant the delta path's
// result relation AND its Definition 8 action set are bit-identical to the
// naive evaluator's. Everything here is arranged around that: aggregate
// groups re-accumulate in the same key-sorted order the one-shot operator
// uses; the §4.2 invocation cache (q.invCache) is shared between both paths
// and pruned to the same contents; S[·] operators keep q.streamPrev as the
// authoritative cross-instant state, so flipping a query between evaluators
// mid-run stays seamless.
//
// Recovery: delta operator state is NOT serialized. It is deterministically
// reconstructable from the relation event logs plus the snapshot-visible
// maps (prevOutput, invCache, streamPrev), so Restore just invalidates the
// program; the first post-restore tick rebuilds operator state from the
// restored world and the invocation cache (including SeedActive's orphan
// pins) keeps active β invocations from re-firing.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"serena/internal/algebra"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// deltaProgram is one query's compiled delta-operator tree plus the
// continuity state deciding when incremental evaluation is trustworthy.
type deltaProgram struct {
	root *deltaNode
	// ready is true when every operator's state is valid as of lastAt. It is
	// cleared by Restore, by evaluation errors, and by SetNaiveEvaluation
	// switching back to the delta path; the next delta tick then rebuilds
	// all operator state from the relations (a "re-init" tick, O(n) once).
	ready  bool
	lastAt service.Instant
	// Cumulative observability (atomics: read by accessors while ticks run).
	ticks   atomic.Int64
	reinits atomic.Int64
}

func (p *deltaProgram) invalidate() { p.ready = false }

// deltaNode is one operator of the compiled tree: the plan node it
// implements, its derived schema, its children, the operator state (one of
// the delta op types), and cumulative row counters for the delta report.
type deltaNode struct {
	plan query.Node
	sch  *schema.Extended
	kids []*deltaNode
	op   any

	calls   atomic.Int64
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
}

// ---------------------------------------------------------------------------
// Time-aware source and sink operators (the cq-owned ones; pure relational
// operators come from internal/algebra).

// deltaBase feeds a finite relation's event log through a multiset→set
// gate: per tick it replays exactly the events recorded in (lastAt, at].
type deltaBase struct {
	name string
	gate *algebra.DeltaGate
}

func (b *deltaBase) apply(ev *evaluator, init bool, from service.Instant) (algebra.Delta, int, error) {
	x, ok := ev.exec.rels[b.name]
	if !ok {
		return algebra.Delta{}, 0, fmt.Errorf("unknown relation %q", b.name)
	}
	if init {
		b.gate.Reset()
		var tuples []value.Tuple
		if x.LastInstant() <= ev.at {
			tuples = x.Current()
		} else {
			tuples = x.At(ev.at)
		}
		d, err := b.gate.Apply(tuples, nil)
		return d, len(tuples), err
	}
	// Cascade fast path: when the base is another query's finite output
	// relation and that producer evaluated this same instant, its published
	// (inserts, deletes) ARE this tick's events — feed them to the gate
	// directly instead of re-reading the event log. A producer that was
	// coalesced, re-initialized, or is not a query output falls through to
	// the log scan (identical contents, including the coalesced case: a
	// skipped producer appended no events).
	if ins, del, ok := ev.exec.producerDelta(b.name, from, ev.at); ok {
		d, err := b.gate.Apply(ins, del)
		return d, len(ins) + len(del), err
	}
	events := x.EventsIn(from, ev.at)
	var enter, leave []value.Tuple
	for _, e := range events {
		if e.Kind == stream.Insert {
			enter = append(enter, e.Tuple)
		} else {
			leave = append(leave, e.Tuple)
		}
	}
	d, err := b.gate.Apply(enter, leave)
	return d, len(events), err
}

// deltaWindow maintains W[period] over a stream incrementally: entering
// tuples are the stream's inserts in (max(lastAt, at−period), at], leaving
// tuples are the inserts falling off the back, (lastAt−period,
// min(lastAt, at−period)]. With consecutive ticks that is one instant in,
// one instant out; the interval forms also cover clock gaps, though the
// executor re-inits on gaps anyway (trimming may have dropped the back
// events).
type deltaWindow struct {
	name   string
	period service.Instant
	gate   *algebra.DeltaGate
}

func (w *deltaWindow) apply(ev *evaluator, init bool, from service.Instant) (algebra.Delta, int, error) {
	x, ok := ev.exec.rels[w.name]
	if !ok {
		return algebra.Delta{}, 0, fmt.Errorf("unknown relation %q", w.name)
	}
	// Same operator span the naive evaluator records; on the delta path
	// "rows" counts the events consumed this tick, not the window content.
	span := ev.ctx.Span.Child("cq.window")
	span.SetAttr("stream", w.name)
	span.SetAttrInt("period", int64(w.period))
	at := ev.at
	if init {
		w.gate.Reset()
		enter := x.InsertedIn(at-w.period, at)
		d, err := w.gate.Apply(enter, nil)
		span.SetAttrInt("rows", int64(len(enter)))
		span.Finish()
		return d, len(enter), err
	}
	enterFrom := from
	if at-w.period > enterFrom {
		enterFrom = at - w.period
	}
	enter := x.InsertedIn(enterFrom, at)
	leaveTo := at - w.period
	if from < leaveTo {
		leaveTo = from
	}
	leave := x.InsertedIn(from-w.period, leaveTo)
	d, err := w.gate.Apply(enter, leave)
	span.SetAttrInt("rows", int64(len(enter)+len(leave)))
	span.Finish()
	return d, len(enter) + len(leave), err
}

// deltaStream implements S[insertion|deletion|heartbeat]. q.streamPrev[node]
// stays the authoritative "child set at the previous instant" map — shared
// with the naive evaluator and with snapshots — and is updated in place
// (O(k)). prevEmitted tracks what the operator emitted last instant so its
// own output delta can be derived for a downstream operator.
type deltaStream struct {
	node        *query.Stream
	kind        query.StreamKind
	prevEmitted map[string]value.Tuple
}

func (s *deltaStream) reset() { s.prevEmitted = nil }

func (s *deltaStream) apply(ev *evaluator, init bool, child algebra.Delta) (algebra.Delta, error) {
	q := ev.q
	prev := q.streamPrev[s.node]
	emitted := map[string]value.Tuple{}
	if init {
		// Children were reset, so child.Ins IS the full current child set.
		cur := make(map[string]value.Tuple, len(child.Ins))
		for _, t := range child.Ins {
			cur[t.Key()] = t
		}
		switch s.kind {
		case query.StreamInsertion:
			for k, t := range cur {
				if _, ok := prev[k]; !ok {
					emitted[k] = t
				}
			}
		case query.StreamDeletion:
			for k, t := range prev {
				if _, ok := cur[k]; !ok {
					emitted[k] = t
				}
			}
		case query.StreamHeartbeat:
			for k, t := range cur {
				emitted[k] = t
			}
		}
		q.streamPrev[s.node] = cur
	} else {
		if prev == nil {
			prev = map[string]value.Tuple{}
			q.streamPrev[s.node] = prev
		}
		switch s.kind {
		case query.StreamInsertion:
			for _, t := range child.Ins {
				if _, ok := prev[t.Key()]; !ok {
					emitted[t.Key()] = t
				}
			}
		case query.StreamDeletion:
			for _, t := range child.Del {
				if _, ok := prev[t.Key()]; ok {
					emitted[t.Key()] = t
				}
			}
		}
		for _, t := range child.Del {
			delete(prev, t.Key())
		}
		for _, t := range child.Ins {
			prev[t.Key()] = t
		}
		if s.kind == query.StreamHeartbeat {
			for k, t := range prev {
				emitted[k] = t
			}
		}
	}
	if span := ev.ctx.Span.Child("cq.stream"); span != nil {
		span.SetAttr("kind", s.kind.String())
		span.SetAttrInt("emitted", int64(len(emitted)))
		span.Finish()
	}
	var out algebra.Delta
	for k, t := range emitted {
		if _, ok := s.prevEmitted[k]; !ok {
			out.Ins = append(out.Ins, t)
		}
	}
	for k, t := range s.prevEmitted {
		if _, ok := emitted[k]; !ok {
			out.Del = append(out.Del, t)
		}
	}
	s.prevEmitted = emitted
	return out, nil
}

// deltaInvoke implements β_bp incrementally. Per surviving input tuple it
// keeps the resolved service reference, the §4.2 invocation-cache key and
// the realized output tuples; per tick only newly inserted tuples (plus
// previously failed ones, which retry every instant exactly like the naive
// path) consult the shared invocation cache and, on a miss, invoke for
// real. The cache (q.invCache[node]) is reference-counted so its contents
// stay identical to the naive evaluator's prune-to-current-operand swap.
type deltaInvoke struct {
	node     *query.Invoke
	bp       schema.BindingPattern
	plan     *algebra.InvokePlan
	entries  map[string]*invEntry
	cacheRef map[string]int
}

type invEntry struct {
	tuple    value.Tuple
	ref      string
	cacheKey string // "" when the service reference is NULL (never invokes)
	ok       bool   // outputs reflect a cached or successful invocation
	outs     []value.Tuple
}

func (iv *deltaInvoke) reset() {
	iv.entries = map[string]*invEntry{}
	iv.cacheRef = map[string]int{}
}

// apply wraps the operator in the same "cq.invoke" span the naive path
// records, re-parenting per-tuple β spans under it for the duration (the
// delta tree evaluates sequentially; parallel per-tuple invocations only
// read ctx.Span). The cache_hits/cache_misses attrs count actual §4.2
// cache consults — on a steady delta tick with no operand churn they are
// both zero, because persisting tuples never reach the cache at all.
func (iv *deltaInvoke) apply(ev *evaluator, init bool, child algebra.Delta) (algebra.Delta, error) {
	var hits, misses int64
	opSpan := ev.ctx.Span.Child("cq.invoke")
	if opSpan != nil {
		opSpan.SetAttr("bp", iv.bp.ID())
		saved := ev.ctx.Span
		ev.ctx.Span = opSpan
		defer func() { ev.ctx.Span = saved }()
	}
	out, err := iv.applyInner(ev, init, child, &hits, &misses)
	if opSpan != nil {
		opSpan.SetAttrInt("cache_hits", hits)
		opSpan.SetAttrInt("cache_misses", misses)
		if err != nil {
			opSpan.SetAttr("error", err.Error())
		}
		opSpan.Finish()
	}
	return out, err
}

func (iv *deltaInvoke) applyInner(ev *evaluator, init bool, child algebra.Delta, hits, misses *int64) (algebra.Delta, error) {
	acc := algebra.NewDeltaAcc()
	decremented := map[string]bool{}
	for _, t := range child.Del {
		k := t.Key()
		e := iv.entries[k]
		if e == nil {
			return algebra.Delta{}, fmt.Errorf("cq: delta invoke underflow on %s", t)
		}
		delete(iv.entries, k)
		for _, o := range e.outs {
			acc.Del(o)
		}
		if e.cacheKey != "" {
			iv.cacheRef[e.cacheKey]--
			decremented[e.cacheKey] = true
		}
	}
	for _, t := range child.Ins {
		k := t.Key()
		if iv.entries[k] != nil {
			return algebra.Delta{}, fmt.Errorf("cq: delta invoke duplicate insert %s", t)
		}
		e := &invEntry{tuple: t}
		refVal := t[iv.plan.SvcIdx]
		if refVal.IsNull() {
			e.ok = true // no service to call — contributes no output, ever
		} else {
			ref, ok := refVal.AsString()
			if !ok {
				return algebra.Delta{}, fmt.Errorf("algebra: invoke %s: service attribute %q holds non-reference value %s",
					iv.bp.ID(), iv.bp.ServiceAttr, refVal)
			}
			e.ref = ref
			e.cacheKey = iv.bp.ID() + "|" + ref + "|" + t.Project(iv.plan.InIdx).Key()
			iv.cacheRef[e.cacheKey]++
		}
		iv.entries[k] = e
	}

	// Everything unresolved retries this instant: fresh inserts, plus
	// entries whose invocation failed or was absorbed at an earlier instant
	// (the naive path re-invokes those every tick too — failed results are
	// never cached). Sorted for deterministic invocation order.
	var pending []string
	for k, e := range iv.entries {
		if !e.ok {
			pending = append(pending, k)
		}
	}
	sort.Strings(pending)

	cache := ev.q.invCache[iv.node]
	staged := map[string][]value.Tuple{}
	resolve := func(e *invEntry, rows []value.Tuple, cacheable bool) {
		newOuts := iv.plan.Realize(e.tuple, rows)
		for _, o := range e.outs {
			acc.Del(o)
		}
		for _, o := range newOuts {
			acc.Add(o)
		}
		e.outs = newOuts
		e.ok = cacheable
		if cacheable {
			staged[e.cacheKey] = rows
		}
	}
	var missed []*invEntry
	for _, k := range pending {
		e := iv.entries[k]
		if rows, ok := cache[e.cacheKey]; ok {
			obsInvokeCacheHits.Inc()
			*hits++
			resolve(e, rows, true)
			continue
		}
		missed = append(missed, e)
	}
	if len(missed) > 1 && !iv.bp.Active() && ev.ctx.MaxBatch() > 1 {
		// The batch planner dedupes identical (proto, ref, input) jobs, so
		// same-key duplicates are safe to hand over as-is (the naive path's
		// batch dispatch does the same).
		obsInvokeCacheMisses.Add(int64(len(missed)))
		*misses += int64(len(missed))
		refs := make([]string, len(missed))
		inputs := make([]value.Tuple, len(missed))
		for i, e := range missed {
			refs[i] = e.ref
			inputs[i] = e.tuple.Project(iv.plan.InIdx)
		}
		skipped := make([]bool, len(missed))
		brs := ev.ctx.InvokeBatchTracked(iv.bp, refs, inputs, skipped)
		for i, e := range missed {
			if brs[i].Err != nil {
				return algebra.Delta{}, fmt.Errorf("algebra: invoke %s: %w", iv.bp.ID(), brs[i].Err)
			}
			resolve(e, brs[i].Rows, !skipped[i])
		}
	} else {
		for _, e := range missed {
			// Same-tick duplicate keys resolve from the staged results of an
			// earlier miss in this loop — one physical invocation per distinct
			// (bp, ref, input), exactly like the naive path's next-map check.
			if rows, ok := staged[e.cacheKey]; ok {
				obsInvokeCacheHits.Inc()
				*hits++
				resolve(e, rows, true)
				continue
			}
			obsInvokeCacheMisses.Inc()
			*misses++
			rows, cacheable, err := ev.invokePhysical(iv.node, iv.bp, e.ref, e.tuple.Project(iv.plan.InIdx))
			if err != nil {
				return algebra.Delta{}, fmt.Errorf("algebra: invoke %s: %w", iv.bp.ID(), err)
			}
			resolve(e, rows, cacheable)
		}
	}

	// Commit the staged cache mutations only now that the whole operator
	// succeeded — the naive path's cache→next swap happens after a
	// successful algebra.Invoke, and an aborted operator must leave the
	// cache untouched there too.
	if cache == nil {
		cache = map[string][]value.Tuple{}
		ev.q.invCache[iv.node] = cache
	}
	for k, rows := range staged {
		cache[k] = rows
	}
	for ck := range decremented {
		if iv.cacheRef[ck] <= 0 {
			delete(iv.cacheRef, ck)
			delete(cache, ck)
		}
	}
	if init {
		// Parity with the naive prune-to-current-operand swap: drop cache
		// entries no rebuilt entry references (stale keys from before the
		// re-init, e.g. a restored snapshot of a since-shrunk operand).
		for ck := range cache {
			if iv.cacheRef[ck] <= 0 {
				delete(cache, ck)
			}
		}
	}
	return acc.Delta(), nil
}

// ---------------------------------------------------------------------------
// Compilation.

// compileDelta builds a query's delta program. Callers hold e.mu (Register
// does). An error means some plan shape has no delta operator yet; the
// query then runs naive-only.
func compileDelta(e *Executor, q *Query) (*deltaProgram, error) {
	env := schemaEnv{e}
	var build func(n query.Node) (*deltaNode, error)
	build = func(n query.Node) (*deltaNode, error) {
		sch, err := n.ResultSchema(env)
		if err != nil {
			return nil, err
		}
		dn := &deltaNode{plan: n, sch: sch}
		// Window reads its base stream's event log directly — the base child
		// is not compiled (an unwindowed infinite base has no delta form).
		if w, ok := n.(*query.Window); ok {
			base := w.Child.(*query.Base) // validated at registration
			dn.op = &deltaWindow{name: base.Name, period: service.Instant(w.Period), gate: algebra.NewDeltaGate()}
			return dn, nil
		}
		for _, c := range n.Children() {
			k, err := build(c)
			if err != nil {
				return nil, err
			}
			dn.kids = append(dn.kids, k)
		}
		childSch := func(i int) *schema.Extended { return dn.kids[i].sch }
		switch t := n.(type) {
		case *query.Base:
			x, ok := e.rels[t.Name]
			if !ok {
				return nil, fmt.Errorf("unknown relation %q", t.Name)
			}
			if x.Infinite() {
				return nil, fmt.Errorf("stream %q used without a window", t.Name)
			}
			dn.op = &deltaBase{name: t.Name, gate: algebra.NewDeltaGate()}
		case *query.Select:
			dn.op, err = algebra.NewDeltaSelect(childSch(0), t.Formula)
		case *query.Project:
			dn.op, err = algebra.NewDeltaProject(childSch(0), t.Attrs)
		case *query.Rename:
			dn.op, err = algebra.NewDeltaRename(childSch(0), t.Old, t.New)
		case *query.Assign:
			if t.Src != "" {
				dn.op, err = algebra.NewDeltaAssignAttr(childSch(0), t.Attr, t.Src)
			} else {
				dn.op, err = algebra.NewDeltaAssignConst(childSch(0), t.Attr, t.Const)
			}
		case *query.Join:
			dn.op, err = algebra.NewDeltaJoin(childSch(0), childSch(1))
		case *query.SetOp:
			var kind int
			switch t.Kind {
			case query.UnionOp:
				kind = algebra.DeltaUnion
			case query.IntersectOp:
				kind = algebra.DeltaIntersect
			case query.DiffOp:
				kind = algebra.DeltaDiff
			default:
				return nil, fmt.Errorf("cq: no delta operator for set op %v", t.Kind)
			}
			dn.op, err = algebra.NewDeltaSetOp(kind, childSch(0), childSch(1))
		case *query.Aggregate:
			dn.op, err = algebra.NewDeltaAggregate(childSch(0), t.GroupBy, t.Aggs)
		case *query.Stream:
			dn.op = &deltaStream{node: t, kind: t.Kind}
		case *query.Invoke:
			bp, ferr := childSch(0).FindBP(t.Proto, t.ServiceAttr)
			if ferr != nil {
				return nil, ferr
			}
			plan, perr := algebra.NewInvokePlan(childSch(0), bp)
			if perr != nil {
				return nil, perr
			}
			iv := &deltaInvoke{node: t, bp: bp, plan: plan}
			iv.reset()
			dn.op = iv
		default:
			return nil, fmt.Errorf("cq: no delta operator for %T", n)
		}
		if err != nil {
			return nil, err
		}
		return dn, nil
	}
	root, err := build(q.plan)
	if err != nil {
		return nil, err
	}
	return &deltaProgram{root: root}, nil
}

// resetAll clears every operator's state ahead of a re-init tick.
func (p *deltaProgram) resetAll() {
	var walk func(n *deltaNode)
	walk = func(n *deltaNode) {
		switch op := n.op.(type) {
		case *deltaBase:
			op.gate.Reset()
		case *deltaWindow:
			op.gate.Reset()
		case *deltaStream:
			op.reset()
		case *deltaInvoke:
			op.reset()
		case *algebra.DeltaSelect:
			op.Reset()
		case *algebra.DeltaProject:
			op.Reset()
		case *algebra.DeltaRename:
			op.Reset()
		case *algebra.DeltaAssign:
			op.Reset()
		case *algebra.DeltaJoin:
			op.Reset()
		case *algebra.DeltaSetOp:
			op.Reset()
		case *algebra.DeltaAggregate:
			op.Reset()
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(p.root)
}

// ---------------------------------------------------------------------------
// Evaluation.

// evalDelta runs one incremental tick for the query: it walks the compiled
// tree bottom-up, then turns the root delta into (result relation, current
// output map, inserted, deleted) for evalQuery's shared tail. cur is
// q.prevOutput mutated in place on steady-state ticks (O(k)); re-init
// ticks rebuild it.
func (ev *evaluator) evalDelta() (res *algebra.XRelation, cur map[string]value.Tuple, inserted, deleted []value.Tuple, err error) {
	q := ev.q
	p := q.delta
	init := !p.ready || p.lastAt != ev.at-1
	if init {
		// Gaps in this query's evaluation (overload coalescing, replay
		// AdvanceTo) also land here: window back-events may already be
		// trimmed, so catching up from the event log is not safe — rebuild.
		p.resetAll()
		p.reinits.Add(1)
		obsDeltaReinits.Inc()
	}
	fail := func(e error) (*algebra.XRelation, map[string]value.Tuple, []value.Tuple, []value.Tuple, error) {
		p.invalidate()
		return nil, nil, nil, nil, e
	}
	d, err := ev.evalDeltaNode(p.root, init, p.lastAt)
	if err != nil {
		return fail(err)
	}
	if init {
		cur = make(map[string]value.Tuple, len(d.Ins))
		for _, t := range d.Ins {
			cur[t.Key()] = t
		}
		for k, t := range cur {
			if _, ok := q.prevOutput[k]; !ok {
				inserted = append(inserted, t)
			}
		}
		for k, t := range q.prevOutput {
			if _, ok := cur[k]; !ok {
				deleted = append(deleted, t)
			}
		}
		res = algebra.FromKeyed(p.root.sch, cur)
	} else {
		cur = q.prevOutput
		for _, t := range d.Del {
			k := t.Key()
			if _, ok := cur[k]; !ok {
				return fail(fmt.Errorf("cq: delta output underflow on %s", t))
			}
			delete(cur, k)
			deleted = append(deleted, t)
		}
		for _, t := range d.Ins {
			k := t.Key()
			if _, ok := cur[k]; ok {
				return fail(fmt.Errorf("cq: delta output duplicate insert %s", t))
			}
			cur[k] = t
			inserted = append(inserted, t)
		}
		if d.Empty() && q.lastRes != nil {
			res = q.lastRes // unchanged output: reuse last materialization
		} else {
			res = algebra.FromKeyed(p.root.sch, cur)
		}
	}
	p.ready = true
	p.lastAt = ev.at
	p.ticks.Add(1)
	return res, cur, inserted, deleted, nil
}

// evalDeltaNode evaluates one operator: children first, then the node's
// delta op, recording per-node row counters.
func (ev *evaluator) evalDeltaNode(n *deltaNode, init bool, from service.Instant) (algebra.Delta, error) {
	kids := make([]algebra.Delta, len(n.kids))
	for i, k := range n.kids {
		d, err := ev.evalDeltaNode(k, init, from)
		if err != nil {
			return algebra.Delta{}, err
		}
		kids[i] = d
	}
	var (
		out  algebra.Delta
		in   int
		err  error
		self = true // count children's emissions as this node's rows_in
	)
	switch op := n.op.(type) {
	case *deltaBase:
		out, in, err = op.apply(ev, init, from)
		self = false
	case *deltaWindow:
		out, in, err = op.apply(ev, init, from)
		self = false
	case *deltaStream:
		out, err = op.apply(ev, init, kids[0])
	case *deltaInvoke:
		out, err = op.apply(ev, init, kids[0])
	case *algebra.DeltaSelect:
		out, err = op.Apply(kids[0])
	case *algebra.DeltaProject:
		out, err = op.Apply(kids[0])
	case *algebra.DeltaRename:
		out, err = op.Apply(kids[0])
	case *algebra.DeltaAssign:
		out, err = op.Apply(kids[0])
	case *algebra.DeltaJoin:
		out, err = op.Apply(kids[0], kids[1])
	case *algebra.DeltaSetOp:
		out, err = op.Apply(kids[0], kids[1])
	case *algebra.DeltaAggregate:
		out, err = op.Apply(kids[0])
	default:
		err = fmt.Errorf("cq: no delta operator for %T", n.plan)
	}
	if err != nil {
		return algebra.Delta{}, err
	}
	if self {
		for _, d := range kids {
			in += d.Rows()
		}
	}
	n.calls.Add(1)
	n.rowsIn.Add(int64(in))
	n.rowsOut.Add(int64(out.Rows()))
	obsDeltaRowsIn.Add(int64(in))
	obsDeltaRowsOut.Add(int64(out.Rows()))
	return out, nil
}

// ---------------------------------------------------------------------------
// Control & observability surface.

// SetNaiveEvaluation pins a registered query to the naive
// re-evaluate-then-diff path (naive=true) or back to the incremental delta
// path (naive=false, the default when the plan compiled). Switching is safe
// mid-run: both paths maintain the same cross-instant maps (prevOutput,
// invCache, streamPrev), and re-enabling deltas forces a state rebuild on
// the next tick.
func (e *Executor) SetNaiveEvaluation(name string, naive bool) error {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.mu.Lock()
	q, ok := e.queries[name]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("cq: unknown query %q", name)
	}
	q.mu.Lock()
	q.naive = naive
	q.mu.Unlock()
	if !naive && q.delta != nil {
		q.delta.invalidate()
	}
	return nil
}

// EvaluationMode reports which evaluator the query is currently using:
// "delta" (incremental) or "naive" (re-evaluate-then-diff — pinned by
// SetNaiveEvaluation, or the automatic fallback when the plan has no delta
// form).
func (q *Query) EvaluationMode() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.delta != nil && !q.naive {
		return "delta"
	}
	return "naive"
}

// EvalCounts returns how many instants were evaluated by the delta path
// and by the naive path since registration.
func (q *Query) EvalCounts() (delta, naive int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.deltaTicks, q.naiveTicks
}

// DeltaReport renders the compiled delta program with cumulative per-
// operator row counts, one operator per line in plan order — the
// continuous-query analogue of EXPLAIN ANALYZE:
//
//	select[temp > 30]   calls=12 rows_in=3 rows_out=1
//	  window[5]         calls=12 rows_in=7 rows_out=7
//
// Returns "" when the query has no delta program.
func (q *Query) DeltaReport() string {
	if q.delta == nil {
		return ""
	}
	type line struct {
		label string
		n     *deltaNode
		depth int
	}
	var lines []line
	var walk func(n *deltaNode, depth int)
	walk = func(n *deltaNode, depth int) {
		lines = append(lines, line{query.OpLabel(n.plan), n, depth})
		for _, k := range n.kids {
			walk(k, depth+1)
		}
	}
	walk(q.delta.root, 0)
	width := 0
	for _, l := range lines {
		if w := 2*l.depth + len([]rune(l.label)); w > width {
			width = w
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "delta program: %d tick(s), %d re-init(s)\n",
		q.delta.ticks.Load(), q.delta.reinits.Load())
	for _, l := range lines {
		indented := strings.Repeat("  ", l.depth) + l.label
		pad := width - len([]rune(indented))
		fmt.Fprintf(&b, "%s%s  calls=%d rows_in=%d rows_out=%d\n",
			indented, strings.Repeat(" ", pad),
			l.n.calls.Load(), l.n.rowsIn.Load(), l.n.rowsOut.Load())
	}
	return b.String()
}
