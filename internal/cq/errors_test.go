package cq_test

import (
	"errors"
	"strings"
	"testing"

	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

type schemaBP = schema.BindingPattern

// brokenSensor fails for a configurable window of instants.
type brokenSensor struct {
	*device.Sensor
	failFrom, failTo service.Instant
}

func (b *brokenSensor) Invoke(proto string, in value.Tuple, at service.Instant) ([]value.Tuple, error) {
	if at >= b.failFrom && at <= b.failTo {
		return nil, errors.New("device unreachable")
	}
	return b.Sensor.Invoke(proto, in, at)
}

func TestContinuousQuerySurvivesDeviceFailure(t *testing.T) {
	reg, _ := paperenv.MustRegistry()
	// Replace sensor01 with a flaky variant failing at instants 0..2.
	if err := reg.Unregister("sensor01"); err != nil {
		t.Fatal(err)
	}
	flaky := &brokenSensor{Sensor: device.NewSensor("sensor01", "corridor", 19), failFrom: 0, failTo: 2}
	if err := reg.Register(flaky); err != nil {
		t.Fatal(err)
	}

	exec := cq.NewExecutor(reg)
	sensors := stream.NewFinite(paperenv.SensorsSchema())
	for _, tu := range paperenv.Sensors().Tuples() {
		if err := sensors.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := exec.AddRelation(sensors); err != nil {
		t.Fatal(err)
	}
	q, err := exec.Register("t", query.NewInvoke(query.NewBase("sensors"), "getTemperature", ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Tick(); err != nil {
		t.Fatalf("flaky device aborted the query: %v", err)
	}
	// Partial result: 3 of 4 sensors answered.
	if q.LastResult().Len() != 3 {
		t.Fatalf("partial result = %d tuples, want 3", q.LastResult().Len())
	}
	errs := q.InvokeErrors()
	if len(errs) != 1 || errs[0].Ref != "sensor01" {
		t.Fatalf("recorded errors = %v", errs)
	}
	if !strings.Contains(errs[0].Error(), "unreachable") {
		t.Fatalf("error rendering = %v", errs[0])
	}
	// Failed tuples are retried (not cached): by instant 3 the sensor
	// recovers and appears in the result.
	if err := exec.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if q.LastResult().Len() != 4 {
		t.Fatalf("recovered result = %d tuples, want 4", q.LastResult().Len())
	}
	// Exactly 3 failures recorded (instants 0, 1, 2).
	if len(q.InvokeErrors()) != 3 {
		t.Fatalf("errors = %d, want 3", len(q.InvokeErrors()))
	}
}

func TestOneShotFailsFastOnDeviceError(t *testing.T) {
	reg, _ := paperenv.MustRegistry()
	if err := reg.Unregister("sensor01"); err != nil {
		t.Fatal(err)
	}
	flaky := &brokenSensor{Sensor: device.NewSensor("sensor01", "corridor", 19), failFrom: 0, failTo: 99}
	if err := reg.Register(flaky); err != nil {
		t.Fatal(err)
	}
	env := query.MapEnv{"sensors": paperenv.Sensors()}
	q := query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")
	if _, err := query.Evaluate(q, env, reg, 0); err == nil {
		t.Fatal("one-shot evaluation must fail fast by default")
	}
	// With an explicit skip policy the one-shot query degrades gracefully.
	ctx := query.NewContext(env, reg, 0)
	var skipped []query.InvokeError
	ctx.OnInvokeError = func(bp schemaBP, ref string, input value.Tuple, err error) error {
		skipped = append(skipped, query.InvokeError{BP: bp.ID(), Ref: ref, Input: input, Err: err})
		return nil
	}
	rel, err := q.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 || len(skipped) != 1 {
		t.Fatalf("skip policy: %d tuples, %d skips", rel.Len(), len(skipped))
	}
}

func TestActiveFailureStillRecordsAction(t *testing.T) {
	reg, dev := paperenv.MustRegistry()
	dev.Messengers["email"].ErrorFor("carla@elysee.fr")
	env := query.MapEnv{"contacts": paperenv.Contacts()}
	q := query.NewInvoke(
		query.NewAssignConst(query.NewBase("contacts"), "text", value.NewString("x")),
		"sendMessage", "")
	ctx := query.NewContext(env, reg, 0)
	ctx.OnInvokeError = func(schemaBP, string, value.Tuple, error) error { return nil }
	rel, err := q.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Carla's send failed → 2 result tuples, but 3 attempted actions.
	if rel.Len() != 2 {
		t.Fatalf("result = %d tuples", rel.Len())
	}
	if ctx.Actions.Len() != 3 {
		t.Fatalf("attempted actions = %d, want 3 (failed attempts count)", ctx.Actions.Len())
	}
}
