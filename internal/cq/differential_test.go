package cq_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// This file is the differential proof obligation for the incremental
// evaluator: two executors over two identical copies of the paper's
// pervasive environment run the SAME queries over the SAME randomized event
// history — one pinned to the naive re-evaluate-then-diff path (the
// oracle), one on the delta path (with random mid-run flips between the
// two). After every tick, every query's instantaneous result, per-tick
// insert/delete notifications, Definition 8 action set, and output-stream
// growth must agree exactly (Definition 9 equivalence). Seeds are fixed;
// a failure prints the seed, tick, and query so the run can be replayed.

// diffWorld is one independent copy of the environment: its own registry,
// devices, relations, and executor.
type diffWorld struct {
	exec     *cq.Executor
	reg      *service.Registry
	dev      *paperenv.Devices
	contacts *stream.XDRelation
	temps    *stream.XDRelation

	// last OnResult notification per query
	lastIns map[string][]value.Tuple
	lastDel map[string][]value.Tuple
}

func newDiffWorld(t *testing.T) *diffWorld {
	t.Helper()
	reg, dev := paperenv.MustRegistry()
	exec := cq.NewExecutor(reg)

	contacts := stream.NewFinite(paperenv.ContactsSchema())
	for _, tu := range paperenv.Contacts().Tuples() {
		if err := contacts.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	cameras := stream.NewFinite(paperenv.CamerasSchema())
	for _, tu := range paperenv.Cameras().Tuples() {
		if err := cameras.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	temps := stream.NewInfinite(paperenv.TemperaturesSchema())
	for _, x := range []*stream.XDRelation{contacts, cameras, temps} {
		if err := exec.AddRelation(x); err != nil {
			t.Fatal(err)
		}
	}
	w := &diffWorld{
		exec: exec, reg: reg, dev: dev, contacts: contacts, temps: temps,
		lastIns: map[string][]value.Tuple{}, lastDel: map[string][]value.Tuple{},
	}
	exec.AddSource(func(at service.Instant) error {
		for _, ref := range reg.Implementing("getTemperature") {
			svc, err := reg.Lookup(ref)
			if err != nil {
				return err
			}
			sensor := svc.(*device.Sensor)
			err = temps.Insert(at, value.Tuple{
				value.NewService(ref),
				value.NewString(sensor.Location()),
				value.NewReal(sensor.TemperatureAt(at)),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	return w
}

func (w *diffWorld) register(t *testing.T, name string, plan query.Node) {
	t.Helper()
	w.registerWith(t, name, plan, cq.RegisterOptions{})
}

func (w *diffWorld) registerWith(t *testing.T, name string, plan query.Node, opts cq.RegisterOptions) {
	t.Helper()
	q, err := w.exec.RegisterWith(name, plan, opts)
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	if err := w.exec.SetDegradation(name, resilience.SkipTuple); err != nil {
		t.Fatal(err)
	}
	n := name
	q.OnResult = func(at service.Instant, res *algebra.XRelation, inserted, deleted []value.Tuple) {
		w.lastIns[n] = inserted
		w.lastDel[n] = deleted
	}
}

// diffPlans builds the query set for one seed: every operator kind of the
// algebra appears (σ, π, ρ, ⋈, ∪/∩/−, α const+attr, aggregate, W, S, β
// active and passive), with thresholds, periods, projections, and stream
// kinds drawn from the seed's rng so histories differ per seed.
func diffPlans(rng *rand.Rand) map[string]func() query.Node {
	period := func() int64 { return int64(1 + rng.Intn(3)) }
	threshold := func() float64 {
		return []float64{18, 20, 22, 25, 30, 35.5}[rng.Intn(6)]
	}
	hotWindow := func(th float64, p int64) query.Node {
		return query.NewSelect(
			query.NewWindow(query.NewBase("temperatures"), p),
			algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(th))))
	}
	coldWindow := func(th float64, p int64) query.Node {
		return query.NewSelect(
			query.NewWindow(query.NewBase("temperatures"), p),
			algebra.Compare(algebra.Attr("temperature"), algebra.Lt, algebra.Const(value.NewReal(th))))
	}
	setOps := []func(l, r query.Node) *query.SetOp{query.NewUnion, query.NewIntersect, query.NewDiff}
	streamKinds := []query.StreamKind{query.StreamInsertion, query.StreamDeletion, query.StreamHeartbeat}

	// Parameters are drawn NOW (same rng consumption every run of a seed).
	alertTh, alertP := threshold(), period()
	photoTh, photoP := threshold(), period()
	photoKind := streamKinds[rng.Intn(len(streamKinds))]
	aggP := period()
	setKind := setOps[rng.Intn(len(setOps))]
	setThLo, setThHi, setP := threshold(), threshold(), period()
	mixKind := setOps[rng.Intn(len(setOps))]
	mixTh, mixP := threshold(), period()
	mixStream := streamKinds[rng.Intn(len(streamKinds))]
	cascTh, cascP := threshold(), period()

	return map[string]func() query.Node{
		// Active β over a join: Table 4's Q3 shape (σ, W, ⋈, α const, β).
		"alerts": func() query.Node {
			return query.NewInvoke(
				query.NewAssignConst(
					query.NewJoin(query.NewBase("contacts"), hotWindow(alertTh, alertP)),
					"text", value.NewString("Hot!")),
				"sendMessage", "")
		},
		// Passive β over a rename-joined window, projected, streamed (ρ, π, S).
		"photos": func() query.Node {
			return query.NewStream(
				query.NewProject(
					query.NewInvoke(
						query.NewJoin(
							query.NewBase("cameras"),
							query.NewRename(coldWindow(photoTh, photoP), "location", "area")),
						"checkPhoto", ""),
					"area", "quality"),
				photoKind)
		},
		// Aggregation over the raw window (count/sum/min/max/mean).
		"climate": func() query.Node {
			return query.NewAggregate(
				query.NewWindow(query.NewBase("temperatures"), aggP),
				[]string{"location"},
				[]algebra.AggSpec{
					{Func: algebra.Count, As: "n"},
					{Func: algebra.Sum, Attr: "temperature", As: "total"},
					{Func: algebra.Min, Attr: "temperature", As: "low"},
					{Func: algebra.Max, Attr: "temperature", As: "high"},
					{Func: algebra.Mean, Attr: "temperature", As: "avg"},
				})
		},
		// A set operator between two differently-selected windows.
		"bands": func() query.Node {
			return setKind(hotWindow(setThLo, setP), hotWindow(setThHi, setP))
		},
		// α attr + active β over the churning contacts relation.
		"echo": func() query.Node {
			return query.NewInvoke(
				query.NewAssignAttr(query.NewBase("contacts"), "text", "address"),
				"sendMessage", "")
		},
		// Deeper mix: set op over projections of windows, streamed.
		"mixer": func() query.Node {
			return query.NewStream(
				mixKind(
					query.NewProject(query.NewWindow(query.NewBase("temperatures"), mixP), "location"),
					query.NewProject(hotWindow(mixTh, mixP), "location")),
				mixStream)
		},
		// Cascade producer: materialized INTO "xmat" (registered with
		// RegisterOptions by runDifferential; sorted order puts it before
		// its consumer, so "xmat" exists when "xread" compiles).
		"xfeed": func() query.Node {
			return hotWindow(cascTh, cascP)
		},
		// Cascade consumer: joins a base relation with the materialized
		// derived relation — the delta path rides the producer's per-tick
		// (inserts, deletes) instead of re-scanning "xmat"'s event log.
		"xread": func() query.Node {
			return query.NewJoin(query.NewBase("contacts"), query.NewBase("xmat"))
		},
	}
}

// intoOpts maps query names to registration options; queries not listed
// register plainly. Applied identically in both worlds.
var intoOpts = map[string]cq.RegisterOptions{
	"xfeed": {Into: "xmat"},
}

func sortedKeys(ts []value.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// messengerFactory recreates a withdrawn device so it can re-join the
// environment (fresh state in BOTH worlds, so they stay identical).
func remakeService(ref string) service.Service {
	switch ref {
	case "email":
		return device.NewMessenger("email", "email")
	case "camera01":
		return device.NewCamera("camera01", "corridor", 8, 0.2)
	case "sensor07":
		return device.NewSensor("sensor07", "office", 22)
	}
	panic("unknown service " + ref)
}

func TestDifferentialDeltaVsNaive(t *testing.T) {
	const ticks = 220
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferential(t, seed, ticks)
		})
	}
}

func runDifferential(t *testing.T, seed int64, ticks int) {
	rng := rand.New(rand.NewSource(seed))
	fail := func(tick int, format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d tick %d: %s", seed, tick, fmt.Sprintf(format, args...))
	}

	wd := newDiffWorld(t) // delta (with random naive flips)
	wn := newDiffWorld(t) // naive oracle
	plans := diffPlans(rng)
	names := make([]string, 0, len(plans))
	for name := range plans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// Each world gets its own AST instance (plans hold no state, but
		// per-node maps in the executor key on node identity).
		wd.registerWith(t, name, plans[name](), intoOpts[name])
		wn.registerWith(t, name, plans[name](), intoOpts[name])
		qd, _ := wd.exec.Query(name)
		if qd.EvaluationMode() != "delta" {
			t.Fatalf("seed %d: query %s has no delta form (%s)", seed, name, qd.DeltaReport())
		}
		if err := wn.exec.SetNaiveEvaluation(name, true); err != nil {
			t.Fatal(err)
		}
	}

	contactSeq := 0
	curContacts := append([]value.Tuple(nil), paperenv.Contacts().Tuples()...)
	withdrawn := map[string]int{} // ref → tick to re-register at
	naive := map[string]bool{}    // current pin state on the delta world

	sensorRefs := []string{"sensor01", "sensor06", "sensor07", "sensor22"}
	for tick := 0; tick < ticks; tick++ {
		now := wd.exec.Now()
		next := now + 1

		// --- Random stimuli, applied identically to both worlds. ---

		// Heat/cool a sensor (~1 in 3 ticks).
		if rng.Intn(3) == 0 {
			ref := sensorRefs[rng.Intn(len(sensorRefs))]
			ev := device.HeatEvent{
				From:  next,
				To:    next + service.Instant(rng.Intn(4)),
				Delta: float64(rng.Intn(31) - 10),
			}
			for _, w := range []*diffWorld{wd, wn} {
				if s := w.dev.Sensors[ref]; s != nil {
					s.Heat(ev)
				}
			}
		}

		// Contacts churn: insert (~1 in 4) and delete (~1 in 6).
		if rng.Intn(4) == 0 {
			contactSeq++
			messenger := []string{"email", "jabber"}[rng.Intn(2)]
			tu := value.Tuple{
				value.NewString(fmt.Sprintf("guest%02d", contactSeq)),
				value.NewString(fmt.Sprintf("guest%02d@example.org", contactSeq)),
				value.NewService(messenger),
			}
			curContacts = append(curContacts, tu)
			for _, w := range []*diffWorld{wd, wn} {
				if err := w.contacts.Insert(next, tu); err != nil {
					fail(tick, "contact insert: %v", err)
				}
			}
		}
		if len(curContacts) > 1 && rng.Intn(6) == 0 {
			i := rng.Intn(len(curContacts))
			tu := curContacts[i]
			curContacts = append(curContacts[:i], curContacts[i+1:]...)
			for _, w := range []*diffWorld{wd, wn} {
				if err := w.contacts.Delete(next, tu); err != nil {
					fail(tick, "contact delete: %v", err)
				}
			}
		}

		// Out-of-order timestamp attempt (~1 in 10): both worlds must
		// reject it identically and stay consistent.
		if now > 2 && rng.Intn(10) == 0 {
			tu := value.Tuple{
				value.NewService("sensor01"),
				value.NewString("corridor"),
				value.NewReal(99),
			}
			for _, w := range []*diffWorld{wd, wn} {
				if err := w.temps.Insert(now-2, tu); err == nil {
					fail(tick, "out-of-order insert accepted")
				}
			}
		}

		// Mid-run service withdrawal (~1 in 20) and re-registration.
		if len(withdrawn) == 0 && rng.Intn(20) == 0 {
			ref := []string{"email", "camera01", "sensor07"}[rng.Intn(3)]
			for _, w := range []*diffWorld{wd, wn} {
				if err := w.reg.Unregister(ref); err != nil {
					fail(tick, "withdraw %s: %v", ref, err)
				}
			}
			withdrawn[ref] = tick + 3 + rng.Intn(8)
		}
		for ref, reAt := range withdrawn {
			if tick >= reAt {
				for _, w := range []*diffWorld{wd, wn} {
					svc := remakeService(ref)
					if err := w.reg.Register(svc); err != nil {
						fail(tick, "re-register %s: %v", ref, err)
					}
					switch s := svc.(type) {
					case *device.Sensor:
						w.dev.Sensors[ref] = s
					case *device.Camera:
						w.dev.Cameras[ref] = s
					case *device.Messenger:
						w.dev.Messengers[ref] = s
					}
				}
				delete(withdrawn, ref)
			}
		}

		// Random evaluator flips on the delta world (~1 in 8): Definition 9
		// must hold across the seam in both directions.
		if rng.Intn(8) == 0 {
			name := names[rng.Intn(len(names))]
			naive[name] = !naive[name]
			if err := wd.exec.SetNaiveEvaluation(name, naive[name]); err != nil {
				t.Fatal(err)
			}
		}

		// --- Tick both worlds and compare everything. ---
		atD, errD := wd.exec.Tick()
		atN, errN := wn.exec.Tick()
		if (errD == nil) != (errN == nil) {
			fail(tick, "tick errors diverged: delta=%v naive=%v", errD, errN)
		}
		if errD != nil {
			fail(tick, "tick failed in both worlds: %v", errD)
		}
		if atD != atN {
			fail(tick, "instants diverged: %d vs %d", atD, atN)
		}

		for _, name := range names {
			qd, _ := wd.exec.Query(name)
			qn, _ := wn.exec.Query(name)
			rd, rn := qd.LastResult(), qn.LastResult()
			if (rd == nil) != (rn == nil) {
				fail(tick, "query %s: one result nil (delta=%v naive=%v)", name, rd, rn)
			}
			if rd != nil && !rd.EqualContents(rn) {
				fail(tick, "query %s (mode %s): results diverged\ndelta:\n%s\nnaive:\n%s",
					name, qd.EvaluationMode(), rd.Table(), rn.Table())
			}
			if got, want := sortedKeys(wd.lastIns[name]), sortedKeys(wn.lastIns[name]); !keysEqual(got, want) {
				fail(tick, "query %s: inserted diverged: %v vs %v", name, got, want)
			}
			if got, want := sortedKeys(wd.lastDel[name]), sortedKeys(wn.lastDel[name]); !keysEqual(got, want) {
				fail(tick, "query %s: deleted diverged: %v vs %v", name, got, want)
			}
			if !qd.Actions().Equal(qn.Actions()) {
				fail(tick, "query %s: action sets diverged (Definition 8)\ndelta: %s\nnaive: %s",
					name, qd.Actions(), qn.Actions())
			}
			if qd.Infinite() {
				if gd, gn := qd.Output().EventCount(), qn.Output().EventCount(); gd != gn {
					fail(tick, "query %s: output stream grew differently: %d vs %d", name, gd, gn)
				}
			}
		}

		// Observable side effects must match too: messenger deliveries.
		for _, ref := range []string{"email", "jabber"} {
			md, mn := wd.dev.Messengers[ref], wn.dev.Messengers[ref]
			if len(md.Outbox()) != len(mn.Outbox()) {
				fail(tick, "messenger %s outbox diverged: %d vs %d", ref, len(md.Outbox()), len(mn.Outbox()))
			}
		}
	}

	// The delta path must actually have been exercised (the whole point).
	for _, name := range names {
		qd, _ := wd.exec.Query(name)
		deltaTicks, naiveTicks := qd.EvalCounts()
		if deltaTicks == 0 {
			t.Errorf("seed %d: query %s never ran on the delta path (naive ticks: %d)", seed, name, naiveTicks)
		}
	}
}
