package cq_test

import (
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/query"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// TestDerivedRelationChaining: a continuous query's output is readable by
// later-registered queries under its name — continuous views.
func TestDerivedRelationChaining(t *testing.T) {
	s := newScenario(t)
	// Stage 1: hot readings (finite derived relation named "hot").
	hot, err := s.exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28)))))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2: alerts over the derived relation.
	alerts, err := s.exec.Register("alerts", query.NewInvoke(
		query.NewAssignConst(
			query.NewJoin(query.NewBase("contacts"), query.NewBase("hot")),
			"text", value.NewString("Hot!")),
		"sendMessage", ""))
	if err != nil {
		t.Fatal(err)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 4, Delta: 10})
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if hot.LastResult().Len() != 0 {
		t.Fatal("hot view should be empty after the event")
	}
	// 3 contacts × 1 hot episode, alerted once each via the derived view.
	if alerts.Actions().Len() != 3 {
		t.Fatalf("actions = %s", alerts.Actions())
	}
	total := len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3", total)
	}
}

func TestDerivedRelationLifecycle(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("v", query.NewBase("contacts")); err != nil {
		t.Fatal(err)
	}
	// A query may not shadow an existing relation name, nor vice versa.
	if _, err := s.exec.Register("contacts", query.NewBase("cameras")); err == nil {
		t.Fatal("query shadowing a relation accepted")
	}
	if x, ok := s.exec.Relation("v"); !ok || x == nil {
		t.Fatal("derived relation not visible")
	}
	if err := s.exec.Unregister("v"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.exec.Relation("v"); ok {
		t.Fatal("derived relation should disappear with its query")
	}
}

// TestStreamTrimming: with windowed readers registered, stream logs stay
// bounded by the largest window period instead of growing forever.
func TestStreamTrimming(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("w3", query.NewWindow(query.NewBase("temperatures"), 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("w10", query.NewWindow(query.NewBase("temperatures"), 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(99); err != nil {
		t.Fatal(err)
	}
	// 4 sensors × 100 instants = 400 events; retention = max window (10) +
	// slack, so the log must be far below 400 and at least 10 instants deep.
	temps, _ := s.exec.Relation("temperatures")
	if got := temps.EventCount(); got > 4*13 || got < 4*10 {
		t.Fatalf("trimmed log = %d events, want ≈ 4×11", got)
	}
	// The larger window still evaluates correctly after trimming.
	if q, _ := s.exec.Register("w10b", query.NewWindow(query.NewBase("temperatures"), 10)); q != nil {
		if err := s.exec.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		if q.LastResult().Len() != 4 {
			t.Fatalf("windowed result after trim = %d", q.LastResult().Len())
		}
	}
}

// TestNoTrimWithoutWindows: streams nobody windows are left intact.
func TestNoTrimWithoutWindows(t *testing.T) {
	s := newScenario(t)
	if err := s.exec.RunUntil(49); err != nil {
		t.Fatal(err)
	}
	temps, _ := s.exec.Relation("temperatures")
	if got := temps.EventCount(); got != 4*50 {
		t.Fatalf("untrimmed log = %d events, want 200", got)
	}
}

// TestUnregisterProducerWithConsumers: a query whose derived output is read
// by later-registered queries cannot be unregistered until its consumers are
// gone — tearing the producer out from under them would leave the consumers'
// base relation dangling.
func TestUnregisterProducerWithConsumers(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28))))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("watcher", query.NewJoin(
		query.NewBase("contacts"), query.NewBase("hot"))); err != nil {
		t.Fatal(err)
	}
	err := s.exec.Unregister("hot")
	if err == nil {
		t.Fatal("unregistering a producer with a live consumer must fail")
	}
	if !strings.Contains(err.Error(), "watcher") || !strings.Contains(err.Error(), `"hot"`) {
		t.Fatalf("error should name the consumer and the derived relation: %v", err)
	}
	// The refused removal must leave the pair fully functional.
	if err := s.exec.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	// Consumer first, then producer: both succeed.
	if err := s.exec.Unregister("watcher"); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.Unregister("hot"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.exec.Relation("hot"); ok {
		t.Fatal("derived relation should disappear with its query")
	}
}

// TestUnregisterMaterializedProducer: the consumer guard keys on the INTO
// target, not the query name.
func TestUnregisterMaterializedProducer(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.RegisterWith("feed", query.NewWindow(query.NewBase("temperatures"), 2),
		cq.RegisterOptions{Into: "recent"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("reader", query.NewBase("recent")); err != nil {
		t.Fatal(err)
	}
	err := s.exec.Unregister("feed")
	if err == nil || !strings.Contains(err.Error(), "reader") || !strings.Contains(err.Error(), `"recent"`) {
		t.Fatalf("unregister of INTO producer with consumer: %v", err)
	}
	if err := s.exec.Unregister("reader"); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.Unregister("feed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.exec.Relation("recent"); ok {
		t.Fatal("INTO relation should disappear with its producer")
	}
}

// TestMaterializedIntoGuards: INTO names live in the same namespace as
// relations and queries, and collisions are rejected at registration time.
func TestMaterializedIntoGuards(t *testing.T) {
	s := newScenario(t)
	w := func() query.Node { return query.NewWindow(query.NewBase("temperatures"), 1) }
	if _, err := s.exec.RegisterWith("q1", w(), cq.RegisterOptions{Into: "contacts"}); err == nil {
		t.Fatal("INTO colliding with a base relation accepted")
	}
	if _, err := s.exec.RegisterWith("q1", w(), cq.RegisterOptions{Into: "sys$x"}); err == nil {
		t.Fatal("INTO with reserved sys$ prefix accepted")
	}
	if _, err := s.exec.RegisterWith("q1", w(), cq.RegisterOptions{Into: "q1"}); err == nil {
		t.Fatal("INTO equal to the query's own name accepted")
	}
	if _, err := s.exec.RegisterWith("q1", w(), cq.RegisterOptions{Retain: -1}); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := s.exec.RegisterWith("q1", w(), cq.RegisterOptions{Into: "mat1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.RegisterWith("q2", w(), cq.RegisterOptions{Into: "mat1"}); err == nil {
		t.Fatal("duplicate INTO target accepted")
	}
	if _, err := s.exec.RegisterWith("q2", w(), cq.RegisterOptions{Into: "q1"}); err == nil {
		t.Fatal("INTO colliding with a registered query name accepted")
	}
	if _, err := s.exec.Register("mat1", w()); err == nil {
		t.Fatal("query named after an existing INTO relation accepted")
	}
	if x, ok := s.exec.Relation("mat1"); !ok || x == nil {
		t.Fatal("INTO relation not visible")
	}
}

// TestDerivedRetentionDefault: an infinite derived output nobody windows was
// previously never trimmed and grew without bound. It now falls back to the
// engine-default retention. 10k-tick soak.
func TestDerivedRetentionDefault(t *testing.T) {
	s := newScenario(t)
	// A counter stream producing one fresh tuple per instant, so the derived
	// insertion stream emits continuously for the whole soak.
	ticks := stream.NewInfinite(schema.MustExtended("ticks", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "n", Type: value.Int}},
	}, nil))
	if err := s.exec.AddRelation(ticks); err != nil {
		t.Fatal(err)
	}
	s.exec.AddSource(func(at service.Instant) error {
		return ticks.Insert(at, value.Tuple{value.NewInt(int64(at))})
	})
	if _, err := s.exec.Register("feed", query.NewStream(
		query.NewWindow(query.NewBase("ticks"), 1),
		query.StreamInsertion)); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(9999); err != nil {
		t.Fatal(err)
	}
	feed, ok := s.exec.Relation("feed")
	if !ok {
		t.Fatal("derived relation not visible")
	}
	// 10000 instants flowed through (one event each); retention keeps only
	// the newest DefaultDerivedRetention instants.
	horizon := int(cq.DefaultDerivedRetention)
	if got := feed.EventCount(); got > horizon || got < horizon-8 {
		t.Fatalf("derived log = %d events, want ≈ %d", got, horizon)
	}
}

// TestExplicitRetainTrimsFiniteOutput: RETAIN bounds a finite materialized
// relation's event log — window-based trimming never applies to finite
// relations, so without RETAIN the churn log would keep every tick's
// insert+delete pair forever.
func TestExplicitRetainTrimsFiniteOutput(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.RegisterWith("snap", query.NewWindow(query.NewBase("temperatures"), 1),
		cq.RegisterOptions{Into: "latest", Retain: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(99); err != nil {
		t.Fatal(err)
	}
	latest, _ := s.exec.Relation("latest")
	if len(latest.Current()) == 0 {
		t.Fatal("materialized window should hold the newest readings")
	}
	// Per tick the 1-instant window fully churns: ≈4 deletes + 4 inserts.
	// RETAIN 5 keeps only the newest 5 instants of that log.
	if got := latest.EventCount(); got > 8*6 {
		t.Fatalf("retained log = %d events, want ≤ %d", got, 8*6)
	}
}

// TestExecutorParallelInvocation: SetParallelism keeps continuous-query
// semantics (delta caches, actions) intact.
func TestExecutorParallelInvocation(t *testing.T) {
	s := newScenario(t)
	s.exec.SetParallelism(4)
	q, err := s.exec.Register("q3p", q3())
	if err != nil {
		t.Fatal(err)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 3, To: 6, Delta: 20})
	if err := s.exec.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	if q.Actions().Len() != 3 {
		t.Fatalf("actions = %s", q.Actions())
	}
	total := len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3 (once per contact per episode)", total)
	}
}
