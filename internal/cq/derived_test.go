package cq_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/query"
	"serena/internal/value"
)

// TestDerivedRelationChaining: a continuous query's output is readable by
// later-registered queries under its name — continuous views.
func TestDerivedRelationChaining(t *testing.T) {
	s := newScenario(t)
	// Stage 1: hot readings (finite derived relation named "hot").
	hot, err := s.exec.Register("hot", query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), 1),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(28)))))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2: alerts over the derived relation.
	alerts, err := s.exec.Register("alerts", query.NewInvoke(
		query.NewAssignConst(
			query.NewJoin(query.NewBase("contacts"), query.NewBase("hot")),
			"text", value.NewString("Hot!")),
		"sendMessage", ""))
	if err != nil {
		t.Fatal(err)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 2, To: 4, Delta: 10})
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if hot.LastResult().Len() != 0 {
		t.Fatal("hot view should be empty after the event")
	}
	// 3 contacts × 1 hot episode, alerted once each via the derived view.
	if alerts.Actions().Len() != 3 {
		t.Fatalf("actions = %s", alerts.Actions())
	}
	total := len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3", total)
	}
}

func TestDerivedRelationLifecycle(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("v", query.NewBase("contacts")); err != nil {
		t.Fatal(err)
	}
	// A query may not shadow an existing relation name, nor vice versa.
	if _, err := s.exec.Register("contacts", query.NewBase("cameras")); err == nil {
		t.Fatal("query shadowing a relation accepted")
	}
	if x, ok := s.exec.Relation("v"); !ok || x == nil {
		t.Fatal("derived relation not visible")
	}
	if err := s.exec.Unregister("v"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.exec.Relation("v"); ok {
		t.Fatal("derived relation should disappear with its query")
	}
}

// TestStreamTrimming: with windowed readers registered, stream logs stay
// bounded by the largest window period instead of growing forever.
func TestStreamTrimming(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("w3", query.NewWindow(query.NewBase("temperatures"), 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Register("w10", query.NewWindow(query.NewBase("temperatures"), 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(99); err != nil {
		t.Fatal(err)
	}
	// 4 sensors × 100 instants = 400 events; retention = max window (10) +
	// slack, so the log must be far below 400 and at least 10 instants deep.
	temps, _ := s.exec.Relation("temperatures")
	if got := temps.EventCount(); got > 4*13 || got < 4*10 {
		t.Fatalf("trimmed log = %d events, want ≈ 4×11", got)
	}
	// The larger window still evaluates correctly after trimming.
	if q, _ := s.exec.Register("w10b", query.NewWindow(query.NewBase("temperatures"), 10)); q != nil {
		if err := s.exec.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		if q.LastResult().Len() != 4 {
			t.Fatalf("windowed result after trim = %d", q.LastResult().Len())
		}
	}
}

// TestNoTrimWithoutWindows: streams nobody windows are left intact.
func TestNoTrimWithoutWindows(t *testing.T) {
	s := newScenario(t)
	if err := s.exec.RunUntil(49); err != nil {
		t.Fatal(err)
	}
	temps, _ := s.exec.Relation("temperatures")
	if got := temps.EventCount(); got != 4*50 {
		t.Fatalf("untrimmed log = %d events, want 200", got)
	}
}

// TestExecutorParallelInvocation: SetParallelism keeps continuous-query
// semantics (delta caches, actions) intact.
func TestExecutorParallelInvocation(t *testing.T) {
	s := newScenario(t)
	s.exec.SetParallelism(4)
	q, err := s.exec.Register("q3p", q3())
	if err != nil {
		t.Fatal(err)
	}
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 3, To: 6, Delta: 20})
	if err := s.exec.RunUntil(8); err != nil {
		t.Fatal(err)
	}
	if q.Actions().Len() != 3 {
		t.Fatalf("actions = %s", q.Actions())
	}
	total := len(s.dev.Messengers["email"].Outbox()) + len(s.dev.Messengers["jabber"].Outbox())
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3 (once per contact per episode)", total)
	}
}
