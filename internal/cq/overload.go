// Tick-level overload protection: bounded ingest drains, a tick deadline
// with overrun detection, and optional coalescing of passive-only queries
// when the previous tick overran its budget.
//
// The coalescing invariant is the algebra's: a query whose plan contains an
// active β — or whose output feeds one, directly or through any chain of
// derived views — is NEVER skipped, so the Definition 8 action set under
// overload is exactly the unloaded action set. Only pure-passive leaves of
// the dependency graph may be coalesced, and their skipped instants fold
// into the delta emitted at the next evaluated instant.
package cq

import (
	"time"

	"serena/internal/obs"
	"serena/internal/service"
	"serena/internal/stream"
)

var (
	obsTickOverruns    = obs.Default.Counter("cq.tick.overruns")
	obsCoalescedEvals  = obs.Default.Counter("cq.queries.coalesced")
	obsIngestDrained   = obs.Default.Counter("cq.ingest.drained")
	obsLastTickBudget  = obs.Default.Gauge("cq.tick.budget_ns")
	obsLastTickElapsed = obs.Default.Gauge("cq.tick.last_ns")
)

// SetTickBudget installs a soft deadline for one tick: a tick taking longer
// than d is recorded as an overrun (cq.tick.overruns in .metrics) and, when
// coalescing is enabled, the NEXT tick skips shedable passive-only queries
// to catch up. d <= 0 disables the budget (the default). The budget never
// aborts a running tick — cutting an active β mid-flight could lose an
// action result — it only informs the next instant's scheduling.
func (e *Executor) SetTickBudget(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tickBudget = d
	obsLastTickBudget.Set(int64(d))
}

// SetOverloadCoalescing enables (or disables) skipping passive-only queries
// for one instant after an overrun tick. Default off: overruns are then
// only counted.
func (e *Executor) SetOverloadCoalescing(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.coalescePassive = on
}

// TickOverruns returns how many ticks exceeded the budget so far.
func (e *Executor) TickOverruns() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tickOverruns
}

// Coalesced returns how many instants this query was skipped under
// overload coalescing.
func (q *Query) Coalesced() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.coalesced
}

// HasActive reports whether the query's plan contains an active β — such a
// query (and everything upstream of it) is exempt from every shedding
// mechanism.
func (q *Query) HasActive() bool { return q.hasActive }

func (q *Query) noteCoalesced() {
	q.mu.Lock()
	q.coalesced++
	q.mu.Unlock()
	obsCoalescedEvals.Inc()
}

// computeHasActive resolves each β node's prototype against the registry
// and marks the query when any is active. An unknown prototype counts as
// active: better to never shed a query we cannot prove passive.
func (e *Executor) computeHasActive(q *Query) {
	for _, inv := range q.invNodes {
		p, err := e.reg.Prototype(inv.Proto)
		if err != nil || p.Active {
			q.hasActive = true
			return
		}
	}
	q.hasActive = false
}

// shedableQueries returns, for one tick's query snapshot, which queries may
// be coalesced: passive-only queries whose output feeds no query with an
// active β, directly or transitively. Dependencies always point at earlier
// registrations, so one reverse pass propagates protection from every
// active query down to everything it reads.
// The dependency index is keyed by each query's OUTPUT relation name (the
// INTO target when set), matching how consumers reference their producers.
func shedableQueries(order []string, qs []*Query) []bool {
	idxOf := make(map[string]int, len(qs))
	for i, q := range qs {
		idxOf[q.OutName()] = i
	}
	protected := make([]bool, len(qs))
	for i, q := range qs {
		protected[i] = q.hasActive
	}
	for i := len(qs) - 1; i >= 0; i-- {
		if !protected[i] {
			continue
		}
		for _, dep := range planBaseNames(qs[i].plan) {
			if j, ok := idxOf[dep]; ok && j < i {
				protected[j] = true
			}
		}
	}
	shedable := make([]bool, len(qs))
	for i := range qs {
		shedable[i] = !protected[i]
	}
	return shedable
}

// drainIngest moves every relation's buffered producer tuples into the
// relation at the tick instant (after WAL BeginTick, before sources), so
// drained events are logged inside this tick's WAL window.
func (e *Executor) drainIngest(rels []*stream.XDRelation, at service.Instant) error {
	for _, r := range rels {
		n, err := r.DrainIngest(at)
		if err != nil {
			return err
		}
		if n > 0 {
			obsIngestDrained.Add(int64(n))
		}
	}
	return nil
}
