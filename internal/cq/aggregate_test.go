package cq_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/query"
)

// TestContinuousWindowedAggregate runs the Section 1.2 "mean temperature"
// query continuously: per instant, the mean reading per location over the
// last 3 instants.
func TestContinuousWindowedAggregate(t *testing.T) {
	s := newScenario(t)
	plan := query.NewAggregate(
		query.NewWindow(query.NewBase("temperatures"), 3),
		[]string{"location"},
		[]algebra.AggSpec{{Func: algebra.Mean, Attr: "temperature", As: "avgtemp"}})
	q, err := s.exec.Register("means", plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.exec.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	res := q.LastResult()
	if res.Len() != 3 { // corridor, office, roof
		t.Fatalf("groups = %d", res.Len())
	}
	sch := res.Schema()
	li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
	for _, tu := range res.Tuples() {
		if tu[li].Str() == "office" && tu[ai].Real() != 21.5 {
			t.Fatalf("office mean = %v, want 21.5", tu[ai])
		}
	}
	// Heat one office sensor; the mean shifts on the next ticks; after the
	// window slides past the event it returns to baseline.
	s.dev.Sensors["sensor06"].Heat(device.HeatEvent{From: 6, To: 6, Delta: 9}) // 21 → 30 for one instant
	if err := s.exec.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	got := officeMean(t, q.LastResult())
	// Window at τ=6 covers instants 4,5,6: office readings 21,22 ×3 with one
	// 30 → (21+22+21+22+30+22)/6 = 23. (Set semantics dedups the identical
	// 21/22 readings: values {21, 22, 30} → mean 24.333333.)
	if got != 24.333333 {
		t.Fatalf("heated office mean = %v", got)
	}
	if err := s.exec.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := officeMean(t, q.LastResult()); got != 21.5 {
		t.Fatalf("mean should return to baseline, got %v", got)
	}
}

func officeMean(t *testing.T, r *algebra.XRelation) float64 {
	t.Helper()
	sch := r.Schema()
	li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
	for _, tu := range r.Tuples() {
		if tu[li].Str() == "office" {
			return tu[ai].Real()
		}
	}
	t.Fatal("office group missing")
	return 0
}
