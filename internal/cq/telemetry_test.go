package cq_test

import (
	"strings"
	"testing"
	"time"

	"serena/internal/algebra"
	"serena/internal/cq"
	"serena/internal/device"
	"serena/internal/obs"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// telemetryEnv is a minimal executor with self-telemetry enabled FIRST, so
// the scraper source runs ahead of any feed source (the production wiring:
// EnableSelfTelemetry is called before streams are attached to sources).
type telemetryEnv struct {
	exec  *cq.Executor
	reg   *service.Registry
	tel   *cq.Telemetry
	temps *stream.XDRelation
	// feedUntil gates the temperature pump: instants > feedUntil are
	// silent, simulating a died feed.
	feedUntil service.Instant
}

func newTelemetryEnv(t *testing.T, opts cq.TelemetryOptions) *telemetryEnv {
	t.Helper()
	reg, _ := paperenv.MustRegistry()
	exec := cq.NewExecutor(reg)
	tel, err := exec.EnableSelfTelemetry(opts)
	if err != nil {
		t.Fatal(err)
	}
	env := &telemetryEnv{exec: exec, reg: reg, tel: tel, feedUntil: 1 << 30}
	env.temps = stream.NewInfinite(paperenv.TemperaturesSchema())
	if err := exec.AddRelation(env.temps); err != nil {
		t.Fatal(err)
	}
	exec.AddSource(func(at service.Instant) error {
		if at > env.feedUntil {
			return nil
		}
		return env.temps.Insert(at, value.Tuple{
			value.NewService("sensor01"), value.NewString("office"), value.NewReal(20),
		})
	})
	return env
}

func (env *telemetryEnv) tick(t *testing.T) service.Instant {
	t.Helper()
	at, err := env.exec.Tick()
	if err != nil {
		t.Fatal(err)
	}
	return at
}

// queryState returns the health snapshot entry for one query.
func (env *telemetryEnv) queryState(t *testing.T, name string) cq.QueryHealth {
	t.Helper()
	for _, qh := range env.tel.Health().Queries {
		if qh.Query == name {
			return qh
		}
	}
	t.Fatalf("query %q not in health snapshot", name)
	return cq.QueryHealth{}
}

func (env *telemetryEnv) streamState(t *testing.T, name string) cq.StreamHealth {
	t.Helper()
	for _, sh := range env.tel.Health().Streams {
		if sh.Stream == name {
			return sh
		}
	}
	t.Fatalf("stream %q not in health snapshot", name)
	return cq.StreamHealth{}
}

func TestTelemetryRelationsRegistered(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	for _, name := range []string{cq.SysMetrics, cq.SysHealth, cq.SysStreams} {
		x, ok := env.exec.Relation(name)
		if !ok {
			t.Fatalf("relation %s not registered", name)
		}
		if !x.Ephemeral() {
			t.Fatalf("relation %s must be ephemeral (never WAL-logged)", name)
		}
	}
	if env.tel.MetricsRelation() == nil || env.tel.HealthRelation() == nil || env.tel.StreamsRelation() == nil {
		t.Fatal("relation accessors returned nil")
	}
	if env.exec.Telemetry() != env.tel {
		t.Fatal("Executor.Telemetry() did not return the enabled subsystem")
	}
	if _, err := env.exec.EnableSelfTelemetry(cq.TelemetryOptions{}); err == nil {
		t.Fatal("second EnableSelfTelemetry must error")
	}
}

func TestSysPrefixReservedForQueries(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	_, err := env.exec.Register("sys$evil", query.NewBase(cq.SysHealth))
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("registering a sys$ query name must be rejected, got %v", err)
	}
}

// TestSysMetricsRowsAndDeltas checks the scrape's value/delta semantics
// against a private registry with a fully controlled counter.
func TestSysMetricsRowsAndDeltas(t *testing.T) {
	reg := obs.New()
	env := newTelemetryEnv(t, cq.TelemetryOptions{Registry: reg})
	c := reg.Counter("test.widgets")
	c.Add(5)
	at0 := env.tick(t)
	c.Add(3)
	at1 := env.tick(t)

	find := func(at service.Instant) (val, delta float64) {
		t.Helper()
		for _, tu := range env.tel.MetricsRelation().InsertedIn(at-1, at) { // (from, to]
			if tu[0].Str() == "test.widgets" {
				if k := tu[1].Str(); k != "counter" {
					t.Fatalf("kind = %q, want counter", k)
				}
				return tu[2].Real(), tu[3].Real()
			}
		}
		t.Fatalf("no sys$metrics row for test.widgets at %d", at)
		return 0, 0
	}
	if v, d := find(at0); v != 5 || d != 5 {
		t.Fatalf("first scrape: value=%v delta=%v, want 5/5", v, d)
	}
	if v, d := find(at1); v != 8 || d != 3 {
		t.Fatalf("second scrape: value=%v delta=%v, want 8/3", v, d)
	}
}

// TestQueryOverSysMetrics is the headline behaviour: REGISTER QUERY works
// over engine health exactly like over a device feed.
func TestQueryOverSysMetrics(t *testing.T) {
	reg := obs.New()
	env := newTelemetryEnv(t, cq.TelemetryOptions{Registry: reg})
	c := reg.Counter("test.widgets")
	c.Inc()
	q, err := env.exec.Register("meter", query.NewSelect(
		query.NewWindow(query.NewBase(cq.SysMetrics), 4),
		algebra.Compare(algebra.Attr("metric"), algebra.Eq, algebra.Const(value.NewString("test.widgets")))))
	if err != nil {
		t.Fatal(err)
	}
	env.tick(t)
	if q.LastResult().Len() != 1 {
		t.Fatalf("query over sys$metrics = %d tuples, want 1", q.LastResult().Len())
	}
	c.Inc()
	env.tick(t)
	if q.LastResult().Len() != 2 {
		t.Fatalf("after two scrapes = %d tuples, want 2", q.LastResult().Len())
	}
	// An unchanged metric contributes no new row (sys$metrics is a change
	// stream), but the window still holds the earlier ones.
	env.tick(t)
	if q.LastResult().Len() != 2 {
		t.Fatalf("after an idle scrape = %d tuples, want 2", q.LastResult().Len())
	}
}

// TestSysMetricsRetention checks the pseudo-window trim horizon bounds the
// sys$metrics event log.
func TestSysMetricsRetention(t *testing.T) {
	reg := obs.New()
	env := newTelemetryEnv(t, cq.TelemetryOptions{Registry: reg, Retention: 2})
	c := reg.Counter("test.widgets")
	for i := 0; i < 12; i++ {
		c.Inc() // one fresh row per scrape
		env.tick(t)
	}
	// One metric row per scrape; with retention 2 the trimmer keeps only
	// the last few instants' events, not all 12.
	if n := env.tel.MetricsRelation().EventCount(); n > 4 {
		t.Fatalf("sys$metrics holds %d events after 12 ticks with retention 2", n)
	}
}

func TestQueryHealthDegradedOnInvokeErrors(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	// Replace sensor01 with a variant failing at instants 0..1.
	if err := env.reg.Unregister("sensor01"); err != nil {
		t.Fatal(err)
	}
	flaky := &brokenSensor{Sensor: device.NewSensor("sensor01", "corridor", 19), failFrom: 0, failTo: 1}
	if err := env.reg.Register(flaky); err != nil {
		t.Fatal(err)
	}
	sensors := stream.NewFinite(paperenv.SensorsSchema())
	for _, tu := range paperenv.Sensors().Tuples() {
		if err := sensors.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.exec.AddRelation(sensors); err != nil {
		t.Fatal(err)
	}
	if _, err := env.exec.Register("poll", query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")); err != nil {
		t.Fatal(err)
	}

	env.tick(t) // instant 0: scrape sees a fresh query (OK), eval fails after
	if st := env.queryState(t, "poll"); st.State != cq.HealthOK {
		t.Fatalf("before first eval: state = %s, want OK", st.State)
	}
	env.tick(t) // instant 1: scrape sees instant 0's failure
	st := env.queryState(t, "poll")
	if st.State != cq.HealthDegraded {
		t.Fatalf("after invoke failure: state = %s, want DEGRADED", st.State)
	}
	if !strings.Contains(st.Reason, "invocation failure") {
		t.Fatalf("reason = %q", st.Reason)
	}
	if st.InvokeErrors == 0 {
		t.Fatal("InvokeErrors not carried into the snapshot")
	}
	env.tick(t) // instant 2: scrape sees instant 1's failure, still DEGRADED
	env.tick(t) // instant 3: instant 2 succeeded → back to OK
	if st := env.queryState(t, "poll"); st.State != cq.HealthOK {
		t.Fatalf("after recovery: state = %s, want OK", st.State)
	}

	// Edge-triggered: OK insert, OK→DEGRADED (delete+insert), DEGRADED→OK
	// (delete+insert) — exactly 5 events despite 4 scrapes.
	if n := env.tel.HealthRelation().EventCount(); n != 5 {
		t.Fatalf("sys$health events = %d, want 5 (edge-triggered reconciliation)", n)
	}
}

func TestQueryHealthOverloadedOnBudget(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	if _, err := env.exec.Register("w", query.NewWindow(query.NewBase("temperatures"), 4)); err != nil {
		t.Fatal(err)
	}
	env.exec.SetTickBudget(time.Nanosecond) // any evaluation overruns
	env.tick(t)                             // instant 0: first eval, latency recorded
	env.tick(t)                             // instant 1: scrape sees the overrun
	st := env.queryState(t, "w")
	if st.State != cq.HealthOverloaded {
		t.Fatalf("state = %s, want OVERLOADED", st.State)
	}
	if !strings.Contains(st.Reason, "tick budget") {
		t.Fatalf("reason = %q", st.Reason)
	}
	env.exec.SetTickBudget(time.Hour)
	env.tick(t)
	env.tick(t)
	if st := env.queryState(t, "w"); st.State != cq.HealthOK {
		t.Fatalf("after budget relaxed: state = %s, want OK", st.State)
	}
}

func TestQueryHealthOverloadedOnCoalescing(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	q, err := env.exec.Register("w", query.NewWindow(query.NewBase("temperatures"), 4))
	if err != nil {
		t.Fatal(err)
	}
	env.exec.SetTickBudget(time.Nanosecond)
	env.exec.SetOverloadCoalescing(true)
	for i := 0; i < 4; i++ {
		env.tick(t)
	}
	if q.Coalesced() == 0 {
		t.Skip("coalescing did not engage on this machine")
	}
	st := env.queryState(t, "w")
	if st.State != cq.HealthOverloaded {
		t.Fatalf("state = %s, want OVERLOADED", st.State)
	}
	if st.Coalesced == 0 {
		t.Fatal("Coalesced not carried into the snapshot")
	}
}

func TestQueryHealthDegradedOnNaiveFallback(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	q, err := env.exec.Register("w", query.NewWindow(query.NewBase("temperatures"), 4))
	if err != nil {
		t.Fatal(err)
	}
	env.tick(t)
	env.tick(t)
	if st := env.queryState(t, "w"); st.State != cq.HealthOK {
		t.Fatalf("delta path healthy: state = %s, want OK", st.State)
	}
	if q.EvaluationMode() != "delta" {
		t.Skip("plan has no delta form; fallback rule not exercisable")
	}
	if err := env.exec.SetNaiveEvaluation("w", true); err != nil {
		t.Fatal(err)
	}
	env.tick(t) // instant 2: evaluated naive
	env.tick(t) // instant 3: scrape sees naiveTicks grow while delta exists
	st := env.queryState(t, "w")
	if st.State != cq.HealthDegraded {
		t.Fatalf("state = %s, want DEGRADED", st.State)
	}
	if !strings.Contains(st.Reason, "naive") {
		t.Fatalf("reason = %q", st.Reason)
	}
}

func TestQueryHealthDegradedOnOpenBreaker(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	sensors := stream.NewFinite(paperenv.SensorsSchema())
	for _, tu := range paperenv.Sensors().Tuples() {
		if err := sensors.Insert(0, tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.exec.AddRelation(sensors); err != nil {
		t.Fatal(err)
	}
	if _, err := env.exec.Register("poll", query.NewInvoke(query.NewBase("sensors"), "getTemperature", "")); err != nil {
		t.Fatal(err)
	}
	bs := env.reg.EnableBreakers(resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	env.tick(t)
	if st := env.queryState(t, "poll"); st.State != cq.HealthOK {
		t.Fatalf("closed breakers: state = %s, want OK", st.State)
	}
	bs.OnResult("sensor01", false) // trips open (threshold 1)
	env.tick(t)
	st := env.queryState(t, "poll")
	if st.State != cq.HealthDegraded {
		t.Fatalf("open breaker: state = %s, want DEGRADED", st.State)
	}
	if !strings.Contains(st.Reason, "sensor01") || !strings.Contains(st.Reason, "getTemperature") {
		t.Fatalf("reason = %q, want breaker blame", st.Reason)
	}
}

func TestStreamDeadMan(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	env.tel.SetStreamCadence("temperatures", 2)
	env.feedUntil = 2 // pump instants 0..2, then silence

	// Register the paper-style dead-man alert: one insertion per transition.
	alert, err := env.exec.Register("deadman", query.NewStream(
		query.NewSelect(query.NewBase(cq.SysStreams),
			algebra.Compare(algebra.Attr("state"), algebra.Eq, algebra.Const(value.NewString("STALLED")))),
		query.StreamInsertion))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i <= 4; i++ {
		env.tick(t)
		if st := env.streamState(t, "temperatures"); st.State != cq.HealthOK {
			t.Fatalf("instant %d: state = %s, want OK (lag within cadence)", i, st.State)
		}
		if alert.LastResult().Len() != 0 {
			t.Fatalf("instant %d: dead-man fired early", i)
		}
	}
	at := env.tick(t) // instant 5: lag 3 > cadence 2 → STALLED
	st := env.streamState(t, "temperatures")
	if st.State != cq.HealthStalled {
		t.Fatalf("instant %d: state = %s, want STALLED", at, st.State)
	}
	if st.Lag != 3 || st.Cadence != 2 {
		t.Fatalf("lag=%d cadence=%d, want 3/2", st.Lag, st.Cadence)
	}
	if alert.LastResult().Len() != 1 {
		t.Fatalf("dead-man alert = %d tuples, want exactly 1 on the transition", alert.LastResult().Len())
	}
	env.tick(t) // instant 6: still stalled, but edge-triggered → no new insertion
	if alert.LastResult().Len() != 0 {
		t.Fatalf("dead-man re-fired while state unchanged")
	}

	// Resume the feed: the pump runs after the scraper, so recovery is
	// visible one instant later.
	env.feedUntil = 1 << 30
	env.tick(t) // instant 7: pump refills after scrape
	env.tick(t) // instant 8: scrape sees lag 1 → OK
	if st := env.streamState(t, "temperatures"); st.State != cq.HealthOK {
		t.Fatalf("after feed resumed: state = %s, want OK", st.State)
	}
}

// TestStalledInputStreamStallsQuery: a query reading a dead stream is
// itself STALLED — the worst state wins over any other rule.
func TestStalledInputStreamStallsQuery(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	env.tel.SetStreamCadence("temperatures", 2)
	env.feedUntil = 2
	if _, err := env.exec.Register("w", query.NewWindow(query.NewBase("temperatures"), 8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		env.tick(t)
	}
	st := env.queryState(t, "w")
	if st.State != cq.HealthStalled {
		t.Fatalf("state = %s, want STALLED", st.State)
	}
	if !strings.Contains(st.Reason, "temperatures") {
		t.Fatalf("reason = %q, want the silent stream named", st.Reason)
	}
}

func TestStreamNeverProduced(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	silent := stream.NewInfinite(schema.MustExtended("void", []schema.ExtAttr{
		{Attribute: schema.Attribute{Name: "n", Type: value.Int}},
	}, nil))
	if err := env.exec.AddRelation(silent); err != nil {
		t.Fatal(err)
	}
	env.tel.SetStreamCadence("void", 1)
	env.tick(t) // instant 0: effective lag 1, not yet past cadence
	env.tick(t) // instant 1: effective lag 2 > 1 → STALLED
	st := env.streamState(t, "void")
	if st.State != cq.HealthStalled {
		t.Fatalf("state = %s, want STALLED", st.State)
	}
	if st.Lag != cq.LagNeverProduced {
		t.Fatalf("lag = %d, want LagNeverProduced (%d)", st.Lag, cq.LagNeverProduced)
	}
	// Satellite fix: the cq.stream.lag gauge uses the explicit sentinel,
	// not the old at+1 encoding.
	if g := obs.Default.Gauge(obs.Key("cq.stream.lag", "void")).Value(); g != cq.LagNeverProduced {
		t.Fatalf("cq.stream.lag gauge = %d, want %d", g, cq.LagNeverProduced)
	}
}

func TestCadenceRemovalClearsStall(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	env.tel.SetStreamCadence("temperatures", 1)
	env.feedUntil = 0
	env.tick(t)
	env.tick(t)
	env.tick(t)
	if st := env.streamState(t, "temperatures"); st.State != cq.HealthStalled {
		t.Fatalf("state = %s, want STALLED", st.State)
	}
	env.tel.SetStreamCadence("temperatures", 0) // dead-man off
	env.tick(t)
	if st := env.streamState(t, "temperatures"); st.State != cq.HealthOK {
		t.Fatalf("after cadence removed: state = %s, want OK", st.State)
	}
}

func TestUnregisterRetractsHealthTuple(t *testing.T) {
	env := newTelemetryEnv(t, cq.TelemetryOptions{})
	if _, err := env.exec.Register("w", query.NewWindow(query.NewBase("temperatures"), 4)); err != nil {
		t.Fatal(err)
	}
	env.tick(t)
	if n := len(env.tel.HealthRelation().Current()); n != 1 {
		t.Fatalf("sys$health holds %d tuples, want 1", n)
	}
	if err := env.exec.Unregister("w"); err != nil {
		t.Fatal(err)
	}
	env.tick(t)
	if n := len(env.tel.HealthRelation().Current()); n != 0 {
		t.Fatalf("sys$health holds %d tuples after unregister, want 0", n)
	}
	if len(env.tel.Health().Queries) != 0 {
		t.Fatal("health snapshot still lists the unregistered query")
	}
}

// TestScrapeInterval: with Interval 3 the scraper only feeds sys$metrics
// every third instant.
func TestScrapeInterval(t *testing.T) {
	reg := obs.New()
	env := newTelemetryEnv(t, cq.TelemetryOptions{Registry: reg, Interval: 3})
	c := reg.Counter("test.widgets")
	for i := 0; i < 6; i++ {
		c.Inc() // changes every instant, but only scrapes sample it
		env.tick(t)
	}
	rows := 0
	for _, tu := range env.tel.MetricsRelation().InsertedIn(-1, 5) {
		if tu[0].Str() == "test.widgets" {
			rows++
		}
	}
	if rows != 2 { // instants 0 and 3
		t.Fatalf("scrapes in 6 instants at interval 3 = %d, want 2", rows)
	}
}
