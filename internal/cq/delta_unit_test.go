package cq_test

import (
	"strings"
	"testing"

	"serena/internal/algebra"
	"serena/internal/obs"
	"serena/internal/query"
	"serena/internal/value"
)

// hotPlan is the recurring test shape: hot readings over a short window.
func hotPlan(period int64) query.Node {
	return query.NewSelect(
		query.NewWindow(query.NewBase("temperatures"), period),
		algebra.Compare(algebra.Attr("temperature"), algebra.Gt, algebra.Const(value.NewReal(20))))
}

func TestSetNaiveEvaluationUnknownQuery(t *testing.T) {
	s := newScenario(t)
	if err := s.exec.SetNaiveEvaluation("nope", true); err == nil {
		t.Fatal("SetNaiveEvaluation on an unregistered query did not error")
	}
}

// TestEvaluationModeFlips pins the control surface: a compiled query runs
// delta by default, SetNaiveEvaluation moves it between evaluators mid-run,
// and EvalCounts attributes each tick to the path that actually ran it.
func TestEvaluationModeFlips(t *testing.T) {
	s := newScenario(t)
	q, err := s.exec.Register("hot", hotPlan(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.EvaluationMode(); got != "delta" {
		t.Fatalf("fresh query mode = %q, want delta", got)
	}
	tick := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := s.exec.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	tick(3)
	if d, n := q.EvalCounts(); d != 3 || n != 0 {
		t.Fatalf("after 3 delta ticks EvalCounts = (%d, %d), want (3, 0)", d, n)
	}

	if err := s.exec.SetNaiveEvaluation("hot", true); err != nil {
		t.Fatal(err)
	}
	if got := q.EvaluationMode(); got != "naive" {
		t.Fatalf("pinned query mode = %q, want naive", got)
	}
	tick(2)
	if d, n := q.EvalCounts(); d != 3 || n != 2 {
		t.Fatalf("after naive pin EvalCounts = (%d, %d), want (3, 2)", d, n)
	}

	// Flipping back must not trust stale operator state: the next delta
	// tick is a re-init (the naive ticks advanced the world underneath).
	reinits := obs.Default.Counter("cq.delta.reinits").Value()
	if err := s.exec.SetNaiveEvaluation("hot", false); err != nil {
		t.Fatal(err)
	}
	tick(1)
	if d, n := q.EvalCounts(); d != 4 || n != 2 {
		t.Fatalf("after unpin EvalCounts = (%d, %d), want (4, 2)", d, n)
	}
	if got := obs.Default.Counter("cq.delta.reinits").Value() - reinits; got != 1 {
		t.Fatalf("unpinning recorded %d re-inits, want 1", got)
	}
}

// TestDeltaMetricsSplit verifies the renamed observability families stay
// disjoint: cq.invoke_cache.* counts Section 4.2 memo traffic on either
// evaluator, while cq.delta.* moves only with the incremental path
// (fallback_ticks counting the instants a delta-capable query ran naive).
func TestDeltaMetricsSplit(t *testing.T) {
	s := newScenario(t)
	if _, err := s.exec.Register("photos",
		query.NewInvoke(query.NewBase("cameras"), "checkPhoto", "camera")); err != nil {
		t.Fatal(err)
	}
	read := func() (ticks, fallback, hits, misses int64) {
		return obs.Default.Counter("cq.delta.ticks").Value(),
			obs.Default.Counter("cq.delta.fallback_ticks").Value(),
			obs.Default.Counter("cq.invoke_cache.hits").Value(),
			obs.Default.Counter("cq.invoke_cache.misses").Value()
	}

	// Instant 0, delta path: re-init invokes all three cameras (misses).
	ticks0, fb0, hits0, miss0 := read()
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	ticks1, fb1, hits1, miss1 := read()
	if ticks1-ticks0 != 1 || fb1 != fb0 {
		t.Fatalf("delta tick moved (ticks, fallback) by (%d, %d), want (1, 0)", ticks1-ticks0, fb1-fb0)
	}
	if miss1-miss0 != 3 || hits1 != hits0 {
		t.Fatalf("re-init moved (hits, misses) by (%d, %d), want (0, 3)", hits1-hits0, miss1-miss0)
	}

	// Instant 1, steady delta tick: cameras are unchanged, so persisting
	// tuples never consult the cache at all.
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	ticks2, _, hits2, miss2 := read()
	if ticks2-ticks1 != 1 {
		t.Fatalf("steady tick moved cq.delta.ticks by %d, want 1", ticks2-ticks1)
	}
	if hits2 != hits1 || miss2 != miss1 {
		t.Fatalf("steady delta tick moved cache counters by (%d, %d), want (0, 0)", hits2-hits1, miss2-miss1)
	}

	// Pinned naive: the re-evaluate-then-diff path re-consults the memo for
	// every camera (three hits), and the instant counts as a fallback tick.
	if err := s.exec.SetNaiveEvaluation("photos", true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	ticks3, fb3, hits3, miss3 := read()
	if ticks3 != ticks2 || fb3-fb1 != 1 {
		t.Fatalf("naive tick moved (ticks, fallback) by (%d, %d), want (0, 1)", ticks3-ticks2, fb3-fb1)
	}
	if hits3-hits2 != 3 || miss3 != miss2 {
		t.Fatalf("naive tick moved (hits, misses) by (%d, %d), want (3, 0)", hits3-hits2, miss3-miss2)
	}
}

// TestDeltaReinitOnTickGap: a query that skips instants (overload
// coalescing, replay AdvanceTo) cannot catch up from the event log —
// window back-events may be trimmed — so the next delta tick must rebuild,
// and the rebuilt result must match a naive twin exactly.
func TestDeltaReinitOnTickGap(t *testing.T) {
	s := newScenario(t)
	qd, err := s.exec.Register("hot_delta", hotPlan(2))
	if err != nil {
		t.Fatal(err)
	}
	qn, err := s.exec.Register("hot_naive", hotPlan(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.exec.SetNaiveEvaluation("hot_naive", true); err != nil {
		t.Fatal(err)
	}
	reinits := func() int64 { return obs.Default.Counter("cq.delta.reinits").Value() }

	base := reinits()
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := reinits() - base; got != 1 {
		t.Fatalf("first tick recorded %d re-inits, want 1", got)
	}
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := reinits() - base; got != 1 {
		t.Fatalf("steady tick re-inited (total %d)", got)
	}

	// Jump the clock: the next tick's instant is not lastAt+1.
	s.exec.AdvanceTo(s.exec.Now() + 3)
	if _, err := s.exec.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := reinits() - base; got != 2 {
		t.Fatalf("gap tick recorded %d total re-inits, want 2", got)
	}
	if d, n := qd.EvalCounts(); d != 3 || n != 0 {
		t.Fatalf("gap must stay on the delta path: EvalCounts = (%d, %d)", d, n)
	}
	if !qd.LastResult().EqualContents(qn.LastResult()) {
		t.Fatalf("post-gap results diverged:\ndelta:\n%s\nnaive:\n%s",
			qd.LastResult().Table(), qn.LastResult().Table())
	}
}

// TestDeltaReport checks the EXPLAIN ANALYZE surface: one line per
// operator in plan order, live tick/re-init totals, and per-operator call
// counts matching the instants evaluated.
func TestDeltaReport(t *testing.T) {
	s := newScenario(t)
	q, err := s.exec.Register("hot", hotPlan(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.exec.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	rep := q.DeltaReport()
	if rep == "" {
		t.Fatal("delta query rendered an empty report")
	}
	lines := strings.Split(strings.TrimRight(rep, "\n"), "\n")
	// Header + σ + W (the windowed base folds into one operator).
	if len(lines) != 3 {
		t.Fatalf("report has %d lines, want 3:\n%s", len(lines), rep)
	}
	if !strings.Contains(lines[0], "4 tick(s)") || !strings.Contains(lines[0], "1 re-init(s)") {
		t.Fatalf("report header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "calls=4") {
			t.Fatalf("operator line %q missing calls=4", l)
		}
		if !strings.Contains(l, "rows_in=") || !strings.Contains(l, "rows_out=") {
			t.Fatalf("operator line %q missing row counters", l)
		}
	}
	// The two operator labels appear in plan order: σ above its window.
	if !strings.Contains(lines[1], "select") && !strings.Contains(lines[1], "σ") {
		t.Fatalf("first operator line %q is not the selection", lines[1])
	}
	if !strings.Contains(lines[2], "window") && !strings.Contains(lines[2], "W[") {
		t.Fatalf("second operator line %q is not the window", lines[2])
	}
}
