package paperenv_test

import (
	"testing"

	"serena/internal/paperenv"
)

func TestFixturesMatchPaper(t *testing.T) {
	// Table 1: 9 services over 4 prototypes.
	reg, dev := paperenv.MustRegistry()
	if got := len(reg.Refs()); got != 9 {
		t.Fatalf("services = %d, want 9", got)
	}
	if got := len(reg.Prototypes()); got != 4 {
		t.Fatalf("prototypes = %d, want 4", got)
	}
	if got := reg.Implementing("getTemperature"); len(got) != 4 {
		t.Fatalf("temperature sensors = %v", got)
	}
	if got := reg.Implementing("checkPhoto"); len(got) != 3 {
		t.Fatalf("cameras = %v", got)
	}
	if got := reg.Implementing("sendMessage"); len(got) != 2 {
		t.Fatalf("messengers = %v", got)
	}
	if len(dev.Sensors) != 4 || len(dev.Cameras) != 3 || len(dev.Messengers) != 2 {
		t.Fatal("device handles incomplete")
	}

	// Example 4 data: three contacts, Carla via email.
	contacts := paperenv.Contacts()
	if contacts.Len() != 3 {
		t.Fatalf("contacts = %d", contacts.Len())
	}
	// Section 1.2 data: four sensors across three locations.
	sensors := paperenv.Sensors()
	if sensors.Len() != 4 {
		t.Fatalf("sensors = %d", sensors.Len())
	}
	// Schemas carry the paper's binding patterns.
	if _, err := contacts.Schema().FindBP("sendMessage", "messenger"); err != nil {
		t.Fatal(err)
	}
	cam := paperenv.Cameras()
	if len(cam.Schema().BindingPatterns()) != 2 {
		t.Fatal("cameras must carry two binding patterns")
	}
	// Active/passive tags per Table 1.
	send, _ := contacts.Schema().FindBP("sendMessage", "")
	if !send.Active() {
		t.Fatal("sendMessage must be ACTIVE")
	}
	check, _ := cam.Schema().FindBP("checkPhoto", "")
	if check.Active() {
		t.Fatal("checkPhoto must be passive")
	}
	// Surveillance and temperatures schemas are plain.
	if len(paperenv.Surveillance().Schema().BindingPatterns()) != 0 {
		t.Fatal("surveillance should have no binding patterns")
	}
	if paperenv.TemperaturesSchema().RealArity() != 3 {
		t.Fatal("temperatures stream must have 3 real attributes")
	}
	// All sensors read below the 28 °C scenario threshold at instant 0.
	for ref, s := range dev.Sensors {
		if temp := s.TemperatureAt(0); temp >= 28 {
			t.Fatalf("%s base temperature %v too hot for the scenario", ref, temp)
		}
	}
}
