// Package paperenv builds the exact relational pervasive environment of the
// paper's temperature-surveillance scenario (Gripay et al., EDBT 2010,
// Sections 1.2, 2 and 5.2): the four prototypes and nine services of
// Table 1, the X-Relation schemas of Table 2, and the example data of the
// motivating tables. It is shared by tests, examples and benchmarks so the
// paper's Examples 4–7 and Table 4 queries can be replayed verbatim.
package paperenv

import (
	"serena/internal/algebra"
	"serena/internal/device"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/value"
)

// ContactsSchema returns the extended schema of the contacts X-Relation
// (Table 2 / Example 4): name, address, text VIRTUAL, messenger SERVICE,
// sent VIRTUAL, with binding pattern sendMessage[messenger].
func ContactsSchema() *schema.Extended {
	return schema.MustExtended("contacts",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "name", Type: value.String}},
			{Attribute: schema.Attribute{Name: "address", Type: value.String}},
			{Attribute: schema.Attribute{Name: "text", Type: value.String}, Virtual: true},
			{Attribute: schema.Attribute{Name: "messenger", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "sent", Type: value.Bool}, Virtual: true},
		},
		[]schema.BindingPattern{{Proto: device.SendMessageProto(), ServiceAttr: "messenger"}})
}

// CamerasSchema returns the extended schema of the cameras X-Relation
// (Table 2): camera SERVICE, area, quality VIRTUAL, delay VIRTUAL,
// photo VIRTUAL, with binding patterns checkPhoto[camera], takePhoto[camera].
func CamerasSchema() *schema.Extended {
	return schema.MustExtended("cameras",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "camera", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "area", Type: value.String}},
			{Attribute: schema.Attribute{Name: "quality", Type: value.Int}, Virtual: true},
			{Attribute: schema.Attribute{Name: "delay", Type: value.Real}, Virtual: true},
			{Attribute: schema.Attribute{Name: "photo", Type: value.Blob}, Virtual: true},
		},
		[]schema.BindingPattern{
			{Proto: device.CheckPhotoProto(), ServiceAttr: "camera"},
			{Proto: device.TakePhotoProto(), ServiceAttr: "camera"},
		})
}

// SensorsSchema returns the extended schema of the temperature-sensors
// X-Relation of Section 1.2: sensor SERVICE, location, temperature VIRTUAL,
// with binding pattern getTemperature[sensor].
func SensorsSchema() *schema.Extended {
	return schema.MustExtended("sensors",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "location", Type: value.String}},
			{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}, Virtual: true},
		},
		[]schema.BindingPattern{{Proto: device.GetTemperatureProto(), ServiceAttr: "sensor"}})
}

// SurveillanceSchema returns the plain relation of Section 5.2 indicating
// who manages which area: (name, location), no virtual attributes.
func SurveillanceSchema() *schema.Extended {
	return schema.MustExtended("surveillance",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "name", Type: value.String}},
			{Attribute: schema.Attribute{Name: "location", Type: value.String}},
		}, nil)
}

// TemperaturesSchema returns the schema of the temperatures stream of
// Section 1.2/Example 8: (sensor SERVICE, location STRING, temperature
// REAL), all real — readings materialized into the stream.
func TemperaturesSchema() *schema.Extended {
	return schema.MustExtended("temperatures",
		[]schema.ExtAttr{
			{Attribute: schema.Attribute{Name: "sensor", Type: value.Service}},
			{Attribute: schema.Attribute{Name: "location", Type: value.String}},
			{Attribute: schema.Attribute{Name: "temperature", Type: value.Real}},
		}, nil)
}

// Contacts returns the contacts X-Relation with the data of Example 4.
func Contacts() *algebra.XRelation {
	return algebra.MustNew(ContactsSchema(), []value.Tuple{
		{value.NewString("Nicolas"), value.NewString("nicolas@elysee.fr"), value.NewService("email")},
		{value.NewString("Carla"), value.NewString("carla@elysee.fr"), value.NewService("email")},
		{value.NewString("Francois"), value.NewString("francois@im.gouv.fr"), value.NewService("jabber")},
	})
}

// Cameras returns the cameras X-Relation over the scenario's three cameras.
func Cameras() *algebra.XRelation {
	return algebra.MustNew(CamerasSchema(), []value.Tuple{
		{value.NewService("camera01"), value.NewString("corridor")},
		{value.NewService("camera02"), value.NewString("office")},
		{value.NewService("webcam07"), value.NewString("roof")},
	})
}

// Sensors returns the sensors X-Relation with the data of Section 1.2.
func Sensors() *algebra.XRelation {
	return algebra.MustNew(SensorsSchema(), []value.Tuple{
		{value.NewService("sensor01"), value.NewString("corridor")},
		{value.NewService("sensor06"), value.NewString("office")},
		{value.NewService("sensor07"), value.NewString("office")},
		{value.NewService("sensor22"), value.NewString("roof")},
	})
}

// Surveillance returns the surveillance relation of Section 5.2 ("Carla
// wants to know when the temperature in Nicolas's office exceeds 28°C").
func Surveillance() *algebra.XRelation {
	return algebra.MustNew(SurveillanceSchema(), []value.Tuple{
		{value.NewString("Carla"), value.NewString("office")},
		{value.NewString("Nicolas"), value.NewString("corridor")},
		{value.NewString("Francois"), value.NewString("roof")},
	})
}

// Devices bundles the concrete simulated devices of an Environment so tests
// can stimulate them (heat a sensor) and observe effects (messenger
// outboxes, camera shot counts).
type Devices struct {
	Sensors    map[string]*device.Sensor
	Cameras    map[string]*device.Camera
	Messengers map[string]*device.Messenger
}

// NewRegistry builds a registry holding the paper's 4 prototypes and 9
// services (Table 1): email, jabber, camera01, camera02, webcam07,
// sensor01, sensor06, sensor07, sensor22. Base temperatures are chosen so
// that, absent heat events, all sensors read below the scenario thresholds.
func NewRegistry() (*service.Registry, *Devices, error) {
	reg := service.NewRegistry()
	for _, p := range device.ScenarioPrototypes() {
		if err := reg.RegisterPrototype(p); err != nil {
			return nil, nil, err
		}
	}
	d := &Devices{
		Sensors:    map[string]*device.Sensor{},
		Cameras:    map[string]*device.Camera{},
		Messengers: map[string]*device.Messenger{},
	}
	sensors := []struct {
		ref, loc string
		base     float64
	}{
		{"sensor01", "corridor", 19},
		{"sensor06", "office", 21},
		{"sensor07", "office", 22},
		{"sensor22", "roof", 15},
	}
	for _, s := range sensors {
		sv := device.NewSensor(s.ref, s.loc, s.base)
		d.Sensors[s.ref] = sv
		if err := reg.Register(sv); err != nil {
			return nil, nil, err
		}
	}
	cams := []struct {
		ref, area string
		quality   int64
		delay     float64
	}{
		{"camera01", "corridor", 8, 0.2},
		{"camera02", "office", 7, 0.3},
		{"webcam07", "roof", 5, 0.5},
	}
	for _, c := range cams {
		cv := device.NewCamera(c.ref, c.area, c.quality, c.delay)
		d.Cameras[c.ref] = cv
		if err := reg.Register(cv); err != nil {
			return nil, nil, err
		}
	}
	for _, m := range []struct{ ref, kind string }{{"email", "email"}, {"jabber", "jabber"}} {
		mv := device.NewMessenger(m.ref, m.kind)
		d.Messengers[m.ref] = mv
		if err := reg.Register(mv); err != nil {
			return nil, nil, err
		}
	}
	return reg, d, nil
}

// MustRegistry is NewRegistry panicking on error.
func MustRegistry() (*service.Registry, *Devices) {
	reg, d, err := NewRegistry()
	if err != nil {
		panic(err)
	}
	return reg, d
}
