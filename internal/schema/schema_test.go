package schema

import (
	"strings"
	"testing"

	"serena/internal/value"
)

// Fixtures from the paper's temperature surveillance scenario (Examples 1-4).

func protoSendMessage() *Prototype {
	return MustPrototype("sendMessage",
		MustRel(Attribute{"address", value.String}, Attribute{"text", value.String}),
		MustRel(Attribute{"sent", value.Bool}),
		true)
}

func protoCheckPhoto() *Prototype {
	return MustPrototype("checkPhoto",
		MustRel(Attribute{"area", value.String}),
		MustRel(Attribute{"quality", value.Int}, Attribute{"delay", value.Real}),
		false)
}

func protoTakePhoto() *Prototype {
	return MustPrototype("takePhoto",
		MustRel(Attribute{"area", value.String}, Attribute{"quality", value.Int}),
		MustRel(Attribute{"photo", value.Blob}),
		false)
}

func protoGetTemperature() *Prototype {
	return MustPrototype("getTemperature",
		MustRel(),
		MustRel(Attribute{"temperature", value.Real}),
		false)
}

func contactSchema() *Extended {
	return MustExtended("contacts",
		[]ExtAttr{
			{Attribute{"name", value.String}, false},
			{Attribute{"address", value.String}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, false},
			{Attribute{"sent", value.Bool}, true},
		},
		[]BindingPattern{{Proto: protoSendMessage(), ServiceAttr: "messenger"}})
}

func camerasSchema() *Extended {
	return MustExtended("cameras",
		[]ExtAttr{
			{Attribute{"camera", value.Service}, false},
			{Attribute{"area", value.String}, false},
			{Attribute{"quality", value.Int}, true},
			{Attribute{"delay", value.Real}, true},
			{Attribute{"photo", value.Blob}, true},
		},
		[]BindingPattern{
			{Proto: protoCheckPhoto(), ServiceAttr: "camera"},
			{Proto: protoTakePhoto(), ServiceAttr: "camera"},
		})
}

func TestNewRelValidation(t *testing.T) {
	if _, err := NewRel(Attribute{"a", value.Int}, Attribute{"a", value.Real}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewRel(Attribute{"", value.Int}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRel(Attribute{"a", value.Null}); err == nil {
		t.Error("NULL type accepted")
	}
	r := MustRel(Attribute{"a", value.Int}, Attribute{"b", value.String})
	if r.Arity() != 2 || r.Index("b") != 1 || r.Index("z") != -1 || !r.Has("a") {
		t.Error("basic Rel accessors broken")
	}
	if k, ok := r.TypeOf("a"); !ok || k != value.Int {
		t.Error("TypeOf broken")
	}
}

func TestRelConforms(t *testing.T) {
	r := MustRel(Attribute{"a", value.Int}, Attribute{"b", value.Real}, Attribute{"c", value.Service})
	got, err := r.Conforms(value.Tuple{value.NewInt(1), value.NewInt(2), value.NewString("svc")})
	if err != nil {
		t.Fatalf("Conforms: %v", err)
	}
	if got[1].Kind() != value.Real || got[2].Kind() != value.Service {
		t.Errorf("coercions not applied: %v", got)
	}
	if _, err := r.Conforms(value.Tuple{value.NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := r.Conforms(value.Tuple{value.NewString("x"), value.NewReal(1), value.NewService("s")}); err == nil {
		t.Error("type mismatch accepted")
	}
	// NULL conforms anywhere.
	if _, err := r.Conforms(value.Tuple{value.NewNull(), value.NewNull(), value.NewNull()}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
}

func TestPrototypeValidation(t *testing.T) {
	out := MustRel(Attribute{"x", value.Int})
	if _, err := NewPrototype("", nil, out, false); err == nil {
		t.Error("empty prototype name accepted")
	}
	if _, err := NewPrototype("p", nil, nil, false); err == nil {
		t.Error("nil output accepted")
	}
	if _, err := NewPrototype("p", nil, MustRel(), false); err == nil {
		t.Error("empty output schema accepted (paper: Output ≠ ∅)")
	}
	if _, err := NewPrototype("p", MustRel(Attribute{"x", value.Int}), out, false); err == nil {
		t.Error("overlapping input/output accepted (paper: disjoint)")
	}
	p := MustPrototype("getTemperature", nil, MustRel(Attribute{"temperature", value.Real}), false)
	if p.Input.Arity() != 0 {
		t.Error("nil input should default to empty schema")
	}
}

func TestPrototypeString(t *testing.T) {
	s := protoSendMessage().String()
	want := "PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;"
	if s != want {
		t.Errorf("String() = %q\nwant       %q", s, want)
	}
	if strings.Contains(protoCheckPhoto().String(), "ACTIVE") {
		t.Error("passive prototype printed as ACTIVE")
	}
}

func TestExtendedContacts(t *testing.T) {
	c := contactSchema()
	if c.Arity() != 5 || c.RealArity() != 3 {
		t.Fatalf("arity = %d/%d, want 5/3", c.Arity(), c.RealArity())
	}
	if got := c.RealNames(); strings.Join(got, ",") != "name,address,messenger" {
		t.Errorf("RealNames = %v", got)
	}
	if got := c.VirtualNames(); strings.Join(got, ",") != "text,sent" {
		t.Errorf("VirtualNames = %v", got)
	}
	// δ_Contact(4)=3 in the paper's 1-based notation → messenger has real
	// coordinate 2 (0-based) as in Example 4.
	if c.RealIndex("messenger") != 2 {
		t.Errorf("RealIndex(messenger) = %d, want 2", c.RealIndex("messenger"))
	}
	if c.RealIndex("text") != -1 {
		t.Error("virtual attribute must have no real coordinate")
	}
	if c.AttrIndex("sent") != 4 || c.AttrIndex("nope") != -1 {
		t.Error("AttrIndex broken")
	}
	if !c.IsVirtual("sent") || c.IsVirtual("name") || !c.IsReal("name") || c.IsReal("text") {
		t.Error("real/virtual predicates broken")
	}
}

func TestExtendedProjectionOfTupleExample4(t *testing.T) {
	c := contactSchema()
	// t = (Nicolas, nicolas@elysee.fr, email); t[address,messenger] =
	// (nicolas@elysee.fr, email) per Example 4.
	tu := value.Tuple{value.NewString("Nicolas"), value.NewString("nicolas@elysee.fr"), value.NewService("email")}
	idx, err := c.RealIndexes([]string{"address", "messenger"})
	if err != nil {
		t.Fatal(err)
	}
	got := tu.Project(idx)
	if got[0].Str() != "nicolas@elysee.fr" || got[1].ServiceRef() != "email" {
		t.Errorf("projection = %v", got)
	}
	if _, err := c.RealIndexes([]string{"text"}); err == nil {
		t.Error("projection onto virtual attribute must error (Def. 4)")
	}
	if _, err := c.RealIndexes([]string{"ghost"}); err == nil {
		t.Error("projection onto unknown attribute must error")
	}
}

func TestExtendedValidation(t *testing.T) {
	send := protoSendMessage()
	base := []ExtAttr{
		{Attribute{"address", value.String}, false},
		{Attribute{"text", value.String}, true},
		{Attribute{"messenger", value.Service}, false},
		{Attribute{"sent", value.Bool}, true},
	}
	if _, err := NewExtended("x", base, []BindingPattern{{send, "messenger"}}); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name  string
		attrs []ExtAttr
		bps   []BindingPattern
	}{
		{"service attr missing", base[:2], []BindingPattern{{send, "messenger"}}},
		{"service attr virtual", []ExtAttr{
			{Attribute{"address", value.String}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, true},
			{Attribute{"sent", value.Bool}, true},
		}, []BindingPattern{{send, "messenger"}}},
		{"service attr wrong type", []ExtAttr{
			{Attribute{"address", value.String}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Int}, false},
			{Attribute{"sent", value.Bool}, true},
		}, []BindingPattern{{send, "messenger"}}},
		{"input attr missing", []ExtAttr{
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, false},
			{Attribute{"sent", value.Bool}, true},
		}, []BindingPattern{{send, "messenger"}}},
		{"output attr real", []ExtAttr{
			{Attribute{"address", value.String}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, false},
			{Attribute{"sent", value.Bool}, false},
		}, []BindingPattern{{send, "messenger"}}},
		{"output type mismatch", []ExtAttr{
			{Attribute{"address", value.String}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, false},
			{Attribute{"sent", value.Int}, true},
		}, []BindingPattern{{send, "messenger"}}},
		{"input type mismatch", []ExtAttr{
			{Attribute{"address", value.Int}, false},
			{Attribute{"text", value.String}, true},
			{Attribute{"messenger", value.Service}, false},
			{Attribute{"sent", value.Bool}, true},
		}, []BindingPattern{{send, "messenger"}}},
		{"duplicate bp", base, []BindingPattern{{send, "messenger"}, {send, "messenger"}}},
		{"duplicate attr", append(append([]ExtAttr{}, base...), base[0]), nil},
	}
	for _, c := range cases {
		if _, err := NewExtended("x", c.attrs, c.bps); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExtendedStringBPAllowsStringServiceAttr(t *testing.T) {
	// The paper's examples use string-typed identifiers as service refs;
	// STRING service attributes are accepted.
	send := protoSendMessage()
	_, err := NewExtended("x", []ExtAttr{
		{Attribute{"address", value.String}, false},
		{Attribute{"text", value.String}, true},
		{Attribute{"messenger", value.String}, false},
		{Attribute{"sent", value.Bool}, true},
	}, []BindingPattern{{send, "messenger"}})
	if err != nil {
		t.Errorf("STRING service attribute rejected: %v", err)
	}
}

func TestExtendedEqual(t *testing.T) {
	a, b := contactSchema(), contactSchema()
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(camerasSchema()) {
		t.Error("different schemas Equal")
	}
	// Same attributes, no BPs → not equal.
	noBPs := MustExtended("contacts", a.Attrs(), nil)
	if a.Equal(noBPs) {
		t.Error("schemas with different BP sets must not be Equal")
	}
}

func TestFindBP(t *testing.T) {
	cam := camerasSchema()
	bp, err := cam.FindBP("takePhoto", "")
	if err != nil || bp.Proto.Name != "takePhoto" {
		t.Fatalf("FindBP: %v", err)
	}
	if _, err := cam.FindBP("sendMessage", ""); err == nil {
		t.Error("unknown prototype accepted")
	}
	if _, err := cam.FindBP("takePhoto", "area"); err == nil {
		t.Error("wrong service attr accepted")
	}
	// Ambiguity: same prototype reachable via two service attributes.
	p := protoGetTemperature()
	amb := MustExtended("amb", []ExtAttr{
		{Attribute{"s1", value.Service}, false},
		{Attribute{"s2", value.Service}, false},
		{Attribute{"temperature", value.Real}, true},
	}, []BindingPattern{{p, "s1"}, {p, "s2"}})
	if _, err := amb.FindBP("getTemperature", ""); err == nil {
		t.Error("ambiguous FindBP must error")
	}
	if bp, err := amb.FindBP("getTemperature", "s2"); err != nil || bp.ServiceAttr != "s2" {
		t.Errorf("qualified FindBP failed: %v", err)
	}
}

func TestExtendedStringDDL(t *testing.T) {
	s := contactSchema().String()
	for _, frag := range []string{
		"EXTENDED RELATION contacts (",
		"text STRING VIRTUAL",
		"messenger SERVICE",
		"USING BINDING PATTERNS (",
		"sendMessage[messenger] ( address, text ) : ( sent )",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("DDL rendering missing %q in:\n%s", frag, s)
		}
	}
}

func TestFromRel(t *testing.T) {
	r := MustRel(Attribute{"a", value.Int}, Attribute{"b", value.String})
	e := FromRel("plain", r)
	if e.Arity() != 2 || e.RealArity() != 2 || len(e.BindingPatterns()) != 0 {
		t.Error("FromRel should yield an all-real, BP-free schema")
	}
	if e.Name() != "plain" || e.WithName("q").Name() != "q" {
		t.Error("naming broken")
	}
}
