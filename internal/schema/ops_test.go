package schema

import (
	"strings"
	"testing"

	"serena/internal/value"
)

func bpIDs(e *Extended) string {
	ids := make([]string, 0, len(e.BindingPatterns()))
	for _, bp := range e.BindingPatterns() {
		ids = append(ids, bp.ID())
	}
	return strings.Join(ids, ",")
}

func TestProjectSchemaKeepsValidBPs(t *testing.T) {
	cam := camerasSchema()
	// Keep everything checkPhoto needs; drop photo → takePhoto invalid.
	s, err := ProjectSchema(cam, []string{"camera", "area", "quality", "delay"})
	if err != nil {
		t.Fatal(err)
	}
	if got := bpIDs(s); got != "checkPhoto[camera]" {
		t.Errorf("BPs = %q, want checkPhoto[camera]", got)
	}
	if s.Arity() != 4 || s.RealArity() != 2 {
		t.Errorf("arity = %d/%d", s.Arity(), s.RealArity())
	}
}

func TestProjectSchemaDropsBPWhenServiceAttrGone(t *testing.T) {
	cam := camerasSchema()
	s, err := ProjectSchema(cam, []string{"area", "quality", "delay", "photo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BindingPatterns()) != 0 {
		t.Errorf("BPs should be gone without service attr, got %q", bpIDs(s))
	}
}

func TestProjectSchemaDropsBPWhenInputGone(t *testing.T) {
	cam := camerasSchema()
	s, err := ProjectSchema(cam, []string{"camera", "quality", "delay", "photo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BindingPatterns()) != 0 {
		t.Errorf("BPs need their input attrs, got %q", bpIDs(s))
	}
}

func TestProjectSchemaPreservesOrder(t *testing.T) {
	c := contactSchema()
	s, err := ProjectSchema(c, []string{"sent", "name"}) // order in Y irrelevant
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(s.Names(), ","); got != "name,sent" {
		t.Errorf("attribute order = %q, want schema order name,sent", got)
	}
}

func TestProjectSchemaErrors(t *testing.T) {
	c := contactSchema()
	if _, err := ProjectSchema(c, []string{"ghost"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := ProjectSchema(c, []string{"name", "name"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestRenameSchemaServiceAttr(t *testing.T) {
	c := contactSchema()
	s, err := RenameSchema(c, "messenger", "mess")
	if err != nil {
		t.Fatal(err)
	}
	if got := bpIDs(s); got != "sendMessage[mess]" {
		t.Errorf("BPs = %q, want sendMessage[mess]", got)
	}
	if !s.IsReal("mess") || s.Has("messenger") {
		t.Error("rename did not relabel attribute")
	}
}

func TestRenameSchemaInvalidatesBPUsingPrototypeAttr(t *testing.T) {
	c := contactSchema()
	// Renaming 'address' (an input of sendMessage) invalidates the BP: the
	// prototype still expects an attribute literally named "address".
	s, err := RenameSchema(c, "address", "addr")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BindingPatterns()) != 0 {
		t.Errorf("BP should be invalidated, got %q", bpIDs(s))
	}
	// Same for an output attribute.
	s2, err := RenameSchema(c, "sent", "ok")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.BindingPatterns()) != 0 {
		t.Errorf("BP should be invalidated by output rename, got %q", bpIDs(s2))
	}
}

func TestRenameSchemaErrors(t *testing.T) {
	c := contactSchema()
	if _, err := RenameSchema(c, "ghost", "x"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := RenameSchema(c, "name", "address"); err == nil {
		t.Error("existing target accepted")
	}
	if _, err := RenameSchema(c, "name", "name"); err == nil {
		t.Error("no-op rename accepted")
	}
}

func TestJoinSchemaStatuses(t *testing.T) {
	// r1: a real, v virtual; r2: v real, b real → v becomes real (implicit
	// realization), schema order r1 then r2-only.
	r1 := MustExtended("r1", []ExtAttr{
		{Attribute{"a", value.Int}, false},
		{Attribute{"v", value.Real}, true},
	}, nil)
	r2 := MustExtended("r2", []ExtAttr{
		{Attribute{"v", value.Real}, false},
		{Attribute{"b", value.String}, false},
	}, nil)
	s, err := JoinSchema(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(s.Names(), ","); got != "a,v,b" {
		t.Errorf("names = %q", got)
	}
	if !s.IsReal("v") {
		t.Error("real⋈virtual attribute must become real")
	}
	// virtual in both stays virtual
	r3 := MustExtended("r3", []ExtAttr{
		{Attribute{"a", value.Int}, false},
		{Attribute{"v", value.Real}, true},
	}, nil)
	s2, err := JoinSchema(r1, r3)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.IsVirtual("v") {
		t.Error("virtual⋈virtual attribute must stay virtual")
	}
}

func TestJoinSchemaTypeConflict(t *testing.T) {
	r1 := MustExtended("r1", []ExtAttr{{Attribute{"a", value.Int}, false}}, nil)
	r2 := MustExtended("r2", []ExtAttr{{Attribute{"a", value.String}, false}}, nil)
	if _, err := JoinSchema(r1, r2); err == nil {
		t.Error("URSA type conflict accepted")
	}
}

func TestJoinSchemaBPElimination(t *testing.T) {
	// contacts ⋈ relation providing real 'sent' → sendMessage BP eliminated
	// because its output attribute became real.
	c := contactSchema()
	other := MustExtended("done", []ExtAttr{
		{Attribute{"name", value.String}, false},
		{Attribute{"sent", value.Bool}, false},
	}, nil)
	s, err := JoinSchema(c, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BindingPatterns()) != 0 {
		t.Errorf("BP must be eliminated when output became real, got %q", bpIDs(s))
	}
}

func TestJoinSchemaBPUnionDedup(t *testing.T) {
	c1, c2 := contactSchema(), contactSchema()
	s, err := JoinSchema(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got := bpIDs(s); got != "sendMessage[messenger]" {
		t.Errorf("BP union should dedup, got %q", got)
	}
}

func TestSharedRealJoinAttrs(t *testing.T) {
	c := contactSchema()
	surveillance := MustExtended("surveillance", []ExtAttr{
		{Attribute{"name", value.String}, false},
		{Attribute{"location", value.String}, false},
	}, nil)
	got := SharedRealJoinAttrs(c, surveillance)
	if len(got) != 1 || got[0] != "name" {
		t.Errorf("SharedRealJoinAttrs = %v", got)
	}
	// virtual-on-one-side attrs don't imply a predicate
	other := MustExtended("o", []ExtAttr{{Attribute{"text", value.String}, false}}, nil)
	if got := SharedRealJoinAttrs(c, other); len(got) != 0 {
		t.Errorf("virtual-in-one attr must not be a join predicate, got %v", got)
	}
}

func TestAssignSchema(t *testing.T) {
	c := contactSchema()
	s, err := AssignSchema(c, "text", "")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsReal("text") {
		t.Error("assigned attribute must become real")
	}
	// sendMessage's outputs ({sent}) are still virtual → BP survives.
	if got := bpIDs(s); got != "sendMessage[messenger]" {
		t.Errorf("BPs = %q", got)
	}
	// Assigning 'sent' kills the BP (output no longer virtual).
	s2, err := AssignSchema(c, "sent", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.BindingPatterns()) != 0 {
		t.Errorf("BP must die when output assigned, got %q", bpIDs(s2))
	}
}

func TestAssignSchemaFromAttr(t *testing.T) {
	c := contactSchema()
	s, err := AssignSchema(c, "text", "address") // both STRING
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsReal("text") {
		t.Error("text should be real")
	}
	if _, err := AssignSchema(c, "text", "sent"); err == nil {
		t.Error("virtual source accepted")
	}
	if _, err := AssignSchema(c, "sent", "address"); err == nil {
		t.Error("type-incompatible assignment accepted")
	}
	if _, err := AssignSchema(c, "name", ""); err == nil {
		t.Error("assigning a real attribute accepted")
	}
	if _, err := AssignSchema(c, "ghost", ""); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestInvokeSchema(t *testing.T) {
	cam := camerasSchema()
	check, _ := cam.FindBP("checkPhoto", "")
	s, err := InvokeSchema(cam, check)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsReal("quality") || !s.IsReal("delay") || !s.IsVirtual("photo") {
		t.Error("invocation must realize exactly the BP outputs")
	}
	// checkPhoto consumed; takePhoto survives (photo still virtual, and its
	// input quality is now real — which is what enables invoking it next).
	if got := bpIDs(s); got != "takePhoto[camera]" {
		t.Errorf("BPs = %q, want takePhoto[camera]", got)
	}
	take, _ := s.FindBP("takePhoto", "")
	s2, err := InvokeSchema(s, take)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.IsReal("photo") || len(s2.BindingPatterns()) != 0 {
		t.Error("takePhoto invocation should realize photo and consume the BP")
	}
}

func TestInvokeSchemaPreconditions(t *testing.T) {
	cam := camerasSchema()
	take, _ := cam.FindBP("takePhoto", "")
	// quality (input of takePhoto) is virtual → precondition fails.
	if _, err := InvokeSchema(cam, take); err == nil {
		t.Error("invocation with virtual input accepted")
	}
	// BP not in BP(R).
	foreign := BindingPattern{Proto: protoSendMessage(), ServiceAttr: "camera"}
	if _, err := InvokeSchema(cam, foreign); err == nil {
		t.Error("foreign binding pattern accepted")
	}
}
