package schema

import (
	"fmt"
	"strings"

	"serena/internal/value"
)

// ExtAttr is one attribute of an extended relation schema together with its
// real/virtual status (Definition 2: {realSchema(R), virtualSchema(R)} is a
// partition of schema(R)).
type ExtAttr struct {
	Attribute
	Virtual bool
}

// String renders "name TYPE [VIRTUAL]" in Table 2 style.
func (a ExtAttr) String() string {
	if a.Virtual {
		return a.Attribute.String() + " VIRTUAL"
	}
	return a.Attribute.String()
}

// Extended is an extended relation schema (Definition 2): an ordered list of
// real and virtual attributes plus a finite set of binding patterns.
// Extended schemas are immutable once built; operators derive new schemas.
type Extended struct {
	name      string
	attrs     []ExtAttr
	index     map[string]int // name → position in attrs
	realIdx   map[string]int // name → position among real attributes (δ_R of Def. 4, 0-based)
	realCount int
	bps       []BindingPattern
	realRel   *Rel // cached layout of real attributes, the tuple schema
}

// NewExtended validates and builds an extended relation schema. Binding
// pattern constraints follow Definition 2:
//   - serviceAttr ∈ realSchema(R) and has type SERVICE or STRING,
//   - schema(Input_ψ) ⊆ schema(R) with matching types,
//   - schema(Output_ψ) ⊆ virtualSchema(R) with matching types.
func NewExtended(name string, attrs []ExtAttr, bps []BindingPattern) (*Extended, error) {
	e := &Extended{
		name:    name,
		attrs:   append([]ExtAttr(nil), attrs...),
		index:   make(map[string]int, len(attrs)),
		realIdx: make(map[string]int),
	}
	realAttrs := make([]Attribute, 0, len(attrs))
	for i, a := range e.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: %s: attribute %d has empty name", name, i+1)
		}
		if !a.Type.Valid() || a.Type == value.Null {
			return nil, fmt.Errorf("schema: %s: attribute %q has invalid type", name, a.Name)
		}
		if _, dup := e.index[a.Name]; dup {
			return nil, fmt.Errorf("schema: %s: duplicate attribute %q", name, a.Name)
		}
		e.index[a.Name] = i
		if !a.Virtual {
			e.realIdx[a.Name] = e.realCount
			e.realCount++
			realAttrs = append(realAttrs, a.Attribute)
		}
	}
	rr, err := NewRel(realAttrs...)
	if err != nil {
		return nil, fmt.Errorf("schema: %s: %w", name, err)
	}
	e.realRel = rr

	e.bps = append([]BindingPattern(nil), bps...)
	sortBPs(e.bps)
	seen := make(map[string]bool, len(e.bps))
	for _, bp := range e.bps {
		if bp.Proto == nil {
			return nil, fmt.Errorf("schema: %s: binding pattern without prototype", name)
		}
		if seen[bp.ID()] {
			return nil, fmt.Errorf("schema: %s: duplicate binding pattern %s", name, bp.ID())
		}
		seen[bp.ID()] = true
		if err := e.checkBP(bp); err != nil {
			return nil, fmt.Errorf("schema: %s: binding pattern %s: %w", name, bp.ID(), err)
		}
	}
	return e, nil
}

// MustExtended is NewExtended panicking on error, for static declarations.
func MustExtended(name string, attrs []ExtAttr, bps []BindingPattern) *Extended {
	e, err := NewExtended(name, attrs, bps)
	if err != nil {
		panic(err)
	}
	return e
}

func (e *Extended) checkBP(bp BindingPattern) error {
	si, ok := e.index[bp.ServiceAttr]
	if !ok {
		return fmt.Errorf("service attribute %q not in schema", bp.ServiceAttr)
	}
	sa := e.attrs[si]
	if sa.Virtual {
		return fmt.Errorf("service attribute %q must be real", bp.ServiceAttr)
	}
	if sa.Type != value.Service && sa.Type != value.String {
		return fmt.Errorf("service attribute %q must have type SERVICE (or STRING), has %s", bp.ServiceAttr, sa.Type)
	}
	for _, in := range bp.Proto.Input.Attrs() {
		i, ok := e.index[in.Name]
		if !ok {
			return fmt.Errorf("input attribute %q not in schema", in.Name)
		}
		if e.attrs[i].Type != in.Type {
			return fmt.Errorf("input attribute %q: schema type %s ≠ prototype type %s",
				in.Name, e.attrs[i].Type, in.Type)
		}
	}
	for _, out := range bp.Proto.Output.Attrs() {
		i, ok := e.index[out.Name]
		if !ok {
			return fmt.Errorf("output attribute %q not in schema", out.Name)
		}
		if !e.attrs[i].Virtual {
			return fmt.Errorf("output attribute %q must be virtual", out.Name)
		}
		if e.attrs[i].Type != out.Type {
			return fmt.Errorf("output attribute %q: schema type %s ≠ prototype type %s",
				out.Name, e.attrs[i].Type, out.Type)
		}
	}
	return nil
}

// Name returns the relation symbol (may be empty for derived schemas).
func (e *Extended) Name() string { return e.name }

// WithName returns a copy of the schema carrying the given relation symbol.
func (e *Extended) WithName(name string) *Extended {
	c := *e
	c.name = name
	return &c
}

// Arity returns type(R), the total number of attributes (real + virtual).
func (e *Extended) Arity() int { return len(e.attrs) }

// RealArity returns |realSchema(R)|, the tuple width (Definition 3).
func (e *Extended) RealArity() int { return e.realCount }

// Attrs returns the ordered extended attributes (callers must not mutate).
func (e *Extended) Attrs() []ExtAttr { return e.attrs }

// Names returns all attribute names in schema order.
func (e *Extended) Names() []string {
	out := make([]string, len(e.attrs))
	for i, a := range e.attrs {
		out[i] = a.Name
	}
	return out
}

// RealNames returns the names of real attributes in schema order.
func (e *Extended) RealNames() []string { return e.realRel.Names() }

// VirtualNames returns the names of virtual attributes in schema order.
func (e *Extended) VirtualNames() []string {
	out := make([]string, 0, len(e.attrs)-e.realCount)
	for _, a := range e.attrs {
		if a.Virtual {
			out = append(out, a.Name)
		}
	}
	return out
}

// RealRel returns the relation schema over the real attributes — the layout
// of stored tuples (Definition 3).
func (e *Extended) RealRel() *Rel { return e.realRel }

// Has reports whether the named attribute is in schema(R).
func (e *Extended) Has(name string) bool { _, ok := e.index[name]; return ok }

// IsReal reports whether the named attribute is in realSchema(R).
func (e *Extended) IsReal(name string) bool { _, ok := e.realIdx[name]; return ok }

// IsVirtual reports whether the named attribute is in virtualSchema(R).
func (e *Extended) IsVirtual(name string) bool {
	i, ok := e.index[name]
	return ok && e.attrs[i].Virtual
}

// TypeOf returns the declared type of the named attribute.
func (e *Extended) TypeOf(name string) (value.Kind, bool) {
	if i, ok := e.index[name]; ok {
		return e.attrs[i].Type, true
	}
	return 0, false
}

// AttrIndex returns the position of the named attribute within schema(R),
// or -1 when absent.
func (e *Extended) AttrIndex(name string) int {
	if i, ok := e.index[name]; ok {
		return i
	}
	return -1
}

// RealIndex implements δ_R of Definition 4 (0-based): the coordinate of the
// named real attribute within stored tuples. It returns -1 for virtual or
// unknown attributes — projecting tuples onto virtual attributes is
// undefined in the model.
func (e *Extended) RealIndex(name string) int {
	if i, ok := e.realIdx[name]; ok {
		return i
	}
	return -1
}

// RealIndexes maps a list of real attribute names to tuple coordinates,
// erroring on virtual or unknown names (Definition 4 restriction).
func (e *Extended) RealIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j := e.RealIndex(n)
		if j < 0 {
			if e.Has(n) {
				return nil, fmt.Errorf("schema: cannot project tuple onto virtual attribute %q", n)
			}
			return nil, fmt.Errorf("schema: unknown attribute %q", n)
		}
		out[i] = j
	}
	return out, nil
}

// BindingPatterns returns BP(R) in deterministic order (callers must not
// mutate).
func (e *Extended) BindingPatterns() []BindingPattern { return e.bps }

// FindBP looks a binding pattern up by prototype name and (optionally)
// service attribute. With an empty serviceAttr it returns the unique BP for
// the prototype and errors when several exist.
func (e *Extended) FindBP(protoName, serviceAttr string) (BindingPattern, error) {
	var found []BindingPattern
	for _, bp := range e.bps {
		if bp.Proto.Name != protoName {
			continue
		}
		if serviceAttr != "" && bp.ServiceAttr != serviceAttr {
			continue
		}
		found = append(found, bp)
	}
	switch len(found) {
	case 0:
		if serviceAttr != "" {
			return BindingPattern{}, fmt.Errorf("schema: %s: no binding pattern %s[%s]", e.name, protoName, serviceAttr)
		}
		return BindingPattern{}, fmt.Errorf("schema: %s: no binding pattern for prototype %s", e.name, protoName)
	case 1:
		return found[0], nil
	}
	return BindingPattern{}, fmt.Errorf("schema: %s: prototype %s bound via several service attributes; qualify as proto[attr]", e.name, protoName)
}

// Equal reports full schema equality: same ordered attributes (names, types,
// virtual flags) and the same binding pattern set. The set operators of the
// algebra require Equal schemas.
func (e *Extended) Equal(o *Extended) bool {
	if len(e.attrs) != len(o.attrs) || len(e.bps) != len(o.bps) {
		return false
	}
	for i := range e.attrs {
		if e.attrs[i] != o.attrs[i] {
			return false
		}
	}
	for i := range e.bps { // both sorted by ID
		if e.bps[i].ID() != o.bps[i].ID() {
			return false
		}
		if !protoEqual(e.bps[i].Proto, o.bps[i].Proto) {
			return false
		}
	}
	return true
}

func protoEqual(a, b *Prototype) bool {
	if a == b {
		return true
	}
	return a.Name == b.Name && a.Active == b.Active &&
		a.Input.Equal(b.Input) && a.Output.Equal(b.Output)
}

// NameSet returns schema(R) as a set.
func (e *Extended) NameSet() map[string]bool {
	s := make(map[string]bool, len(e.attrs))
	for _, a := range e.attrs {
		s[a.Name] = true
	}
	return s
}

// String renders the Table 2 pseudo-DDL.
func (e *Extended) String() string {
	var b strings.Builder
	b.WriteString("EXTENDED RELATION ")
	if e.name != "" {
		b.WriteString(e.name)
		b.WriteString(" ")
	}
	b.WriteString("(\n")
	for i, a := range e.attrs {
		b.WriteString("  ")
		b.WriteString(a.String())
		if i < len(e.attrs)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(")")
	if len(e.bps) > 0 {
		b.WriteString(" USING BINDING PATTERNS (\n")
		for i, bp := range e.bps {
			b.WriteString("  ")
			b.WriteString(bp.String())
			if i < len(e.bps)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(")")
	}
	b.WriteString(";")
	return b.String()
}

// FromRel lifts a plain relation schema into an extended schema with only
// real attributes and no binding patterns — the paper's observation that
// standard relations are a special case of extended relations.
func FromRel(name string, r *Rel) *Extended {
	attrs := make([]ExtAttr, r.Arity())
	for i, a := range r.Attrs() {
		attrs[i] = ExtAttr{Attribute: a}
	}
	return MustExtended(name, attrs, nil)
}
