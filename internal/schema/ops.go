package schema

import (
	"fmt"

	"serena/internal/value"
)

// This file implements the *schema* halves of the Serena operators —
// the "Output" rows of Table 3 in the paper. The tuple halves live in
// internal/algebra and consult these derived schemas via name-based
// coordinate lookup (RealIndex).

// ProjectSchema derives the schema of π_Y(r) (Table 3a): schema(S)=Y kept
// in R's attribute order; real/virtual statuses preserved; binding patterns
// kept only when their service attribute, input schema and output schema all
// remain inside Y.
func ProjectSchema(r *Extended, names []string) (*Extended, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if !r.Has(n) {
			return nil, fmt.Errorf("schema: projection attribute %q not in schema(%s)", n, r.Name())
		}
		if want[n] {
			return nil, fmt.Errorf("schema: duplicate projection attribute %q", n)
		}
		want[n] = true
	}
	attrs := make([]ExtAttr, 0, len(names))
	for _, a := range r.Attrs() {
		if want[a.Name] {
			attrs = append(attrs, a)
		}
	}
	var bps []BindingPattern
	for _, bp := range r.BindingPatterns() {
		if want[bp.ServiceAttr] &&
			bp.Proto.Input.SubsetOfNames(want) &&
			bp.Proto.Output.SubsetOfNames(want) {
			bps = append(bps, bp)
		}
	}
	return NewExtended("", attrs, bps)
}

// RenameSchema derives the schema of ρ_{A→B}(r) (Table 3c): the attribute A
// is renamed to B keeping its type and real/virtual status; a binding
// pattern survives when, after renaming its service attribute if that was A,
// its prototype's input and output attribute names are still all present.
func RenameSchema(r *Extended, oldName, newName string) (*Extended, error) {
	if !r.Has(oldName) {
		return nil, fmt.Errorf("schema: rename source %q not in schema(%s)", oldName, r.Name())
	}
	if oldName == newName {
		return nil, fmt.Errorf("schema: rename to the same name %q", oldName)
	}
	if r.Has(newName) {
		return nil, fmt.Errorf("schema: rename target %q already in schema(%s)", newName, r.Name())
	}
	attrs := make([]ExtAttr, 0, r.Arity())
	newNames := make(map[string]bool, r.Arity())
	for _, a := range r.Attrs() {
		if a.Name == oldName {
			a.Name = newName
		}
		attrs = append(attrs, a)
		newNames[a.Name] = true
	}
	var bps []BindingPattern
	for _, bp := range r.BindingPatterns() {
		if bp.ServiceAttr == oldName {
			bp.ServiceAttr = newName
		}
		if newNames[bp.ServiceAttr] &&
			bp.Proto.Input.SubsetOfNames(newNames) &&
			bp.Proto.Output.SubsetOfNames(newNames) {
			bps = append(bps, bp)
		}
	}
	return NewExtended("", attrs, bps)
}

// JoinSchema derives the schema of r1 ⋈ r2 (Table 3d). Attributes are
// ordered as R1's followed by R2-only ones. A shared attribute is real in
// the result when real in either operand (real⋈virtual is the paper's
// implicit realization); virtual only when virtual in both. Shared
// attributes must agree on their declared type (URSA). Binding patterns are
// the union of both operands' patterns that still write only to virtual
// attributes of the result.
func JoinSchema(r1, r2 *Extended) (*Extended, error) {
	// Determine result real/virtual status per attribute name.
	realIn := func(r *Extended, n string) bool { return r.IsReal(n) }
	attrs := make([]ExtAttr, 0, r1.Arity()+r2.Arity())
	for _, a := range r1.Attrs() {
		if t2, shared := r2.TypeOf(a.Name); shared {
			if t2 != a.Type {
				return nil, fmt.Errorf("schema: join attribute %q has type %s in %s but %s in %s",
					a.Name, a.Type, r1.Name(), t2, r2.Name())
			}
			a.Virtual = !(realIn(r1, a.Name) || realIn(r2, a.Name))
		}
		attrs = append(attrs, a)
	}
	for _, a := range r2.Attrs() {
		if !r1.Has(a.Name) {
			attrs = append(attrs, a)
		}
	}
	virtual := make(map[string]bool)
	for _, a := range attrs {
		if a.Virtual {
			virtual[a.Name] = true
		}
	}
	var bps []BindingPattern
	seen := make(map[string]bool)
	for _, src := range [][]BindingPattern{r1.BindingPatterns(), r2.BindingPatterns()} {
		for _, bp := range src {
			if seen[bp.ID()] {
				continue
			}
			if bp.Proto.Output.SubsetOfNames(virtual) {
				seen[bp.ID()] = true
				bps = append(bps, bp)
			}
		}
	}
	return NewExtended("", attrs, bps)
}

// SharedRealJoinAttrs returns the attribute names that are real in BOTH
// operands — the only join attributes that imply a join predicate at the
// tuple level (Table 3d: virtual-in-one join attributes do not constrain
// tuples, degrading to a Cartesian product when no shared-real attribute
// exists).
func SharedRealJoinAttrs(r1, r2 *Extended) []string {
	var out []string
	for _, n := range r1.RealNames() {
		if r2.IsReal(n) {
			out = append(out, n)
		}
	}
	return out
}

// AssignSchema derives the schema of α_{A:=…}(r) (Table 3e): the virtual
// attribute A becomes real; binding patterns survive only when their output
// schema stays within virtualSchema(R) − {A}. src is the source real
// attribute for α_{A:=B} (its type must match A's) or empty for a constant
// assignment α_{A:=a}, whose constant type is checked by the algebra.
func AssignSchema(r *Extended, attr, src string) (*Extended, error) {
	if !r.Has(attr) {
		return nil, fmt.Errorf("schema: assignment target %q not in schema(%s)", attr, r.Name())
	}
	if !r.IsVirtual(attr) {
		return nil, fmt.Errorf("schema: assignment target %q must be a virtual attribute", attr)
	}
	if src != "" {
		if !r.IsReal(src) {
			return nil, fmt.Errorf("schema: assignment source %q must be a real attribute of schema(%s)", src, r.Name())
		}
		ta, _ := r.TypeOf(attr)
		ts, _ := r.TypeOf(src)
		if ta != ts && !(ts == value.Int && ta == value.Real) &&
			!(ts == value.String && ta == value.Service) && !(ts == value.Service && ta == value.String) {
			return nil, fmt.Errorf("schema: assignment %s := %s: incompatible types %s := %s", attr, src, ta, ts)
		}
	}
	attrs := make([]ExtAttr, 0, r.Arity())
	for _, a := range r.Attrs() {
		if a.Name == attr {
			a.Virtual = false
		}
		attrs = append(attrs, a)
	}
	remainingVirtual := make(map[string]bool)
	for _, a := range attrs {
		if a.Virtual {
			remainingVirtual[a.Name] = true
		}
	}
	var bps []BindingPattern
	for _, bp := range r.BindingPatterns() {
		if bp.Proto.Output.SubsetOfNames(remainingVirtual) {
			bps = append(bps, bp)
		}
	}
	return NewExtended("", attrs, bps)
}

// InvokeSchema derives the schema of β_bp(r) (Table 3f): the output
// attributes of bp's prototype become real; binding patterns survive only
// when their outputs stay within virtualSchema(R) − schema(Output_bp) —
// in particular bp itself is always consumed. It errors unless bp ∈ BP(R)
// and all of bp's input attributes are real (the operator's precondition).
func InvokeSchema(r *Extended, bp BindingPattern) (*Extended, error) {
	found := false
	for _, have := range r.BindingPatterns() {
		if have.ID() == bp.ID() {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("schema: binding pattern %s not in BP(%s)", bp.ID(), r.Name())
	}
	for _, in := range bp.Proto.Input.Attrs() {
		if !r.IsReal(in.Name) {
			return nil, fmt.Errorf("schema: invocation of %s requires input attribute %q to be real", bp.ID(), in.Name)
		}
	}
	realized := make(map[string]bool, bp.Proto.Output.Arity())
	for _, out := range bp.Proto.Output.Attrs() {
		realized[out.Name] = true
	}
	attrs := make([]ExtAttr, 0, r.Arity())
	for _, a := range r.Attrs() {
		if realized[a.Name] {
			a.Virtual = false
		}
		attrs = append(attrs, a)
	}
	remainingVirtual := make(map[string]bool)
	for _, a := range attrs {
		if a.Virtual {
			remainingVirtual[a.Name] = true
		}
	}
	var bps []BindingPattern
	for _, other := range r.BindingPatterns() {
		if other.Proto.Output.SubsetOfNames(remainingVirtual) {
			bps = append(bps, other)
		}
	}
	return NewExtended("", attrs, bps)
}
