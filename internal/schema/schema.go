// Package schema implements the metadata layer of the Serena data model
// (Gripay et al., EDBT 2010, Section 2.3): relation schemas, prototypes of
// distributed functionalities, extended relation schemas with the
// real/virtual attribute partition (Definition 2), binding patterns, and the
// schema-transformation rules of the algebra operators (Table 3).
//
// The Universal Relation Schema Assumption (URSA) of the paper is enforced
// softly: within a single extended schema each attribute name is unique, and
// joins require name-shared attributes to carry identical types.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"serena/internal/value"
)

// Attribute is a named, typed column (an element of the attribute set A
// paired with its declared DDL type).
type Attribute struct {
	Name string
	Type value.Kind
}

// String renders "name TYPE".
func (a Attribute) String() string { return a.Name + " " + a.Type.String() }

// Rel is a plain relation schema: an ordered list of attributes. It is used
// for prototype input/output schemas (Section 2.3.1) and as the tuple layout
// of real attributes.
type Rel struct {
	attrs []Attribute
	index map[string]int
}

// NewRel builds a relation schema from attributes, rejecting duplicate
// names (attr_R must be injective).
func NewRel(attrs ...Attribute) (*Rel, error) {
	r := &Rel{attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: attribute %d has empty name", i+1)
		}
		if !a.Type.Valid() || a.Type == value.Null {
			return nil, fmt.Errorf("schema: attribute %q has invalid type", a.Name)
		}
		if _, dup := r.index[a.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		r.index[a.Name] = i
	}
	return r, nil
}

// MustRel is NewRel for statically-known schemas; it panics on error.
func MustRel(attrs ...Attribute) *Rel {
	r, err := NewRel(attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns type(R), the number of attributes.
func (r *Rel) Arity() int { return len(r.attrs) }

// Attrs returns the ordered attributes (callers must not mutate).
func (r *Rel) Attrs() []Attribute { return r.attrs }

// Names returns the ordered attribute names.
func (r *Rel) Names() []string {
	out := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute, or -1.
func (r *Rel) Index(name string) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the named attribute belongs to the schema.
func (r *Rel) Has(name string) bool { _, ok := r.index[name]; return ok }

// TypeOf returns the type of the named attribute; ok is false if absent.
func (r *Rel) TypeOf(name string) (value.Kind, bool) {
	if i, ok := r.index[name]; ok {
		return r.attrs[i].Type, true
	}
	return 0, false
}

// Equal reports ordered schema equality (same names and types in the same
// positions).
func (r *Rel) Equal(o *Rel) bool {
	if r.Arity() != o.Arity() {
		return false
	}
	for i := range r.attrs {
		if r.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// DisjointFrom reports whether the two schemas share no attribute name.
func (r *Rel) DisjointFrom(o *Rel) bool {
	for name := range r.index {
		if o.Has(name) {
			return false
		}
	}
	return true
}

// SubsetOfNames reports whether every attribute name of r appears in the
// given name set.
func (r *Rel) SubsetOfNames(names map[string]bool) bool {
	for name := range r.index {
		if !names[name] {
			return false
		}
	}
	return true
}

// Conforms checks that the tuple matches the schema arity and that each
// coordinate is NULL or of (or coercible to) the declared type. It returns
// the possibly-coerced tuple.
func (r *Rel) Conforms(t value.Tuple) (value.Tuple, error) {
	if len(t) != len(r.attrs) {
		return nil, fmt.Errorf("schema: tuple arity %d, schema arity %d", len(t), len(r.attrs))
	}
	out := t
	for i, v := range t {
		if v.IsNull() || v.Kind() == r.attrs[i].Type {
			continue
		}
		cv, ok := value.Coerce(v, r.attrs[i].Type)
		if !ok {
			return nil, fmt.Errorf("schema: attribute %q expects %s, got %s",
				r.attrs[i].Name, r.attrs[i].Type, v.Kind())
		}
		if &out[0] == &t[0] {
			out = t.Clone()
		}
		out[i] = cv
	}
	return out, nil
}

// String renders "(a T, b U)".
func (r *Rel) String() string {
	parts := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Prototype declares a distributed functionality (Section 2.3.1): disjoint
// input and output relation schemas plus the active/passive tag. Invocation
// of an active prototype has a non-negligible side effect on the physical
// environment (Section 2.1).
type Prototype struct {
	Name   string
	Input  *Rel
	Output *Rel
	Active bool
}

// NewPrototype validates the paper's constraints: non-empty output schema
// and disjoint input/output schemas.
func NewPrototype(name string, input, output *Rel, active bool) (*Prototype, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: prototype needs a name")
	}
	if input == nil {
		input = MustRel()
	}
	if output == nil || output.Arity() == 0 {
		return nil, fmt.Errorf("schema: prototype %q: output schema must be non-empty", name)
	}
	if !input.DisjointFrom(output) {
		return nil, fmt.Errorf("schema: prototype %q: input and output schemas must be disjoint", name)
	}
	return &Prototype{Name: name, Input: input, Output: output, Active: active}, nil
}

// MustPrototype is NewPrototype panicking on error, for static declarations.
func MustPrototype(name string, input, output *Rel, active bool) *Prototype {
	p, err := NewPrototype(name, input, output, active)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the pseudo-DDL of Table 1:
// "PROTOTYPE name( in… ) : ( out… ) [ACTIVE];".
func (p *Prototype) String() string {
	var b strings.Builder
	b.WriteString("PROTOTYPE ")
	b.WriteString(p.Name)
	b.WriteString(trimParens(p.Input.String()))
	b.WriteString(" : ")
	b.WriteString(trimParens(p.Output.String()))
	if p.Active {
		b.WriteString(" ACTIVE")
	}
	b.WriteString(";")
	return b.String()
}

func trimParens(s string) string {
	if s == "()" {
		return "( )"
	}
	return "( " + strings.TrimSuffix(strings.TrimPrefix(s, "("), ")") + " )"
}

// BindingPattern ties a prototype to the real attribute holding service
// references (Definition 2): bp = (prototype, serviceAttr).
type BindingPattern struct {
	Proto       *Prototype
	ServiceAttr string
}

// Active reports the paper's active(bp) predicate.
func (bp BindingPattern) Active() bool { return bp.Proto.Active }

// String renders the Table 2 notation "proto[svcAttr]( in… ) : ( out… )"
// with bare attribute names (types belong to the prototype declaration).
func (bp BindingPattern) String() string {
	return fmt.Sprintf("%s[%s] %s : %s",
		bp.Proto.Name, bp.ServiceAttr,
		nameList(bp.Proto.Input), nameList(bp.Proto.Output))
}

func nameList(r *Rel) string {
	names := r.Names()
	if len(names) == 0 {
		return "( )"
	}
	return "( " + strings.Join(names, ", ") + " )"
}

// ID is a compact identity "proto[attr]" used for lookup and in action sets.
func (bp BindingPattern) ID() string { return bp.Proto.Name + "[" + bp.ServiceAttr + "]" }

// sortBPs orders binding patterns deterministically by ID.
func sortBPs(bps []BindingPattern) {
	sort.Slice(bps, func(i, j int) bool { return bps[i].ID() < bps[j].ID() })
}
