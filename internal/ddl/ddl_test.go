package ddl_test

import (
	"strings"
	"testing"

	"serena/internal/ddl"
	"serena/internal/value"
)

// table1 is the pseudo-DDL of the paper's Table 1, verbatim.
const table1 = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );
SERVICE email IMPLEMENTS sendMessage;
SERVICE jabber IMPLEMENTS sendMessage;
SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
SERVICE sensor01 IMPLEMENTS getTemperature;
SERVICE sensor06 IMPLEMENTS getTemperature;
SERVICE sensor07 IMPLEMENTS getTemperature;
SERVICE sensor22 IMPLEMENTS getTemperature;
`

// table2 is the pseudo-DDL of the paper's Table 2, verbatim.
const table2 = `
EXTENDED RELATION contacts (
  name STRING,
  address STRING,
  text STRING VIRTUAL,
  messenger SERVICE,
  sent BOOLEAN VIRTUAL
)
USING BINDING PATTERNS (
  sendMessage[messenger] ( address, text ) : ( sent )
);
EXTENDED RELATION cameras (
  camera SERVICE,
  area STRING,
  quality INTEGER VIRTUAL,
  delay REAL VIRTUAL,
  photo BLOB VIRTUAL
)
USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);
`

func TestTable1DDL(t *testing.T) {
	sts, err := ddl.Parse(table1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 13 {
		t.Fatalf("got %d statements, want 13", len(sts))
	}
	send, ok := sts[0].(*ddl.CreatePrototype)
	if !ok {
		t.Fatalf("statement 0 = %T", sts[0])
	}
	if send.Name != "sendMessage" || !send.Active {
		t.Fatalf("sendMessage = %+v", send)
	}
	if len(send.Inputs) != 2 || send.Inputs[0] != (ddl.Param{Name: "address", Type: value.String}) {
		t.Fatalf("sendMessage inputs = %+v", send.Inputs)
	}
	if len(send.Outputs) != 1 || send.Outputs[0] != (ddl.Param{Name: "sent", Type: value.Bool}) {
		t.Fatalf("sendMessage outputs = %+v", send.Outputs)
	}
	check := sts[1].(*ddl.CreatePrototype)
	if check.Active {
		t.Fatal("checkPhoto must be passive")
	}
	if len(check.Outputs) != 2 || check.Outputs[1].Type != value.Real {
		t.Fatalf("checkPhoto outputs = %+v", check.Outputs)
	}
	temp := sts[3].(*ddl.CreatePrototype)
	if len(temp.Inputs) != 0 {
		t.Fatalf("getTemperature inputs = %+v", temp.Inputs)
	}
	cam := sts[6].(*ddl.CreateService)
	if cam.Ref != "camera01" || len(cam.Prototypes) != 2 || cam.Prototypes[1] != "takePhoto" {
		t.Fatalf("camera01 = %+v", cam)
	}
}

func TestTable2DDL(t *testing.T) {
	sts, err := ddl.Parse(table2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("got %d statements, want 2", len(sts))
	}
	contacts := sts[0].(*ddl.CreateRelation)
	if contacts.Name != "contacts" || contacts.Stream {
		t.Fatalf("contacts = %+v", contacts)
	}
	if len(contacts.Attrs) != 5 {
		t.Fatalf("contacts attrs = %+v", contacts.Attrs)
	}
	if !contacts.Attrs[2].Virtual || contacts.Attrs[2].Name != "text" {
		t.Fatalf("text attr = %+v", contacts.Attrs[2])
	}
	if contacts.Attrs[3].Type != value.Service || contacts.Attrs[3].Virtual {
		t.Fatalf("messenger attr = %+v", contacts.Attrs[3])
	}
	if len(contacts.BPs) != 1 {
		t.Fatalf("contacts BPs = %+v", contacts.BPs)
	}
	bp := contacts.BPs[0]
	if bp.Proto != "sendMessage" || bp.ServiceAttr != "messenger" || !bp.Explicit {
		t.Fatalf("bp = %+v", bp)
	}
	if len(bp.Inputs) != 2 || bp.Inputs[1] != "text" || len(bp.Outputs) != 1 || bp.Outputs[0] != "sent" {
		t.Fatalf("bp params = %+v", bp)
	}
	cameras := sts[1].(*ddl.CreateRelation)
	if len(cameras.BPs) != 2 || cameras.BPs[1].Proto != "takePhoto" {
		t.Fatalf("cameras BPs = %+v", cameras.BPs)
	}
}

func TestStreamDDL(t *testing.T) {
	st, err := ddl.ParseOne(`EXTENDED STREAM temperatures (
		sensor SERVICE, location STRING, temperature REAL );`)
	if err != nil {
		t.Fatal(err)
	}
	rel := st.(*ddl.CreateRelation)
	if !rel.Stream || rel.Name != "temperatures" || len(rel.Attrs) != 3 {
		t.Fatalf("stream = %+v", rel)
	}
	// Short form: STREAM also accepted.
	st2, err := ddl.ParseOne(`STREAM t2 ( x INTEGER );`)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.(*ddl.CreateRelation).Stream {
		t.Fatal("STREAM shorthand broken")
	}
}

func TestBPWithoutExplicitParams(t *testing.T) {
	st, err := ddl.ParseOne(`EXTENDED RELATION sensors (
		sensor SERVICE, location STRING, temperature REAL VIRTUAL )
		USING BINDING PATTERNS ( getTemperature[sensor] );`)
	if err != nil {
		t.Fatal(err)
	}
	rel := st.(*ddl.CreateRelation)
	if len(rel.BPs) != 1 || rel.BPs[0].Explicit {
		t.Fatalf("BPs = %+v", rel.BPs)
	}
}

func TestInsertDelete(t *testing.T) {
	st, err := ddl.ParseOne(`INSERT INTO contacts VALUES
		("Nicolas", "nicolas@elysee.fr", email),
		("Carla", "carla@elysee.fr", email);`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*ddl.Insert)
	if ins.Relation != "contacts" || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[0][0].Str() != "Nicolas" {
		t.Fatalf("row 0 = %v", ins.Rows[0])
	}
	if ins.Rows[0][2].Kind() != value.Service || ins.Rows[0][2].ServiceRef() != "email" {
		t.Fatalf("bare identifier should parse as service ref: %v", ins.Rows[0][2])
	}
	st2, err := ddl.ParseOne(`DELETE FROM contacts VALUES ("Carla", "carla@elysee.fr", email);`)
	if err != nil {
		t.Fatal(err)
	}
	del := st2.(*ddl.Delete)
	if del.Relation != "contacts" || len(del.Rows) != 1 {
		t.Fatalf("delete = %+v", del)
	}
}

func TestLiteralKinds(t *testing.T) {
	st, err := ddl.ParseOne(`INSERT INTO r VALUES (42, -3.5, true, FALSE, null, *, "str");`)
	if err != nil {
		t.Fatal(err)
	}
	row := st.(*ddl.Insert).Rows[0]
	kinds := []value.Kind{value.Int, value.Real, value.Bool, value.Bool, value.Null, value.Null, value.String}
	for i, k := range kinds {
		if row[i].Kind() != k {
			t.Errorf("literal %d = %s, want %s", i, row[i].Kind(), k)
		}
	}
}

func TestDrop(t *testing.T) {
	st, err := ddl.ParseOne(`DROP RELATION contacts;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*ddl.Drop).Name != "contacts" {
		t.Fatalf("drop = %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`PROTOTYPE ( x INTEGER ) : ( y INTEGER );`,  // missing name
		`PROTOTYPE p ( x INTEGER ) ( y INTEGER );`,  // missing ':'
		`PROTOTYPE p ( x WIBBLE ) : ( y INTEGER );`, // unknown type
		`PROTOTYPE p ( x INTEGER ) : ( y INTEGER )`, // missing ';'
		`SERVICE s;`,                      // missing IMPLEMENTS
		`EXTENDED TABLE t ( x INTEGER );`, // TABLE is not a keyword
		`EXTENDED RELATION t ( x INTEGER ) USING ( p[x] );`, // missing BINDING PATTERNS
		`INSERT contacts VALUES (1);`,                       // missing INTO
		`INSERT INTO contacts (1);`,                         // missing VALUES
		`DROP t;`,                                           // missing RELATION
		`FROBNICATE;`,                                       // unknown statement
		``,                                                  // caught by ParseOne
	}
	for _, src := range bad {
		if _, err := ddl.ParseOne(src); err == nil {
			t.Errorf("accepted invalid DDL: %s", src)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	_, err := ddl.Parse(`prototype p ( ) : ( y integer ) active;
		extended relation r ( a string virtual, s service )
		using binding patterns ( p[s] );`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommentsInDDL(t *testing.T) {
	_, err := ddl.Parse(`-- declare the messaging prototype
		PROTOTYPE p ( ) : ( y INTEGER ); /* inline */ SERVICE s IMPLEMENTS p;`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegisterQueryStatement(t *testing.T) {
	st, err := ddl.ParseOne(`REGISTER QUERY alerts AS
		invoke[sendMessage](assign[text := "Hot!"](select[name != "Carla"](contacts)));`)
	if err != nil {
		t.Fatal(err)
	}
	rq := st.(*ddl.RegisterQuery)
	if rq.Name != "alerts" {
		t.Fatalf("name = %q", rq.Name)
	}
	// The re-rendered source must contain the quoted literals verbatim.
	for _, frag := range []string{"invoke", "sendMessage", `"Hot!"`, `"Carla"`, ":="} {
		if !strings.Contains(rq.Source, frag) {
			t.Errorf("source missing %q: %s", frag, rq.Source)
		}
	}
	// SQL body.
	st2, err := ddl.ParseOne(`REGISTER QUERY means AS
		SELECT location, mean(temperature) AS avg FROM temperatures[5] GROUP BY location;`)
	if err != nil {
		t.Fatal(err)
	}
	if src := st2.(*ddl.RegisterQuery).Source; !strings.HasPrefix(src, "SELECT ") {
		t.Fatalf("SQL source = %q", src)
	}
	// Unregister.
	st3, err := ddl.ParseOne(`UNREGISTER QUERY alerts;`)
	if err != nil {
		t.Fatal(err)
	}
	if st3.(*ddl.UnregisterQuery).Name != "alerts" {
		t.Fatal("unregister name wrong")
	}
	// Errors.
	for _, src := range []string{
		`REGISTER QUERY x AS ;`,
		`REGISTER QUERY x AS select[true](r)`, // missing ';'
		`REGISTER x AS r;`,
		`UNREGISTER QUERY;`,
	} {
		if _, err := ddl.ParseOne(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestRegisterQueryOnError(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{`REGISTER QUERY q AS select[true](r);`, ""},
		{`REGISTER QUERY q ON ERROR FAIL AS select[true](r);`, "FAIL"},
		{`REGISTER QUERY q ON ERROR skip AS select[true](r);`, "SKIP"},
		{`REGISTER QUERY q ON ERROR NULL AS select[true](r);`, "NULL"},
	} {
		st, err := ddl.ParseOne(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		rq := st.(*ddl.RegisterQuery)
		if rq.OnError != tc.want {
			t.Errorf("%s: OnError = %q, want %q", tc.src, rq.OnError, tc.want)
		}
		if !strings.Contains(rq.Source, "select") {
			t.Errorf("%s: body lost: %q", tc.src, rq.Source)
		}
	}
	for _, src := range []string{
		`REGISTER QUERY q ON ERROR AS select[true](r);`,
		`REGISTER QUERY q ON ERROR RETRY AS select[true](r);`,
		`REGISTER QUERY q ON FAIL AS select[true](r);`,
	} {
		if _, err := ddl.ParseOne(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestRegisterQueryInto(t *testing.T) {
	for _, tc := range []struct {
		src    string
		into   string
		retain int
		onErr  string
	}{
		{`REGISTER QUERY q AS select[true](r);`, "", 0, ""},
		{`REGISTER QUERY q INTO hot AS select[true](r);`, "hot", 0, ""},
		{`REGISTER QUERY q INTO hot RETAIN 32 INSTANTS AS select[true](r);`, "hot", 32, ""},
		{`REGISTER QUERY q ON ERROR SKIP INTO hot RETAIN 1 INSTANTS AS select[true](r);`, "hot", 1, "SKIP"},
		{`REGISTER QUERY q into Hot retain 7 instants AS select[true](r);`, "Hot", 7, ""},
	} {
		st, err := ddl.ParseOne(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		rq := st.(*ddl.RegisterQuery)
		if rq.Into != tc.into || rq.Retain != tc.retain || rq.OnError != tc.onErr {
			t.Errorf("%s: Into=%q Retain=%d OnError=%q, want %q/%d/%q",
				tc.src, rq.Into, rq.Retain, rq.OnError, tc.into, tc.retain, tc.onErr)
		}
		if !strings.Contains(rq.Source, "select") {
			t.Errorf("%s: body lost: %q", tc.src, rq.Source)
		}
	}
	for _, src := range []string{
		`REGISTER QUERY q INTO AS select[true](r);`,                       // missing target name
		`REGISTER QUERY q INTO sys$mat AS select[true](r);`,               // reserved prefix
		`REGISTER QUERY q INTO hot RETAIN 0 INSTANTS AS select[true](r);`, // zero retention
		`REGISTER QUERY q INTO hot RETAIN -3 INSTANTS AS select[true](r);`,
		`REGISTER QUERY q INTO hot RETAIN many INSTANTS AS select[true](r);`,
		`REGISTER QUERY q INTO hot RETAIN 5 AS select[true](r);`, // missing INSTANTS
		`REGISTER QUERY q RETAIN 5 INSTANTS AS select[true](r);`, // RETAIN without INTO
	} {
		if _, err := ddl.ParseOne(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestOnOverloadClause(t *testing.T) {
	// Bare form, no binding patterns.
	st, err := ddl.ParseOne(`EXTENDED STREAM readings (
		sensor SERVICE, v REAL ) ON OVERLOAD SHED_OLDEST CAPACITY 64;`)
	if err != nil {
		t.Fatal(err)
	}
	rel := st.(*ddl.CreateRelation)
	if rel.OnOverload != "SHED_OLDEST" || rel.Capacity != 64 {
		t.Fatalf("overload = %q capacity = %d", rel.OnOverload, rel.Capacity)
	}
	// After a binding-pattern list, capacity omitted.
	st, err = ddl.ParseOne(`EXTENDED RELATION sensors (
		sensor SERVICE, temperature REAL VIRTUAL )
		USING BINDING PATTERNS ( getTemperature[sensor] )
		ON OVERLOAD block;`)
	if err != nil {
		t.Fatal(err)
	}
	rel = st.(*ddl.CreateRelation)
	if rel.OnOverload != "BLOCK" || rel.Capacity != 0 || len(rel.BPs) != 1 {
		t.Fatalf("rel = %+v", rel)
	}
	// Unknown policy and bad capacity are rejected.
	if _, err := ddl.ParseOne(`STREAM s ( x INTEGER ) ON OVERLOAD whatever;`); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := ddl.ParseOne(`STREAM s ( x INTEGER ) ON OVERLOAD BLOCK CAPACITY 0;`); err == nil {
		t.Fatal("zero capacity accepted")
	}
	// Statements without the clause still parse.
	if _, err := ddl.ParseOne(`STREAM s ( x INTEGER );`); err != nil {
		t.Fatal(err)
	}
}
