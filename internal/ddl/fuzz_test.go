package ddl_test

import (
	"testing"

	"serena/internal/ddl"
)

// FuzzParse asserts the DDL parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`PROTOTYPE p( a STRING ) : ( b BOOLEAN ) ACTIVE;`,
		`SERVICE s IMPLEMENTS p, q;`,
		`EXTENDED RELATION r ( a STRING, b REAL VIRTUAL, s SERVICE )
		 USING BINDING PATTERNS ( p[s] ( a ) : ( b ) );`,
		`EXTENDED STREAM t ( x INTEGER );`,
		`INSERT INTO r VALUES ("x", 1.5, svc), (null, *, "q");`,
		`DELETE FROM r VALUES (1);`,
		`DROP RELATION r;`,
		`REGISTER QUERY q AS select[a = 1](r);`,
		`REGISTER QUERY q ON ERROR SKIP AS invoke[p](r);`,
		`REGISTER QUERY q ON ERROR NULL
		 AS SELECT location, mean(temperature) AS avg FROM temperatures[5] GROUP BY location;`,
		`REGISTER QUERY q ON ERROR FAIL AS select[temperature > 28.0](invoke[getTemperature](sensors));`,
		`REGISTER QUERY q ON ERROR AS x;`,
		`REGISTER QUERY q ON ERROR BOGUS AS x;`,
		`REGISTER QUERY q AS ;`,
		`UNREGISTER QUERY q;`,
		`EXPLAIN select[a = 1](r);`,
		`EXPLAIN ANALYZE invoke[p](r);`,
		`EXPLAIN ANALYZE SELECT * FROM contacts;`,
		`EXPLAIN ;`,
		`EXPLAIN ANALYZE ;`,
		`EXPLAIN`,
		`-- comment only`,
		`PROTOTYPE`,
		`INSERT INTO`,
		"EXTENDED RELATION r ( \xff );",
		`INSERT INTO r VALUES (0xdeadbeef);`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ddl.Parse(src) // must not panic
	})
}
