// Package ddl parses the Serena Data Description Language (Gripay et al.,
// EDBT 2010, Section 5.1) — the pseudo-DDL of Tables 1 and 2 plus the data
// statements the Extended Table Manager needs:
//
//	PROTOTYPE name( in TYPE, … ) : ( out TYPE, … ) [ACTIVE];
//	SERVICE ref IMPLEMENTS proto, …;
//	EXTENDED RELATION name ( attr TYPE [VIRTUAL], … )
//	    [USING BINDING PATTERNS ( proto[svcAttr] [( in,… ) : ( out,… )], … )];
//	EXTENDED STREAM name ( … ) [USING BINDING PATTERNS ( … )];
//	INSERT INTO name VALUES ( lit, … )[, ( lit, … )…];
//	DELETE FROM name VALUES ( lit, … );
//	DROP RELATION name;
//
// Parsing yields statement ASTs; execution against a catalog lives in
// internal/catalog.
package ddl

import (
	"fmt"
	"strconv"
	"strings"

	"serena/internal/lexer"
	"serena/internal/resilience"
	"serena/internal/value"
)

// Statement is one parsed DDL statement.
type Statement interface{ stmt() }

// Param is a named, typed parameter or attribute.
type Param struct {
	Name string
	Type value.Kind
}

// CreatePrototype declares a prototype (Table 1).
type CreatePrototype struct {
	Name    string
	Inputs  []Param
	Outputs []Param
	Active  bool
}

func (*CreatePrototype) stmt() {}

// CreateService declares a service and the prototypes it implements
// (Table 1). It is used by simulated/scripted environments; live
// environments discover services through the ERM instead.
type CreateService struct {
	Ref        string
	Prototypes []string
}

func (*CreateService) stmt() {}

// AttrDef is one attribute of an extended relation declaration.
type AttrDef struct {
	Name    string
	Type    value.Kind
	Virtual bool
}

// BPDef references a prototype and service attribute, with the optional
// explanatory parameter lists of Table 2 (checked against the prototype at
// execution time when present).
type BPDef struct {
	Proto       string
	ServiceAttr string
	Inputs      []string // optional
	Outputs     []string // optional
	Explicit    bool     // whether parameter lists were written
}

// CreateRelation declares an extended relation or (with Stream=true) an
// extended stream — a finite or infinite XD-Relation (Section 4.1).
type CreateRelation struct {
	Name   string
	Attrs  []AttrDef
	BPs    []BPDef
	Stream bool
	// OnOverload, when non-empty, bounds the relation's ingest path with
	// the named policy (BLOCK | SHED_OLDEST | SHED_NEWEST); Capacity > 0
	// overrides the default buffer bound.
	OnOverload string
	Capacity   int
}

func (*CreateRelation) stmt() {}

// Insert adds rows (over the real schema) to a relation.
type Insert struct {
	Relation string
	Rows     [][]value.Value
}

func (*Insert) stmt() {}

// Delete removes rows (over the real schema) from a relation.
type Delete struct {
	Relation string
	Rows     [][]value.Value
}

func (*Delete) stmt() {}

// Drop removes a relation declaration.
type Drop struct{ Name string }

func (*Drop) stmt() {}

// RegisterQuery declares a continuous query inside a DDL script:
//
//	REGISTER QUERY alerts AS invoke[sendMessage](…);
//	REGISTER QUERY means  ON ERROR NULL
//	                      AS SELECT location, mean(temperature) AS avg
//	                         FROM temperatures[5] GROUP BY location;
//	REGISTER QUERY rollup INTO climate RETAIN 64 INSTANTS
//	                      AS aggregate[location; mean(temperature) as avg](
//	                         window[5](temperatures));
//
// The query body (Serena Algebra Language or Serena SQL) is captured up to
// the terminating ';' and compiled by the PEMS query processor — the
// catalog itself rejects it (queries are not tables). The optional ON ERROR
// clause picks the β degradation policy (FAIL, SKIP, or NULL) applied when
// a bound service fails mid-query; omitted, the executor's continuous
// default (SKIP) applies. The optional INTO clause materializes the query's
// output as a named derived XD-Relation other queries can read; RETAIN
// bounds how many instants of its event log are kept.
type RegisterQuery struct {
	Name    string
	Source  string
	OnError string // "", "FAIL", "SKIP", or "NULL"
	Into    string // materialized output relation name ("" = none)
	Retain  int    // retention in instants (0 = engine default)
}

func (*RegisterQuery) stmt() {}

// UnregisterQuery removes a continuous query:
//
//	UNREGISTER QUERY alerts;
type UnregisterQuery struct{ Name string }

func (*UnregisterQuery) stmt() {}

// Explain requests a query plan instead of query results:
//
//	EXPLAIN SELECT photo FROM cameras USING checkPhoto WHERE quality >= 5;
//	EXPLAIN ANALYZE invoke[getTemperature](sensors);
//
// Plain EXPLAIN shows the optimizer's rewriting (original plan, applied
// Table 5 steps, optimized plan); EXPLAIN ANALYZE executes the plan in
// traced mode and annotates every operator with rows and wall time. The
// body (SAL or Serena SQL) is captured up to the terminating ';'.
type Explain struct {
	Source  string
	Analyze bool
}

func (*Explain) stmt() {}

// Parse parses a script of semicolon-terminated statements.
func Parse(src string) ([]Statement, error) {
	p := &parser{lx: lexer.New(src)}
	var out []Statement
	for {
		tok, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if tok.Kind == lexer.EOF {
			return out, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	sts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(sts) != 1 {
		return nil, fmt.Errorf("ddl: expected exactly one statement, got %d", len(sts))
	}
	return sts[0], nil
}

type parser struct{ lx *lexer.Lexer }

func (p *parser) errf(tok lexer.Token, format string, args ...any) error {
	return fmt.Errorf("ddl: line %d:%d: %s", tok.Line, tok.Col, fmt.Sprintf(format, args...))
}

func (p *parser) next() (lexer.Token, error) { return p.lx.Next() }

func (p *parser) expectPunct(punct string) error {
	tok, err := p.next()
	if err != nil {
		return err
	}
	if !tok.Is(punct) {
		return p.errf(tok, "expected %q, got %s", punct, tok)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	tok, err := p.next()
	if err != nil {
		return err
	}
	if !tok.IsKeyword(kw) {
		return p.errf(tok, "expected %s, got %s", strings.ToUpper(kw), tok)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	tok, err := p.next()
	if err != nil {
		return "", err
	}
	if tok.Kind != lexer.Ident {
		return "", p.errf(tok, "expected identifier, got %s", tok)
	}
	return tok.Text, nil
}

func (p *parser) statement() (Statement, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch {
	case tok.IsKeyword("PROTOTYPE"):
		return p.prototype()
	case tok.IsKeyword("SERVICE"):
		return p.service()
	case tok.IsKeyword("EXTENDED"):
		return p.extended()
	case tok.IsKeyword("STREAM"):
		return p.relation(true)
	case tok.IsKeyword("INSERT"):
		return p.insertDelete(true)
	case tok.IsKeyword("DELETE"):
		return p.insertDelete(false)
	case tok.IsKeyword("DROP"):
		return p.drop()
	case tok.IsKeyword("REGISTER"):
		return p.registerQuery()
	case tok.IsKeyword("UNREGISTER"):
		return p.unregisterQuery()
	case tok.IsKeyword("EXPLAIN"):
		return p.explain()
	}
	return nil, p.errf(tok, "unknown statement starting with %s", tok)
}

// explain := EXPLAIN [ANALYZE] <tokens until ';'>
func (p *parser) explain() (Statement, error) {
	st := &Explain{}
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("ANALYZE") {
		_, _ = p.next()
		st.Analyze = true
	}
	src, err := p.rawUntilSemicolon()
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("ddl: EXPLAIN: empty query body")
	}
	st.Source = src
	return st, nil
}

// registerQuery := QUERY name [ON ERROR (FAIL|SKIP|NULL)]
//	[INTO relname [RETAIN n INSTANTS]] AS <tokens until ';'>
func (p *parser) registerQuery() (Statement, error) {
	if err := p.expectKeyword("QUERY"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &RegisterQuery{Name: name}
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("ON") {
		_, _ = p.next()
		if err := p.expectKeyword("ERROR"); err != nil {
			return nil, err
		}
		ptok, err := p.next()
		if err != nil {
			return nil, err
		}
		switch {
		case ptok.IsKeyword("FAIL"), ptok.IsKeyword("SKIP"), ptok.IsKeyword("NULL"):
			st.OnError = strings.ToUpper(ptok.Text)
		default:
			return nil, p.errf(ptok, "expected FAIL, SKIP or NULL after ON ERROR, got %s", ptok)
		}
		tok, err = p.lx.Peek()
		if err != nil {
			return nil, err
		}
	}
	if tok.IsKeyword("INTO") {
		_, _ = p.next()
		intoTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if intoTok.Kind != lexer.Ident {
			return nil, p.errf(intoTok, "expected relation name after INTO, got %s", intoTok)
		}
		if strings.HasPrefix(intoTok.Text, "sys$") {
			return nil, p.errf(intoTok, "INTO target %q: the sys$ prefix is reserved for system relations", intoTok.Text)
		}
		st.Into = intoTok.Text
		peek, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if peek.IsKeyword("RETAIN") {
			_, _ = p.next()
			numTok, err := p.next()
			if err != nil {
				return nil, err
			}
			n, convErr := strconv.Atoi(numTok.Text)
			if numTok.Kind != lexer.Number || convErr != nil || n < 1 {
				return nil, p.errf(numTok, "expected positive instant count after RETAIN, got %s", numTok)
			}
			st.Retain = n
			if err := p.expectKeyword("INSTANTS"); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	src, err := p.rawUntilSemicolon()
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("ddl: REGISTER QUERY %s: empty query body", name)
	}
	st.Source = src
	return st, nil
}

// unregisterQuery := QUERY name ';'
func (p *parser) unregisterQuery() (Statement, error) {
	if err := p.expectKeyword("QUERY"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &UnregisterQuery{Name: name}, nil
}

// rawUntilSemicolon re-renders tokens (the lexer has no raw-slice mode)
// until the terminating top-level ';'. Both SAL and Serena SQL are
// whitespace-insensitive, so token-joining round-trips them; string
// literals are re-quoted.
func (p *parser) rawUntilSemicolon() (string, error) {
	var b strings.Builder
	for {
		tok, err := p.next()
		if err != nil {
			return "", err
		}
		switch {
		case tok.Kind == lexer.EOF:
			return "", fmt.Errorf("ddl: missing ';' after query body")
		case tok.Is(";"):
			return b.String(), nil
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if tok.Kind == lexer.String {
			b.WriteString(strconv.Quote(tok.Text))
		} else {
			b.WriteString(tok.Text)
		}
	}
}

// prototype := name '(' params? ')' ':' '(' params ')' ACTIVE? ';'
func (p *parser) prototype() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins, err := p.paramList()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	outs, err := p.paramList()
	if err != nil {
		return nil, err
	}
	st := &CreatePrototype{Name: name, Inputs: ins, Outputs: outs}
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("ACTIVE") {
		st.Active = true
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
	} else if tok.IsKeyword("PASSIVE") {
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
	}
	if !tok.Is(";") {
		return nil, p.errf(tok, "expected ';', got %s", tok)
	}
	return st, nil
}

func (p *parser) paramList() ([]Param, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Param
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.Is(")") {
		_, _ = p.next()
		return out, nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		typTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if typTok.Kind != lexer.Ident {
			return nil, p.errf(typTok, "expected type name, got %s", typTok)
		}
		kind, ok := value.KindFromName(typTok.Text)
		if !ok {
			return nil, p.errf(typTok, "unknown type %q", typTok.Text)
		}
		out = append(out, Param{Name: name, Type: kind})
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		if tok.Is(")") {
			return out, nil
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ')', got %s", tok)
		}
	}
}

// service := ref IMPLEMENTS proto {',' proto} ';'
func (p *parser) service() (Statement, error) {
	ref, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IMPLEMENTS"); err != nil {
		return nil, err
	}
	var protos []string
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		protos = append(protos, name)
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		if tok.Is(";") {
			return &CreateService{Ref: ref, Prototypes: protos}, nil
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ';', got %s", tok)
		}
	}
}

// extended := RELATION rel | STREAM rel
func (p *parser) extended() (Statement, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch {
	case tok.IsKeyword("RELATION"):
		return p.relation(false)
	case tok.IsKeyword("STREAM"):
		return p.relation(true)
	}
	return nil, p.errf(tok, "expected RELATION or STREAM after EXTENDED, got %s", tok)
}

// relation := name '(' attrDefs ')' [USING BINDING PATTERNS '(' bps ')'] ';'
func (p *parser) relation(isStream bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateRelation{Name: name, Stream: isStream}
	for {
		aname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if typTok.Kind != lexer.Ident {
			return nil, p.errf(typTok, "expected type name, got %s", typTok)
		}
		kind, ok := value.KindFromName(typTok.Text)
		if !ok {
			return nil, p.errf(typTok, "unknown type %q", typTok.Text)
		}
		def := AttrDef{Name: aname, Type: kind}
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		if tok.IsKeyword("VIRTUAL") {
			def.Virtual = true
			tok, err = p.next()
			if err != nil {
				return nil, err
			}
		}
		st.Attrs = append(st.Attrs, def)
		if tok.Is(")") {
			break
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ')', got %s", tok)
		}
	}
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("USING") {
		if err := p.expectKeyword("BINDING"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("PATTERNS"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			bp, err := p.bindingPattern()
			if err != nil {
				return nil, err
			}
			st.BPs = append(st.BPs, bp)
			tok, err := p.next()
			if err != nil {
				return nil, err
			}
			if tok.Is(")") {
				break
			}
			if !tok.Is(",") {
				return nil, p.errf(tok, "expected ',' or ')', got %s", tok)
			}
		}
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
	}
	// Optional overload clause: ON OVERLOAD <policy> [CAPACITY <n>].
	if tok.IsKeyword("ON") {
		if err := p.expectKeyword("OVERLOAD"); err != nil {
			return nil, err
		}
		polTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if polTok.Kind != lexer.Ident {
			return nil, p.errf(polTok, "expected overload policy (BLOCK, SHED_OLDEST or SHED_NEWEST), got %s", polTok)
		}
		if _, err := resilience.ParseOverloadPolicy(polTok.Text); err != nil {
			return nil, p.errf(polTok, "%v", err)
		}
		st.OnOverload = strings.ToUpper(polTok.Text)
		peek, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if peek.IsKeyword("CAPACITY") {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			numTok, err := p.next()
			if err != nil {
				return nil, err
			}
			n, convErr := strconv.Atoi(numTok.Text)
			if numTok.Kind != lexer.Number || convErr != nil || n < 1 {
				return nil, p.errf(numTok, "expected positive integer capacity, got %s", numTok)
			}
			st.Capacity = n
		}
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
	}
	if !tok.Is(";") {
		return nil, p.errf(tok, "expected USING, ON OVERLOAD or ';', got %s", tok)
	}
	return st, nil
}

// bindingPattern := proto '[' svcAttr ']' [ '(' names? ')' ':' '(' names ')' ]
func (p *parser) bindingPattern() (BPDef, error) {
	proto, err := p.ident()
	if err != nil {
		return BPDef{}, err
	}
	if err := p.expectPunct("["); err != nil {
		return BPDef{}, err
	}
	svc, err := p.ident()
	if err != nil {
		return BPDef{}, err
	}
	if err := p.expectPunct("]"); err != nil {
		return BPDef{}, err
	}
	bp := BPDef{Proto: proto, ServiceAttr: svc}
	tok, err := p.lx.Peek()
	if err != nil {
		return BPDef{}, err
	}
	if !tok.Is("(") {
		return bp, nil
	}
	bp.Explicit = true
	bp.Inputs, err = p.nameList()
	if err != nil {
		return BPDef{}, err
	}
	if err := p.expectPunct(":"); err != nil {
		return BPDef{}, err
	}
	bp.Outputs, err = p.nameList()
	if err != nil {
		return BPDef{}, err
	}
	return bp, nil
}

func (p *parser) nameList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []string
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.Is(")") {
		_, _ = p.next()
		return out, nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		if tok.Is(")") {
			return out, nil
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ')', got %s", tok)
		}
	}
}

// insertDelete := (INTO|FROM) name VALUES row {',' row} ';'
func (p *parser) insertDelete(isInsert bool) (Statement, error) {
	kw := "FROM"
	if isInsert {
		kw = "INTO"
	}
	if err := p.expectKeyword(kw); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]value.Value
	for {
		row, err := p.valueRow()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		if tok.Is(";") {
			break
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ';', got %s", tok)
		}
	}
	if isInsert {
		return &Insert{Relation: name, Rows: rows}, nil
	}
	return &Delete{Relation: name, Rows: rows}, nil
}

func (p *parser) valueRow() ([]value.Value, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []value.Value
	for {
		tok, err := p.next()
		if err != nil {
			return nil, err
		}
		var v value.Value
		switch {
		case tok.Kind == lexer.String:
			v = value.NewString(tok.Text)
		case tok.Kind == lexer.Number:
			v, err = value.Parse(tok.Text)
			if err != nil {
				return nil, p.errf(tok, "%v", err)
			}
		case tok.IsKeyword("true"):
			v = value.NewBool(true)
		case tok.IsKeyword("false"):
			v = value.NewBool(false)
		case tok.IsKeyword("null") || tok.Is("*"):
			v = value.NewNull()
		case tok.Kind == lexer.Ident:
			// Bare identifiers denote service references (Table 1 style:
			// email, sensor01, …).
			v = value.NewService(tok.Text)
		default:
			return nil, p.errf(tok, "expected literal, got %s", tok)
		}
		out = append(out, v)
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
		if tok.Is(")") {
			return out, nil
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ')', got %s", tok)
		}
	}
}

// drop := RELATION name ';'
func (p *parser) drop() (Statement, error) {
	if err := p.expectKeyword("RELATION"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Drop{Name: name}, nil
}
