package catalog_test

import (
	"strings"
	"testing"

	"serena/internal/catalog"
	"serena/internal/ddl"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/sal"
	"serena/internal/service"
	"serena/internal/value"
)

// scenarioDDL declares the paper's environment (Tables 1+2 plus the data of
// Sections 1.2 and 2.2) in pure DDL.
const scenarioDDL = `
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );

EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );

EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);

EXTENDED STREAM temperatures ( sensor SERVICE, location STRING, temperature REAL );

INSERT INTO contacts VALUES
  ("Nicolas", "nicolas@elysee.fr", email),
  ("Carla", "carla@elysee.fr", email),
  ("Francois", "francois@im.gouv.fr", jabber);
INSERT INTO cameras VALUES
  (camera01, "corridor"), (camera02, "office"), (webcam07, "roof");
`

func newCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	reg, _ := paperenv.MustRegistry() // live devices + prototypes
	c := catalog.New(reg)
	// Prototypes in the script are idempotent re-registrations.
	if err := c.ExecuteScript(scenarioDDL, 0); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScenarioDDLBuildsEnvironment(t *testing.T) {
	c := newCatalog(t)
	if got := strings.Join(c.Names(), ","); got != "cameras,contacts,temperatures" {
		t.Fatalf("Names = %q", got)
	}
	contacts, err := c.Relation("contacts")
	if err != nil {
		t.Fatal(err)
	}
	if contacts.Infinite() {
		t.Fatal("contacts must be finite")
	}
	if len(contacts.Current()) != 3 {
		t.Fatalf("contacts rows = %d", len(contacts.Current()))
	}
	sch := contacts.Schema()
	if !sch.Equal(paperenv.ContactsSchema()) {
		t.Fatalf("DDL schema differs from hand-built schema:\n%s\nvs\n%s", sch, paperenv.ContactsSchema())
	}
	temps, _ := c.Relation("temperatures")
	if !temps.Infinite() {
		t.Fatal("temperatures must be a stream")
	}
	cams, _ := c.Relation("cameras")
	if !cams.Schema().Equal(paperenv.CamerasSchema()) {
		t.Fatal("cameras schema differs from hand-built schema")
	}
}

func TestDDLQueriesEndToEnd(t *testing.T) {
	// DDL-declared environment + SAL-parsed Q1 = the full declarative loop.
	reg, dev := paperenv.MustRegistry()
	c := catalog.New(reg)
	if err := c.ExecuteScript(scenarioDDL, 0); err != nil {
		t.Fatal(err)
	}
	q, err := sal.Parse(`invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"](contacts)))`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(q, c.Env(0), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 || res.Actions.Len() != 2 {
		t.Fatalf("Q1 over DDL environment: %d rows, %s", res.Relation.Len(), res.Actions)
	}
	if len(dev.Messengers["email"].Outbox()) != 1 {
		t.Fatal("side effects missing")
	}
}

func TestExplicitBPListValidation(t *testing.T) {
	reg, _ := paperenv.MustRegistry()
	c := catalog.New(reg)
	// Wrong input list order vs prototype declaration.
	err := c.ExecuteScript(`EXTENDED RELATION r (
		a STRING, t STRING VIRTUAL, m SERVICE, s BOOLEAN VIRTUAL
	) USING BINDING PATTERNS ( sendMessage[m] ( t, a ) : ( s ) );`, 0)
	if err == nil {
		t.Fatal("mismatched explicit BP list accepted")
	}
	// Wrong arity.
	err = c.ExecuteScript(`EXTENDED RELATION r2 (
		address STRING, text STRING VIRTUAL, m SERVICE, sent BOOLEAN VIRTUAL
	) USING BINDING PATTERNS ( sendMessage[m] ( address ) : ( sent ) );`, 0)
	if err == nil {
		t.Fatal("wrong-arity explicit BP list accepted")
	}
	// Matching lists pass (attribute names must equal prototype names).
	err = c.ExecuteScript(`EXTENDED RELATION r3 (
		address STRING, text STRING VIRTUAL, m SERVICE, sent BOOLEAN VIRTUAL
	) USING BINDING PATTERNS ( sendMessage[m] ( address, text ) : ( sent ) );`, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPrototypeInBP(t *testing.T) {
	reg := service.NewRegistry()
	c := catalog.New(reg)
	err := c.ExecuteScript(`EXTENDED RELATION r (
		s SERVICE, x REAL VIRTUAL
	) USING BINDING PATTERNS ( mystery[s] );`, 0)
	if err == nil {
		t.Fatal("unknown prototype accepted")
	}
}

func TestInsertDeleteLifecycle(t *testing.T) {
	c := newCatalog(t)
	if err := c.ExecuteScript(`INSERT INTO contacts VALUES ("Zoe", "zoe@x", email);`, 1); err != nil {
		t.Fatal(err)
	}
	contacts, _ := c.Relation("contacts")
	if len(contacts.Current()) != 4 {
		t.Fatal("insert failed")
	}
	if err := c.ExecuteScript(`DELETE FROM contacts VALUES ("Zoe", "zoe@x", email);`, 2); err != nil {
		t.Fatal(err)
	}
	if len(contacts.Current()) != 3 {
		t.Fatal("delete failed")
	}
	// Deleting a never-inserted row errors.
	if err := c.ExecuteScript(`DELETE FROM contacts VALUES ("Ghost", "g@x", email);`, 3); err == nil {
		t.Fatal("deleting absent row accepted")
	}
	// Ill-typed insert errors.
	if err := c.ExecuteScript(`INSERT INTO contacts VALUES (42, "x@y", email);`, 4); err == nil {
		t.Fatal("ill-typed insert accepted")
	}
	// Insert into stream works; delete from stream fails.
	if err := c.ExecuteScript(`INSERT INTO temperatures VALUES (sensor01, "corridor", 20.5);`, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecuteScript(`DELETE FROM temperatures VALUES (sensor01, "corridor", 20.5);`, 6); err == nil {
		t.Fatal("stream delete accepted")
	}
}

func TestDropRelation(t *testing.T) {
	c := newCatalog(t)
	dropped := ""
	c.OnDropRelation = func(name string) { dropped = name }
	if err := c.Execute(&ddl.Drop{Name: "cameras"}, 0); err != nil {
		t.Fatal(err)
	}
	if dropped != "cameras" {
		t.Fatal("drop callback not fired")
	}
	if _, err := c.Relation("cameras"); err == nil {
		t.Fatal("dropped relation still resolvable")
	}
	if err := c.Execute(&ddl.Drop{Name: "cameras"}, 0); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestDuplicateRelation(t *testing.T) {
	c := newCatalog(t)
	err := c.ExecuteScript(`EXTENDED RELATION contacts ( x STRING );`, 0)
	if err == nil {
		t.Fatal("duplicate relation accepted")
	}
}

func TestServiceFactoryStub(t *testing.T) {
	reg := service.NewRegistry()
	c := catalog.New(reg)
	script := `
PROTOTYPE ping( ) : ( pong BOOLEAN );
SERVICE stub01 IMPLEMENTS ping;
`
	if err := c.ExecuteScript(script, 0); err != nil {
		t.Fatal(err)
	}
	rows, err := reg.Invoke("ping", "stub01", nil, 0)
	if err != nil || len(rows) != 0 {
		t.Fatalf("stub service should return empty relation: %v %v", rows, err)
	}
}

func TestCustomServiceFactory(t *testing.T) {
	reg := service.NewRegistry()
	c := catalog.New(reg)
	c.SetServiceFactory(func(ref string, protos []string) (service.Service, error) {
		impls := map[string]service.InvokeFunc{}
		for _, p := range protos {
			impls[p] = func(value.Tuple, service.Instant) ([]value.Tuple, error) {
				return []value.Tuple{{value.NewBool(true)}}, nil
			}
		}
		return service.NewFunc(ref, impls), nil
	})
	if err := c.ExecuteScript(`PROTOTYPE ping( ) : ( pong BOOLEAN ); SERVICE s IMPLEMENTS ping;`, 0); err != nil {
		t.Fatal(err)
	}
	rows, err := reg.Invoke("ping", "s", nil, 0)
	if err != nil || len(rows) != 1 || !rows[0][0].Bool() {
		t.Fatalf("custom factory service broken: %v %v", rows, err)
	}
}

func TestCatalogEnvSnapshot(t *testing.T) {
	c := newCatalog(t)
	_ = c.ExecuteScript(`INSERT INTO contacts VALUES ("Zoe", "zoe@x", email);`, 10)
	// Snapshot at instant 5 must not see Zoe.
	r5, err := c.Env(5).Relation("contacts")
	if err != nil {
		t.Fatal(err)
	}
	if r5.Len() != 3 {
		t.Fatalf("Env(5) sees %d rows, want 3", r5.Len())
	}
	r10, _ := c.Env(10).Relation("contacts")
	if r10.Len() != 4 {
		t.Fatalf("Env(10) sees %d rows, want 4", r10.Len())
	}
	if _, err := c.Env(0).Relation("ghost"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestURSAEnforcement(t *testing.T) {
	c := newCatalog(t)
	// 'name' is STRING in contacts; declaring it INTEGER elsewhere violates
	// URSA (Section 2.3.2).
	err := c.ExecuteScript(`EXTENDED RELATION badges ( name INTEGER, badge STRING );`, 0)
	if err == nil || !strings.Contains(err.Error(), "URSA") {
		t.Fatalf("URSA violation accepted: %v", err)
	}
	// Same name with the same type is fine.
	if err := c.ExecuteScript(`EXTENDED RELATION badges ( name STRING, badge STRING );`, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSysPrefixReservedForRelations(t *testing.T) {
	reg := service.NewRegistry()
	c := catalog.New(reg)
	err := c.ExecuteScript(`EXTENDED RELATION sys$mine ( n INTEGER );`, 0)
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("creating a sys$ relation must be rejected, got %v", err)
	}
}
