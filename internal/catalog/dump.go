package catalog

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"serena/internal/stream"
	"serena/internal/value"
)

// Dump renders the catalog as a re-executable Serena DDL script: prototype
// declarations, relation/stream declarations, and INSERT statements for
// the current contents of finite relations. Stream histories are NOT
// dumped (streams are unbounded; their producers regenerate them).
// Services are not dumped either — implementations live in code or are
// discovered, not declared (the stub SERVICE form would lose behaviour).
//
// Executing the dump against a fresh catalog (with the same service
// implementations registered) restores an equivalent environment; see
// TestDumpRoundTrip.
func (c *Catalog) Dump() string {
	var b strings.Builder
	b.WriteString("-- Serena DDL dump\n")
	for _, p := range c.reg.Prototypes() {
		b.WriteString(p.String())
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for _, name := range c.Names() {
		x, err := c.Relation(name)
		if err != nil {
			continue
		}
		b.WriteString(relationDDL(x))
		b.WriteString("\n")
	}
	for _, name := range c.Names() {
		x, err := c.Relation(name)
		if err != nil || x.Infinite() {
			continue
		}
		rows := x.Current()
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(&b, "INSERT INTO %s VALUES\n", name)
		for i, row := range rows {
			b.WriteString("  ")
			b.WriteString(rowLiteral(row))
			if i < len(rows)-1 {
				b.WriteString(",\n")
			} else {
				b.WriteString(";\n")
			}
		}
	}
	return b.String()
}

// DumpSchema renders the schema half of the catalog only — prototypes,
// SERVICE declarations made through DDL (code-registered services are the
// embedder's to restore), and relation declarations, with no INSERT
// statements. Checkpoints use it: relation data rides in the executor
// snapshot, so dumping it twice would double-apply on recovery.
func (c *Catalog) DumpSchema() string {
	var b strings.Builder
	b.WriteString("-- Serena schema dump\n")
	for _, p := range c.reg.Prototypes() {
		b.WriteString(p.String())
		b.WriteString("\n")
	}
	c.mu.RLock()
	refs := make([]string, 0, len(c.ddlServices))
	for ref := range c.ddlServices {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		fmt.Fprintf(&b, "SERVICE %s IMPLEMENTS %s;\n", ref, strings.Join(c.ddlServices[ref], ", "))
	}
	c.mu.RUnlock()
	b.WriteString("\n")
	for _, name := range c.Names() {
		x, err := c.Relation(name)
		if err != nil {
			continue
		}
		b.WriteString(relationDDL(x))
		b.WriteString("\n")
	}
	return b.String()
}

// RelationDDL renders one relation's declaration in the same re-executable
// form Dump emits (the WAL logs it for replay).
func RelationDDL(x *stream.XDRelation) string { return relationDDL(x) }

// relationDDL renders one relation declaration, using EXTENDED STREAM for
// infinite XD-Relations.
func relationDDL(x *stream.XDRelation) string {
	ddl := x.Schema().String()
	if x.Infinite() {
		ddl = strings.Replace(ddl, "EXTENDED RELATION ", "EXTENDED STREAM ", 1)
	}
	if pol, capacity, ok := x.OverloadPolicy(); ok {
		ddl = fmt.Sprintf("%s ON OVERLOAD %s CAPACITY %d;",
			strings.TrimSuffix(ddl, ";"), pol, capacity)
	}
	return ddl
}

// rowLiteral renders a tuple in INSERT-statement syntax.
func rowLiteral(row value.Tuple) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = valueLiteral(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// valueLiteral renders one value as a DDL literal the parser accepts.
func valueLiteral(v value.Value) string {
	switch v.Kind() {
	case value.Null:
		return "null"
	case value.Bool:
		if v.Bool() {
			return "true"
		}
		return "false"
	case value.Int:
		return strconv.FormatInt(v.Int(), 10)
	case value.Real:
		s := strconv.FormatFloat(v.Real(), 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep REAL typing through the parser
		}
		return s
	case value.String:
		// value.Quote emits only lexer-understood escapes; strconv.Quote
		// would render e.g. "\x01" as characters the lexer reads back as
		// 'x', '0', '1' — a lossy round trip.
		return value.Quote(v.Str())
	case value.Service:
		ref := v.ServiceRef()
		if isIdentifier(ref) {
			return ref // bare identifiers parse back as service refs
		}
		return value.Quote(ref) // STRING literal; Conforms coerces to SERVICE
	case value.Blob:
		return "0x" + hex.EncodeToString(v.Blob())
	}
	return "null"
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if i == 0 && !letter {
			return false
		}
		if !letter && !digit {
			return false
		}
	}
	return true
}
