package catalog_test

import (
	"strings"
	"testing"

	"serena/internal/catalog"
	"serena/internal/paperenv"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/value"
)

func TestDumpRoundTrip(t *testing.T) {
	c := newCatalog(t)
	// Add some tricky values: a REAL without a decimal point, a NULL, a
	// non-identifier service ref, a blob.
	if err := c.ExecuteScript(`
		EXTENDED RELATION extra (
		  n INTEGER, r REAL, flag BOOLEAN, note STRING, svc SERVICE, data BLOB
		);`, 0); err != nil {
		t.Fatal(err)
	}
	extra, _ := c.Relation("extra")
	if err := extra.Insert(0, value.Tuple{
		value.NewInt(-3), value.NewReal(4), value.NewBool(true),
		value.NewNull(), value.NewService("urn:svc/1"), value.NewBlob([]byte{1, 2, 0xff}),
	}); err != nil {
		t.Fatal(err)
	}

	dump := c.Dump()
	for _, frag := range []string{
		"PROTOTYPE sendMessage", "EXTENDED RELATION contacts",
		"EXTENDED STREAM temperatures", "INSERT INTO contacts",
		"4.0", `"urn:svc/1"`, "0x0102ff", "null",
	} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump missing %q:\n%s", frag, dump)
		}
	}

	// Restore into a fresh catalog (same live services).
	reg2, _ := paperenv.MustRegistry()
	c2 := catalog.New(reg2)
	if err := c2.ExecuteScript(dump, 0); err != nil {
		t.Fatalf("restoring dump failed: %v\n%s", err, dump)
	}
	if got, want := strings.Join(c2.Names(), ","), strings.Join(c.Names(), ","); got != want {
		t.Fatalf("restored relations %q, want %q", got, want)
	}
	// Contents restored.
	orig, _ := c.Relation("contacts")
	restored, _ := c2.Relation("contacts")
	if len(restored.Current()) != len(orig.Current()) {
		t.Fatalf("contacts rows = %d, want %d", len(restored.Current()), len(orig.Current()))
	}
	if !restored.Schema().Equal(orig.Schema()) {
		t.Fatal("contacts schema changed through dump/restore")
	}
	// Tricky row intact (including blob, REAL typing and quoted ref).
	e2, _ := c2.Relation("extra")
	rows := e2.Current()
	if len(rows) != 1 {
		t.Fatalf("extra rows = %d", len(rows))
	}
	row := rows[0]
	if row[1].Kind() != value.Real || row[1].Real() != 4 {
		t.Fatalf("REAL literal lost typing: %v (%s)", row[1], row[1].Kind())
	}
	if row[4].Kind() != value.Service || row[4].ServiceRef() != "urn:svc/1" {
		t.Fatalf("service ref lost: %v (%s)", row[4], row[4].Kind())
	}
	if row[5].Kind() != value.Blob || len(row[5].Blob()) != 3 {
		t.Fatalf("blob lost: %v", row[5])
	}
	if !row[3].IsNull() {
		t.Fatalf("null lost: %v", row[3])
	}
	// Dump of the restored catalog is stable.
	if c2.Dump() != dump {
		t.Fatal("dump not idempotent across restore")
	}
}

// TestDumpRoundTripActiveAndControlChars proves the dump text alone — no
// pre-registered prototypes — carries the ACTIVE flag of binding-pattern
// prototypes and survives hostile string contents (newlines, tabs, control
// bytes, quotes, backslashes).
func TestDumpRoundTripActiveAndControlChars(t *testing.T) {
	c := newCatalog(t)
	if err := c.ExecuteScript(`EXTENDED RELATION weird ( note STRING );`, 0); err != nil {
		t.Fatal(err)
	}
	weird, _ := c.Relation("weird")
	hostile := "line1\nline2\ttab \x01 \"quoted\" back\\slash"
	if err := weird.Insert(0, value.Tuple{value.NewString(hostile)}); err != nil {
		t.Fatal(err)
	}
	dump := c.Dump()
	if !strings.Contains(dump, "ACTIVE") {
		t.Fatalf("dump lost the ACTIVE prototype flag:\n%s", dump)
	}

	// Restore into a completely empty registry: everything — prototypes,
	// their active flags, service stubs — must come from the dump text.
	reg2 := service.NewRegistry()
	c2 := catalog.New(reg2)
	if err := c2.ExecuteScript(dump, 0); err != nil {
		t.Fatalf("restoring dump into empty registry failed: %v\n%s", err, dump)
	}
	send, err := reg2.Prototype("sendMessage")
	if err != nil {
		t.Fatal(err)
	}
	if !send.Active {
		t.Fatal("ACTIVE flag lost through dump/restore")
	}
	temp, err := reg2.Prototype("getTemperature")
	if err != nil {
		t.Fatal(err)
	}
	if temp.Active {
		t.Fatal("passive prototype became active through dump/restore")
	}
	w2, _ := c2.Relation("weird")
	rows := w2.Current()
	if len(rows) != 1 || rows[0][0].Str() != hostile {
		t.Fatalf("control-character string mangled: %q", rows[0][0].Str())
	}
	// Binding patterns survive the text round-trip.
	orig, _ := c.Relation("contacts")
	restored, _ := c2.Relation("contacts")
	if !restored.Schema().Equal(orig.Schema()) {
		t.Fatal("binding patterns lost through dump/restore")
	}
}

// TestDumpRoundTripOverloadPolicy: an ON OVERLOAD clause survives dump and
// restore, so WAL replay and checkpoints rebuild the ingest bound.
func TestDumpRoundTripOverloadPolicy(t *testing.T) {
	c := newCatalog(t)
	if err := c.ExecuteScript(`
		EXTENDED STREAM firehose ( src SERVICE, v REAL )
		ON OVERLOAD SHED_NEWEST CAPACITY 32;`, 0); err != nil {
		t.Fatal(err)
	}
	dump := c.Dump()
	if !strings.Contains(dump, "ON OVERLOAD SHED_NEWEST CAPACITY 32;") {
		t.Fatalf("dump missing overload clause:\n%s", dump)
	}
	reg2, _ := paperenv.MustRegistry()
	c2 := catalog.New(reg2)
	if err := c2.ExecuteScript(dump, 0); err != nil {
		t.Fatalf("restoring dump failed: %v\n%s", err, dump)
	}
	x, err := c2.Relation("firehose")
	if err != nil {
		t.Fatal(err)
	}
	pol, capacity, ok := x.OverloadPolicy()
	if !ok || pol != resilience.ShedNewest || capacity != 32 {
		t.Fatalf("restored policy = %v/%d/%v", pol, capacity, ok)
	}
	if c2.Dump() != dump {
		t.Fatal("dump not idempotent across restore")
	}
}
