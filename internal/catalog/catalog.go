// Package catalog implements the Extended Table Manager of the PEMS
// prototype (Gripay et al., EDBT 2010, Section 5.1): it executes Serena DDL
// statements to declare prototypes, scripted services and XD-Relations, and
// manages their data (insertion and deletion of tuples).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"serena/internal/algebra"
	"serena/internal/ddl"
	"serena/internal/query"
	"serena/internal/resilience"
	"serena/internal/schema"
	"serena/internal/service"
	"serena/internal/stream"
	"serena/internal/value"
)

// ServiceFactory builds an implementation for a SERVICE … IMPLEMENTS …
// declaration. The default factory produces inert stubs that return empty
// relations; real environments register live services through the ERM
// instead of DDL.
type ServiceFactory func(ref string, protos []string) (service.Service, error)

func stubFactory(ref string, protos []string) (service.Service, error) {
	impls := make(map[string]service.InvokeFunc, len(protos))
	for _, p := range protos {
		impls[p] = func(value.Tuple, service.Instant) ([]value.Tuple, error) { return nil, nil }
	}
	return service.NewFunc(ref, impls), nil
}

// Catalog is the table manager: named XD-Relations plus the prototype and
// service declarations living in a registry. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	reg     *service.Registry
	rels    map[string]*stream.XDRelation
	factory ServiceFactory
	// ddlServices remembers SERVICE … IMPLEMENTS … declarations (ref →
	// prototype names) so a schema dump can re-declare them; code-registered
	// services are not recorded — their owners re-register them on restart.
	ddlServices map[string][]string

	// OnCreateRelation, when set, is notified of every new XD-Relation
	// (the PEMS wires this to the continuous executor).
	OnCreateRelation func(x *stream.XDRelation)
	// OnDropRelation is notified when a relation is dropped.
	OnDropRelation func(name string)
}

// New returns an empty catalog over the given registry.
func New(reg *service.Registry) *Catalog {
	return &Catalog{
		reg:         reg,
		rels:        make(map[string]*stream.XDRelation),
		factory:     stubFactory,
		ddlServices: make(map[string][]string),
	}
}

// SetServiceFactory overrides how SERVICE declarations are materialized.
func (c *Catalog) SetServiceFactory(f ServiceFactory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.factory = f
}

// Registry returns the underlying service registry.
func (c *Catalog) Registry() *service.Registry { return c.reg }

// Relation resolves a dynamic relation by name.
func (c *Catalog) Relation(name string) (*stream.XDRelation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	x, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return x, nil
}

// Names returns the sorted names of all declared relations.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Execute runs one parsed DDL statement. Data statements are stamped with
// the given instant.
func (c *Catalog) Execute(st ddl.Statement, at service.Instant) error {
	switch t := st.(type) {
	case *ddl.CreatePrototype:
		p, err := buildPrototype(t)
		if err != nil {
			return err
		}
		return c.reg.RegisterPrototype(p)

	case *ddl.CreateService:
		c.mu.RLock()
		factory := c.factory
		c.mu.RUnlock()
		svc, err := factory(t.Ref, t.Prototypes)
		if err != nil {
			return fmt.Errorf("catalog: service %s: %w", t.Ref, err)
		}
		if err := c.reg.Register(svc); err != nil {
			return err
		}
		c.mu.Lock()
		c.ddlServices[t.Ref] = append([]string(nil), t.Prototypes...)
		c.mu.Unlock()
		return nil

	case *ddl.CreateRelation:
		if strings.HasPrefix(t.Name, "sys$") {
			return fmt.Errorf("catalog: relation %q: the sys$ prefix is reserved for system relations", t.Name)
		}
		sch, err := c.buildSchema(t)
		if err != nil {
			return err
		}
		if err := c.checkURSA(sch); err != nil {
			return err
		}
		var x *stream.XDRelation
		if t.Stream {
			x = stream.NewInfinite(sch)
		} else {
			x = stream.NewFinite(sch)
		}
		if t.OnOverload != "" {
			pol, err := resilience.ParseOverloadPolicy(t.OnOverload)
			if err != nil {
				return fmt.Errorf("catalog: relation %q: %w", t.Name, err)
			}
			x.SetOverloadPolicy(pol, t.Capacity)
		}
		c.mu.Lock()
		if _, dup := c.rels[t.Name]; dup {
			c.mu.Unlock()
			return fmt.Errorf("catalog: relation %q already exists", t.Name)
		}
		c.rels[t.Name] = x
		cb := c.OnCreateRelation
		c.mu.Unlock()
		if cb != nil {
			cb(x)
		}
		return nil

	case *ddl.Insert:
		x, err := c.Relation(t.Relation)
		if err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := x.Insert(at, value.Tuple(row)); err != nil {
				return err
			}
		}
		return nil

	case *ddl.Delete:
		x, err := c.Relation(t.Relation)
		if err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := x.Delete(at, value.Tuple(row)); err != nil {
				return err
			}
		}
		return nil

	case *ddl.Drop:
		c.mu.Lock()
		if _, ok := c.rels[t.Name]; !ok {
			c.mu.Unlock()
			return fmt.Errorf("catalog: unknown relation %q", t.Name)
		}
		delete(c.rels, t.Name)
		cb := c.OnDropRelation
		c.mu.Unlock()
		if cb != nil {
			cb(t.Name)
		}
		return nil
	case *ddl.RegisterQuery, *ddl.UnregisterQuery:
		return fmt.Errorf("catalog: REGISTER/UNREGISTER QUERY must be executed through a PEMS (the catalog manages tables, the query processor manages queries)")
	}
	return fmt.Errorf("catalog: unsupported statement %T", st)
}

// ExecuteScript parses and executes a whole DDL script.
func (c *Catalog) ExecuteScript(src string, at service.Instant) error {
	stmts, err := ddl.Parse(src)
	if err != nil {
		return err
	}
	for i, st := range stmts {
		if err := c.Execute(st, at); err != nil {
			return fmt.Errorf("catalog: statement %d: %w", i+1, err)
		}
	}
	return nil
}

func buildPrototype(t *ddl.CreatePrototype) (*schema.Prototype, error) {
	toRel := func(ps []ddl.Param) (*schema.Rel, error) {
		attrs := make([]schema.Attribute, len(ps))
		for i, p := range ps {
			attrs[i] = schema.Attribute{Name: p.Name, Type: p.Type}
		}
		return schema.NewRel(attrs...)
	}
	in, err := toRel(t.Inputs)
	if err != nil {
		return nil, fmt.Errorf("catalog: prototype %s: %w", t.Name, err)
	}
	out, err := toRel(t.Outputs)
	if err != nil {
		return nil, fmt.Errorf("catalog: prototype %s: %w", t.Name, err)
	}
	return schema.NewPrototype(t.Name, in, out, t.Active)
}

// buildSchema resolves a CreateRelation against the declared prototypes,
// checking explicit binding-pattern parameter lists (Table 2 style) against
// the prototype declarations.
func (c *Catalog) buildSchema(t *ddl.CreateRelation) (*schema.Extended, error) {
	attrs := make([]schema.ExtAttr, len(t.Attrs))
	for i, a := range t.Attrs {
		attrs[i] = schema.ExtAttr{
			Attribute: schema.Attribute{Name: a.Name, Type: a.Type},
			Virtual:   a.Virtual,
		}
	}
	var bps []schema.BindingPattern
	for _, b := range t.BPs {
		p, err := c.reg.Prototype(b.Proto)
		if err != nil {
			return nil, fmt.Errorf("catalog: relation %s: %w", t.Name, err)
		}
		if b.Explicit {
			if err := checkNames("input", b.Inputs, p.Input); err != nil {
				return nil, fmt.Errorf("catalog: relation %s, binding pattern %s: %w", t.Name, b.Proto, err)
			}
			if err := checkNames("output", b.Outputs, p.Output); err != nil {
				return nil, fmt.Errorf("catalog: relation %s, binding pattern %s: %w", t.Name, b.Proto, err)
			}
		}
		bps = append(bps, schema.BindingPattern{Proto: p, ServiceAttr: b.ServiceAttr})
	}
	return schema.NewExtended(t.Name, attrs, bps)
}

// checkURSA enforces the Universal Relation Schema Assumption the paper
// keeps (Section 2.3.2): an attribute name means the same thing — and in
// particular carries the same type — in every relation of the environment.
func (c *Catalog) checkURSA(sch *schema.Extended) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, a := range sch.Attrs() {
		for name, x := range c.rels {
			if t, ok := x.Schema().TypeOf(a.Name); ok && t != a.Type {
				return fmt.Errorf("catalog: URSA violation: attribute %q is %s here but %s in relation %q",
					a.Name, a.Type, t, name)
			}
		}
	}
	return nil
}

func checkNames(kind string, names []string, rel *schema.Rel) error {
	if len(names) != rel.Arity() {
		return fmt.Errorf("%s list has %d names, prototype declares %d", kind, len(names), rel.Arity())
	}
	for i, n := range names {
		if rel.Attrs()[i].Name != n {
			return fmt.Errorf("%s %d is %q, prototype declares %q", kind, i+1, n, rel.Attrs()[i].Name)
		}
	}
	return nil
}

// Env returns a snapshot query.Environment over the catalog's relations at
// the given instant, for one-shot query evaluation.
func (c *Catalog) Env(at service.Instant) query.Environment {
	return catalogEnv{c: c, at: at}
}

type catalogEnv struct {
	c  *Catalog
	at service.Instant
}

// Relation implements query.Environment. Infinite relations are exposed
// with their full insertion history (useful for one-shot inspection);
// continuous queries go through the executor's window semantics instead.
func (e catalogEnv) Relation(name string) (*algebra.XRelation, error) {
	x, err := e.c.Relation(name)
	if err != nil {
		return nil, err
	}
	var tuples []value.Tuple
	if x.LastInstant() <= e.at {
		tuples = x.Current()
	} else {
		tuples = x.At(e.at)
	}
	return algebra.New(x.Schema(), tuples)
}
