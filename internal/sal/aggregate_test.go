package sal_test

import (
	"testing"

	"serena/internal/algebra"
	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/sal"
)

func TestAggregateParsing(t *testing.T) {
	n, err := sal.Parse(`aggregate[mean(temperature) as avgtemp by location](temperatures)`)
	if err != nil {
		t.Fatal(err)
	}
	agg := n.(*query.Aggregate)
	if len(agg.Aggs) != 1 || agg.Aggs[0].Func != algebra.Mean || agg.Aggs[0].As != "avgtemp" {
		t.Fatalf("aggs = %+v", agg.Aggs)
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0] != "location" {
		t.Fatalf("groupBy = %v", agg.GroupBy)
	}
	// Multi-agg, multi-group, count(*).
	n2, err := sal.Parse(`aggregate[count(*) as n, min(temperature) as lo, max(temperature) as hi by location, sensor](temperatures)`)
	if err != nil {
		t.Fatal(err)
	}
	agg2 := n2.(*query.Aggregate)
	if len(agg2.Aggs) != 3 || len(agg2.GroupBy) != 2 {
		t.Fatalf("agg2 = %+v", agg2)
	}
	if agg2.Aggs[0].Attr != "" {
		t.Fatalf("count(*) attr = %q", agg2.Aggs[0].Attr)
	}
	// Global aggregation (no by clause).
	n3, err := sal.Parse(`aggregate[sum(temperature) as total](temperatures)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(n3.(*query.Aggregate).GroupBy) != 0 {
		t.Fatal("global aggregation should have no grouping")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	srcs := []string{
		`aggregate[mean(temperature) as avgtemp by location](temperatures)`,
		`aggregate[count(*) as n](temperatures)`,
		`aggregate[count(*) as n, max(temperature) as hi by location](temperatures)`,
	}
	for _, src := range srcs {
		n, err := sal.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if n.String() != src {
			t.Fatalf("round trip:\nin:  %s\nout: %s", src, n.String())
		}
	}
}

func TestAggregateParseErrors(t *testing.T) {
	bad := []string{
		`aggregate[](r)`,
		`aggregate[median(x) as m](r)`,
		`aggregate[sum(*) as s](r)`, // '*' only for count
		`aggregate[sum(x) m](r)`,    // missing 'as'
		`aggregate[sum(x) as](r)`,
		`aggregate[sum(x) as s by](r)`,
		`aggregate[sum(x) as s by g,](r)`,
	}
	for _, src := range bad {
		if _, err := sal.Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestMeanTemperaturePerLocationEndToEnd(t *testing.T) {
	// Section 1.2: "a one-shot query can … compute a mean temperature for a
	// given location" — realized via β then the aggregation extension.
	reg, _ := paperenv.MustRegistry()
	env := query.MapEnv{"sensors": paperenv.Sensors()}
	n, err := sal.Parse(`aggregate[mean(temperature) as avgtemp by location](invoke[getTemperature](sensors))`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(n, env, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 { // corridor, office, roof
		t.Fatalf("groups = %d", res.Relation.Len())
	}
	sch := res.Relation.Schema()
	li, ai := sch.RealIndex("location"), sch.RealIndex("avgtemp")
	for _, tu := range res.Relation.Tuples() {
		if tu[li].Str() == "office" {
			// sensors 06 (21) and 07 (22) → mean 21.5 at instant 0.
			if tu[ai].Real() != 21.5 {
				t.Fatalf("office mean = %v, want 21.5", tu[ai])
			}
		}
	}
}
