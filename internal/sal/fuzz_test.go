package sal_test

import (
	"testing"

	"serena/internal/sal"
)

// FuzzParse asserts the SAL parser never panics and that every accepted
// input round-trips through String → Parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`contacts`,
		`project[name, address](contacts)`,
		`select[name != "Carla"](contacts)`,
		`select[a = 1 or b = 2 and not (c >= 3.5)](r)`,
		`rename[location -> area](t)`,
		`assign[text := "Bonjour!"](contacts)`,
		`assign[text := address](contacts)`,
		`invoke[sendMessage@messenger](contacts)`,
		`window[3600](news)`,
		`stream[insertion](q)`,
		`aggregate[mean(temperature) as avg by location](t)`,
		`join(union(a, b), diff(c, intersect(d, e)))`,
		`select[title contains "Obama"](window[1](news))`,
		`select[`,
		`project[](r)`,
		`π[x](r)`,
		`invoke[p](q))`,
		"select[a = \x00](r)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := sal.Parse(src)
		if err != nil || n == nil {
			return
		}
		printed := n.String()
		n2, err := sal.Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, printed, err)
		}
		if n2.String() != printed {
			t.Fatalf("unstable round trip: %q → %q → %q", src, printed, n2.String())
		}
	})
}
