// Package sal parses the Serena Algebra Language — the textual form of
// Serena algebra expressions used to register queries with the PEMS Query
// Processor (Gripay et al., EDBT 2010, Section 5.1). The syntax matches the
// String() rendering of internal/query nodes, so parsing and printing
// round-trip:
//
//	expr     := ident
//	          | project[attr, …](expr)
//	          | select[formula](expr)
//	          | rename[old -> new](expr)
//	          | assign[attr := operand](expr)
//	          | invoke[proto](expr) | invoke[proto@svcAttr](expr)
//	          | window[n](expr)
//	          | stream[insertion|deletion|heartbeat](expr)
//	          | join(expr, expr) | union(expr, expr)
//	          | intersect(expr, expr) | diff(expr, expr)
//	formula  := orTerm { or orTerm }
//	orTerm   := andTerm { and andTerm }
//	andTerm  := not ( formula ) | ( formula ) | cmp | true
//	cmp      := operand op operand      op ∈ { =, ==, !=, <>, <, <=, >, >=, contains }
//	operand  := literal | ident
//
// Type-checking happens at planning time against the environment.
package sal

import (
	"fmt"
	"strings"

	"serena/internal/algebra"
	"serena/internal/lexer"
	"serena/internal/query"
	"serena/internal/value"
)

// Parse parses one algebra expression.
func Parse(src string) (query.Node, error) {
	p := &parser{lx: lexer.New(src)}
	n, err := p.expr()
	if err != nil {
		return nil, err
	}
	tok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind != lexer.EOF && !tok.Is(";") {
		return nil, p.errf(tok, "trailing input %s", tok)
	}
	return n, nil
}

type parser struct{ lx *lexer.Lexer }

func (p *parser) errf(tok lexer.Token, format string, args ...any) error {
	return fmt.Errorf("sal: line %d:%d: %s", tok.Line, tok.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(punct string) error {
	tok, err := p.lx.Next()
	if err != nil {
		return err
	}
	if !tok.Is(punct) {
		return p.errf(tok, "expected %q, got %s", punct, tok)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return "", err
	}
	if tok.Kind != lexer.Ident {
		return "", p.errf(tok, "expected identifier, got %s", tok)
	}
	return tok.Text, nil
}

func (p *parser) expr() (query.Node, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	if tok.Kind != lexer.Ident {
		return nil, p.errf(tok, "expected operator or relation name, got %s", tok)
	}
	next, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	// Bare identifier → base relation.
	if !next.Is("[") && !next.Is("(") {
		return query.NewBase(tok.Text), nil
	}
	switch {
	case tok.IsKeyword("project"):
		attrs, err := p.bracketNames()
		if err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewProject(child, attrs...), nil

	case tok.IsKeyword("select"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewSelect(child, f), nil

	case tok.IsKeyword("rename"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		oldName, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
		newName, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewRename(child, oldName, newName), nil

	case tok.IsKeyword("assign"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":="); err != nil {
			return nil, err
		}
		srcTok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		var node func(query.Node) query.Node
		switch {
		case srcTok.Kind == lexer.Ident && !srcTok.IsKeyword("true") && !srcTok.IsKeyword("false") && !srcTok.IsKeyword("null"):
			src := srcTok.Text
			node = func(c query.Node) query.Node { return query.NewAssignAttr(c, attr, src) }
		default:
			v, err := p.literal(srcTok)
			if err != nil {
				return nil, err
			}
			node = func(c query.Node) query.Node { return query.NewAssignConst(c, attr, v) }
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return node(child), nil

	case tok.IsKeyword("invoke"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		proto, err := p.ident()
		if err != nil {
			return nil, err
		}
		svcAttr := ""
		nx, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if nx.Is("@") {
			_, _ = p.lx.Next()
			svcAttr, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewInvoke(child, proto, svcAttr), nil

	case tok.IsKeyword("window"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		numTok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if numTok.Kind != lexer.Number {
			return nil, p.errf(numTok, "expected window period, got %s", numTok)
		}
		v, err := value.Parse(numTok.Text)
		if err != nil || v.Kind() != value.Int || v.Int() < 1 {
			return nil, p.errf(numTok, "window period must be a positive integer")
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewWindow(child, v.Int()), nil

	case tok.IsKeyword("stream"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		kindName, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, ok := query.StreamKindFromString(kindName)
		if !ok {
			return nil, fmt.Errorf("sal: unknown streaming type %q (want insertion, deletion or heartbeat)", kindName)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		child, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		return query.NewStream(child, kind), nil

	case tok.IsKeyword("aggregate"):
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		var aggs []algebra.AggSpec
		var groupBy []string
		for {
			spec, err := p.aggSpec()
			if err != nil {
				return nil, err
			}
			aggs = append(aggs, spec)
			tk, err := p.lx.Next()
			if err != nil {
				return nil, err
			}
			if tk.Is(",") {
				continue
			}
			if tk.IsKeyword("by") {
				for {
					name, err := p.ident()
					if err != nil {
						return nil, err
					}
					groupBy = append(groupBy, name)
					tk, err := p.lx.Next()
					if err != nil {
						return nil, err
					}
					if tk.Is("]") {
						child, err := p.parenExpr()
						if err != nil {
							return nil, err
						}
						return query.NewAggregate(child, groupBy, aggs), nil
					}
					if !tk.Is(",") {
						return nil, p.errf(tk, "expected ',' or ']', got %s", tk)
					}
				}
			}
			if tk.Is("]") {
				child, err := p.parenExpr()
				if err != nil {
					return nil, err
				}
				return query.NewAggregate(child, groupBy, aggs), nil
			}
			return nil, p.errf(tk, "expected ',', 'by' or ']', got %s", tk)
		}

	case tok.IsKeyword("join"), tok.IsKeyword("union"), tok.IsKeyword("intersect"), tok.IsKeyword("diff"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		left, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		right, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		switch {
		case tok.IsKeyword("join"):
			return query.NewJoin(left, right), nil
		case tok.IsKeyword("union"):
			return query.NewUnion(left, right), nil
		case tok.IsKeyword("intersect"):
			return query.NewIntersect(left, right), nil
		default:
			return query.NewDiff(left, right), nil
		}
	}
	return nil, p.errf(tok, "unknown operator %q", tok.Text)
}

// aggSpec := func '(' (ident | '*') ')' 'as' ident
func (p *parser) aggSpec() (algebra.AggSpec, error) {
	fnTok, err := p.lx.Next()
	if err != nil {
		return algebra.AggSpec{}, err
	}
	if fnTok.Kind != lexer.Ident {
		return algebra.AggSpec{}, p.errf(fnTok, "expected aggregate function, got %s", fnTok)
	}
	fn, ok := algebra.AggFuncFromString(strings.ToLower(fnTok.Text))
	if !ok {
		return algebra.AggSpec{}, p.errf(fnTok, "unknown aggregate function %q", fnTok.Text)
	}
	if err := p.expectPunct("("); err != nil {
		return algebra.AggSpec{}, err
	}
	attrTok, err := p.lx.Next()
	if err != nil {
		return algebra.AggSpec{}, err
	}
	attr := ""
	switch {
	case attrTok.Is("*"):
		if fn != algebra.Count {
			return algebra.AggSpec{}, p.errf(attrTok, "only count may use '*'")
		}
	case attrTok.Kind == lexer.Ident:
		attr = attrTok.Text
	default:
		return algebra.AggSpec{}, p.errf(attrTok, "expected attribute or '*', got %s", attrTok)
	}
	if err := p.expectPunct(")"); err != nil {
		return algebra.AggSpec{}, err
	}
	asTok, err := p.lx.Next()
	if err != nil {
		return algebra.AggSpec{}, err
	}
	if !asTok.IsKeyword("as") {
		return algebra.AggSpec{}, p.errf(asTok, "expected 'as', got %s", asTok)
	}
	name, err := p.ident()
	if err != nil {
		return algebra.AggSpec{}, err
	}
	return algebra.AggSpec{Func: fn, Attr: attr, As: name}, nil
}

func (p *parser) parenExpr() (query.Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	n, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) bracketNames() ([]string, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var out []string
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		tok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if tok.Is("]") {
			return out, nil
		}
		if !tok.Is(",") {
			return nil, p.errf(tok, "expected ',' or ']', got %s", tok)
		}
	}
}

// formula := orTerm { "or" orTerm }
func (p *parser) formula() (algebra.Formula, error) {
	left, err := p.andFormula()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Formula{left}
	for {
		tok, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if !tok.IsKeyword("or") {
			break
		}
		_, _ = p.lx.Next()
		right, err := p.andFormula()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return algebra.NewOr(terms...), nil
}

// andFormula := unary { "and" unary }
func (p *parser) andFormula() (algebra.Formula, error) {
	left, err := p.unaryFormula()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Formula{left}
	for {
		tok, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if !tok.IsKeyword("and") {
			break
		}
		_, _ = p.lx.Next()
		right, err := p.unaryFormula()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return algebra.NewAnd(terms...), nil
}

// unaryFormula := "not" "(" formula ")" | "(" formula ")" | "true" | cmp
func (p *parser) unaryFormula() (algebra.Formula, error) {
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, err
	}
	if tok.IsKeyword("not") {
		_, _ = p.lx.Next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		inner, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return algebra.NewNot(inner), nil
	}
	if tok.Is("(") {
		_, _ = p.lx.Next()
		inner, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	// "true" alone (as emitted by algebra.True.String).
	if tok.IsKeyword("true") {
		// Could also be the left side of a comparison like true = x — the
		// algebra never emits that, so treat bare true as the constant.
		_, _ = p.lx.Next()
		nx, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		if op, isCmp := cmpOpFromToken(nx); isCmp {
			_, _ = p.lx.Next()
			right, err := p.operand()
			if err != nil {
				return nil, err
			}
			return algebra.Compare(algebra.Const(value.NewBool(true)), op, right), nil
		}
		return algebra.True{}, nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.lx.Next()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOpFromToken(opTok)
	if !ok {
		return nil, p.errf(opTok, "expected comparison operator, got %s", opTok)
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return algebra.Compare(left, op, right), nil
}

func cmpOpFromToken(tok lexer.Token) (algebra.CmpOp, bool) {
	if tok.Kind == lexer.Punct {
		return algebra.CmpOpFromString(tok.Text)
	}
	if tok.IsKeyword("contains") {
		return algebra.Contains, true
	}
	return 0, false
}

func (p *parser) operand() (algebra.Operand, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return algebra.Operand{}, err
	}
	if tok.Kind == lexer.Ident && !tok.IsKeyword("true") && !tok.IsKeyword("false") && !tok.IsKeyword("null") {
		return algebra.Attr(tok.Text), nil
	}
	v, err := p.literal(tok)
	if err != nil {
		return algebra.Operand{}, err
	}
	return algebra.Const(v), nil
}

func (p *parser) literal(tok lexer.Token) (value.Value, error) {
	switch {
	case tok.Kind == lexer.String:
		return value.NewString(tok.Text), nil
	case tok.Kind == lexer.Number:
		return value.Parse(tok.Text)
	case tok.IsKeyword("true"):
		return value.NewBool(true), nil
	case tok.IsKeyword("false"):
		return value.NewBool(false), nil
	case tok.IsKeyword("null"), tok.Is("*"):
		return value.NewNull(), nil
	}
	return value.Value{}, p.errf(tok, "expected literal, got %s", tok)
}
