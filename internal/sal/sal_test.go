package sal_test

import (
	"testing"

	"serena/internal/paperenv"
	"serena/internal/query"
	"serena/internal/sal"
	"serena/internal/service"
)

// paperQueries are the Table 4 queries in SAL syntax (Q1, Q1', Q2, Q2',
// Q3, Q4).
var paperQueries = map[string]string{
	"Q1":  `invoke[sendMessage](assign[text := "Bonjour!"](select[name != "Carla"](contacts)))`,
	"Q1'": `select[name != "Carla"](invoke[sendMessage](assign[text := "Bonjour!"](contacts)))`,
	"Q2":  `project[photo](invoke[takePhoto](select[quality >= 5](invoke[checkPhoto](select[area = "office"](cameras)))))`,
	"Q2'": `project[photo](invoke[takePhoto](select[(quality >= 5) and (area = "office")](invoke[checkPhoto](cameras))))`,
	"Q3":  `invoke[sendMessage](assign[text := "Hot!"](join(contacts, select[temperature > 35.5](window[1](temperatures)))))`,
	"Q4":  `stream[insertion](project[photo](invoke[takePhoto](invoke[checkPhoto](join(cameras, rename[location -> area](select[temperature < 12.0](window[1](temperatures))))))))`,
}

func TestTable4QueriesParse(t *testing.T) {
	for name, src := range paperQueries {
		n, err := sal.Parse(src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if n == nil {
			t.Errorf("%s: nil node", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	// Parse → String → Parse must be stable.
	for name, src := range paperQueries {
		n1, err := sal.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		printed := n1.String()
		n2, err := sal.Parse(printed)
		if err != nil {
			t.Fatalf("%s: re-parse of %q: %v", name, printed, err)
		}
		if n2.String() != printed {
			t.Errorf("%s: round-trip unstable:\n1: %s\n2: %s", name, printed, n2.String())
		}
	}
}

func TestParsedQ1Evaluates(t *testing.T) {
	reg, dev := paperenv.MustRegistry()
	env := query.MapEnv{"contacts": paperenv.Contacts()}
	n, err := sal.Parse(paperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Evaluate(n, env, reg, service.Instant(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 || res.Actions.Len() != 2 {
		t.Fatalf("Q1 via SAL: %d tuples, actions %s", res.Relation.Len(), res.Actions)
	}
	if len(dev.Messengers["email"].Outbox()) != 1 {
		t.Fatal("email outbox wrong")
	}
}

func TestBaseAndSetOps(t *testing.T) {
	n, err := sal.Parse(`union(diff(contacts, contacts), intersect(contacts, contacts))`)
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "union(diff(contacts, contacts), intersect(contacts, contacts))" {
		t.Fatalf("String = %q", n.String())
	}
	b, err := sal.Parse("contacts")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*query.Base); !ok {
		t.Fatalf("bare name = %T", b)
	}
}

func TestAssignVariants(t *testing.T) {
	n, err := sal.Parse(`assign[text := address](contacts)`)
	if err != nil {
		t.Fatal(err)
	}
	a := n.(*query.Assign)
	if a.Src != "address" {
		t.Fatalf("assign-attr = %+v", a)
	}
	n2, err := sal.Parse(`assign[quality := 5](cameras)`)
	if err != nil {
		t.Fatal(err)
	}
	a2 := n2.(*query.Assign)
	if a2.Src != "" || a2.Const.Int() != 5 {
		t.Fatalf("assign-const = %+v", a2)
	}
	n3, err := sal.Parse(`assign[sent := true](contacts)`)
	if err != nil {
		t.Fatal(err)
	}
	if !n3.(*query.Assign).Const.Bool() {
		t.Fatal("assign bool literal broken")
	}
}

func TestInvokeQualified(t *testing.T) {
	n, err := sal.Parse(`invoke[getTemperature@sensor](sensors)`)
	if err != nil {
		t.Fatal(err)
	}
	inv := n.(*query.Invoke)
	if inv.Proto != "getTemperature" || inv.ServiceAttr != "sensor" {
		t.Fatalf("invoke = %+v", inv)
	}
}

func TestFormulaPrecedence(t *testing.T) {
	// and binds tighter than or.
	n, err := sal.Parse(`select[a = 1 or b = 2 and c = 3](r)`)
	if err != nil {
		t.Fatal(err)
	}
	got := n.String()
	want := `select[(a = 1) or ((b = 2) and (c = 3))](r)`
	if got != want {
		t.Fatalf("precedence: %q want %q", got, want)
	}
	// not and parens.
	n2, err := sal.Parse(`select[not (a = 1) and (b = 2 or true)](r)`)
	if err != nil {
		t.Fatal(err)
	}
	want2 := `select[(not (a = 1)) and ((b = 2) or (true))](r)`
	if n2.String() != want2 {
		t.Fatalf("got %q want %q", n2.String(), want2)
	}
}

func TestFormulaOperators(t *testing.T) {
	for _, src := range []string{
		`select[a = 1](r)`, `select[a == 1](r)`, `select[a != 1](r)`,
		`select[a <> 1](r)`, `select[a < 1](r)`, `select[a <= 1](r)`,
		`select[a > 1](r)`, `select[a >= 1](r)`,
		`select[title contains "Obama"](r)`,
		`select[a = b](r)`, `select[true](r)`,
		`select[a = null](r)`, `select[a = -5](r)`, `select[a = 2.5](r)`,
	} {
		if _, err := sal.Parse(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestWindowAndStream(t *testing.T) {
	n, err := sal.Parse(`window[3600](temperatures)`)
	if err != nil {
		t.Fatal(err)
	}
	if n.(*query.Window).Period != 3600 {
		t.Fatalf("period = %d", n.(*query.Window).Period)
	}
	for _, kind := range []string{"insertion", "deletion", "heartbeat"} {
		if _, err := sal.Parse(`stream[` + kind + `](r)`); err != nil {
			t.Errorf("stream[%s]: %v", kind, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`project[](r)`,
		`project[a(r)`,
		`select[a =](r)`,
		`select[](r)`,
		`rename[a b](r)`,
		`assign[x = 1](r)`, // needs :=
		`invoke[](r)`,
		`window[0](r)`,
		`window[-1](r)`,
		`window[1.5](r)`,
		`stream[bogus](r)`,
		`join(a)`,
		`join(a, b`,
		`union(a, b) trailing`,
		`unknownop[x](r)`,
	}
	for _, src := range bad {
		if _, err := sal.Parse(src); err == nil {
			t.Errorf("accepted invalid SAL: %s", src)
		}
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := sal.Parse(`contacts;`); err != nil {
		t.Fatal(err)
	}
}
