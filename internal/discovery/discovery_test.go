package discovery_test

import (
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/service"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// newNode builds a Local ERM hosting the given sensors.
func newNode(t *testing.T, bus discovery.Bus, name string, sensorRefs ...string) *discovery.Node {
	t.Helper()
	n := discovery.NewNode(name, bus)
	if err := n.Registry().RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	for _, ref := range sensorRefs {
		if err := n.Registry().Register(device.NewSensor(ref, "lab", 20)); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func newCentral(t *testing.T) *service.Registry {
	t.Helper()
	central := service.NewRegistry()
	if err := central.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	return central
}

func TestDiscoveryRegistersRemoteServices(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()

	node := newNode(t, bus, "node-A", "sensorA1", "sensorA2")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	waitFor(t, "services discovered", func() bool {
		return len(central.Implementing("getTemperature")) == 2
	})
	// Invoke through the central registry: transparent remote invocation.
	rows, err := central.Invoke("getTemperature", "sensorA1", nil, 3)
	if err != nil || len(rows) != 1 {
		t.Fatalf("remote invoke via central = %v %v", rows, err)
	}
	if got := m.Nodes(); len(got) != 1 || got[0] != "node-A" {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestByeUnregisters(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()

	node := newNode(t, bus, "node-A", "sensorA1")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "discovery", func() bool { return len(central.Refs()) == 1 })
	if err := node.Stop(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bye processed", func() bool { return len(central.Refs()) == 0 })
}

func TestTwoNodes(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()

	a := newNode(t, bus, "node-A", "sensorA1")
	b := newNode(t, bus, "node-B", "sensorB1", "sensorB2")
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if err := b.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	waitFor(t, "both nodes", func() bool { return len(central.Refs()) == 3 })
	_ = a.Stop()
	waitFor(t, "A gone, B stays", func() bool { return len(central.Refs()) == 2 })
}

func TestLateManagerMissesNothingAfterReannounce(t *testing.T) {
	bus := discovery.NewInProcBus()
	node := newNode(t, bus, "node-A", "sensorA1")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	// Manager starts AFTER the node announced (missed the initial alive).
	central := newCentral(t)
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()
	if len(central.Refs()) != 0 {
		t.Fatal("nothing should be known yet")
	}
	node.Announce() // periodic lease renewal reaches the late manager
	waitFor(t, "reannounce discovery", func() bool { return len(central.Refs()) == 1 })
}

func TestRefreshFindsNewServices(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()

	node := newNode(t, bus, "node-A", "sensorA1")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	waitFor(t, "initial discovery", func() bool { return len(central.Refs()) == 1 })

	// A new device appears on the node at runtime.
	if err := node.Registry().Register(device.NewSensor("sensorA2", "roof", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("node-A"); err != nil {
		t.Fatal(err)
	}
	if len(central.Refs()) != 2 {
		t.Fatalf("refresh missed the new service: %v", central.Refs())
	}
	if err := m.Refresh("ghost"); err == nil {
		t.Fatal("refresh of unknown node accepted")
	}
}

func TestLeaseExpiry(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus, discovery.WithLease(50*time.Millisecond))
	m.Start()
	defer m.Stop()

	node := newNode(t, bus, "node-A", "sensorA1")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	waitFor(t, "discovery", func() bool { return len(central.Refs()) == 1 })

	// Renewal within the lease keeps the node alive.
	node.Announce()
	if expired := m.SweepExpired(time.Now()); len(expired) != 0 {
		t.Fatalf("renewed node expired: %v", expired)
	}
	// Past the lease without renewal → swept, either by this manual call or
	// by the background sweeper that Start launched, whichever fires first.
	expired := m.SweepExpired(time.Now().Add(time.Second))
	if len(expired) == 1 && expired[0] != "node-A" {
		t.Fatalf("expired = %v", expired)
	}
	waitFor(t, "expired node's services unregistered", func() bool {
		return len(central.Refs()) == 0 && len(m.Nodes()) == 0
	})
}

// TestBackgroundSweepMasksDeadNode: a node that dies WITHOUT a bye message
// (crash, partition) is masked out of the central registry by the sweeper
// Start launches — nobody calls SweepExpired by hand here.
func TestBackgroundSweepMasksDeadNode(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus, discovery.WithLease(60*time.Millisecond))
	m.Start()
	defer m.Stop()

	node := newNode(t, bus, "node-A", "sensorA1")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	waitFor(t, "discovery", func() bool { return len(central.Refs()) == 1 })

	// The node now goes silent: no renewals, no bye. Within about one lease
	// the sweeper must unregister its services and forget the node.
	waitFor(t, "dead node masked", func() bool {
		return len(central.Refs()) == 0 && len(m.Nodes()) == 0
	})
	// The masked service is gone from resolution, so running queries see a
	// clean unknown-service failure, not a hang against a dead peer.
	if _, err := central.Invoke("getTemperature", "sensorA1", nil, 0); err == nil {
		t.Fatal("invocation against a dead node's service succeeded")
	}
	if got := central.Implementing("getTemperature"); len(got) != 0 {
		t.Fatalf("dead node still implementing: %v", got)
	}
}

func TestUnreachableAnnouncementIgnored(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus, discovery.WithDialTimeout(100*time.Millisecond))
	m.Start()
	defer m.Stop()
	bus.Announce(discovery.Announcement{Kind: discovery.Alive, Node: "phantom", Addr: "127.0.0.1:1"})
	time.Sleep(200 * time.Millisecond)
	if len(m.Nodes()) != 0 || len(central.Refs()) != 0 {
		t.Fatal("phantom node registered")
	}
}

func TestRefCollisionSkipped(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	// Central already has a LOCAL sensor01.
	if err := central.Register(device.NewSensor("sensor01", "local", 5)); err != nil {
		t.Fatal(err)
	}
	m := discovery.NewManager(central, bus)
	m.Start()
	defer m.Stop()
	node := newNode(t, bus, "node-A", "sensor01", "sensor02")
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	waitFor(t, "partial discovery", func() bool { return len(central.Refs()) == 2 })
	// The local sensor01 must have won; remote sensor02 registered.
	svc, _ := central.Lookup("sensor01")
	if _, isLocal := svc.(*device.Sensor); !isLocal {
		t.Fatal("local service displaced by remote one")
	}
}

func TestInProcBusSubscribeCancel(t *testing.T) {
	bus := discovery.NewInProcBus()
	ch, cancel := bus.Subscribe()
	bus.Announce(discovery.Announcement{Kind: discovery.Alive, Node: "x", Addr: "a"})
	if a := <-ch; a.Node != "x" {
		t.Fatalf("announcement = %+v", a)
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel open after cancel")
	}
	cancel() // idempotent
	bus.Announce(discovery.Announcement{Kind: discovery.Bye, Node: "x", Addr: "a"})
}
