package discovery_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/service"
	"serena/internal/value"
)

// TestManagerChurnUnderRace exercises the Manager's concurrent surfaces —
// announcement handling, the background lease sweeper, subscriber churn on
// the bus and membership snapshots — all at once. It asserts convergence
// (every node discovered once the dust settles); the -race build asserts
// the rest.
func TestManagerChurnUnderRace(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus, discovery.WithLease(50*time.Millisecond))
	m.Start()
	defer m.Stop()

	names := []string{"churn-A", "churn-B", "churn-C"}
	nodes := make([]*discovery.Node, len(names))
	for i, name := range names {
		nodes[i] = newNode(t, bus, name, name+"-sensor")
		if err := nodes[i].Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer nodes[i].Stop()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Alive spam: every node renews its lease far faster than expiry.
	for _, n := range nodes {
		wg.Add(1)
		go func(n *discovery.Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					n.Announce()
					time.Sleep(3 * time.Millisecond)
				}
			}
		}(n)
	}
	// Bye churn: one node keeps flickering in and out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				bus.Announce(discovery.Announcement{Kind: discovery.Bye, Node: names[0], Addr: nodes[0].Addr()})
				time.Sleep(7 * time.Millisecond)
			}
		}
	}()
	// Subscriber churn on the shared bus.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ch, cancel := bus.Subscribe()
				select {
				case <-ch:
				case <-time.After(time.Millisecond):
				}
				cancel()
			}
		}
	}()
	// Membership and registry snapshots race the mutators.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Peers()
				m.Nodes()
				central.Refs()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Settle: every node re-announces and must be (re)discovered.
	for _, n := range nodes {
		n.Announce()
	}
	waitFor(t, "all churned nodes discovered", func() bool {
		return len(m.Nodes()) == len(names)
	})
}

// TestByeDuringInFlightBatch is the wire regression for federation: a Bye
// for a node arrives (and the manager closes its client) while a wire batch
// frame to that node is still in flight. The in-flight batch must not hang,
// must not surface a terminal error, and — with a replica of the reference
// alive on another node — must fail over and deliver every item.
func TestByeDuringInFlightBatch(t *testing.T) {
	bus := discovery.NewInProcBus()
	central := newCentral(t)
	m := discovery.NewManager(central, bus, discovery.WithLease(5*time.Second))
	m.Start()
	defer m.Stop()

	// Two nodes replicate reference "dual"; both answer slowly enough that
	// the Bye races the in-flight frame.
	mkSlow := func() service.Service {
		return service.NewFunc("dual", map[string]service.InvokeFunc{
			"getTemperature": func(_ value.Tuple, at service.Instant) ([]value.Tuple, error) {
				time.Sleep(250 * time.Millisecond)
				return []value.Tuple{{value.NewReal(21)}}, nil
			},
		})
	}
	nodes := map[string]*discovery.Node{}
	for _, name := range []string{"dual-A", "dual-B"} {
		n := discovery.NewNode(name, bus)
		if err := n.Registry().RegisterPrototype(device.GetTemperatureProto()); err != nil {
			t.Fatal(err)
		}
		if err := n.Registry().Register(mkSlow()); err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes[name] = n
	}
	waitFor(t, "both replicas discovered", func() bool {
		return len(central.ProviderNodes("dual")) == 2
	})
	owner := central.ProviderNodes("dual")[0]

	type outcome struct{ results []service.InvokeResult }
	done := make(chan outcome, 1)
	go func() {
		inputs := make([]value.Tuple, 3)
		done <- outcome{central.InvokeBatchCtx(context.Background(), "getTemperature", "dual", inputs, 7)}
	}()

	// Let the frame reach the owner, then Bye the owner mid-flight.
	time.Sleep(60 * time.Millisecond)
	bus.Announce(discovery.Announcement{Kind: discovery.Bye, Node: owner, Addr: nodes[owner].Addr()})

	select {
	case out := <-done:
		for i, res := range out.results {
			if res.Err != nil || len(res.Rows) != 1 {
				t.Fatalf("item %d after mid-flight Bye: rows=%v err=%v", i, res.Rows, res.Err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch hung after mid-flight Bye")
	}
	waitFor(t, "owner masked out", func() bool {
		nodes := central.ProviderNodes("dual")
		return len(nodes) == 1 && nodes[0] != owner
	})
}
