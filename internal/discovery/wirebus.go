// WireBus: the discovery bus over the wire protocol itself.
//
// The InProcBus stands in for SSDP multicast inside one process; a federated
// deployment needs announcements to cross processes. WireBus carries them as
// wire v4 announce frames between pemsd nodes: every node pushes its own
// Alive/Bye to the peers it joined, and relays frames it receives onward, so
// a partially connected join graph still converges to full membership
// (gossip over TCP links instead of multicast).
//
// Relay safety rests on three rules:
//
//   - Per-origin sequence numbers. Every locally originated frame carries a
//     monotonically increasing Seq; receivers drop any frame whose Seq is
//     not newer than the last seen from that origin. Relay loops therefore
//     terminate, whatever the join topology.
//   - Synthesized Byes stay local. When a node's own link to a peer dies it
//     synthesizes a Bye for that peer — delivered ONLY to local subscribers,
//     never relayed and never recorded in the seen table. A link failure is
//     an observation about OUR path to the peer, not a fact about the peer:
//     relaying it could evict a node that other peers still reach, and
//     recording it could mask the partitioned node's next genuine Alive.
//   - Pre-v4 peers opt out silently. A peer answering "unknown op" to an
//     announce (wire.ErrAnnounceUnsupported) is marked mute: invocations to
//     it keep working, announces stop.
package discovery

import (
	"context"
	"errors"
	"sync"
	"time"

	"serena/internal/obs"
	"serena/internal/service"
	"serena/internal/wire"
)

// WireBus announce metrics.
var (
	obsBusSent    = obs.Default.Counter("discovery.bus.frames_sent")
	obsBusRecv    = obs.Default.Counter("discovery.bus.frames_received")
	obsBusDropped = obs.Default.Counter("discovery.bus.frames_deduped")
	obsBusRelayed = obs.Default.Counter("discovery.bus.frames_relayed")
	obsBusSynthe  = obs.Default.Counter("discovery.bus.synthesized_byes")
)

// wireBusPeer is one outbound announce link.
type wireBusPeer struct {
	addr    string
	node    string // learned from the announce response ("" until first contact)
	client  *wire.Client
	mute    bool          // pre-v4 peer: stop announcing to it
	down    bool          // last announce failed; synthesized Bye delivered
	backoff time.Duration // current redial backoff (capped)
	nextTry time.Time     // earliest next dial when down
}

// WireBus implements Bus over wire announce frames. Local subscribers (the
// discovery Manager) receive REMOTE-origin announcements; locally announced
// frames go to the joined peers only — a node does not discover itself.
type WireBus struct {
	node    string
	timeout time.Duration
	lease   time.Duration // drives the heartbeat period (lease/4)

	mu      sync.Mutex
	catalog func() []wire.ServiceInfo
	addr    string // advertised wire address of the local server
	subs    map[int]chan Announcement
	nextS   int
	peers   map[string]*wireBusPeer // by dial address
	seen    map[string]uint64       // per-origin max Seq
	seq     uint64                  // local origin sequence
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// WireBusOption configures a WireBus.
type WireBusOption func(*WireBus)

// WithBusDialTimeout sets the per-frame send timeout (default 2s).
func WithBusDialTimeout(d time.Duration) WireBusOption {
	return func(b *WireBus) { b.timeout = d }
}

// WithBusLease sets the lease the bus advertises against: the heartbeat
// re-announces the local node every lease/4, so a listening Manager with the
// same lease never expires a live peer (default 30s).
func WithBusLease(d time.Duration) WireBusOption {
	return func(b *WireBus) { b.lease = d }
}

// WithBusCatalog sets the source of the local node's hosted service list,
// embedded in every Alive frame so relayed announcements describe the node.
func WithBusCatalog(fn func() []wire.ServiceInfo) WireBusOption {
	return func(b *WireBus) { b.catalog = fn }
}

// NewWireBus builds a bus for the named local node.
func NewWireBus(node string, opts ...WireBusOption) *WireBus {
	b := &WireBus{
		node:    node,
		timeout: 2 * time.Second,
		lease:   30 * time.Second,
		subs:    make(map[int]chan Announcement),
		peers:   make(map[string]*wireBusPeer),
		seen:    make(map[string]uint64),
		stop:    make(chan struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Serve attaches the bus to the local wire server: inbound announce frames
// from peers flow into the bus. Call after the server exists, before or
// after Listen.
func (b *WireBus) Serve(srv *wire.Server) {
	srv.SetAnnounceHandler(b.handleFrames)
}

// SetAdvertiseAddr records the local server's bound address, stamped on
// every self-originated Alive so peers (and peers of peers) can dial back.
func (b *WireBus) SetAdvertiseAddr(addr string) {
	b.mu.Lock()
	b.addr = addr
	b.mu.Unlock()
}

// Join adds outbound announce links to the given peer addresses. Links are
// lazy: dialing happens on the next heartbeat (or AnnounceSelfNow), and a
// failed dial retries with capped backoff.
func (b *WireBus) Join(addrs ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, a := range addrs {
		if a == "" || a == b.addr {
			continue
		}
		if _, ok := b.peers[a]; !ok {
			b.peers[a] = &wireBusPeer{addr: a}
		}
	}
}

// Start launches the heartbeat loop: every lease/4 the bus re-announces the
// local node to every joined peer (lease renewal), redials down links with
// capped backoff, and synthesizes a local Bye when a link dies.
func (b *WireBus) Start() {
	interval := b.lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	b.mu.Lock()
	stop := b.stop
	b.mu.Unlock()
	if stop == nil {
		return // already stopped
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				b.AnnounceSelfNow()
			}
		}
	}()
}

// Stop halts the heartbeat and closes every peer link. It does NOT announce
// a Bye — callers that shut down gracefully announce one first (pemsd's
// SIGTERM drain does).
func (b *WireBus) Stop() {
	b.mu.Lock()
	b.stopped = true
	if b.stop != nil {
		close(b.stop)
		b.stop = nil
	}
	peers := make([]*wireBusPeer, 0, len(b.peers))
	for _, p := range b.peers {
		peers = append(peers, p)
	}
	b.mu.Unlock()
	b.wg.Wait()
	for _, p := range peers {
		if p.client != nil {
			_ = p.client.Close()
		}
	}
}

// Subscribe implements Bus.
func (b *WireBus) Subscribe() (<-chan Announcement, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextS
	b.nextS++
	ch := make(chan Announcement, 128)
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

// Announce implements Bus: a locally originated announcement is stamped
// with the next origin sequence and pushed to every joined peer. It is NOT
// delivered to local subscribers — a node does not discover itself.
func (b *WireBus) Announce(a Announcement) {
	b.broadcast(b.stamp(a))
}

// AnnounceSelfNow sends one Alive heartbeat for the local node immediately
// (the heartbeat loop calls it on every tick; pemsd calls it once at
// startup so peers learn the node without waiting a quarter-lease).
func (b *WireBus) AnnounceSelfNow() {
	b.mu.Lock()
	addr := b.addr
	catalog := b.catalog
	b.mu.Unlock()
	if addr == "" {
		return
	}
	var svcs []wire.ServiceInfo
	if catalog != nil {
		svcs = catalog()
	}
	b.Announce(Announcement{Kind: Alive, Node: b.node, Addr: addr, Services: svcs})
}

// SetCatalogFromRegistry installs a catalog that advertises the registry's
// locally hosted services (LocalRefs — never discovered providers, which
// would re-export other nodes' catalogs and create forwarding chains).
func (b *WireBus) SetCatalogFromRegistry(reg *service.Registry) {
	b.mu.Lock()
	b.catalog = func() []wire.ServiceInfo {
		refs := reg.LocalRefs()
		out := make([]wire.ServiceInfo, 0, len(refs))
		for _, ref := range refs {
			svc, err := reg.Lookup(ref)
			if err != nil {
				continue
			}
			out = append(out, wire.ServiceInfo{Ref: ref, Prototypes: svc.PrototypeNames()})
		}
		return out
	}
	b.mu.Unlock()
}

// stamp converts a local Announcement into a wire frame with a fresh
// origin sequence.
func (b *WireBus) stamp(a Announcement) wire.Announce {
	kind := wire.AnnounceAlive
	if a.Kind == Bye {
		kind = wire.AnnounceBye
	}
	b.mu.Lock()
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	return wire.Announce{Kind: kind, Node: a.Node, Addr: a.Addr, Seq: seq, From: b.node, Services: a.Services}
}

// broadcast pushes one frame to every non-mute peer, excluding the frame's
// origin and the peer it arrived from. Dead links get a capped-backoff
// redial schedule and a local synthesized Bye on the up→down transition.
func (b *WireBus) broadcast(frame wire.Announce) {
	exclude := map[string]bool{frame.Node: true}
	if frame.From != "" {
		exclude[frame.From] = true
	}
	b.mu.Lock()
	targets := make([]*wireBusPeer, 0, len(b.peers))
	for _, p := range b.peers {
		if p.mute || exclude[p.node] {
			continue
		}
		targets = append(targets, p)
	}
	b.mu.Unlock()
	out := frame
	out.From = b.node
	for _, p := range targets {
		b.sendTo(p, out)
	}
}

// sendTo delivers one frame over a peer link, handling (re)dial, backoff
// and down-transition Byes. Peer fields are guarded by b.mu; the network
// calls run unlocked.
func (b *WireBus) sendTo(p *wireBusPeer, frame wire.Announce) {
	b.mu.Lock()
	if p.down && time.Now().Before(p.nextTry) {
		b.mu.Unlock()
		return // still backing off
	}
	client := p.client
	b.mu.Unlock()

	if client == nil {
		c, err := wire.Dial(p.addr, b.timeout)
		if err != nil {
			b.linkFailed(p)
			return
		}
		b.mu.Lock()
		if p.client == nil {
			p.client = c
			client = c
		} else {
			client = p.client
		}
		b.mu.Unlock()
		if client != c {
			_ = c.Close()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	peerNode, err := client.Announce(ctx, []wire.Announce{frame})
	cancel()
	if err != nil {
		if errors.Is(err, wire.ErrAnnounceUnsupported) {
			b.mu.Lock()
			p.mute = true
			b.mu.Unlock()
			return
		}
		b.linkFailed(p)
		return
	}
	obsBusSent.Inc()
	b.mu.Lock()
	p.node = peerNode
	p.down = false
	p.backoff = 0
	b.mu.Unlock()
}

// linkFailed marks a peer link down, schedules a capped-backoff redial and
// — on the up→down transition, for peers whose node name we learned —
// synthesizes a LOCAL-ONLY Bye so the Manager masks the peer without
// waiting out the lease. The Bye is neither relayed nor entered in the seen
// table (see the package comment).
func (b *WireBus) linkFailed(p *wireBusPeer) {
	b.mu.Lock()
	if p.client != nil {
		_ = p.client.Close()
		p.client = nil
	}
	wasDown := p.down
	p.down = true
	if p.backoff == 0 {
		p.backoff = b.lease / 4
		if p.backoff < time.Millisecond {
			p.backoff = time.Millisecond
		}
	} else {
		p.backoff *= 2
		if limit := 4 * b.lease; p.backoff > limit {
			p.backoff = limit
		}
	}
	p.nextTry = time.Now().Add(p.backoff)
	node, addr := p.node, p.addr
	b.mu.Unlock()
	if wasDown || node == "" {
		return
	}
	obsBusSynthe.Inc()
	b.deliverLocal(Announcement{Kind: Bye, Node: node, Addr: addr})
}

// handleFrames is the wire server's announce callback: dedup by per-origin
// sequence, deliver locally, learn new peers, relay onward.
func (b *WireBus) handleFrames(frames []wire.Announce) {
	for _, f := range frames {
		if f.Node == b.node {
			continue // our own announcement echoed back
		}
		obsBusRecv.Inc()
		b.mu.Lock()
		if f.Seq <= b.seen[f.Node] {
			b.mu.Unlock()
			obsBusDropped.Inc()
			continue
		}
		b.seen[f.Node] = f.Seq
		b.mu.Unlock()

		kind := Alive
		if f.Kind == wire.AnnounceBye {
			kind = Bye
		}
		b.deliverLocal(Announcement{Kind: kind, Node: f.Node, Addr: f.Addr, Services: f.Services})

		// Mesh convergence: an Alive from a node we have no link to adds
		// one, so announcements (and failover traffic) need not funnel
		// through the node that introduced us.
		if kind == Alive && f.Addr != "" {
			b.Join(f.Addr)
		}

		// Relay in the background; the seq table bounds the flood.
		b.mu.Lock()
		running := !b.stopped
		if running {
			b.wg.Add(1)
		}
		b.mu.Unlock()
		if !running {
			continue
		}
		obsBusRelayed.Inc()
		relay := f
		go func() {
			defer b.wg.Done()
			b.broadcast(relay)
		}()
	}
}

// deliverLocal fans an announcement out to local subscribers (best-effort,
// like multicast: slow subscribers drop).
func (b *WireBus) deliverLocal(a Announcement) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- a:
		default:
		}
	}
}
