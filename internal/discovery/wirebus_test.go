package discovery_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/discovery"
	"serena/internal/service"
	"serena/internal/wire"
)

// busNode is one federated endpoint for WireBus tests: a wire server over a
// registry plus the bus attached to it.
type busNode struct {
	name string
	reg  *service.Registry
	srv  *wire.Server
	bus  *discovery.WireBus
	addr string
}

func newBusNode(t *testing.T, name string, lease time.Duration, refs ...string) *busNode {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.GetTemperatureProto()); err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := reg.Register(device.NewSensor(ref, "lab", 20)); err != nil {
			t.Fatal(err)
		}
	}
	srv := wire.NewServer(name, reg)
	bus := discovery.NewWireBus(name, discovery.WithBusLease(lease), discovery.WithBusDialTimeout(time.Second))
	bus.SetCatalogFromRegistry(reg)
	bus.Serve(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bus.SetAdvertiseAddr(addr)
	n := &busNode{name: name, reg: reg, srv: srv, bus: bus, addr: addr}
	t.Cleanup(func() { n.bus.Stop(); _ = n.srv.Close() })
	return n
}

// collect subscribes to a bus and accumulates announcements by kind/node.
func collect(t *testing.T, bus *discovery.WireBus) (func(kind discovery.Kind, node string) int, func()) {
	t.Helper()
	ch, cancel := bus.Subscribe()
	var mu sync.Mutex
	counts := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range ch {
			mu.Lock()
			counts[fmt.Sprintf("%d/%s", a.Kind, a.Node)]++
			mu.Unlock()
		}
	}()
	get := func(kind discovery.Kind, node string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[fmt.Sprintf("%d/%s", kind, node)]
	}
	return get, func() { cancel(); <-done }
}

func TestWireBusRelayConvergesChainToMesh(t *testing.T) {
	// Join graph is a chain A→B→C; announcements must still reach every
	// node (relay), exactly once each (per-origin seq dedup), and C must
	// learn A's address from the relayed Alive (mesh convergence).
	lease := 200 * time.Millisecond
	a := newBusNode(t, "node-A", lease, "a-sensor")
	b := newBusNode(t, "node-B", lease)
	c := newBusNode(t, "node-C", lease)
	a.bus.Join(b.addr)
	b.bus.Join(c.addr)

	gotB, stopB := collect(t, b.bus)
	defer stopB()
	gotC, stopC := collect(t, c.bus)
	defer stopC()

	a.bus.AnnounceSelfNow()
	waitFor(t, "A's Alive relayed to C", func() bool {
		return gotB(discovery.Alive, "node-A") >= 1 && gotC(discovery.Alive, "node-A") >= 1
	})
	if n := gotC(discovery.Alive, "node-A"); n != 1 {
		t.Fatalf("C saw A's Alive %d times, want exactly 1 (dedup)", n)
	}

	// C learned A's address from the relay: a Bye from C now reaches A
	// directly, without B in the path.
	gotA, stopA := collect(t, a.bus)
	defer stopA()
	c.bus.Announce(discovery.Announcement{Kind: discovery.Bye, Node: "node-C", Addr: c.addr})
	waitFor(t, "C's Bye reaches A over the learned link", func() bool {
		return gotA(discovery.Bye, "node-C") >= 1
	})
}

func TestWireBusSynthesizedByeStaysLocal(t *testing.T) {
	// A is linked to B and C. When B dies, A synthesizes a Bye for B — but
	// only A's own subscribers may see it: relaying a link failure could
	// evict a node other peers still reach.
	lease := 100 * time.Millisecond
	a := newBusNode(t, "node-A", lease)
	b := newBusNode(t, "node-B", lease)
	c := newBusNode(t, "node-C", lease)
	a.bus.Join(b.addr, c.addr)

	// One heartbeat teaches A the node names behind both links.
	a.bus.AnnounceSelfNow()
	gotA, stopA := collect(t, a.bus)
	defer stopA()
	gotC, stopC := collect(t, c.bus)
	defer stopC()

	// Kill B's server; A's next heartbeats hit a dead link.
	b.bus.Stop()
	_ = b.srv.Close()
	a.bus.Start()
	waitFor(t, "A synthesizes a local Bye for B", func() bool {
		return gotA(discovery.Bye, "node-B") >= 1
	})
	// C hears A's heartbeats (Alive) but never the synthesized Bye.
	waitFor(t, "C still hears A", func() bool {
		return gotC(discovery.Alive, "node-A") >= 1
	})
	if n := gotC(discovery.Bye, "node-B"); n != 0 {
		t.Fatalf("synthesized Bye was relayed to C (%d times)", n)
	}
}

func TestWireBusFeedsManager(t *testing.T) {
	// End-to-end: a coordinator Manager subscribed to a WireBus discovers a
	// peer announced over the wire and registers its services as providers.
	lease := 200 * time.Millisecond
	peer := newBusNode(t, "node-P", lease, "p-sensor")
	coord := newBusNode(t, "node-K", lease)

	central := newCentral(t)
	m := discovery.NewManager(central, coord.bus, discovery.WithLease(lease))
	m.Start()
	defer m.Stop()

	peer.bus.Join(coord.addr)
	peer.bus.Start()
	peer.bus.AnnounceSelfNow()
	waitFor(t, "peer service discovered via wire bus", func() bool {
		return len(central.ProviderNodes("p-sensor")) == 1
	})
	rows, err := central.Invoke("getTemperature", "p-sensor", nil, 3)
	if err != nil || len(rows) != 1 {
		t.Fatalf("invoke through discovered provider = %v, %v", rows, err)
	}

	// The peer stops announcing; the lease sweeper masks it out without
	// any Bye, within about one lease.
	peer.bus.Stop()
	_ = peer.srv.Close()
	waitFor(t, "silent peer expired", func() bool {
		return len(central.ProviderNodes("p-sensor")) == 0
	})
}
