// Package discovery implements the dynamic service-discovery half of the
// PEMS Environment Resource Manager (Gripay et al., EDBT 2010, Figure 1 and
// Section 5.1): Local ERMs announce themselves on a bus (the stand-in for
// UPnP SSDP multicast), and the core ERM's Manager dials announced nodes,
// describes their services and registers remote proxies into the central
// registry — unregistering them on bye messages, lease expiry or connection
// failure. Newly discovered services become visible to running continuous
// queries without restarting them (the Section 5.2 experiment).
package discovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"serena/internal/obs"
	"serena/internal/service"
	"serena/internal/wire"
)

// obsLeaseExpired counts nodes dropped because their lease lapsed without a
// renewal — the discovery-layer signal that a Local ERM died silently.
var obsLeaseExpired = obs.Default.Counter("discovery.lease.expired")

// Kind tags announcements.
type Kind uint8

// Announcement kinds, mirroring SSDP ssdp:alive / ssdp:byebye.
const (
	Alive Kind = iota
	Bye
)

// Announcement is one presence message from a Local ERM. Services
// optionally carries the announcing node's hosted service catalog, so a
// relayed announcement (the wire-backed bus forwards frames between pemsd
// peers) describes the node without every listener dialing it.
type Announcement struct {
	Kind     Kind
	Node     string
	Addr     string // TCP address of the node's wire server
	Services []wire.ServiceInfo
}

// Bus transports announcements between Local ERMs and core ERMs. The
// in-process implementation stands in for UDP multicast; its semantics
// (fire-and-forget fan-out) match.
type Bus interface {
	// Announce broadcasts a message to all current subscribers.
	Announce(a Announcement)
	// Subscribe returns a channel of future announcements and a cancel
	// function.
	Subscribe() (<-chan Announcement, func())
}

// InProcBus is a Bus for tests, examples and single-process deployments.
type InProcBus struct {
	mu   sync.Mutex
	subs map[int]chan Announcement
	next int
}

// NewInProcBus returns an empty bus.
func NewInProcBus() *InProcBus {
	return &InProcBus{subs: make(map[int]chan Announcement)}
}

// Announce implements Bus.
func (b *InProcBus) Announce(a Announcement) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- a:
		default: // slow subscriber: drop, like multicast would
		}
	}
}

// Subscribe implements Bus.
func (b *InProcBus) Subscribe() (<-chan Announcement, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.next
	b.next++
	ch := make(chan Announcement, 128)
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

// Node is a Local Environment Resource Manager: a wire server over a local
// registry plus bus announcements. Services register to their Node and are
// then transparently available through any core ERM (Section 5.1).
type Node struct {
	name   string
	bus    Bus
	local  *service.Registry
	server *wire.Server
	addr   string
}

// NewNode creates a Local ERM with its own local registry.
func NewNode(name string, bus Bus) *Node {
	reg := service.NewRegistry()
	return &Node{name: name, bus: bus, local: reg, server: wire.NewServer(name, reg)}
}

// Registry returns the node's local registry (declare prototypes and
// register device services here).
func (n *Node) Registry() *service.Registry { return n.local }

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Addr returns the bound wire address (after Start).
func (n *Node) Addr() string { return n.addr }

// Start listens on addr ("127.0.0.1:0" for ephemeral) and announces the
// node on the bus.
func (n *Node) Start(addr string) error {
	bound, err := n.server.Listen(addr)
	if err != nil {
		return err
	}
	n.addr = bound
	n.bus.Announce(Announcement{Kind: Alive, Node: n.name, Addr: bound})
	return nil
}

// Announce re-broadcasts an alive message (lease renewal).
func (n *Node) Announce() {
	if n.addr != "" {
		n.bus.Announce(Announcement{Kind: Alive, Node: n.name, Addr: n.addr})
	}
}

// Stop announces a bye and shuts the wire server down.
func (n *Node) Stop() error {
	if n.addr != "" {
		n.bus.Announce(Announcement{Kind: Bye, Node: n.name, Addr: n.addr})
	}
	return n.server.Close()
}

// Manager is the discovery side of the core ERM: it subscribes to the bus
// and maintains remote-service proxies inside the central registry.
type Manager struct {
	central *service.Registry
	bus     Bus
	timeout time.Duration
	lease   time.Duration

	mu     sync.Mutex
	nodes  map[string]*nodeState // by node name
	downs  map[string]*peerDown  // tombstones of departed nodes, by name
	cancel func()
	wg     sync.WaitGroup
	donec  chan struct{}
}

type nodeState struct {
	addr     string
	client   *wire.Client
	refs     []string
	deadline time.Time
	since    time.Time
}

// peerDown is the tombstone of a departed node, kept for operational
// visibility (sys$peers, .peers, /debug/peers) and cleared when the node
// re-announces.
type peerDown struct {
	addr   string
	reason string // "bye" or "lease_expired"
	since  time.Time
}

// Peer states reported by Manager.Peers.
const (
	PeerAlive = "alive"
	PeerDown  = "down"
)

// PeerInfo is one row of the manager's membership view.
type PeerInfo struct {
	Node     string
	Addr     string
	State    string // PeerAlive or PeerDown
	Lease    time.Duration
	Deadline time.Time // lease deadline (alive peers)
	Services int       // services this peer currently provides centrally
	Reason   string    // why a down peer left ("bye", "lease_expired")
	Since    time.Time // when the peer entered its current state
}

// Option configures a Manager.
type Option func(*Manager)

// WithDialTimeout sets the wire dial/IO timeout (default 2s).
func WithDialTimeout(d time.Duration) Option {
	return func(m *Manager) { m.timeout = d }
}

// WithLease sets how long a node stays registered without re-announcing
// (default 30s; 0 disables expiry).
func WithLease(d time.Duration) Option {
	return func(m *Manager) { m.lease = d }
}

// NewManager builds a core-ERM discovery manager feeding the central
// registry.
func NewManager(central *service.Registry, bus Bus, opts ...Option) *Manager {
	m := &Manager{
		central: central,
		bus:     bus,
		timeout: 2 * time.Second,
		lease:   30 * time.Second,
		nodes:   make(map[string]*nodeState),
		downs:   make(map[string]*peerDown),
		donec:   make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Start subscribes to the bus and processes announcements until Stop. When
// a lease is configured it also starts a background sweeper that expires
// silent nodes on its own — a node that dies without a bye message (crash,
// partition, power loss) is masked out of the central registry within about
// a lease period even if nobody calls SweepExpired by hand.
func (m *Manager) Start() {
	ch, cancel := m.bus.Subscribe()
	m.mu.Lock()
	m.cancel = cancel
	done := m.donec
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for a := range ch {
			switch a.Kind {
			case Alive:
				if err := m.handleAlive(a); err != nil {
					// Unreachable node: ignore; it may re-announce later.
					continue
				}
			case Bye:
				m.removeNode(a.Node, "bye")
			}
		}
	}()
	if m.lease <= 0 || done == nil {
		return
	}
	// Sweep at a quarter of the lease so expiry latency stays well under
	// one lease period even with ticker jitter.
	interval := m.lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-ticker.C:
				m.SweepExpired(now)
			}
		}
	}()
}

// Stop unsubscribes, halts the lease sweeper and drops all discovered
// services.
func (m *Manager) Stop() {
	m.mu.Lock()
	cancel := m.cancel
	m.cancel = nil
	done := m.donec
	m.donec = nil
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		close(done)
	}
	m.wg.Wait()
	m.mu.Lock()
	names := make([]string, 0, len(m.nodes))
	for name := range m.nodes {
		names = append(names, name)
	}
	m.mu.Unlock()
	for _, n := range names {
		m.removeNode(n, "")
	}
}

// handleAlive dials and (re-)registers a node's services. Services are
// registered as PROVIDERS keyed by the node name: a reference replicated on
// several nodes stays ONE service to discovery (rendezvous hashing picks
// the routing owner), and losing one replica raises no Removed event — the
// node-loss masking at the heart of federation.
func (m *Manager) handleAlive(a Announcement) error {
	m.mu.Lock()
	st, known := m.nodes[a.Node]
	if known && st.addr == a.Addr {
		st.deadline = time.Now().Add(m.lease)
		m.mu.Unlock()
		return nil // lease renewal
	}
	m.mu.Unlock()
	if known {
		m.removeNode(a.Node, "") // node moved address
	}
	client, err := wire.Dial(a.Addr, m.timeout)
	if err != nil {
		return err
	}
	node, infos, err := client.Describe()
	if err != nil {
		_ = client.Close()
		return err
	}
	if node != a.Node {
		_ = client.Close()
		return fmt.Errorf("discovery: node %q announced as %q", node, a.Node)
	}
	now := time.Now()
	st = &nodeState{addr: a.Addr, client: client, deadline: now.Add(m.lease), since: now}
	for _, info := range infos {
		proxy := wire.NewRemote(client, info)
		if err := m.central.RegisterProvider(a.Node, proxy); err != nil {
			continue // ref collision with a provider-less local service: skip
		}
		st.refs = append(st.refs, info.Ref)
	}
	m.mu.Lock()
	m.nodes[a.Node] = st
	delete(m.downs, a.Node) // a returning node clears its tombstone
	m.mu.Unlock()
	return nil
}

// removeNode unregisters a node's providers and closes its client. A
// non-empty reason leaves a tombstone for the membership view (sys$peers
// and friends); address moves and manager shutdown pass "".
func (m *Manager) removeNode(name, reason string) {
	m.mu.Lock()
	st, ok := m.nodes[name]
	if ok {
		delete(m.nodes, name)
		if reason != "" {
			m.downs[name] = &peerDown{addr: st.addr, reason: reason, since: time.Now()}
		}
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	for _, ref := range st.refs {
		_ = m.central.UnregisterProvider(name, ref)
	}
	_ = st.client.Close()
}

// Refresh rediscovers a known node's service list (e.g. after it gained a
// new device). It re-describes and registers any new services.
func (m *Manager) Refresh(nodeName string) error {
	m.mu.Lock()
	st, ok := m.nodes[nodeName]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("discovery: unknown node %q", nodeName)
	}
	_, infos, err := st.client.Describe()
	if err != nil {
		return err
	}
	have := map[string]bool{}
	m.mu.Lock()
	for _, ref := range st.refs {
		have[ref] = true
	}
	m.mu.Unlock()
	for _, info := range infos {
		if have[info.Ref] {
			continue
		}
		proxy := wire.NewRemote(st.client, info)
		if err := m.central.RegisterProvider(nodeName, proxy); err != nil {
			continue
		}
		m.mu.Lock()
		st.refs = append(st.refs, info.Ref)
		m.mu.Unlock()
	}
	return nil
}

// SweepExpired drops nodes whose lease has lapsed; it returns the names of
// removed nodes. Call it periodically (the PEMS ticker does).
func (m *Manager) SweepExpired(now time.Time) []string {
	if m.lease <= 0 {
		return nil
	}
	m.mu.Lock()
	var expired []string
	for name, st := range m.nodes {
		if now.After(st.deadline) {
			expired = append(expired, name)
		}
	}
	m.mu.Unlock()
	for _, name := range expired {
		obsLeaseExpired.Inc()
		m.removeNode(name, "lease_expired")
	}
	return expired
}

// Nodes returns the names of currently known nodes.
func (m *Manager) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.nodes))
	for name := range m.nodes {
		out = append(out, name)
	}
	return out
}

// Peers snapshots the manager's membership view — alive nodes plus the
// tombstones of departed ones — sorted by node name. It backs the sys$peers
// system relation, serena's .peers command and pemsd's /debug/peers.
func (m *Manager) Peers() []PeerInfo {
	m.mu.Lock()
	out := make([]PeerInfo, 0, len(m.nodes)+len(m.downs))
	for name, st := range m.nodes {
		out = append(out, PeerInfo{
			Node:     name,
			Addr:     st.addr,
			State:    PeerAlive,
			Lease:    m.lease,
			Deadline: st.deadline,
			Services: len(st.refs),
			Since:    st.since,
		})
	}
	for name, d := range m.downs {
		out = append(out, PeerInfo{
			Node:   name,
			Addr:   d.addr,
			State:  PeerDown,
			Lease:  m.lease,
			Reason: d.reason,
			Since:  d.since,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
