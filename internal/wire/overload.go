package wire

import (
	"errors"
	"strings"
	"time"

	"serena/internal/obs"
	"serena/internal/resilience"
)

var obsWireServerOverload = obs.Default.Counter("wire.server.overload_rejections")

// SetMaxInFlight caps how many requests this server executes concurrently
// across all connections. Excess requests are rejected immediately — no
// registry work, no goroutine pile-up — with an error the client maps back
// onto resilience.ErrOverloaded, so the caller's degradation policy (PR 1)
// decides what the miss means. n <= 0 removes the limit (the default).
func (s *Server) SetMaxInFlight(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxInFlight = n
}

// SetReadTimeout bounds how long a connection may sit idle between
// requests: a client that connects and goes silent (or dies without FIN)
// is dropped after d instead of pinning a server goroutine forever.
// Healthy-but-quiet clients are dropped too — their next request transparently
// redials (the client retries connection loss, never timeouts). d <= 0
// disables (the default).
func (s *Server) SetReadTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readTimeout = d
}

// SetWriteTimeout bounds each response write, so a client that stops
// reading cannot wedge the shared response encoder. d <= 0 disables.
func (s *Server) SetWriteTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeTimeout = d
}

// ActiveConns returns how many client connections the server currently
// holds.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// InFlight returns how many requests the server is executing right now.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// overloadedError carries a remote overload rejection verbatim while
// unwrapping to resilience.ErrOverloaded, so errors.Is works across the
// wire boundary.
type overloadedError struct{ msg string }

func (e *overloadedError) Error() string { return e.msg }
func (e *overloadedError) Unwrap() error { return resilience.ErrOverloaded }

// remoteError turns a Response.Err string back into a typed error:
// messages carrying the overload marker (a server fast-rejection, or the
// remote registry's own admission limiter) become errors.Is-able
// resilience.ErrOverloaded; everything else stays opaque.
func remoteError(msg string) error {
	if strings.Contains(msg, resilience.ErrOverloaded.Error()) {
		return &overloadedError{msg: msg}
	}
	return errors.New(msg)
}
