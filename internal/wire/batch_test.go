package wire_test

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"serena/internal/device"
	"serena/internal/service"
	"serena/internal/value"
	"serena/internal/wire"
)

// startBatchNode hosts a messenger whose delivery fails for text "bad" —
// a per-item failure source inside an otherwise healthy batch.
func startBatchNode(t *testing.T) (addr string, srv *wire.Server) {
	t.Helper()
	reg := service.NewRegistry()
	if err := reg.RegisterPrototype(device.SendMessageProto()); err != nil {
		t.Fatal(err)
	}
	err := reg.Register(service.NewFunc("picky", map[string]service.InvokeFunc{
		"sendMessage": func(in value.Tuple, _ service.Instant) ([]value.Tuple, error) {
			if in[1].Str() == "bad" {
				return nil, errors.New("refused")
			}
			return []value.Tuple{{value.NewBool(true)}}, nil
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv = wire.NewServer("node-B", reg)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return bound, srv
}

func msg(text string) value.Tuple {
	return value.Tuple{value.NewString("a@b"), value.NewString(text)}
}

// TestBatchInvokeRoundTrip: one wire frame carries many invocations;
// results come back positional with per-item errors — one refused delivery
// must not fail its neighbours.
func TestBatchInvokeRoundTrip(t *testing.T) {
	addr, _ := startBatchNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inputs := []value.Tuple{msg("one"), msg("bad"), msg("three"), msg("four")}
	out := c.InvokeBatchCtx(t.Context(), "sendMessage", "picky", inputs, 5)
	if len(out) != 4 {
		t.Fatalf("results = %d, want 4", len(out))
	}
	for i := range out {
		if i == 1 {
			if out[i].Err == nil || !strings.Contains(out[i].Err.Error(), "refused") {
				t.Fatalf("item 1: err = %v, want refused", out[i].Err)
			}
			continue
		}
		if out[i].Err != nil {
			t.Fatalf("item %d: %v", i, out[i].Err)
		}
		if len(out[i].Rows) != 1 || !out[i].Rows[0][0].Bool() {
			t.Fatalf("item %d: rows = %v", i, out[i].Rows)
		}
	}
}

// TestBatchServerParallelismOne: -batch-parallel 1 executes a frame's items
// sequentially; results stay positional and correct.
func TestBatchServerParallelismOne(t *testing.T) {
	addr, srv := startBatchNode(t)
	srv.SetBatchParallelism(1)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := c.InvokeBatchCtx(t.Context(), "sendMessage", "picky", []value.Tuple{msg("x"), msg("y")}, 1)
	for i := range out {
		if out[i].Err != nil || len(out[i].Rows) != 1 {
			t.Fatalf("item %d: %+v", i, out[i])
		}
	}
}

// TestBatchFallbackAgainstPreV3Server drives the client against a
// hand-rolled legacy peer that answers "unknown op" for batch frames and
// serves plain invokes. The first batch call must degrade to per-item round
// trips, and the client must latch: the second batch call goes straight to
// per-item without probing again.
func TestBatchFallbackAgainstPreV3Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var batchOps, invokeOps atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for {
			var req wire.Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			switch req.Op {
			case "invoke":
				invokeOps.Add(1)
				_ = enc.Encode(wire.Response{ID: req.ID, Rows: [][]wire.Value{
					{wire.EncodeValue(value.NewReal(21.5))},
				}})
			default: // a pre-v3 server does not know "batch"
				batchOps.Add(1)
				_ = enc.Encode(wire.Response{ID: req.ID, Err: fmt.Sprintf("wire: unknown op %q", req.Op)})
			}
		}
	}()

	c, err := wire.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for round := 0; round < 2; round++ {
		out := c.InvokeBatchCtx(t.Context(), "getTemperature", "sensor01",
			[]value.Tuple{{}, {}, {}}, 7)
		for i := range out {
			if out[i].Err != nil {
				t.Fatalf("round %d item %d: %v", round, i, out[i].Err)
			}
			if len(out[i].Rows) != 1 || out[i].Rows[0][0].Real() != 21.5 {
				t.Fatalf("round %d item %d: rows = %v", round, i, out[i].Rows)
			}
		}
	}
	if got := batchOps.Load(); got != 1 {
		t.Fatalf("legacy server saw %d batch probes, want exactly 1 (client must latch)", got)
	}
	if got := invokeOps.Load(); got != 6 {
		t.Fatalf("legacy server saw %d per-item invokes, want 6", got)
	}
}

// TestRemoteProxyBatchesThroughRegistry: a Remote proxy registered locally
// is a BatchCtxService, so Registry.InvokeBatchCtx sends ONE wire frame for
// the whole group instead of per-item round trips.
func TestRemoteProxyBatchesThroughRegistry(t *testing.T) {
	addr, _ := startBatchNode(t)
	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, infos, err := c.Describe()
	if err != nil {
		t.Fatal(err)
	}
	var remote *wire.Remote
	for _, info := range infos {
		if info.Ref == "picky" {
			remote = wire.NewRemote(c, info)
		}
	}
	if remote == nil {
		t.Fatal("picky not described")
	}
	local := service.NewRegistry()
	if err := local.RegisterPrototype(device.SendMessageProto()); err != nil {
		t.Fatal(err)
	}
	if err := local.Register(remote); err != nil {
		t.Fatal(err)
	}
	var bcs service.BatchCtxService = remote // compile-time: proxies batch
	_ = bcs

	out := local.InvokeBatchCtx(t.Context(), "sendMessage", "picky",
		[]value.Tuple{msg("a"), msg("bad"), msg("c")}, 2)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy items failed: %+v", out)
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "refused") {
		t.Fatalf("item 1: err = %v, want refused", out[1].Err)
	}
}
