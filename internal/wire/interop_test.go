package wire_test

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"serena/internal/trace"
	"serena/internal/value"
	"serena/internal/wire"
)

// legacyRequest is the Version-1 request shape: no Ver and no trace-context
// fields. gob matches fields by name, so this stands in for a peer built
// before protocol version 2.
type legacyRequest struct {
	ID    uint64
	Op    string
	Proto string
	Ref   string
	Input []wire.Value
	At    int64
}

// TestOldClientNewServer sends a pre-versioning request (no Ver, no trace
// context) straight at a current server: gob leaves the unknown fields at
// their zero values, TraceID 0 means "not traced", and the invocation must
// succeed untraced.
func TestOldClientNewServer(t *testing.T) {
	addr, _, _ := startNode(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(legacyRequest{ID: 1, Op: "invoke", Proto: "getTemperature", Ref: "sensor01", At: 3}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.Err != "" {
		t.Fatalf("legacy invoke failed: %+v", resp)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("rows = %v", resp.Rows)
	}
}

// TestNewClientOldServer drives a current client (tracing forced on, so the
// request carries Ver and trace context) against a legacy server that
// decodes into the V1 request shape: gob drops the fields it does not know
// and the round trip still works.
func TestNewClientOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for {
			var req legacyRequest
			if err := dec.Decode(&req); err != nil {
				return
			}
			if req.Op != "invoke" || req.Proto != "getTemperature" {
				_ = enc.Encode(wire.Response{ID: req.ID, Err: "unexpected request"})
				continue
			}
			_ = enc.Encode(wire.Response{ID: req.ID, Rows: [][]wire.Value{
				{wire.EncodeValue(value.NewReal(21.5))},
			}})
		}
	}()

	// Force tracing so the client stamps trace context on every request.
	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(1)
	defer trace.Default.SetSampleEvery(prev)

	c, err := wire.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root := trace.Default.ForceRoot("test.root")
	ctx := trace.ContextWith(t.Context(), root)
	rows, err := c.InvokeCtx(ctx, "getTemperature", "sensor01", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Real() != 21.5 {
		t.Fatalf("rows = %v", rows)
	}
	root.Finish()
}

// TestTracePropagatesOverWire asserts the tentpole wire behavior: a traced
// client-side invocation and the server-side execution share ONE trace ID,
// with the server span parented on the client's round-trip span.
func TestTracePropagatesOverWire(t *testing.T) {
	addr, _, _ := startNode(t)
	prev := trace.Default.SampleEvery()
	trace.Default.SetSampleEvery(1)
	defer func() {
		trace.Default.SetSampleEvery(prev)
		trace.Default.Reset()
	}()
	trace.Default.Reset()

	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root := trace.Default.ForceRoot("test.root")
	ctx := trace.ContextWith(t.Context(), root)
	if _, err := c.InvokeCtx(ctx, "getTemperature", "sensor01", nil, 5); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	spans := trace.Default.TraceSpans(root.Trace())
	var roundtrip, server *trace.Span
	for _, s := range spans {
		switch s.Name {
		case "wire.roundtrip":
			roundtrip = s
		case "wire.server":
			server = s
		}
	}
	if roundtrip == nil || server == nil {
		t.Fatalf("missing spans in trace: %v", spans)
	}
	if roundtrip.ParentID != root.SpanID {
		t.Fatalf("roundtrip parent = %x, want root %x", roundtrip.ParentID, root.SpanID)
	}
	if server.TraceID != root.TraceID || server.ParentID != roundtrip.SpanID {
		t.Fatalf("server span not linked: trace %x parent %x, want trace %x parent %x",
			server.TraceID, server.ParentID, root.TraceID, roundtrip.SpanID)
	}
	if server.Attr("node") != "node-A" || server.Attr("proto") != "getTemperature" {
		t.Fatalf("server span attrs: %v", server.Attrs)
	}
}
