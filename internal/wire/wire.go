// Package wire implements the network layer of the PEMS Environment
// Resource Manager (Gripay et al., EDBT 2010, Figure 1): a TCP protocol for
// remote service invocation and node description, replacing the paper's
// UPnP stack. A Local Environment Resource Manager exposes its registered
// services through a wire.Server; the core ERM reaches them through
// wire.Client proxies that satisfy service.Service, making remote services
// indistinguishable from local ones to the algebra.
//
// Framing: gob-encoded, ID-tagged request/response messages over a
// persistent connection with full multiplexing — many invocations may be in
// flight concurrently on one connection (the server handles each request in
// its own goroutine), which the parallel invocation operator exploits.
package wire

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
)

// Version is the wire protocol version stamped on every request. Version 2
// added the trace-context fields (Ver, TraceID, SpanID); version 3 added the
// "batch" op carrying many invocations per round trip (Items/ItemResults);
// version 4 added the "announce" op carrying discovery presence frames
// (Announces), turning wire links into a federation bus between pemsd
// nodes. Interop is bidirectional without negotiation because gob ignores
// fields the receiver does not know and zero-values fields the sender did
// not write: a v1 server sees a v2 request as a v1 request, and a v2 server
// sees a v1 request with TraceID 0 — the "not traced" sentinel. A pre-v3
// server answers a batch frame with "unknown op", which the client takes as
// the signal to fall back to per-item invokes for the rest of the
// connection; a pre-v4 server answers an announce frame the same way, and
// the sender simply stops relaying to it.
const Version = 4

// Wire metrics: round-trip latency and outcome counters, plus connection
// churn (dials cover both the first connect and every redial).
var (
	obsWireLatency  = obs.Default.Histogram("wire.roundtrip.latency")
	obsWireCalls    = obs.Default.Counter("wire.roundtrip.calls")
	obsWireRetries  = obs.Default.Counter("wire.roundtrip.retries")
	obsWireFailures = obs.Default.Counter("wire.roundtrip.failures")
	obsWireTimeouts = obs.Default.Counter("wire.roundtrip.timeouts")
	obsWireDials    = obs.Default.Counter("wire.dials")
	obsWireConnLost = obs.Default.Counter("wire.connections_lost")

	// Batch-frame metrics: frames sent, invocations they carried, and
	// frames degraded to per-item invokes against pre-v3 peers.
	obsWireBatchCalls     = obs.Default.Counter("wire.batch.calls")
	obsWireBatchItems     = obs.Default.Counter("wire.batch.items")
	obsWireBatchFallbacks = obs.Default.Counter("wire.batch.fallbacks")
)

// Value is the wire form of value.Value (gob needs exported fields).
type Value struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
	Blob []byte
}

// EncodeValue converts a value to wire form.
func EncodeValue(v value.Value) Value {
	w := Value{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case value.Bool:
		w.B = v.Bool()
	case value.Int:
		w.I = v.Int()
	case value.Real:
		w.F = v.Real()
	case value.String:
		w.S = v.Str()
	case value.Service:
		w.S = v.ServiceRef()
	case value.Blob:
		w.Blob = v.Blob()
	}
	return w
}

// DecodeValue converts a wire value back.
func DecodeValue(w Value) (value.Value, error) {
	switch value.Kind(w.Kind) {
	case value.Null:
		return value.NewNull(), nil
	case value.Bool:
		return value.NewBool(w.B), nil
	case value.Int:
		return value.NewInt(w.I), nil
	case value.Real:
		return value.NewReal(w.F), nil
	case value.String:
		return value.NewString(w.S), nil
	case value.Service:
		return value.NewService(w.S), nil
	case value.Blob:
		return value.NewBlob(w.Blob), nil
	}
	return value.Value{}, fmt.Errorf("wire: unknown value kind %d", w.Kind)
}

// EncodeTuple converts a tuple to wire form.
func EncodeTuple(t value.Tuple) []Value {
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple converts a wire tuple back.
func DecodeTuple(ws []Value) (value.Tuple, error) {
	out := make(value.Tuple, len(ws))
	for i, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Request is the union of client→server messages.
type Request struct {
	// ID correlates the response on a multiplexed connection.
	ID uint64
	// Ver is the sender's protocol version (0 from pre-versioning peers).
	Ver int
	// Op is "invoke" or "describe".
	Op string
	// Invoke fields.
	Proto string
	Ref   string
	Input []Value
	At    int64
	// Trace context (since Version 2): the client's trace and β span IDs,
	// letting the server record its execution as a child span of the same
	// trace. 0 means the invocation is not traced.
	TraceID uint64
	SpanID  uint64
	// Items carries a batch of invocations (Op "batch", since Version 3);
	// the per-request Proto/Ref/Input fields are unused for that op.
	Items []BatchItem
	// Announces carries discovery presence frames (Op "announce", since
	// Version 4).
	Announces []Announce
}

// Announce kinds, mirroring discovery's Alive/Bye (wire cannot import the
// discovery package — it sits below it).
const (
	AnnounceAlive uint8 = iota
	AnnounceBye
)

// Announce is one discovery presence frame relayed between pemsd nodes
// (Op "announce", since Version 4): a node is alive at an address hosting
// the listed services, or says goodbye. Origin+Seq implement relay loop
// suppression — Seq increases monotonically per origin, so a receiver drops
// any frame at or below the last sequence it saw from that origin. From
// names the immediate sender (≠ Origin on relayed frames), letting a
// relaying node skip echoing a frame straight back to whoever sent it.
type Announce struct {
	Kind     uint8
	Node     string // the node this frame is about (the origin)
	Addr     string // its wire address
	Seq      uint64 // per-origin monotonic sequence number
	From     string // immediate sender of this frame
	Services []ServiceInfo
}

// BatchItem is one invocation within a batch frame. Carrying proto and ref
// per item keeps the frame general (a future planner may mix refs), though
// the current batch planner groups by (proto, ref) before dispatch.
type BatchItem struct {
	Proto string
	Ref   string
	Input []Value
	At    int64
}

// BatchItemResult is one item's outcome within a batch response: results
// are positional (Items[i] → ItemResults[i]) and per item, so one bad tuple
// does not fail the frame.
type BatchItemResult struct {
	Err  string
	Rows [][]Value
}

// ServiceInfo describes one hosted service.
type ServiceInfo struct {
	Ref        string
	Prototypes []string
}

// Response is the union of server→client messages.
type Response struct {
	ID          uint64
	Err         string
	Rows        [][]Value         // invoke
	Node        string            // describe
	Services    []ServiceInfo     // describe
	ItemResults []BatchItemResult // batch (since Version 3)
}

// DefaultServerBatchParallelism bounds how many items of one batch frame
// the server executes concurrently.
const DefaultServerBatchParallelism = 8

// Server exposes a Local ERM's services over TCP.
type Server struct {
	node string
	reg  *service.Registry

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	done     chan struct{}
	batchPar int

	// Overload limits (see overload.go): maxInFlight caps concurrently
	// executing requests (0 = unlimited); readTimeout drops connections
	// idle between requests; writeTimeout bounds each response write.
	maxInFlight  int
	readTimeout  time.Duration
	writeTimeout time.Duration
	inFlight     atomic.Int64

	// announceHandler receives incoming v4 announce frames (the WireBus
	// attaches itself here). Nil servers answer announce frames with
	// "unknown op", exactly like a pre-v4 peer.
	announceHandler atomic.Pointer[func([]Announce)]
}

// NewServer wraps a registry of local services under a node name.
func NewServer(node string, reg *service.Registry) *Server {
	return &Server{node: node, reg: reg, conns: make(map[net.Conn]bool), done: make(chan struct{}), batchPar: DefaultServerBatchParallelism}
}

// SetBatchParallelism bounds concurrent execution of one batch frame's
// items. Values < 2 execute items sequentially.
func (s *Server) SetBatchParallelism(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.batchPar = n
}

// Node returns the node name.
func (s *Server) Node() string { return s.node }

// SetAnnounceHandler installs the receiver for incoming v4 announce frames
// (nil uninstalls it, making the server answer them with "unknown op" like
// a pre-v4 peer). The handler runs on the per-request goroutine and must
// not block indefinitely.
func (s *Server) SetAnnounceHandler(h func([]Announce)) {
	if h == nil {
		s.announceHandler.Store(nil)
		return
	}
	s.announceHandler.Store(&h)
}

// Listen starts serving on the given address ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: %s: %w", s.node, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex
	send := func(resp *Response, writeT time.Duration) {
		writeMu.Lock()
		defer writeMu.Unlock()
		if writeT > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(writeT))
		}
		_ = enc.Encode(resp)
	}
	for {
		s.mu.Lock()
		readT, writeT, maxIF := s.readTimeout, s.writeTimeout, s.maxInFlight
		s.mu.Unlock()
		if readT > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(readT))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		// Admission check before any work: over the cap, the request is
		// answered with a fast typed rejection — no registry call, no
		// goroutine, and the client's degradation policy takes it from
		// there.
		if maxIF > 0 && s.inFlight.Add(1) > int64(maxIF) {
			s.inFlight.Add(-1)
			obsWireServerOverload.Inc()
			send(&Response{
				ID:  req.ID,
				Err: fmt.Sprintf("wire: %s: %v: %d requests in flight", s.node, resilience.ErrOverloaded, maxIF),
			}, writeT)
			continue
		}
		wg.Add(1)
		go func(req Request, counted bool) {
			defer wg.Done()
			if counted {
				defer s.inFlight.Add(-1)
			}
			resp := s.handle(&req)
			resp.ID = req.ID
			send(resp, writeT)
		}(req, maxIF > 0)
	}
}

func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case "describe":
		// Only locally hosted services are exported: provider-backed entries
		// were discovered from OTHER nodes, and re-exporting them would let
		// membership gossip turn every node into a claimed provider of
		// everything (invocation forwarding chains, ambiguous ownership).
		resp := &Response{Node: s.node}
		for _, ref := range s.reg.LocalRefs() {
			svc, err := s.reg.Lookup(ref)
			if err != nil {
				continue
			}
			resp.Services = append(resp.Services, ServiceInfo{Ref: ref, Prototypes: svc.PrototypeNames()})
		}
		return resp

	case "invoke":
		input, err := DecodeTuple(req.Input)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		// Resume the client's trace (nil when the invocation is unsampled
		// or the peer predates trace propagation): the server-side
		// execution records as a child of the client's round-trip span.
		span := trace.Default.StartRemote("wire.server", req.TraceID, req.SpanID)
		span.SetAttr("node", s.node)
		span.SetAttr("proto", req.Proto)
		span.SetAttr("ref", req.Ref)
		rows, err := s.reg.InvokeCtx(trace.ContextWith(context.Background(), span), req.Proto, req.Ref, input, service.Instant(req.At))
		if err != nil {
			span.SetAttr("error", err.Error())
			span.Finish()
			return &Response{Err: err.Error()}
		}
		span.SetAttrInt("rows", int64(len(rows)))
		span.Finish()
		resp := &Response{Rows: make([][]Value, len(rows))}
		for i, row := range rows {
			resp.Rows[i] = EncodeTuple(row)
		}
		return resp

	case "batch":
		return s.handleBatch(req)

	case "announce":
		h := s.announceHandler.Load()
		if h == nil {
			break // no bus attached: answer like a pre-v4 peer
		}
		(*h)(req.Announces)
		// The response names this node so the announcing dialer learns the
		// addr → node mapping without a separate describe round trip.
		return &Response{Node: s.node}
	}
	return &Response{Err: fmt.Sprintf("wire: unknown op %q", req.Op)}
}

// handleBatch executes a v3 batch frame: every item independently, on a
// bounded worker pool, with per-item errors so one bad tuple cannot fail
// its neighbours. Results are positional.
func (s *Server) handleBatch(req *Request) *Response {
	span := trace.Default.StartRemote("wire.server.batch", req.TraceID, req.SpanID)
	span.SetAttr("node", s.node)
	span.SetAttrInt("items", int64(len(req.Items)))
	defer span.Finish()
	results := make([]BatchItemResult, len(req.Items))
	run := func(i int) {
		item := req.Items[i]
		input, err := DecodeTuple(item.Input)
		if err != nil {
			results[i].Err = err.Error()
			return
		}
		rows, err := s.reg.InvokeCtx(trace.ContextWith(context.Background(), span), item.Proto, item.Ref, input, service.Instant(item.At))
		if err != nil {
			results[i].Err = err.Error()
			return
		}
		enc := make([][]Value, len(rows))
		for j, row := range rows {
			enc[j] = EncodeTuple(row)
		}
		results[i].Rows = enc
	}
	s.mu.Lock()
	workers := s.batchPar
	s.mu.Unlock()
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range req.Items {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range req.Items {
			run(i)
		}
	}
	return &Response{ItemResults: results}
}

// Client is a multiplexed connection to a Local ERM node: any number of
// requests may be in flight concurrently; responses are matched by ID.
//
// The connection self-heals: when a round trip finds the connection lost
// (dial failure, write failure, or the read loop dying mid-request), the
// client redials with capped exponential backoff and retries, up to a
// bounded number of attempts. A request that TIMED OUT is never retried —
// it may have reached the server, and replaying it could duplicate an
// active invocation's side effect.
type Client struct {
	addr    string
	timeout time.Duration

	// Reconnection policy (SetReconnect): total attempts per round trip
	// and the capped backoff between them.
	attempts    int
	backoffBase time.Duration
	backoffMax  time.Duration

	mu     sync.Mutex // guards cur/nextID and writes
	cur    *clientConn
	nextID uint64
	closed bool

	// batchUnsupported latches once a peer answers a batch frame with
	// "unknown op": every later batch degrades straight to per-item
	// invokes without re-probing (the peer will not upgrade mid-flight).
	batchUnsupported atomic.Bool
}

// clientConn is one physical connection's state. Keeping the pending map
// per connection means a dying read loop fails exactly ITS in-flight
// requests — never the replacement connection's — and a reconnect can
// never orphan a waiter.
type clientConn struct {
	conn    net.Conn
	enc     *gob.Encoder
	pending map[uint64]chan *Response
}

// Dial connects to a node. The timeout bounds the dial, every write, and
// each round trip's wait for a response.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, timeout: timeout, attempts: 3, backoffBase: 5 * time.Millisecond, backoffMax: 250 * time.Millisecond}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SetReconnect tunes the round-trip reconnection policy: total attempts
// (values < 1 disable retrying entirely) and the base/cap of the
// exponential backoff between them.
func (c *Client) SetReconnect(attempts int, base, max time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	if base > 0 {
		c.backoffBase = base
	}
	if max > 0 {
		c.backoffMax = max
	}
}

// connectLocked (re)establishes the connection and starts its read loop.
func (c *Client) connectLocked() error {
	obsWireDials.Inc()
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		// ErrUnreachable: the request (if any) never left this process, so
		// even an active invocation may safely fail over to a replica.
		return fmt.Errorf("wire: dial %s: %w: %w", c.addr, resilience.ErrUnreachable, err)
	}
	cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn), pending: make(map[uint64]chan *Response)}
	c.cur = cc
	go c.readLoop(cc, gob.NewDecoder(conn))
	return nil
}

// readLoop routes responses to their waiters until the connection dies,
// then fails fast everything still pending ON THIS connection.
func (c *Client) readLoop(cc *clientConn, dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			if c.cur == cc {
				c.cur = nil
			}
			for id, ch := range cc.pending {
				close(ch)
				delete(cc.pending, id)
			}
			c.mu.Unlock()
			_ = cc.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- &resp
		}
	}
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur != nil {
		err := c.cur.conn.Close()
		c.cur = nil
		return err
	}
	return nil
}

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

// roundTrip sends one request and waits for its response, transparently
// redialing a lost connection (see roundTripCtx).
func (c *Client) roundTrip(req *Request) (*Response, error) {
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx drives one request to completion under the reconnection
// policy: connection-level failures (dial, write, read loop death) redial
// with capped exponential backoff and retry; a timed-out or cancelled
// request is NOT retried, because it may already have reached the server.
func (c *Client) roundTripCtx(ctx context.Context, req *Request) (*Response, error) {
	req.Ver = Version
	obsWireCalls.Inc()
	// A sampled invocation gets a round-trip child span and exports its
	// trace context in the frame, so the server side can resume the trace.
	var span *trace.Span
	if trace.Default.Active() {
		if parent := trace.FromContext(ctx); parent != nil {
			span = parent.Child("wire.roundtrip")
			span.SetAttr("addr", c.addr)
			req.TraceID = span.Trace()
			req.SpanID = span.ID()
		}
	}
	start := time.Now()
	resp, err := c.doRoundTripCtx(ctx, req)
	obsWireLatency.Observe(time.Since(start))
	if err != nil {
		obsWireFailures.Inc()
		span.SetAttr("error", err.Error())
	}
	span.Finish()
	return resp, err
}

func (c *Client) doRoundTripCtx(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	attempts := c.attempts
	c.mu.Unlock()
	backoff := c.backoffBase
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.SleepCtx(ctx, backoff); err != nil {
				return nil, fmt.Errorf("wire: %s: %w", c.addr, err)
			}
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
			obsWireRetries.Inc()
		}
		resp, err, retryable := c.tryRoundTrip(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
	}
	return nil, lastErr
}

// tryRoundTrip performs a single send/receive attempt. retryable reports
// whether the failure is connection-level (safe to redial and resend: the
// request never reached the server, or the connection died before any
// response could have been routed to us).
func (c *Client) tryRoundTrip(ctx context.Context, req *Request) (resp *Response, err error, retryable bool) {
	c.mu.Lock()
	if c.closed {
		// A deliberately closed client (the discovery manager processed a
		// Bye for this node) never sends: unreachable, so callers racing
		// the close — a batch frame in flight during the Bye — fail over
		// to a surviving replica instead of surfacing a terminal error.
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w: client closed", c.addr, resilience.ErrUnreachable), false
	}
	if c.cur == nil {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return nil, err, true
		}
	}
	cc := c.cur
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	cc.pending[req.ID] = ch
	if c.timeout > 0 {
		_ = cc.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	err = cc.enc.Encode(req)
	if c.timeout > 0 {
		_ = cc.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		// A failed write poisons the gob stream: drop the connection and
		// fail fast every request still in flight on it. The incomplete
		// frame can never decode server-side, so the request did not
		// execute — unreachable, not unknown.
		if c.cur == cc {
			c.cur = nil
		}
		for id, pch := range cc.pending {
			close(pch)
			delete(cc.pending, id)
		}
		_ = cc.conn.Close()
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w: %w", c.addr, resilience.ErrUnreachable, err), true
	}
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The connection died before our response was routed back: the
			// reply can never arrive. The request WAS sent, so the server
			// may have executed it — ErrOutcomeUnknown. For passive calls
			// redialing and resending is safe and the only way forward; a
			// no-resend context (active invocations) must instead surface
			// the unknown outcome so the query layer can pin the action
			// rather than risk firing its side effect twice.
			obsWireConnLost.Inc()
			if resilience.NoResend(ctx) {
				return nil, fmt.Errorf("wire: %s: connection lost: %w", c.addr, resilience.ErrOutcomeUnknown), false
			}
			return nil, fmt.Errorf("wire: %s: connection lost: %w", c.addr, resilience.ErrOutcomeUnknown), true
		}
		return resp, nil, false
	case <-timeout:
		obsWireTimeouts.Inc()
		c.mu.Lock()
		delete(cc.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: request timed out after %s: %w", c.addr, c.timeout, resilience.ErrOutcomeUnknown), false
	case <-ctx.Done():
		c.mu.Lock()
		delete(cc.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w: %w", c.addr, resilience.ErrOutcomeUnknown, ctx.Err()), false
	}
}

// Describe queries the node's name and hosted services.
func (c *Client) Describe() (string, []ServiceInfo, error) {
	resp, err := c.roundTrip(&Request{Op: "describe"})
	if err != nil {
		return "", nil, err
	}
	if resp.Err != "" {
		return "", nil, remoteError(resp.Err)
	}
	return resp.Node, resp.Services, nil
}

// ErrAnnounceUnsupported reports a pre-v4 peer that cannot carry announce
// frames (it answered "unknown op").
var ErrAnnounceUnsupported = fmt.Errorf("wire: peer does not support announce frames")

// Announce ships discovery presence frames to the peer (wire v4) and
// returns the peer's node name, so the dialing side of a federation link
// learns the addr → node mapping for free. A pre-v4 peer answers "unknown
// op", surfaced as ErrAnnounceUnsupported so the sender can stop relaying
// to it instead of retrying forever.
func (c *Client) Announce(ctx context.Context, anns []Announce) (string, error) {
	resp, err := c.roundTripCtx(ctx, &Request{Op: "announce", Announces: anns})
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return "", ErrAnnounceUnsupported
		}
		return "", remoteError(resp.Err)
	}
	return resp.Node, nil
}

// Invoke performs a remote invocation.
func (c *Client) Invoke(proto, ref string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return c.InvokeCtx(context.Background(), proto, ref, input, at)
}

// InvokeCtx performs a remote invocation bounded by the context: the
// deadline caps the whole round trip, including reconnection backoff.
func (c *Client) InvokeCtx(ctx context.Context, proto, ref string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	resp, err := c.roundTripCtx(ctx, &Request{
		Op: "invoke", Proto: proto, Ref: ref, Input: EncodeTuple(input), At: int64(at),
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err)
	}
	rows := make([]value.Tuple, len(resp.Rows))
	for i, r := range resp.Rows {
		t, err := DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		rows[i] = t
	}
	return rows, nil
}

// InvokeBatchCtx performs many invocations of one (proto, ref) pair in a
// single round trip (wire v3 batch frame). Results are positional and
// per-item. A pre-v3 peer answers "unknown op"; the client then latches the
// connection as batch-incapable and degrades to per-item InvokeCtx calls —
// transparent to callers beyond the lost batching win. Transport failures
// (the frame itself failed) uniformly fail every item.
func (c *Client) InvokeBatchCtx(ctx context.Context, proto, ref string, inputs []value.Tuple, at service.Instant) []service.InvokeResult {
	out := make([]service.InvokeResult, len(inputs))
	if len(inputs) == 0 {
		return out
	}
	if c.batchUnsupported.Load() {
		return c.invokeBatchFallback(ctx, proto, ref, inputs, at)
	}
	obsWireBatchCalls.Inc()
	obsWireBatchItems.Add(int64(len(inputs)))
	items := make([]BatchItem, len(inputs))
	for i, in := range inputs {
		items[i] = BatchItem{Proto: proto, Ref: ref, Input: EncodeTuple(in), At: int64(at)}
	}
	resp, err := c.roundTripCtx(ctx, &Request{Op: "batch", Items: items})
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			// Pre-v3 peer: remember and degrade to per-item invokes.
			c.batchUnsupported.Store(true)
			return c.invokeBatchFallback(ctx, proto, ref, inputs, at)
		}
		ferr := remoteError(resp.Err)
		for i := range out {
			out[i].Err = ferr
		}
		return out
	}
	for i := range out {
		if i >= len(resp.ItemResults) {
			out[i].Err = fmt.Errorf("wire: %s: batch response carried %d of %d results", c.addr, len(resp.ItemResults), len(inputs))
			continue
		}
		res := resp.ItemResults[i]
		if res.Err != "" {
			out[i].Err = remoteError(res.Err)
			continue
		}
		rows := make([]value.Tuple, len(res.Rows))
		var decErr error
		for j, r := range res.Rows {
			t, err := DecodeTuple(r)
			if err != nil {
				decErr = err
				break
			}
			rows[j] = t
		}
		if decErr != nil {
			out[i].Err = decErr
			continue
		}
		out[i].Rows = rows
	}
	return out
}

// invokeBatchFallback is the pre-v3 degradation: per-item round trips on a
// bounded pool, preserving the batch call's positional per-item contract.
func (c *Client) invokeBatchFallback(ctx context.Context, proto, ref string, inputs []value.Tuple, at service.Instant) []service.InvokeResult {
	obsWireBatchFallbacks.Inc()
	out := make([]service.InvokeResult, len(inputs))
	workers := service.DefaultBatchParallelism
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 2 {
		for i, in := range inputs {
			out[i].Rows, out[i].Err = c.InvokeCtx(ctx, proto, ref, in, at)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].Rows, out[i].Err = c.InvokeCtx(ctx, proto, ref, inputs[i], at)
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Remote wraps one remote service behind a client connection so it
// satisfies service.Service — the core ERM registers these proxies, making
// remote invocation transparent to queries (Section 5.1).
type Remote struct {
	client *Client
	ref    string
	protos map[string]bool
	names  []string
}

// NewRemote builds a proxy for the described service.
func NewRemote(client *Client, info ServiceInfo) *Remote {
	protos := make(map[string]bool, len(info.Prototypes))
	for _, p := range info.Prototypes {
		protos[p] = true
	}
	return &Remote{client: client, ref: info.Ref, protos: protos, names: append([]string(nil), info.Prototypes...)}
}

// Ref implements service.Service.
func (r *Remote) Ref() string { return r.ref }

// PrototypeNames implements service.Service.
func (r *Remote) PrototypeNames() []string { return r.names }

// Implements implements service.Service.
func (r *Remote) Implements(p string) bool { return r.protos[p] }

// Invoke implements service.Service by a wire round trip.
func (r *Remote) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return r.client.Invoke(proto, r.ref, input, at)
}

// InvokeCtx implements service.CtxService: the registry's per-invocation
// deadline propagates all the way into the wire round trip instead of
// being enforced by goroutine abandonment.
func (r *Remote) InvokeCtx(ctx context.Context, proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return r.client.InvokeCtx(ctx, proto, r.ref, input, at)
}

// InvokeBatchCtx implements service.BatchCtxService: the registry hands a
// whole (proto, ref) group to the proxy, which ships it as one wire v3
// batch frame (or degrades to per-item round trips against pre-v3 peers).
func (r *Remote) InvokeBatchCtx(ctx context.Context, proto string, inputs []value.Tuple, at service.Instant) []service.InvokeResult {
	return r.client.InvokeBatchCtx(ctx, proto, r.ref, inputs, at)
}
