// Package wire implements the network layer of the PEMS Environment
// Resource Manager (Gripay et al., EDBT 2010, Figure 1): a TCP protocol for
// remote service invocation and node description, replacing the paper's
// UPnP stack. A Local Environment Resource Manager exposes its registered
// services through a wire.Server; the core ERM reaches them through
// wire.Client proxies that satisfy service.Service, making remote services
// indistinguishable from local ones to the algebra.
//
// Framing: gob-encoded, ID-tagged request/response messages over a
// persistent connection with full multiplexing — many invocations may be in
// flight concurrently on one connection (the server handles each request in
// its own goroutine), which the parallel invocation operator exploits.
package wire

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"serena/internal/obs"
	"serena/internal/resilience"
	"serena/internal/service"
	"serena/internal/trace"
	"serena/internal/value"
)

// Version is the wire protocol version stamped on every request. Version 2
// added the trace-context fields (Ver, TraceID, SpanID). Interop is
// bidirectional without negotiation because gob ignores fields the receiver
// does not know and zero-values fields the sender did not write: a v1 server
// sees a v2 request as a v1 request, and a v2 server sees a v1 request with
// TraceID 0 — the "not traced" sentinel.
const Version = 2

// Wire metrics: round-trip latency and outcome counters, plus connection
// churn (dials cover both the first connect and every redial).
var (
	obsWireLatency  = obs.Default.Histogram("wire.roundtrip.latency")
	obsWireCalls    = obs.Default.Counter("wire.roundtrip.calls")
	obsWireRetries  = obs.Default.Counter("wire.roundtrip.retries")
	obsWireFailures = obs.Default.Counter("wire.roundtrip.failures")
	obsWireTimeouts = obs.Default.Counter("wire.roundtrip.timeouts")
	obsWireDials    = obs.Default.Counter("wire.dials")
	obsWireConnLost = obs.Default.Counter("wire.connections_lost")
)

// Value is the wire form of value.Value (gob needs exported fields).
type Value struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
	Blob []byte
}

// EncodeValue converts a value to wire form.
func EncodeValue(v value.Value) Value {
	w := Value{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case value.Bool:
		w.B = v.Bool()
	case value.Int:
		w.I = v.Int()
	case value.Real:
		w.F = v.Real()
	case value.String:
		w.S = v.Str()
	case value.Service:
		w.S = v.ServiceRef()
	case value.Blob:
		w.Blob = v.Blob()
	}
	return w
}

// DecodeValue converts a wire value back.
func DecodeValue(w Value) (value.Value, error) {
	switch value.Kind(w.Kind) {
	case value.Null:
		return value.NewNull(), nil
	case value.Bool:
		return value.NewBool(w.B), nil
	case value.Int:
		return value.NewInt(w.I), nil
	case value.Real:
		return value.NewReal(w.F), nil
	case value.String:
		return value.NewString(w.S), nil
	case value.Service:
		return value.NewService(w.S), nil
	case value.Blob:
		return value.NewBlob(w.Blob), nil
	}
	return value.Value{}, fmt.Errorf("wire: unknown value kind %d", w.Kind)
}

// EncodeTuple converts a tuple to wire form.
func EncodeTuple(t value.Tuple) []Value {
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple converts a wire tuple back.
func DecodeTuple(ws []Value) (value.Tuple, error) {
	out := make(value.Tuple, len(ws))
	for i, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Request is the union of client→server messages.
type Request struct {
	// ID correlates the response on a multiplexed connection.
	ID uint64
	// Ver is the sender's protocol version (0 from pre-versioning peers).
	Ver int
	// Op is "invoke" or "describe".
	Op string
	// Invoke fields.
	Proto string
	Ref   string
	Input []Value
	At    int64
	// Trace context (since Version 2): the client's trace and β span IDs,
	// letting the server record its execution as a child span of the same
	// trace. 0 means the invocation is not traced.
	TraceID uint64
	SpanID  uint64
}

// ServiceInfo describes one hosted service.
type ServiceInfo struct {
	Ref        string
	Prototypes []string
}

// Response is the union of server→client messages.
type Response struct {
	ID       uint64
	Err      string
	Rows     [][]Value     // invoke
	Node     string        // describe
	Services []ServiceInfo // describe
}

// Server exposes a Local ERM's services over TCP.
type Server struct {
	node string
	reg  *service.Registry

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
	done  chan struct{}
}

// NewServer wraps a registry of local services under a node name.
func NewServer(node string, reg *service.Registry) *Server {
	return &Server{node: node, reg: reg, conns: make(map[net.Conn]bool), done: make(chan struct{})}
}

// Node returns the node name.
func (s *Server) Node() string { return s.node }

// Listen starts serving on the given address ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: %s: %w", s.node, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			resp := s.handle(&req)
			resp.ID = req.ID
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = enc.Encode(resp)
		}(req)
	}
}

func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case "describe":
		resp := &Response{Node: s.node}
		for _, ref := range s.reg.Refs() {
			svc, err := s.reg.Lookup(ref)
			if err != nil {
				continue
			}
			resp.Services = append(resp.Services, ServiceInfo{Ref: ref, Prototypes: svc.PrototypeNames()})
		}
		return resp

	case "invoke":
		input, err := DecodeTuple(req.Input)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		// Resume the client's trace (nil when the invocation is unsampled
		// or the peer predates trace propagation): the server-side
		// execution records as a child of the client's round-trip span.
		span := trace.Default.StartRemote("wire.server", req.TraceID, req.SpanID)
		span.SetAttr("node", s.node)
		span.SetAttr("proto", req.Proto)
		span.SetAttr("ref", req.Ref)
		rows, err := s.reg.InvokeCtx(trace.ContextWith(context.Background(), span), req.Proto, req.Ref, input, service.Instant(req.At))
		if err != nil {
			span.SetAttr("error", err.Error())
			span.Finish()
			return &Response{Err: err.Error()}
		}
		span.SetAttrInt("rows", int64(len(rows)))
		span.Finish()
		resp := &Response{Rows: make([][]Value, len(rows))}
		for i, row := range rows {
			resp.Rows[i] = EncodeTuple(row)
		}
		return resp
	}
	return &Response{Err: fmt.Sprintf("wire: unknown op %q", req.Op)}
}

// Client is a multiplexed connection to a Local ERM node: any number of
// requests may be in flight concurrently; responses are matched by ID.
//
// The connection self-heals: when a round trip finds the connection lost
// (dial failure, write failure, or the read loop dying mid-request), the
// client redials with capped exponential backoff and retries, up to a
// bounded number of attempts. A request that TIMED OUT is never retried —
// it may have reached the server, and replaying it could duplicate an
// active invocation's side effect.
type Client struct {
	addr    string
	timeout time.Duration

	// Reconnection policy (SetReconnect): total attempts per round trip
	// and the capped backoff between them.
	attempts    int
	backoffBase time.Duration
	backoffMax  time.Duration

	mu     sync.Mutex // guards cur/nextID and writes
	cur    *clientConn
	nextID uint64
	closed bool
}

// clientConn is one physical connection's state. Keeping the pending map
// per connection means a dying read loop fails exactly ITS in-flight
// requests — never the replacement connection's — and a reconnect can
// never orphan a waiter.
type clientConn struct {
	conn    net.Conn
	enc     *gob.Encoder
	pending map[uint64]chan *Response
}

// Dial connects to a node. The timeout bounds the dial, every write, and
// each round trip's wait for a response.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, timeout: timeout, attempts: 3, backoffBase: 5 * time.Millisecond, backoffMax: 250 * time.Millisecond}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SetReconnect tunes the round-trip reconnection policy: total attempts
// (values < 1 disable retrying entirely) and the base/cap of the
// exponential backoff between them.
func (c *Client) SetReconnect(attempts int, base, max time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	if base > 0 {
		c.backoffBase = base
	}
	if max > 0 {
		c.backoffMax = max
	}
}

// connectLocked (re)establishes the connection and starts its read loop.
func (c *Client) connectLocked() error {
	obsWireDials.Inc()
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn), pending: make(map[uint64]chan *Response)}
	c.cur = cc
	go c.readLoop(cc, gob.NewDecoder(conn))
	return nil
}

// readLoop routes responses to their waiters until the connection dies,
// then fails fast everything still pending ON THIS connection.
func (c *Client) readLoop(cc *clientConn, dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			if c.cur == cc {
				c.cur = nil
			}
			for id, ch := range cc.pending {
				close(ch)
				delete(cc.pending, id)
			}
			c.mu.Unlock()
			_ = cc.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- &resp
		}
	}
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur != nil {
		err := c.cur.conn.Close()
		c.cur = nil
		return err
	}
	return nil
}

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

// roundTrip sends one request and waits for its response, transparently
// redialing a lost connection (see roundTripCtx).
func (c *Client) roundTrip(req *Request) (*Response, error) {
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx drives one request to completion under the reconnection
// policy: connection-level failures (dial, write, read loop death) redial
// with capped exponential backoff and retry; a timed-out or cancelled
// request is NOT retried, because it may already have reached the server.
func (c *Client) roundTripCtx(ctx context.Context, req *Request) (*Response, error) {
	req.Ver = Version
	obsWireCalls.Inc()
	// A sampled invocation gets a round-trip child span and exports its
	// trace context in the frame, so the server side can resume the trace.
	var span *trace.Span
	if trace.Default.Active() {
		if parent := trace.FromContext(ctx); parent != nil {
			span = parent.Child("wire.roundtrip")
			span.SetAttr("addr", c.addr)
			req.TraceID = span.Trace()
			req.SpanID = span.ID()
		}
	}
	start := time.Now()
	resp, err := c.doRoundTripCtx(ctx, req)
	obsWireLatency.Observe(time.Since(start))
	if err != nil {
		obsWireFailures.Inc()
		span.SetAttr("error", err.Error())
	}
	span.Finish()
	return resp, err
}

func (c *Client) doRoundTripCtx(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	attempts := c.attempts
	c.mu.Unlock()
	backoff := c.backoffBase
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.SleepCtx(ctx, backoff); err != nil {
				return nil, fmt.Errorf("wire: %s: %w", c.addr, err)
			}
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
			obsWireRetries.Inc()
		}
		resp, err, retryable := c.tryRoundTrip(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
	}
	return nil, lastErr
}

// tryRoundTrip performs a single send/receive attempt. retryable reports
// whether the failure is connection-level (safe to redial and resend: the
// request never reached the server, or the connection died before any
// response could have been routed to us).
func (c *Client) tryRoundTrip(ctx context.Context, req *Request) (resp *Response, err error, retryable bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: client closed", c.addr), false
	}
	if c.cur == nil {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return nil, err, true
		}
	}
	cc := c.cur
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	cc.pending[req.ID] = ch
	if c.timeout > 0 {
		_ = cc.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	err = cc.enc.Encode(req)
	if c.timeout > 0 {
		_ = cc.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		// A failed write poisons the gob stream: drop the connection and
		// fail fast every request still in flight on it.
		if c.cur == cc {
			c.cur = nil
		}
		for id, pch := range cc.pending {
			close(pch)
			delete(cc.pending, id)
		}
		_ = cc.conn.Close()
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w", c.addr, err), true
	}
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The connection died before our response was routed back: the
			// reply can never arrive, so redialing and resending is the
			// only way forward. (An ACTIVE request may still have executed
			// server-side before the crash — see "Failure semantics" in
			// DESIGN.md for the at-most-once discussion.)
			obsWireConnLost.Inc()
			return nil, fmt.Errorf("wire: %s: connection lost", c.addr), true
		}
		return resp, nil, false
	case <-timeout:
		obsWireTimeouts.Inc()
		c.mu.Lock()
		delete(cc.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: request timed out after %s", c.addr, c.timeout), false
	case <-ctx.Done():
		c.mu.Lock()
		delete(cc.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w", c.addr, ctx.Err()), false
	}
}

// Describe queries the node's name and hosted services.
func (c *Client) Describe() (string, []ServiceInfo, error) {
	resp, err := c.roundTrip(&Request{Op: "describe"})
	if err != nil {
		return "", nil, err
	}
	if resp.Err != "" {
		return "", nil, errors.New(resp.Err)
	}
	return resp.Node, resp.Services, nil
}

// Invoke performs a remote invocation.
func (c *Client) Invoke(proto, ref string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return c.InvokeCtx(context.Background(), proto, ref, input, at)
}

// InvokeCtx performs a remote invocation bounded by the context: the
// deadline caps the whole round trip, including reconnection backoff.
func (c *Client) InvokeCtx(ctx context.Context, proto, ref string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	resp, err := c.roundTripCtx(ctx, &Request{
		Op: "invoke", Proto: proto, Ref: ref, Input: EncodeTuple(input), At: int64(at),
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	rows := make([]value.Tuple, len(resp.Rows))
	for i, r := range resp.Rows {
		t, err := DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		rows[i] = t
	}
	return rows, nil
}

// Remote wraps one remote service behind a client connection so it
// satisfies service.Service — the core ERM registers these proxies, making
// remote invocation transparent to queries (Section 5.1).
type Remote struct {
	client *Client
	ref    string
	protos map[string]bool
	names  []string
}

// NewRemote builds a proxy for the described service.
func NewRemote(client *Client, info ServiceInfo) *Remote {
	protos := make(map[string]bool, len(info.Prototypes))
	for _, p := range info.Prototypes {
		protos[p] = true
	}
	return &Remote{client: client, ref: info.Ref, protos: protos, names: append([]string(nil), info.Prototypes...)}
}

// Ref implements service.Service.
func (r *Remote) Ref() string { return r.ref }

// PrototypeNames implements service.Service.
func (r *Remote) PrototypeNames() []string { return r.names }

// Implements implements service.Service.
func (r *Remote) Implements(p string) bool { return r.protos[p] }

// Invoke implements service.Service by a wire round trip.
func (r *Remote) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return r.client.Invoke(proto, r.ref, input, at)
}

// InvokeCtx implements service.CtxService: the registry's per-invocation
// deadline propagates all the way into the wire round trip instead of
// being enforced by goroutine abandonment.
func (r *Remote) InvokeCtx(ctx context.Context, proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return r.client.InvokeCtx(ctx, proto, r.ref, input, at)
}
