// Package wire implements the network layer of the PEMS Environment
// Resource Manager (Gripay et al., EDBT 2010, Figure 1): a TCP protocol for
// remote service invocation and node description, replacing the paper's
// UPnP stack. A Local Environment Resource Manager exposes its registered
// services through a wire.Server; the core ERM reaches them through
// wire.Client proxies that satisfy service.Service, making remote services
// indistinguishable from local ones to the algebra.
//
// Framing: gob-encoded, ID-tagged request/response messages over a
// persistent connection with full multiplexing — many invocations may be in
// flight concurrently on one connection (the server handles each request in
// its own goroutine), which the parallel invocation operator exploits.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"serena/internal/service"
	"serena/internal/value"
)

// Value is the wire form of value.Value (gob needs exported fields).
type Value struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
	Blob []byte
}

// EncodeValue converts a value to wire form.
func EncodeValue(v value.Value) Value {
	w := Value{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case value.Bool:
		w.B = v.Bool()
	case value.Int:
		w.I = v.Int()
	case value.Real:
		w.F = v.Real()
	case value.String:
		w.S = v.Str()
	case value.Service:
		w.S = v.ServiceRef()
	case value.Blob:
		w.Blob = v.Blob()
	}
	return w
}

// DecodeValue converts a wire value back.
func DecodeValue(w Value) (value.Value, error) {
	switch value.Kind(w.Kind) {
	case value.Null:
		return value.NewNull(), nil
	case value.Bool:
		return value.NewBool(w.B), nil
	case value.Int:
		return value.NewInt(w.I), nil
	case value.Real:
		return value.NewReal(w.F), nil
	case value.String:
		return value.NewString(w.S), nil
	case value.Service:
		return value.NewService(w.S), nil
	case value.Blob:
		return value.NewBlob(w.Blob), nil
	}
	return value.Value{}, fmt.Errorf("wire: unknown value kind %d", w.Kind)
}

// EncodeTuple converts a tuple to wire form.
func EncodeTuple(t value.Tuple) []Value {
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple converts a wire tuple back.
func DecodeTuple(ws []Value) (value.Tuple, error) {
	out := make(value.Tuple, len(ws))
	for i, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Request is the union of client→server messages.
type Request struct {
	// ID correlates the response on a multiplexed connection.
	ID uint64
	// Op is "invoke" or "describe".
	Op string
	// Invoke fields.
	Proto string
	Ref   string
	Input []Value
	At    int64
}

// ServiceInfo describes one hosted service.
type ServiceInfo struct {
	Ref        string
	Prototypes []string
}

// Response is the union of server→client messages.
type Response struct {
	ID       uint64
	Err      string
	Rows     [][]Value     // invoke
	Node     string        // describe
	Services []ServiceInfo // describe
}

// Server exposes a Local ERM's services over TCP.
type Server struct {
	node string
	reg  *service.Registry

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
	done  chan struct{}
}

// NewServer wraps a registry of local services under a node name.
func NewServer(node string, reg *service.Registry) *Server {
	return &Server{node: node, reg: reg, conns: make(map[net.Conn]bool), done: make(chan struct{})}
}

// Node returns the node name.
func (s *Server) Node() string { return s.node }

// Listen starts serving on the given address ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: %s: %w", s.node, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			resp := s.handle(&req)
			resp.ID = req.ID
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = enc.Encode(resp)
		}(req)
	}
}

func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case "describe":
		resp := &Response{Node: s.node}
		for _, ref := range s.reg.Refs() {
			svc, err := s.reg.Lookup(ref)
			if err != nil {
				continue
			}
			resp.Services = append(resp.Services, ServiceInfo{Ref: ref, Prototypes: svc.PrototypeNames()})
		}
		return resp

	case "invoke":
		input, err := DecodeTuple(req.Input)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		rows, err := s.reg.Invoke(req.Proto, req.Ref, input, service.Instant(req.At))
		if err != nil {
			return &Response{Err: err.Error()}
		}
		resp := &Response{Rows: make([][]Value, len(rows))}
		for i, row := range rows {
			resp.Rows[i] = EncodeTuple(row)
		}
		return resp
	}
	return &Response{Err: fmt.Sprintf("wire: unknown op %q", req.Op)}
}

// Client is a multiplexed connection to a Local ERM node: any number of
// requests may be in flight concurrently; responses are matched by ID.
type Client struct {
	addr    string
	timeout time.Duration

	mu      sync.Mutex // guards conn/enc/pending/nextID and writes
	conn    net.Conn
	enc     *gob.Encoder
	pending map[uint64]chan *Response
	nextID  uint64
	closed  bool
}

// Dial connects to a node.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, timeout: timeout}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and starts its read loop.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.pending = make(map[uint64]chan *Response)
	go c.readLoop(conn, gob.NewDecoder(conn))
	return nil
}

// readLoop routes responses to their waiters until the connection dies,
// then fails everything still pending.
func (c *Client) readLoop(conn net.Conn, dec *gob.Decoder) {
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			if c.conn == conn {
				c.conn = nil
				c.enc = nil
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- &resp
		}
	}
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		c.enc = nil
		return err
	}
	return nil
}

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

// roundTrip sends one request and waits for its response. A dead
// connection is re-established for the next caller; the in-flight request
// itself is not replayed (invocations may have side effects).
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: client closed", c.addr)
	}
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Response, 1)
	c.pending[req.ID] = ch
	err := c.enc.Encode(req)
	if err != nil {
		delete(c.pending, req.ID)
		if c.conn != nil {
			_ = c.conn.Close()
			c.conn = nil
			c.enc = nil
		}
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: %w", c.addr, err)
	}
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("wire: %s: connection lost", c.addr)
		}
		return resp, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: %s: request timed out after %s", c.addr, c.timeout)
	}
}

// Describe queries the node's name and hosted services.
func (c *Client) Describe() (string, []ServiceInfo, error) {
	resp, err := c.roundTrip(&Request{Op: "describe"})
	if err != nil {
		return "", nil, err
	}
	if resp.Err != "" {
		return "", nil, errors.New(resp.Err)
	}
	return resp.Node, resp.Services, nil
}

// Invoke performs a remote invocation.
func (c *Client) Invoke(proto, ref string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	resp, err := c.roundTrip(&Request{
		Op: "invoke", Proto: proto, Ref: ref, Input: EncodeTuple(input), At: int64(at),
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	rows := make([]value.Tuple, len(resp.Rows))
	for i, r := range resp.Rows {
		t, err := DecodeTuple(r)
		if err != nil {
			return nil, err
		}
		rows[i] = t
	}
	return rows, nil
}

// Remote wraps one remote service behind a client connection so it
// satisfies service.Service — the core ERM registers these proxies, making
// remote invocation transparent to queries (Section 5.1).
type Remote struct {
	client *Client
	ref    string
	protos map[string]bool
	names  []string
}

// NewRemote builds a proxy for the described service.
func NewRemote(client *Client, info ServiceInfo) *Remote {
	protos := make(map[string]bool, len(info.Prototypes))
	for _, p := range info.Prototypes {
		protos[p] = true
	}
	return &Remote{client: client, ref: info.Ref, protos: protos, names: append([]string(nil), info.Prototypes...)}
}

// Ref implements service.Service.
func (r *Remote) Ref() string { return r.ref }

// PrototypeNames implements service.Service.
func (r *Remote) PrototypeNames() []string { return r.names }

// Implements implements service.Service.
func (r *Remote) Implements(p string) bool { return r.protos[p] }

// Invoke implements service.Service by a wire round trip.
func (r *Remote) Invoke(proto string, input value.Tuple, at service.Instant) ([]value.Tuple, error) {
	return r.client.Invoke(proto, r.ref, input, at)
}
